"""Parallel suite execution (``--jobs N``).

One primitive, used by every matrix-shaped command:

* :class:`repro.parallel.executor.SuiteExecutor` — a process-pool
  executor with *deterministic work partitioning* (tasks are indexed in
  submission order and results are merged back in that order, so the
  output of a parallel run is byte-identical to the serial run),
  per-task timeout, bounded retries, and an inline serial fallback that
  makes ``jobs=1`` exactly the pre-existing code path.

Consumers:

* ``repro bench run --jobs N``   — (workload, model) cells
* ``repro experiments --jobs N`` — experiment modules
* ``repro compare --jobs N``     — roster models on one workload

Worker processes collect their own :class:`~repro.obs.MetricsRegistry`
and ship a snapshot home; the parent folds counters in with
:meth:`~repro.obs.MetricsRegistry.merge` so concurrent writers are
summed, never clobbered.  See ``docs/parallelism.md``.
"""

from repro.parallel.executor import (
    DEFAULT_TASK_TIMEOUT_S,
    SuiteExecutor,
    TaskFailure,
    TaskResult,
)

__all__ = [
    "DEFAULT_TASK_TIMEOUT_S",
    "SuiteExecutor",
    "TaskFailure",
    "TaskResult",
]
