"""Process-pool suite executor with deterministic result merging.

The executor solves one problem: run N independent, picklable tasks on
up to ``jobs`` worker processes *without changing what the caller
observes*.  Three properties make that true:

* **Deterministic partitioning** — tasks are indexed in submission
  order and dispatched in that order; nothing about scheduling leaks
  into the output.
* **Ordered merge** — results come back as a list aligned with the
  input, regardless of which worker finished first.
* **Serial fallback** — ``jobs=1`` (the default everywhere) never
  touches :mod:`multiprocessing` at all: tasks run inline, in order, in
  the calling process, which is bit-for-bit the pre-``--jobs`` code
  path.

Failure handling is conservative and deterministic: a task that raises,
times out, or dies with its worker is retried *inline in the parent*
(up to ``retries`` times), so a flaky pool can slow a run down but
cannot change its output.  A task that still fails raises
:class:`TaskFailure` carrying the original cause.

Workers run ``fn(item)`` — both must be picklable (module-level
function, plain-data items).  Simulated results in this codebase are
deterministic, so a retried task returns the same value the first
attempt would have.

Observability: an ``on_result`` callback fires in the parent once per
finalized task (heartbeats hook it), and every pooled task runs inside
:func:`_worker_task`, which tags the worker's :mod:`repro.obs.log`
context with its pid — workers inherit the parent's stderr, so the
``worker`` field on a JSON log record is the forwarding story: it says
*who* wrote each interleaved line.
"""

import os
import sys
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

#: per-task wall-clock budget before the parent gives up on the worker
#: and re-runs the task inline (None = wait forever)
DEFAULT_TASK_TIMEOUT_S = 600.0


class TaskFailure(RuntimeError):
    """A task failed on every attempt (pool *and* inline retries)."""

    def __init__(self, index, item, attempts, cause):
        self.index = index
        self.item = item
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            "task {} failed after {} attempt(s): {!r}".format(index, attempts, cause)
        )


@dataclass
class TaskResult:
    """Bookkeeping for one completed task (``value`` is ``fn(item)``)."""

    index: int
    value: object
    attempts: int = 1
    elapsed_s: float = 0.0
    inline: bool = False  # ran in the parent (serial mode or rescue)


def _worker_task(fn, item):
    """Pool entry point: tag this worker's log context, then run."""
    from repro.obs.log import set_context

    set_context(worker=os.getpid())
    return fn(item)


class SuiteExecutor:
    """Run independent tasks on a process pool, merge results in order.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (default) runs everything inline.
    timeout_s:
        Per-task wall-clock budget once the parent starts waiting on it;
        a timed-out task is retried inline.  ``None`` disables.
    retries:
        How many *extra* attempts a failed task gets (inline, in the
        parent) before :class:`TaskFailure` is raised.
    log:
        Optional ``callable(str)`` for progress/rescue messages
        (defaults to silent).
    on_result:
        Optional ``callable(TaskResult)`` fired in the parent once per
        task, when its result is final (pool collection, inline run, or
        rescue — never twice for the same index).  Heartbeats hook this
        for live progress; exceptions it raises propagate to the caller.
    """

    def __init__(self, jobs=1, timeout_s=DEFAULT_TASK_TIMEOUT_S, retries=1,
                 log=None, on_result=None):
        self.jobs = max(1, int(jobs))
        self.timeout_s = timeout_s
        self.retries = max(0, int(retries))
        self.log = log or (lambda message: None)
        self.on_result = on_result

    def _notify(self, result):
        if self.on_result is not None:
            self.on_result(result)

    # ------------------------------------------------------------------
    def map(self, fn: Callable, items: Sequence) -> List[object]:
        """``[fn(item) for item in items]``, possibly across processes."""
        return [result.value for result in self.run(fn, items)]

    def run(self, fn: Callable, items: Sequence) -> List[TaskResult]:
        """Like :meth:`map` but returns full :class:`TaskResult` rows."""
        items = list(items)
        if self.jobs == 1 or len(items) <= 1:
            return [self._run_inline(fn, index, item) for index, item in enumerate(items)]
        return self._run_pool(fn, items)

    # ------------------------------------------------------------------
    def _run_inline(self, fn, index, item, attempts_before=0):
        """Run one task in this process, honouring the retry budget."""
        attempt = attempts_before
        max_attempts = self.retries + 1  # first try + retry budget, pool included
        while True:
            attempt += 1
            start = time.perf_counter()
            try:
                value = fn(item)
            except Exception as exc:  # noqa: BLE001 — rethrown as TaskFailure
                if attempt >= max_attempts:
                    raise TaskFailure(index, item, attempt, exc) from exc
                self.log("parallel: task {} attempt {} failed ({!r}); retrying".format(
                    index, attempt, exc))
                continue
            result = TaskResult(
                index=index,
                value=value,
                attempts=attempt,
                elapsed_s=time.perf_counter() - start,
                inline=True,
            )
            self._notify(result)
            return result

    def _run_pool(self, fn, items):
        import multiprocessing
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
        from concurrent.futures import TimeoutError as FutureTimeout

        # fork keeps worker start cheap and inherits the loaded modules;
        # platforms without it (Windows, some macOS configs) use their
        # default start method — correctness is identical, startup slower.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
        results: List[Optional[TaskResult]] = [None] * len(items)
        rescue = []  # (index, item, attempts_so_far, cause) to re-run inline
        timed_out = False
        pool = ProcessPoolExecutor(
            max_workers=min(self.jobs, len(items)), mp_context=ctx
        )
        try:
            submitted = time.perf_counter()
            futures = [pool.submit(_worker_task, fn, item) for item in items]
            # collect strictly in index order: merge order (and therefore
            # the caller-visible output) never depends on completion order
            for index, future in enumerate(futures):
                try:
                    value = future.result(timeout=self.timeout_s)
                except FutureTimeout as exc:
                    timed_out = True
                    future.cancel()
                    self.log("parallel: task {} timed out after {:.0f}s; "
                             "re-running inline".format(index, self.timeout_s))
                    rescue.append((index, items[index], 1, exc))
                except BrokenExecutor as exc:
                    # the pool is gone: every uncollected task runs inline
                    self.log("parallel: worker pool broke ({!r}); finishing "
                             "serially".format(exc))
                    for rest in range(index, len(items)):
                        if results[rest] is None:
                            rescue.append((rest, items[rest], 1, exc))
                    break
                except Exception as exc:  # noqa: BLE001 — task raised in worker
                    self.log("parallel: task {} raised {!r}; re-running "
                             "inline".format(index, exc))
                    rescue.append((index, items[index], 1, exc))
                else:
                    results[index] = TaskResult(
                        index=index,
                        value=value,
                        attempts=1,
                        elapsed_s=time.perf_counter() - submitted,
                    )
                    self._notify(results[index])
        finally:
            pool.shutdown(wait=not timed_out, cancel_futures=True)
            if timed_out:
                # a hung worker would otherwise stall interpreter exit;
                # it can hold no state the parent needs (tasks are pure)
                for process in list((getattr(pool, "_processes", None) or {}).values()):
                    try:
                        process.terminate()
                    except OSError:  # already gone
                        pass
        for index, item, attempts, cause in rescue:
            if self.retries < 1:
                # no retry budget: surface the pool failure deterministically
                raise TaskFailure(index, item, attempts, cause)
            results[index] = self._run_inline(
                fn, index, item, attempts_before=attempts
            )
        return results


def _selftest(argv=None):  # pragma: no cover - manual smoke helper
    executor = SuiteExecutor(jobs=4)
    print(executor.map(abs, [-3, -2, -1, 0, 1]), file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    _selftest()
