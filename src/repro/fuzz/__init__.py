"""Differential fuzzing: seeded generator corpus + shrinking harness.

``repro fuzz`` entry points (see ``docs/fuzzing.md``):

* :func:`resolve_fuzz_config` / :func:`run_fuzz` — the corpus runner,
  fanning cases out over :class:`~repro.parallel.SuiteExecutor`;
* :func:`check_case` — one case, every fastpath mode and fast-engine
  tier vs the scalar oracles across graphs / signatures / journals /
  per-TB records / critpath / telemetry;
* :func:`shrink_case` + the ``repro-fuzz-case`` file helpers — greedy
  minimization and replayable regression artifacts.
"""

from repro.fuzz.runner import (
    DEFAULT_ENGINES,
    DEFAULT_MODES,
    FUZZ_REPORT_KIND,
    FUZZ_REPORT_SCHEMA_VERSION,
    ORACLE_MODE,
    FuzzConfig,
    check_case,
    corpus_digest,
    format_fuzz,
    resolve_fuzz_config,
    run_fuzz,
    validate_fuzz_report,
)
from repro.fuzz.shrink import (
    CASE_KIND,
    CASE_SCHEMA_VERSION,
    load_case,
    make_case,
    replay_case,
    shrink_case,
    validate_case,
    write_case,
)

__all__ = [
    "DEFAULT_ENGINES",
    "DEFAULT_MODES",
    "FUZZ_REPORT_KIND",
    "FUZZ_REPORT_SCHEMA_VERSION",
    "ORACLE_MODE",
    "FuzzConfig",
    "check_case",
    "corpus_digest",
    "format_fuzz",
    "resolve_fuzz_config",
    "run_fuzz",
    "validate_fuzz_report",
    "CASE_KIND",
    "CASE_SCHEMA_VERSION",
    "load_case",
    "make_case",
    "replay_case",
    "shrink_case",
    "validate_case",
    "write_case",
]
