"""Greedy case shrinking + schema-versioned ``repro-fuzz-case`` files.

When the harness finds a divergence, the raw case is rarely minimal —
it may carry kernels, grid blocks and generator knobs irrelevant to the
bug.  :func:`shrink_case` greedily applies three reduction passes while
the *same* divergence kind (``check``/``mode``) still reproduces:

1. drop whole kernels (floor: 2 — one kernel has no dependency pair);
2. halve grid dimensions (fewer thread blocks, smaller graphs);
3. simplify generators to a plain 1-input/shift-0/alu-1 elementwise
   map (and flatten 2-D grids), removing access-pattern complexity.

Each greedy round restarts after the first improvement, so the result
is a local minimum: no single drop/halve/simplify still reproduces.
The minimized spec is written as a ``repro-fuzz-case`` JSON file that
``tests/regression`` replays — red while the bug exists, green once it
is fixed (the planted-bug canary test machine-checks both directions).
"""

import json
import os

from repro.fuzz.runner import check_case
from repro.workloads.ptxgen import FuzzKernel, FuzzSpec

CASE_KIND = "repro-fuzz-case"
CASE_SCHEMA_VERSION = 1

#: greedy-pass budget: each candidate costs one full pipeline run
MAX_SHRINK_ATTEMPTS = 96


def _matching(result, target):
    """Divergence records of the target kind (check + mode) in a case."""
    return [
        record for record in result["divergences"]
        if record["check"] == target["check"]
        and record["mode"] == target["mode"]
    ]


def _replace_kernel(spec, index, kernel):
    kernels = list(spec.kernels)
    kernels[index] = kernel
    return FuzzSpec(
        seed=spec.seed, kernels=tuple(kernels),
        num_buffers=spec.num_buffers, elems=spec.elems,
    )


def _drop_kernel(spec, index):
    kernels = tuple(
        k for i, k in enumerate(spec.kernels) if i != index
    )
    return FuzzSpec(
        seed=spec.seed, kernels=kernels,
        num_buffers=spec.num_buffers, elems=spec.elems,
    )


def _halved_grids(kernel):
    """Candidate kernels with one grid axis halved, largest first."""
    candidates = []
    for axis in range(3):
        if kernel.grid[axis] > 1:
            grid = list(kernel.grid)
            grid[axis] = grid[axis] // 2
            candidates.append(FuzzKernel(
                gen=kernel.gen, grid=tuple(grid), block=kernel.block,
                inputs=kernel.inputs, output=kernel.output,
                params=kernel.params,
            ))
    return candidates


def _simplified(kernel):
    """The plainest kernel with the same primary wiring, or ``None``."""
    plain = FuzzKernel(
        gen="elementwise",
        grid=(kernel.num_tbs, 1, 1),
        block=kernel.block,
        inputs=kernel.inputs[:1],
        output=kernel.output,
        params=(("alu", 1), ("shift0", 0)),
    )
    return None if plain == kernel else plain


def shrink_case(spec, target, modes=(), engines=(), model="consumer3",
                max_attempts=MAX_SHRINK_ATTEMPTS, log=None):
    """Greedily minimize ``spec`` while ``target`` still reproduces.

    Returns ``(minimized_spec, divergences)`` where ``divergences`` are
    the target-kind records of the minimized case (re-checked, so they
    describe the *minimal* reproduction, not the original).
    """
    say = log or (lambda *_args, **_kwargs: None)
    # graph/signature/journal divergences only need the offending
    # fastpath mode, engine divergences only the offending engine tier;
    # critpath/telemetry divergences come from the oracle self-checks,
    # which run even with no candidate modes at all
    is_engine = target["check"] == "engine"
    mode_subset = (
        (target["mode"],) if not is_engine and target["mode"] in modes
        else ()
    )
    engine_subset = (
        (target["mode"],) if is_engine and target["mode"] in engines
        else ()
    )
    attempts = [0]

    def reproduction(candidate):
        attempts[0] += 1
        return _matching(
            check_case(
                candidate, modes=mode_subset, model=model,
                engines=engine_subset,
            ),
            target,
        )

    if not reproduction(spec):
        # not reproducible in isolation (e.g. flaky environment): hand
        # the original back untouched rather than minimizing noise
        return spec, []

    current = spec
    improved = True
    while improved and attempts[0] < max_attempts:
        improved = False
        if len(current.kernels) > 2:
            for index in range(len(current.kernels)):
                candidate = _drop_kernel(current, index)
                if reproduction(candidate):
                    say("shrink: dropped kernel {} ({} left)".format(
                        index, len(candidate.kernels)
                    ))
                    current = candidate
                    improved = True
                    break
            if improved:
                continue
        for index, kernel in enumerate(current.kernels):
            for halved in _halved_grids(kernel):
                candidate = _replace_kernel(current, index, halved)
                if reproduction(candidate):
                    say("shrink: halved kernel {} grid to {}".format(
                        index, halved.grid
                    ))
                    current = candidate
                    improved = True
                    break
            if improved:
                break
        if improved:
            continue
        for index, kernel in enumerate(current.kernels):
            plain = _simplified(kernel)
            if plain is None:
                continue
            candidate = _replace_kernel(current, index, plain)
            if reproduction(candidate):
                say("shrink: simplified kernel {} ({} -> elementwise)".format(
                    index, kernel.gen
                ))
                current = candidate
                improved = True
                break
    return current, reproduction(current)


# ----------------------------------------------------------------------
# repro-fuzz-case files
# ----------------------------------------------------------------------
def make_case(spec, divergences, modes, model, source_seed, engines=()):
    """Assemble the schema-versioned minimized-repro payload."""
    return {
        "kind": CASE_KIND,
        "schema_version": CASE_SCHEMA_VERSION,
        "source_seed": int(source_seed),
        "modes": list(modes),
        "engines": list(engines),
        "model": model,
        "spec": spec.to_dict(),
        "divergences": list(divergences),
    }


def validate_case(case):
    """Structural validation; returns problem strings."""
    errors = []
    if not isinstance(case, dict):
        return ["case: expected a JSON object"]
    if case.get("kind") != CASE_KIND:
        errors.append("kind: expected {!r}".format(CASE_KIND))
    if case.get("schema_version") != CASE_SCHEMA_VERSION:
        errors.append("schema_version: expected {}".format(
            CASE_SCHEMA_VERSION
        ))
    if not isinstance(case.get("source_seed"), int):
        errors.append("source_seed: missing")
    if not isinstance(case.get("modes"), list):
        errors.append("modes: missing or not a list")
    # "engines" is optional: case files predating the engine sweep
    # (schema additions are backward compatible) simply omit it
    if "engines" in case and not isinstance(case["engines"], list):
        errors.append("engines: not a list")
    if not isinstance(case.get("model"), str):
        errors.append("model: missing")
    if not isinstance(case.get("divergences"), list):
        errors.append("divergences: missing or not a list")
    spec = case.get("spec")
    if not isinstance(spec, dict):
        errors.append("spec: missing or not an object")
    else:
        try:
            parsed = FuzzSpec.from_dict(spec)
        except (KeyError, TypeError, ValueError) as exc:
            errors.append("spec: not a FuzzSpec ({})".format(exc))
        else:
            if not parsed.kernels:
                errors.append("spec.kernels: empty")
    return errors


def write_case(case, directory="."):
    """Write a case file; the name embeds the originating corpus seed."""
    errors = validate_case(case)
    if errors:
        raise ValueError("invalid fuzz case: {}".format(errors[:3]))
    if directory and not os.path.isdir(directory):
        os.makedirs(directory)
    path = os.path.join(
        directory, "fuzz-case-{:08d}.json".format(case["source_seed"])
    )
    with open(path, "w") as handle:
        json.dump(case, handle, sort_keys=True, indent=2)
        handle.write("\n")
    return path


def load_case(path):
    """Load + validate a ``repro-fuzz-case`` file."""
    with open(path) as handle:
        case = json.load(handle)
    errors = validate_case(case)
    if errors:
        raise ValueError("{}: invalid fuzz case: {}".format(
            path, errors[:3]
        ))
    return case


def replay_case(case):
    """Re-run a minimized case; returns its current divergence records.

    Empty means the bug the case was minimized for no longer exists
    (the regression loader asserts exactly that).
    """
    spec = FuzzSpec.from_dict(case["spec"])
    result = check_case(
        spec, modes=tuple(case["modes"]), model=case["model"],
        engines=tuple(case.get("engines", ())),
    )
    return result["divergences"]
