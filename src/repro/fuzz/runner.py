"""Differential fuzzing harness: seeded cases, every tier vs the oracle.

One fuzz *case* is a :class:`~repro.workloads.ptxgen.FuzzSpec`.  Per
case the harness runs the full pipeline (PTX parse → launch-time
analysis → hardware encoding → discrete-event engine) once under the
scalar ``reference`` oracle and once under every candidate
``REPRO_FASTPATH`` mode, then cross-checks four surfaces:

* **graph** — every kernel pair's effective graph, encoded size and
  detected pattern must match the oracle's exactly (the fastpath tiers'
  core contract);
* **signature** — ``RunStats.simulated_signature()`` must be
  bit-identical per mode (plans equal ⇒ simulations equal);
* **journal** — the engine flight recorder's content digest must match;
  on mismatch :mod:`repro.obs.jdiff` localizes the first diverging
  event and its blame edge into the divergence record;
* **oracle self-checks** — the critpath report must validate
  (attribution sums to the makespan) and the telemetry report's
  consistency errors must stay within tolerance, both observation-only
  (neither pass may perturb the signature).

Alongside the ``REPRO_FASTPATH`` sweep, every candidate
``REPRO_ENGINE`` tier (:mod:`repro.models.fastengine`) is swept on the
oracle plan — **engine** checks compare each tier's simulated
signature *and* full per-thread-block records against the scalar
event-queue engine, on the case's model and (when different) the
always-eligible ``baseline`` model, observer-free so the fast tiers
actually engage.

Everything a case produces is deterministic — no wall clock, no
hash-order dependence — so a per-case content digest and the corpus
digest over all cases are reproducible across runs, worker counts and
``PYTHONHASHSEED`` values (CI compares them).
"""

import hashlib
import json
from dataclasses import dataclass
from typing import Tuple

from repro.workloads.ptxgen import FuzzSpec, build_fuzz_app

FUZZ_REPORT_KIND = "repro-fuzz-report"
FUZZ_REPORT_SCHEMA_VERSION = 1

#: candidate tiers checked against the always-implicit reference oracle
DEFAULT_MODES = ("closed_form", "vectorized", "auto")
#: candidate engine tiers checked against the scalar event-queue oracle
DEFAULT_ENGINES = ("closed_form", "vectorized", "auto")
ORACLE_MODE = "reference"
DEFAULT_MODEL = "consumer3"


@dataclass(frozen=True)
class FuzzConfig:
    """Resolved ``repro fuzz`` parameters (see :func:`resolve_fuzz_config`)."""

    count: int = 50
    seed: int = 0
    modes: Tuple[str, ...] = DEFAULT_MODES
    engines: Tuple[str, ...] = DEFAULT_ENGINES
    model: str = DEFAULT_MODEL
    jobs: int = 1
    out_dir: str = "."
    shrink: bool = True


def resolve_fuzz_config(count=None, seed=None, modes=None, engines=None,
                        model=None, jobs=None, out_dir=None, shrink=True):
    """Fold CLI-ish arguments into a :class:`FuzzConfig`.

    Raises ``ValueError`` on bad counts/seeds/modes/engines and
    :class:`~repro.experiments.common.UnknownModelError` on bad model
    names, so the CLI fails with exit code 2 before any work is done.
    ``reference`` in ``modes``/``engines`` is redundant (it is the
    oracle every tier is checked against) and is dropped; unlike
    ``modes``, ``engines`` may resolve to nothing (``--engines none``)
    to skip the engine sweep entirely.
    """
    from repro.analysis.fastpath import resolve_fastpath_mode
    from repro.experiments.common import _model_plan_params, canonical_model_name
    from repro.models.fastengine import resolve_engine_mode

    count = 50 if count is None else int(count)
    if count < 1:
        raise ValueError("--count must be >= 1 (got {})".format(count))
    seed = 0 if seed is None else int(seed)
    if seed < 0:
        raise ValueError("--seed must be >= 0 (got {})".format(seed))
    jobs = 1 if jobs is None else max(1, int(jobs))
    resolved = []
    for mode in (modes if modes is not None else DEFAULT_MODES):
        mode = resolve_fastpath_mode(mode)  # ValueError on unknown names
        if mode != ORACLE_MODE and mode not in resolved:
            resolved.append(mode)
    if not resolved:
        raise ValueError(
            "--modes needs at least one non-reference fastpath mode"
        )
    resolved_engines = []
    engine_args = engines if engines is not None else DEFAULT_ENGINES
    if list(engine_args) != ["none"]:
        for tier in engine_args:
            tier = resolve_engine_mode(tier)  # ValueError on unknown names
            if tier != ORACLE_MODE and tier not in resolved_engines:
                resolved_engines.append(tier)
    model = canonical_model_name(model or DEFAULT_MODEL)
    _model_plan_params(model)  # raises UnknownModelError
    return FuzzConfig(
        count=count, seed=seed, modes=tuple(resolved),
        engines=tuple(resolved_engines), model=model,
        jobs=jobs, out_dir=out_dir or ".", shrink=bool(shrink),
    )


def _divergence(check, mode, **fields):
    record = {"check": check, "mode": mode}
    record.update(fields)
    return record


def _graph_fingerprint(plan):
    """JSON-safe per-pair graph summary (digest + divergence detail)."""
    rows = []
    for kp in plan.kernels:
        enc = kp.encoded
        if enc is None:
            rows.append(None)
            continue
        rows.append({
            "kernel": kp.name,
            "pattern": enc.original_pattern.pattern.value,
            "effective_kind": enc.effective.kind.value,
            "edges": enc.original.num_edges,
            "collapsed": bool(enc.collapsed),
            "encoded_bytes": enc.encoded_bytes,
            "plain_bytes": enc.plain_bytes,
        })
    return rows


def _canonical_digest(payload):
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(blob.encode("utf-8")).hexdigest()


def check_case(spec, modes=DEFAULT_MODES, model=DEFAULT_MODEL,
               engines=DEFAULT_ENGINES):
    """Run one fuzz case under every mode; return the case record.

    The record carries the case's deterministic content ``digest``
    (spec + oracle graphs + signature + journal digest) and a possibly
    empty ``divergences`` list.  ``modes`` may be empty to run only the
    oracle self-checks (the shrinker uses that for critpath/telemetry
    divergences); ``engines`` may be empty to skip the engine-tier
    sweep.  The digest deliberately covers only oracle surfaces, so it
    is independent of which candidate modes/engines were swept.
    """
    # Imported lazily: the engine/obs modules must not load at
    # repro.fuzz import time (journal/critpath stay out of
    # repro.obs.__init__ for the same cycle reason).
    from repro.core.runtime import BlockMaestroRuntime
    from repro.experiments.common import (
        _make_model,
        _model_plan_params,
        canonical_model_name,
    )
    from repro.obs import jdiff as jd
    from repro.obs import journal as jr

    model_name = canonical_model_name(model)
    reorder, window = _model_plan_params(model_name)
    app = build_fuzz_app(spec)
    divergences = []

    def run_mode(mode):
        runtime = BlockMaestroRuntime(fastpath=mode)
        plan = runtime.plan(app, reorder=reorder, window=window)
        engine = _make_model(model_name, runtime.config)
        recorder = jr.JournalRecorder()
        stats = engine.run(plan, journal=recorder)
        return plan, stats, recorder, engine

    ref_plan, ref_stats, ref_recorder, ref_engine = run_mode(ORACLE_MODE)
    ref_graphs = _graph_fingerprint(ref_plan)
    ref_signature = ref_stats.simulated_signature()
    ref_digest = ref_recorder.digest()

    for mode in modes:
        plan, stats, recorder, _engine = run_mode(mode)
        for ref_kp, kp in zip(ref_plan.kernels, plan.kernels):
            ref_enc, enc = ref_kp.encoded, kp.encoded
            if (ref_enc is None) != (enc is None):
                divergences.append(_divergence(
                    "graph", mode, kernel=kp.name,
                    detail="pair-graph presence differs from reference",
                ))
                continue
            if ref_enc is None:
                continue
            if (enc.effective != ref_enc.effective
                    or enc.encoded_bytes != ref_enc.encoded_bytes
                    or enc.original_pattern.pattern
                    is not ref_enc.original_pattern.pattern):
                divergences.append(_divergence(
                    "graph", mode, kernel=kp.name,
                    detail=(
                        "graph differs from reference: "
                        "{} edges/{} B/{} vs {} edges/{} B/{}"
                    ).format(
                        enc.original.num_edges, enc.encoded_bytes,
                        enc.original_pattern.pattern.value,
                        ref_enc.original.num_edges, ref_enc.encoded_bytes,
                        ref_enc.original_pattern.pattern.value,
                    ),
                ))
        signature = stats.simulated_signature()
        if signature != ref_signature:
            changed = sorted(
                key for key in set(signature) | set(ref_signature)
                if signature.get(key) != ref_signature.get(key)
            )
            divergences.append(_divergence(
                "signature", mode,
                detail="fields differ: {}".format(", ".join(changed)),
            ))
        digest = recorder.digest()
        if digest != ref_digest:
            diff = jd.diff_journals(
                ref_recorder.header(), ref_recorder.events,
                recorder.header(), recorder.events,
                a_label=ORACLE_MODE, b_label=mode,
            )
            first = diff.get("first_divergence") or {}
            blame = first.get("blame") or {}
            divergences.append(_divergence(
                "journal", mode,
                index=first.get("index"),
                blame=blame.get("summary"),
                detail="journal digests differ ({} vs {})".format(
                    digest, ref_digest
                ),
            ))

    divergences.extend(
        _engine_sweep(ref_plan, model_name, ref_engine.gpu_config, engines)
    )
    divergences.extend(
        _oracle_self_checks(ref_plan, ref_signature, model_name, ref_engine)
    )

    return {
        "seed": spec.seed,
        "num_kernels": len(spec.kernels),
        "generators": [k.gen for k in spec.kernels],
        "makespan_ns": ref_signature["makespan_ns"],
        "digest": _canonical_digest({
            "spec": spec.to_dict(),
            "graphs": ref_graphs,
            "signature": ref_signature,
            "journal": ref_digest,
        }),
        "divergences": divergences,
    }


def _tb_tuple(stats):
    """Ordered per-TB lifecycle tuple — the strongest equality surface."""
    return tuple(
        (r.kernel_index, r.tb_id, r.ready_ns, r.start_ns, r.finish_ns, r.sm)
        for r in stats.tb_records
    )


def _engine_sweep(ref_plan, model_name, gpu_config, engines):
    """Check every engine tier against the scalar oracle on one plan.

    Observer-free on purpose: journal/provenance/telemetry hooks make
    the fast engine fall back to the reference path, which would turn
    the sweep into reference-vs-reference.  The case's model is swept
    plus — when it differs — ``baseline``, whose coarse dependency
    options keep every plan fast-engine eligible, so the tiers engage
    even when the case model's fine-grain plan declines.
    """
    from repro.experiments.common import _make_model

    divergences = []
    if not engines:
        return divergences
    sweep_models = [model_name]
    if "baseline" not in sweep_models:
        sweep_models.append("baseline")
    for sweep_model in sweep_models:
        engine_model = _make_model(sweep_model, gpu_config)
        oracle = engine_model.run(ref_plan, engine=ORACLE_MODE)
        oracle_signature = oracle.simulated_signature()
        oracle_tbs = _tb_tuple(oracle)
        for tier in engines:
            stats = engine_model.run(ref_plan, engine=tier)
            signature = stats.simulated_signature()
            if signature != oracle_signature:
                changed = sorted(
                    key for key in set(signature) | set(oracle_signature)
                    if signature.get(key) != oracle_signature.get(key)
                )
                divergences.append(_divergence(
                    "engine", tier, model=sweep_model,
                    detail="signature fields differ: {}".format(
                        ", ".join(changed)
                    ),
                ))
                continue
            if _tb_tuple(stats) != oracle_tbs:
                divergences.append(_divergence(
                    "engine", tier, model=sweep_model,
                    detail="per-TB records differ from the scalar oracle",
                ))
    return divergences


def _oracle_self_checks(ref_plan, ref_signature, model_name, ref_engine):
    """Critpath sum-to-makespan + telemetry consistency on the oracle run."""
    from repro.experiments.common import _make_model
    from repro.obs import critpath as cp
    from repro.obs import telemetry as tm

    divergences = []
    prov = cp.ProvenanceRecorder()
    engine = _make_model(model_name, ref_engine.gpu_config)
    prov_stats = engine.run(ref_plan, provenance=prov)
    report = cp.build_report(
        prov_stats, ref_plan, prov, engine.gpu_config,
        options=engine.options(),
    )
    errors = cp.validate_critpath_report(report)
    if errors:
        divergences.append(_divergence(
            "critpath", ORACLE_MODE, detail="; ".join(errors[:3]),
        ))
    if prov_stats.simulated_signature() != ref_signature:
        divergences.append(_divergence(
            "critpath", ORACLE_MODE,
            detail="provenance pass perturbed the simulated signature",
        ))

    sampler = tm.TelemetrySampler()
    engine = _make_model(model_name, ref_engine.gpu_config)
    tel_stats = engine.run(ref_plan, telemetry=sampler)
    tel_report = tm.build_report(tel_stats, sampler)
    tel_errors = tm.validate_telemetry_report(tel_report)
    if tel_errors:
        divergences.append(_divergence(
            "telemetry", ORACLE_MODE, detail="; ".join(tel_errors[:3]),
        ))
    if tel_stats.simulated_signature() != ref_signature:
        divergences.append(_divergence(
            "telemetry", ORACLE_MODE,
            detail="telemetry pass perturbed the simulated signature",
        ))
    return divergences


def _case_worker(item):
    """SuiteExecutor worker: module-level so fork/pickle dispatch works."""
    seed, modes, engines, model = item
    return check_case(
        FuzzSpec.from_seed(seed), modes=modes, model=model, engines=engines
    )


def corpus_digest(cases):
    """Content digest over the per-case digests, in seed order."""
    hasher = hashlib.sha256()
    for case in cases:
        hasher.update("{} {}\n".format(
            case["seed"], case["digest"]
        ).encode("utf-8"))
    return "sha256:" + hasher.hexdigest()


def run_fuzz(config, log=None):
    """Run the corpus, shrink divergent cases, return the fuzz report.

    The report is fully deterministic for a given (code, config minus
    ``jobs``/``out_dir``): ``--jobs N`` fans cases out over worker
    processes but the merged result is bit-identical to serial.
    """
    from repro.parallel import SuiteExecutor

    say = log or (lambda *_args, **_kwargs: None)
    items = [
        (config.seed + i, config.modes, config.engines, config.model)
        for i in range(config.count)
    ]
    say("fuzz: {} cases (seeds {}..{}), modes {}, engines {}, model {}, "
        "{} job(s)".format(
            config.count, config.seed, config.seed + config.count - 1,
            "/".join(config.modes), "/".join(config.engines) or "none",
            config.model, config.jobs,
        ))
    executor = SuiteExecutor(jobs=config.jobs, log=log)
    cases = executor.map(_case_worker, items)

    divergences = []
    repro_files = []
    for case in cases:
        for record in case["divergences"]:
            divergences.append(dict(record, seed=case["seed"]))
    divergent = [case for case in cases if case["divergences"]]
    if divergent and config.shrink:
        # shrinking is serial and in-process: each step re-runs the
        # pipeline and the steps are sequentially dependent
        from repro.fuzz.shrink import make_case, shrink_case, write_case

        for case in divergent:
            spec = FuzzSpec.from_seed(case["seed"])
            target = case["divergences"][0]
            say("fuzz: seed {} diverged ({}:{}) — shrinking...".format(
                case["seed"], target["check"], target["mode"]
            ))
            minimized, final_divs = shrink_case(
                spec, target, modes=config.modes, engines=config.engines,
                model=config.model,
            )
            repro = make_case(
                minimized, final_divs or case["divergences"],
                modes=config.modes, model=config.model,
                source_seed=case["seed"], engines=config.engines,
            )
            path = write_case(repro, directory=config.out_dir)
            repro_files.append(path)
            say("fuzz: wrote minimized repro {} ({} kernels)".format(
                path, len(minimized.kernels)
            ))

    return {
        "kind": FUZZ_REPORT_KIND,
        "schema_version": FUZZ_REPORT_SCHEMA_VERSION,
        "seed": config.seed,
        "count": config.count,
        "modes": list(config.modes),
        "engines": list(config.engines),
        "model": config.model,
        "cases": [
            {
                "seed": case["seed"],
                "digest": case["digest"],
                "num_kernels": case["num_kernels"],
                "generators": case["generators"],
                "makespan_ns": case["makespan_ns"],
                "num_divergences": len(case["divergences"]),
            }
            for case in cases
        ],
        "num_divergent": len(divergent),
        "divergences": divergences,
        "repro_files": repro_files,
        "corpus_digest": corpus_digest(cases),
    }


def validate_fuzz_report(report):
    """Structural + invariant validation; returns problem strings."""
    errors = []
    if not isinstance(report, dict):
        return ["report: expected a JSON object"]
    if report.get("kind") != FUZZ_REPORT_KIND:
        errors.append("kind: expected {!r}".format(FUZZ_REPORT_KIND))
    if report.get("schema_version") != FUZZ_REPORT_SCHEMA_VERSION:
        errors.append("schema_version: expected {}".format(
            FUZZ_REPORT_SCHEMA_VERSION
        ))
    cases = report.get("cases")
    if not isinstance(cases, list):
        return errors + ["cases: missing or not a list"]
    if report.get("count") != len(cases):
        errors.append("count: {} != {} cases".format(
            report.get("count"), len(cases)
        ))
    divergent = 0
    for i, case in enumerate(cases):
        if not isinstance(case, dict):
            errors.append("cases[{}]: not an object".format(i))
            continue
        digest = case.get("digest")
        if not (isinstance(digest, str) and digest.startswith("sha256:")):
            errors.append("cases[{}].digest: missing sha256".format(i))
        if not isinstance(case.get("seed"), int):
            errors.append("cases[{}].seed: missing".format(i))
        if not isinstance(case.get("num_kernels"), int):
            errors.append("cases[{}].num_kernels: missing".format(i))
        if case.get("num_divergences"):
            divergent += 1
    if report.get("num_divergent") != divergent:
        errors.append("num_divergent: {} != {} divergent cases".format(
            report.get("num_divergent"), divergent
        ))
    expected = corpus_digest(cases) if not errors else None
    if expected is not None and report.get("corpus_digest") != expected:
        errors.append("corpus_digest: does not match the cases")
    for key in ("divergences", "repro_files", "modes", "engines"):
        if not isinstance(report.get(key), list):
            errors.append("{}: missing or not a list".format(key))
    return errors


def format_fuzz(report, limit=10):
    """Human-readable fuzz summary."""
    lines = []
    lines.append(
        "fuzz corpus : {} cases, seeds {}..{}".format(
            report["count"], report["seed"],
            report["seed"] + report["count"] - 1,
        )
    )
    lines.append("modes       : {} (vs {} oracle)".format(
        ", ".join(report["modes"]), ORACLE_MODE
    ))
    lines.append("engines     : {} (vs {} oracle)".format(
        ", ".join(report.get("engines", [])) or "(sweep disabled)",
        ORACLE_MODE,
    ))
    lines.append("model       : {}".format(report["model"]))
    lines.append("corpus      : {}".format(report["corpus_digest"]))
    if not report["num_divergent"]:
        lines.append("divergences : none — all tiers agree with the oracle")
        return "\n".join(lines)
    lines.append("divergences : {} case(s), {} record(s)".format(
        report["num_divergent"], len(report["divergences"])
    ))
    for record in report["divergences"][:limit]:
        lines.append("  seed {:>6}  {}:{}  {}".format(
            record.get("seed"), record["check"], record["mode"],
            record.get("detail", ""),
        ))
    if len(report["divergences"]) > limit:
        lines.append("  ... {} more".format(
            len(report["divergences"]) - limit
        ))
    for path in report["repro_files"]:
        lines.append("repro file  : {}".format(path))
    return "\n".join(lines)
