"""Two-tier fast path for the shared discrete-event execution engine.

:class:`repro.models.base.ExecutionEngine` — the scalar reference — runs
every API call, kernel launch, and thread-block lifecycle through one
event heap, paying a per-event ``_pump`` scan over the command queue and
a per-placement least-loaded scan over the SMs.  That is exact but it is
interpreter work proportional to *events x queue length*, and since the
analysis fast path (:mod:`repro.analysis.fastpath`) removed graph
construction from the critical path, the engine dominates the wall-clock
of ``run``/``bench``/``experiments``/``fuzz``.

This module computes the *same* :class:`~repro.sim.stats.RunStats` two
cheaper ways for plans it can prove *device-serial* — at most one
kernel's thread blocks resident at any instant — and declines (caller
falls back to the scalar oracle) whenever it cannot:

**Tier 1 — closed form** (``closed_form``).  When every kernel's TB
durations are uniform (no per-TB duration callbacks, zero duration
jitter), a kernel's execution is exact wave arithmetic: ``ceil(N / W)``
waves of width ``W`` slots, each lasting the common duration.  Host
issue, command start, launch window, and in-order completion reduce to
a forward max/plus scan over the program order — no event loop at all.

**Tier 2 — vectorized** (``vectorized``).  With per-TB durations
(duration jitter is on by default), the device under a device-serial
plan is exactly a FIFO queue over ``W`` indistinguishable slots: the
scalar per-event heap loop collapses to one numpy pass for the duration
vectors plus an O(N log W) slot sweep whose pops replay the reference
event order (ties broken by dispatch sequence, like the event queue's
``(time, seq)`` ordering).

Both tiers replicate the reference bit-for-bit, including the float
accumulation order of the device concurrency integral (one ``dt``
advance per distinct event time), the repeated-addition wave
boundaries, SM placement indices (round-robin layering; a freed slot's
SM is re-won by the next dispatch), and the ``min(ready, start)`` clamp
on per-TB ready times.  Differential tests
(``tests/integration/test_differential_engine.py``) and the fuzz
harness hold every tier to byte-identical simulated signatures against
the oracle.

Device-serial certificate (the engine analogue of a proven Table-I
pattern): single stream, no cross-stream dependencies, no
``ignore_dependencies`` replay, no ``ready_capacity`` cap (Wireframe's
pending buffers refill at event granularity, which only the event loop
models), every kernel has at least one TB and a positive per-device
slot count, and — under fine-grain scheduling — every chained kernel
carries a fully-connected graph (1-to-1, independent, and explicit
graphs pipeline parent and child TBs, which only the event loop
models).  Coarse models gate a kernel's TBs on the predecessor's
drain, so they are device-serial for *any* graph shape.

Tier selection is per-run via ``REPRO_ENGINE`` (see
:func:`resolve_engine_mode`) and reported through ``engine.tier.*``
metrics counters and the BENCH report's ``engine`` section.  Whenever a
journal/provenance/telemetry observer is attached the dispatch seam in
:meth:`repro.models.base.ExecutionModel.run` keeps the scalar engine,
since observers hook per-event injection points the batched tiers skip.
"""

import heapq
import os

try:  # numpy accelerates tier-2 duration vectors; optional
    import numpy as np
except ImportError:  # pragma: no cover - the CI image always has numpy
    np = None

from repro.host.api import (
    KernelLaunchCall,
    MallocCall,
    MemcpyD2H,
    MemcpyH2D,
)
from repro.models.base import (
    _BYPASSED_BARRIERS,
    emit_engine_trace,
    record_engine_metrics,
)
from repro.obs import PID_DEVICE
from repro.sim.device import empty_device_slots
from repro.sim.stats import KernelRecord, RunStats, TBRecord

#: Valid engine modes (``resolve_engine_mode`` normalizes aliases).
ENGINE_MODES = ("auto", "closed_form", "vectorized", "reference")

#: Environment override consulted when no explicit mode is configured —
#: this is how bench worker processes flip the fast engine off to
#: capture reference timings.
ENGINE_ENV = "REPRO_ENGINE"


def resolve_engine_mode(value=None):
    """Normalize an engine mode, consulting ``REPRO_ENGINE``.

    ``None`` reads the environment (default ``auto``); ``off``/
    ``scalar``/``oracle`` alias ``reference``; ``on`` aliases ``auto``.
    """
    if value is None:
        value = os.environ.get(ENGINE_ENV) or "auto"
    mode = str(value).strip().lower().replace("-", "_")
    if mode in ("off", "scalar", "oracle"):
        mode = "reference"
    elif mode == "on":
        mode = "auto"
    if mode not in ENGINE_MODES:
        raise ValueError(
            "unknown engine mode %r (expected one of %s)"
            % (value, ", ".join(ENGINE_MODES))
        )
    return mode


# ----------------------------------------------------------------------
# eligibility
# ----------------------------------------------------------------------
def certify_device_serial(plan, config, options):
    """Prove the plan executes device-serially under ``options``.

    Returns ``None`` when the fast tiers apply, else a short reason slug
    (reported as an ``engine.fallback.<reason>`` counter).  Any decline
    means the scalar oracle runs instead, so pathological inputs (zero-TB
    kernels, blocks that never fit) keep their reference behavior —
    including :class:`~repro.models.base.EngineDrainError`.
    """
    if options.ignore_dependencies:
        return "ignore_dependencies"
    if options.ready_capacity is not None:
        # Wireframe's pending-buffer cap limits ready-but-undispatched
        # TBs, not resident ones: the buffer refills within a single
        # event time, so occupancy is not simply min(width, capacity)
        return "ready_capacity"
    streams = {call.stream_id for call in plan.order}
    if len(streams) > 1:
        return "multi_stream"
    for kp in plan.kernels:
        if kp.cross_stream_deps:
            return "cross_stream"
        if kp.num_tbs <= 0:
            return "zero_tb_kernel"
        if empty_device_slots(config, kp.threads_per_tb) <= 0:
            return "no_slot_fits"
        if options.fine_grain and kp.chain_prev is not None:
            graph = kp.graph
            if graph is None or not graph.is_fully_connected:
                # 1-to-1 / independent / explicit graphs pipeline parent
                # and child TBs under fine-grain scheduling
                return "fine_grain_graph"
    return None


def _uniform_durations(plan):
    """Per-kernel common TB duration, or ``None`` when any kernel's TBs
    differ (duration callbacks or nonzero jitter on a nonzero base)."""
    out = []
    for kp in plan.kernels:
        if kp._duration_fn is not None or kp._duration_scale_fn is not None:
            return None
        base = kp._base_duration_ns
        if kp._jitter and base != 0.0:
            return None
        out.append(base)  # a zero base stays zero under jitter
    return out


def _duration_vector(kp):
    """All TB durations of one kernel, bit-identical to
    ``KernelPlan.tb_duration_ns`` evaluated per block."""
    n = kp.num_tbs
    if kp._duration_fn is not None or kp._duration_scale_fn is not None:
        return [kp.tb_duration_ns(tb) for tb in range(n)]
    base = kp._base_duration_ns
    if not kp._jitter:
        return [base] * n
    jitter = kp._jitter
    if np is None:
        return [kp.tb_duration_ns(tb) for tb in range(n)]
    # vectorized jitter_factor: same integer hash, same float op order
    tb = np.arange(n, dtype=np.uint64)
    h = (np.uint64(kp.kernel_index) * np.uint64(0x9E3779B1)
         + tb * np.uint64(0x85EBCA77) + np.uint64(0x165667B1)) \
        & np.uint64(0xFFFFFFFF)
    h ^= h >> np.uint64(16)
    h = (h * np.uint64(0x045D9F3B)) & np.uint64(0xFFFFFFFF)
    h ^= h >> np.uint64(16)
    unit = h.astype(np.float64) / float(1 << 32)
    factor = 1.0 + jitter * (2.0 * unit - 1.0)
    return (base * factor).tolist()


# ----------------------------------------------------------------------
# the fast run
# ----------------------------------------------------------------------
class _TierDecline(Exception):
    """Internal: a tier discovered mid-flight it cannot replicate the
    reference (e.g. a negative or non-finite TB duration)."""

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


def run_fast(plan, config, options, mode, tracer, metrics):
    """Run ``plan`` through the cheapest applicable fast tier.

    Returns the :class:`RunStats` (bit-identical to the scalar oracle)
    or ``None`` when every requested tier declines — the caller then
    falls back to the reference engine.  ``mode`` is a normalized
    non-``reference`` engine mode.
    """
    reason = certify_device_serial(plan, config, options)
    if reason is not None:
        metrics.inc("engine.fallback.%s" % reason)
        return None
    uniform = _uniform_durations(plan)
    if mode == "closed_form" and uniform is None:
        metrics.inc("engine.fallback.nonuniform_durations")
        return None
    tier = "closed_form" if uniform is not None and mode != "vectorized" \
        else "vectorized"
    try:
        stats, extras = _simulate(
            plan, config, options,
            uniform if tier == "closed_form" else None,
            tracer,
        )
    except _TierDecline as decline:
        metrics.inc("engine.fallback.%s" % decline.reason)
        return None
    metrics.inc("engine.tier.%s" % tier)
    _finalize_device_metrics(metrics, extras)
    emit_engine_trace(
        tracer, plan, extras["call_enqueued_ns"], extras["call_done_ns"],
        stats,
    )
    record_engine_metrics(
        metrics, stats, events_processed=0, peak_pending=0,
        counters=stats.counters,
    )
    return stats


def _finalize_device_metrics(metrics, extras):
    """Mirror ``Device.finalize``'s gauges for the batched run."""
    if not metrics.enabled:
        return
    metrics.set_gauge("device.peak_tb_concurrency", extras["peak"])
    metrics.set_gauge("device.busy_ns", extras["busy_ns"])
    metrics.set_gauge(
        "device.concurrency_integral", extras["concurrency_integral"]
    )
    metrics.inc("device.tb_placements", extras["placements"])


def _build_parents_of(graph):
    inverse = [[] for _ in range(graph.num_children)]
    for p, children in enumerate(graph.children_of):
        for c in children:
            inverse[c].append(p)
    return inverse


def _simulate(plan, config, options, uniform, tracer):
    """Forward max/plus scan over the program order.

    ``uniform`` is the per-kernel common duration list (tier 1) or
    ``None`` (tier 2: per-TB durations, slot-heap sweep).  Returns
    ``(stats, extras)`` where ``extras`` carries the call timestamp
    arrays and device gauge values.
    """
    timing = config.timing
    order = plan.order
    api = options.api_call_ns
    strict = options.strict_order
    window = options.window
    num_sms = config.num_sms
    trace_occupancy = tracer.enabled

    num_calls = len(order)
    call_enqueued_ns = [0.0] * num_calls
    call_done_ns = [0.0] * num_calls

    kernels = plan.kernels
    num_kernels = len(kernels)
    launch_begin = [0.0] * num_kernels
    resident = [0.0] * num_kernels
    input_ready = [0.0] * num_kernels
    enqueued = [0.0] * num_kernels
    first_start = [0.0] * num_kernels
    all_done = [0.0] * num_kernels
    completed = [0.0] * num_kernels
    tb_starts = [None] * num_kernels
    tb_finishes = [None] * num_kernels

    tb_records = []
    host_time = 0.0
    run_max_done = 0.0
    host_blocks = 0
    chain_seen = 0  # kernels processed so far == chain position (1 stream)

    # device accounting (replicates Device._advance's accumulation:
    # one dt per distinct event time, running taken before the events)
    integral = 0.0
    busy = 0.0
    peak = 0
    placements = 0
    occupancy_samples = [] if trace_occupancy else None

    for position, call in enumerate(order):
        enq = host_time + api
        call_enqueued_ns[position] = enq
        host_time = enq
        if isinstance(call, KernelLaunchCall):
            ki = plan.kernel_at_position[position]
            kp = kernels[ki]
            enqueued[ki] = enq
            # launch gating: enqueue, prerequisites, stream launch order,
            # and the pre-launch window (completion of kernel cursor-w)
            gate = enq
            ready_in = 0.0
            if strict:
                if run_max_done > gate:
                    gate = run_max_done
            for q in plan.deps[position]:
                if isinstance(
                    order[q], (KernelLaunchCall,) + _BYPASSED_BARRIERS
                ):
                    continue
                if call_done_ns[q] > ready_in:
                    ready_in = call_done_ns[q]
                if not strict and call_done_ns[q] > gate:
                    gate = call_done_ns[q]
            if chain_seen >= window:
                prior = completed[chain_seen - window]
                if prior > gate:
                    gate = prior
            if chain_seen > 0 and launch_begin[chain_seen - 1] > gate:
                gate = launch_begin[chain_seen - 1]
            launch_begin[ki] = gate
            input_ready[ki] = ready_in
            res = gate + options.launch_overhead_ns
            resident[ki] = res

            # TB-phase gate: device-serial eligibility time
            t0 = res
            prev = kp.chain_prev
            if prev is not None and all_done[prev] > t0:
                t0 = all_done[prev]
            if options.fine_grain:
                gp = kp.chain_grandparent
                if (
                    kp.grandparent_barrier
                    and gp is not None
                    and completed[gp] > t0
                ):
                    t0 = completed[gp]
            first_start[ki] = t0

            n = kp.num_tbs
            width = empty_device_slots(config, kp.threads_per_tb)
            if uniform is not None:
                starts, finishes, sms, drained = _wave_schedule(
                    t0, n, width, uniform[ki], num_sms
                )
            else:
                starts, finishes, sms, drained = _slot_sweep(
                    t0, n, width, _duration_vector(kp), num_sms
                )
            tb_starts[ki] = starts
            tb_finishes[ki] = finishes
            all_done[ki] = drained
            done = drained
            if prev is not None and completed[prev] > done:
                done = completed[prev]
            completed[ki] = done
            call_done_ns[position] = done
            chain_seen += 1

            # device accounting: walk the kernel's concurrency steps.
            # Peak is exact wave math: the device never holds more than
            # min(N, W_eff) of this kernel's blocks (release/place pairs
            # replace one-for-one), and it holds exactly that many in
            # the first wave.
            integral, busy = _accumulate_device(
                t0, starts, finishes, integral, busy, occupancy_samples,
            )
            k_peak = n if n < width else width
            if k_peak > peak:
                peak = k_peak
            placements += n

            # per-TB records (dispatch order == TB id under FIFO ready)
            _append_records(
                tb_records, plan, kernels, ki, kp,
                input_ready[ki], all_done, completed,
                starts, finishes, sms, tb_finishes,
            )
        else:
            if strict:
                start = enq if run_max_done < enq else run_max_done
            else:
                start = enq
                for q in plan.deps[position]:
                    if isinstance(order[q], _BYPASSED_BARRIERS):
                        continue
                    if call_done_ns[q] > start:
                        start = call_done_ns[q]
            if isinstance(call, MallocCall):
                duration = timing.malloc_ns
            elif isinstance(call, (MemcpyH2D, MemcpyD2H)):
                duration = timing.memcpy_ns(call.bytes)
            else:  # synchronizes, events, waits: bookkeeping only
                duration = 0.0
            call_done_ns[position] = start + duration
        if call_done_ns[position] > run_max_done:
            run_max_done = call_done_ns[position]
        if (
            call.blocks_host_blockmaestro
            if options.blockmaestro_host
            else call.blocks_host_baseline
        ):
            host_blocks += 1
            if call_done_ns[position] > host_time:
                host_time = call_done_ns[position]

    makespan = run_max_done
    kernel_records = [
        KernelRecord(
            index=kp.kernel_index,
            name=kp.name,
            num_tbs=kp.num_tbs,
            queued_ns=enqueued[ki] or 0.0,
            launch_begin_ns=launch_begin[ki] or 0.0,
            resident_ns=resident[ki] or 0.0,
            first_tb_start_ns=first_start[ki] or 0.0,
            all_tbs_done_ns=all_done[ki] or 0.0,
            completed_ns=completed[ki] or 0.0,
            stream=kp.stream,
        )
        for ki, kp in enumerate(kernels)
    ]
    stats = RunStats(
        model=options.name,
        application=plan.application,
        makespan_ns=makespan,
        tb_records=tb_records,
        kernel_records=kernel_records,
        concurrency_integral=integral,
        busy_ns=busy,
        kernel_memory_requests=plan.total_kernel_requests(),
        dependency_memory_requests=(
            plan.total_dependency_requests()
            if options.fine_grain and options.count_dependency_traffic
            else 0.0
        ),
        graph_plain_bytes=plan.graph_plain_bytes,
        graph_encoded_bytes=plan.graph_encoded_bytes,
        counters={
            "dispatch_passes": 0.0,  # no per-event passes in fast tiers
            "host_blocks": float(host_blocks),
        },
    )
    stats.validate_invariants()
    if trace_occupancy:
        _emit_occupancy(tracer, occupancy_samples)
    extras = {
        "call_enqueued_ns": call_enqueued_ns,
        "call_done_ns": call_done_ns,
        "concurrency_integral": integral,
        "busy_ns": busy,
        "peak": peak,
        "placements": placements,
    }
    return stats, extras


def _wave_schedule(t0, n, width, duration, num_sms):
    """Tier 1: uniform-duration wave arithmetic.

    Wave boundaries use repeated addition (``t = t + d``), matching the
    event queue's ``schedule(now + duration)`` chain bit-for-bit.
    """
    _check_duration(duration)
    num_waves = -(-n // width)
    wave_times = [t0]
    t = t0
    for _ in range(num_waves):
        t = t + duration
        wave_times.append(t)
    starts = [0.0] * n
    finishes = [0.0] * n
    sms = [0] * n
    for i in range(n):
        wave_start = wave_times[i // width]
        starts[i] = wave_start
        finishes[i] = wave_start + duration
        # wave 0 lays out round-robin; later TBs inherit the SM of the
        # block whose finish freed their slot (see module docstring)
        sms[i] = (i % width) % num_sms
    return starts, finishes, sms, wave_times[num_waves]


def _slot_sweep(t0, n, width, durations, num_sms):
    """Tier 2: FIFO sweep over ``width`` slots with per-TB durations.

    The heap replays the reference event order: entries are
    ``(finish, dispatch_seq, sm)``, the same ``(time, seq)`` tie-break
    as the engine's event queue, and each pop dispatches the next TB
    onto the freed slot's SM — exactly what least-loaded placement does
    on a saturated device.
    """
    for d in durations:
        _check_duration(d)
    m = n if n < width else width
    starts = [t0] * m + [0.0] * (n - m)
    finishes = [0.0] * n
    sms = [0] * n
    heap = []
    for i in range(m):
        sm = i % num_sms
        sms[i] = sm
        finishes[i] = t0 + durations[i]
        heap.append((finishes[i], i, sm))
    heapq.heapify(heap)
    for i in range(m, n):
        t, _seq, sm = heapq.heappop(heap)
        starts[i] = t
        sms[i] = sm
        finishes[i] = t + durations[i]
        heapq.heappush(heap, (finishes[i], i, sm))
    drained = max(entry[0] for entry in heap)
    return starts, finishes, sms, drained


def _check_duration(duration):
    # negative or NaN durations would need the reference's (undefined)
    # past-scheduling behavior; hand those back to the oracle
    if not (duration >= 0.0):
        raise _TierDecline("bad_duration")


def _accumulate_device(t0, starts, finishes, integral, busy, samples):
    """Replicate ``Device._advance`` over one kernel's TB phase.

    Starts and finishes interleave chronologically; at each distinct
    event time the reference advances once with the running count held
    since the previous event, and placements/releases at equal times net
    out within the event.  Idle gaps (``running == 0``) add ``0.0`` to
    the integral and skip the busy sum — a float no-op, so skipping the
    advance entirely is bit-equivalent.
    """
    fin_sorted = sorted(finishes)
    n = len(starts)
    last = t0
    running = 0
    si = 0
    fi = 0
    if samples is not None:
        samples.append((t0, 0))
    while fi < n:
        if si < n and starts[si] <= fin_sorted[fi]:
            now = starts[si]
        else:
            now = fin_sorted[fi]
        dt = now - last
        if dt > 0:
            if running > 0:
                integral += dt * running
                busy += dt
            last = now
        while si < n and starts[si] == now:
            running += 1
            si += 1
        while fi < n and fin_sorted[fi] == now:
            running -= 1
            fi += 1
        if samples is not None:
            samples.append((now, running))
    return integral, busy


def _emit_occupancy(tracer, samples):
    """Coarse ``running_tbs`` counter track for the batched tiers: one
    sample per distinct event time (the reference samples every
    placement and release; the step function is identical)."""
    for now, running in samples:
        tracer.counter(
            "running_tbs",
            {"running": running},
            ts_us=now / 1e3,
            cat="device",
            pid=PID_DEVICE,
        )


def _append_records(
    tb_records, plan, kernels, ki, kp, ready_in,
    all_done, completed, starts, finishes, sms, tb_finishes,
):
    """Build this kernel's :class:`TBRecord` rows (dispatch order)."""
    prev = kp.chain_prev
    graph = kp.graph
    per_tb_parents = None
    base_ready = ready_in
    if graph is not None and prev is not None:
        if graph.is_fully_connected:
            if all_done[prev] > base_ready:
                base_ready = all_done[prev]
        elif not graph.is_independent:
            per_tb_parents = _build_parents_of(graph)
    gp = kp.chain_grandparent
    if kp.grandparent_barrier and gp is not None:
        if completed[gp] > base_ready:
            base_ready = completed[gp]
    parent_fin = tb_finishes[prev] if prev is not None else None
    for tb in range(kp.num_tbs):
        ready = base_ready
        if per_tb_parents is not None:
            for p in per_tb_parents[tb]:
                if parent_fin[p] > ready:
                    ready = parent_fin[p]
        start = starts[tb]
        tb_records.append(
            TBRecord(
                kernel_index=kp.kernel_index,
                tb_id=tb,
                ready_ns=ready if ready < start else start,
                start_ns=start,
                finish_ns=finishes[tb],
                sm=sms[tb],
            )
        )
