"""Execution models.

Every model simulates the same analyzed application
(:class:`~repro.core.runtime.RuntimePlan`) under different scheduling
semantics and returns a :class:`~repro.sim.stats.RunStats`:

* :class:`SerializedBaseline` — default CUDA stream semantics: one
  command at a time, 5 us launch overhead on the critical path
  (paper Fig. 2a).
* :class:`IdealBaseline` — the same with zero launch overhead (the
  "ideal" reference bar of Fig. 9).
* :class:`PrelaunchOnly` — kernel pre-launching with conservative
  kernel-level blocking (Fig. 2b).
* :class:`BlockMaestroModel` — pre-launching plus fine-grain TB-level
  dependency resolution, producer- or consumer-priority (Fig. 2c).
* :class:`CDPModel` — CUDA Dynamic Parallelism: device-side launches at
  3 us, serialized between dependency levels (Fig. 14 baseline).
* :class:`WireframeModel` — mega-kernel dependency-graph execution with
  buffer-constrained run-ahead (Fig. 14 comparison).
"""

from repro.models.base import (
    EngineDrainError,
    EngineOptions,
    ExecutionEngine,
    ExecutionModel,
)
from repro.models.standard import (
    BlockMaestroModel,
    IdealBaseline,
    PrelaunchOnly,
    SerializedBaseline,
)
from repro.models.cdp import CDPModel
from repro.models.wireframe import WireframeModel

__all__ = [
    "EngineDrainError",
    "EngineOptions",
    "ExecutionEngine",
    "ExecutionModel",
    "SerializedBaseline",
    "IdealBaseline",
    "PrelaunchOnly",
    "BlockMaestroModel",
    "CDPModel",
    "WireframeModel",
]
