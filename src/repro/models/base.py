"""Shared discrete-event execution engine.

One engine implements every execution model in the paper; models differ
only in their :class:`EngineOptions`:

==================  ==========  ========  ==========  =========
model               window      fine TB   reorder +   launch
                    (kernels)   deps      non-block   overhead
==================  ==========  ========  ==========  =========
serialized          1           no        no          5 us
ideal               1           no        no          0
prelaunch-only      2+          no        yes         5 us
BlockMaestro        2-4         yes       yes         5 us
CDP (Fig. 14)       1           no        no          3 us
Wireframe (Fig.14)  3           yes       yes         0
==================  ==========  ========  ==========  =========

Semantics implemented here:

* **Host**: issues API calls sequentially; each issue costs
  ``api_call_ns``.  Blocking calls suspend the host until the call
  completes: under baseline semantics that is every memory call and
  synchronize; under BlockMaestro semantics only device-to-host copies
  (the host RAW hazard) block — everything else streams into the queue.
* **Command queue**: commands become *startable* when their
  prerequisites complete.  Strict mode uses full program order (one
  command at a time — the paper's "only one event being processed");
  relaxed mode uses true data dependencies only.
* **Launch engine**: one kernel launch in flight at a time; a launch
  may begin when fewer than ``window`` kernels are un-completed — this
  is kernel pre-launching, and the launch overhead overlaps the
  predecessor's execution.
* **Thread-block scheduler**: dispatches ready TBs to SM slots.
  Coarse mode makes a kernel's TBs ready only when the *previous kernel
  finished all TBs*; fine mode resolves the bipartite graph per TB
  (Dependency List Buffer / Parent Counter Buffer behaviour), with
  producer/consumer priority and the optional grandparent barrier.
* **In-order completion**: a kernel is *completed* (freeing its window
  slot and acting as a barrier for grandparent dependencies) only when
  all its TBs finished and its predecessor completed (Section III-B.1).
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.policy import SchedulingPolicy
from repro.core.runtime import RuntimePlan
from repro.host.api import (
    DeviceSynchronize,
    EventRecord,
    KernelLaunchCall,
    MallocCall,
    MemcpyD2H,
    MemcpyH2D,
    StreamSynchronize,
    StreamWaitEvent,
)

#: barrier-like calls BlockMaestro bypasses: the data dependencies they
#: protect are tracked separately, in hardware
_BYPASSED_BARRIERS = (
    DeviceSynchronize,
    StreamSynchronize,
    EventRecord,
    StreamWaitEvent,
)
from repro.obs import (
    PID_DEVICE,
    PID_HOST,
    PID_RUNTIME,
    PID_SM,
    resolve_metrics,
    resolve_tracer,
)
from repro.obs.journal import edge_fields as _edge_fields
from repro.sim.config import GPUConfig
from repro.sim.device import Device
from repro.sim.events import EventQueue
from repro.sim.stats import KernelRecord, RunStats, TBRecord


@dataclass(frozen=True)
class EngineOptions:
    """Model-defining switches for the shared engine."""

    name: str = "engine"
    #: max concurrently launched-but-not-completed kernels (1 = serialized)
    window: int = 1
    #: resolve TB-level dependencies (else coarse kernel-level blocking)
    fine_grain: bool = False
    policy: SchedulingPolicy = SchedulingPolicy.PRODUCER_PRIORITY
    #: command startability: program order (strict) vs true deps
    strict_order: bool = True
    #: host blocking semantics: baseline vs BlockMaestro
    blockmaestro_host: bool = False
    #: kernel launch overhead charged on the launch engine
    launch_overhead_ns: float = 5_000.0
    #: host cost of issuing one API call
    api_call_ns: float = 1_000.0
    #: cap on ready-but-undispatched TBs per kernel (None = unlimited);
    #: models Wireframe's size-constrained pending update buffers
    ready_capacity: Optional[int] = None
    #: count dependency-resolution memory traffic (fine-grain hardware)
    count_dependency_traffic: bool = True
    #: drop TB-level and kernel-level dependency gating (in-order
    #: completion chains are kept); used by the critpath what-if
    #: analyzer's "dependencies dropped" replay — not a real model
    ignore_dependencies: bool = False


class ExecutionModel:
    """Base class: a named engine configuration."""

    def __init__(self, gpu_config: GPUConfig = None):
        self.gpu_config = gpu_config or GPUConfig()

    @property
    def name(self):
        return self.options().name

    def options(self) -> EngineOptions:
        raise NotImplementedError

    def run(
        self, plan: RuntimePlan, tracer=None, metrics=None, provenance=None,
        journal=None, telemetry=None, engine=None,
    ) -> RunStats:
        """Simulate ``plan``; pass a tracer/metrics registry to observe.

        ``provenance`` may be a
        :class:`repro.obs.critpath.ProvenanceRecorder`; the engine then
        records per-TB start reasons and kernel launch triggers for
        critical-path extraction.  ``journal`` may be a
        :class:`repro.obs.journal.JournalRecorder`; the engine then
        emits every scheduling event into the flight recorder.
        ``telemetry`` may be a
        :class:`repro.obs.telemetry.TelemetrySampler`; the engine then
        feeds it the same event stream for occupancy/overlap analysis.
        Instrumentation is observation only — results are identical
        whether or not a tracer or recorder is attached.

        ``engine`` selects the simulation tier
        (:func:`repro.models.fastengine.resolve_engine_mode`; ``None``
        reads ``REPRO_ENGINE``, default ``auto``).  Fast tiers produce
        bit-identical :class:`RunStats`; any run carrying a
        provenance/journal/telemetry observer silently uses the scalar
        reference engine, since observers hook per-event injection
        points the batched tiers skip.
        """
        # imported lazily: repro.models.fastengine builds on this module
        from repro.models import fastengine

        tracer = resolve_tracer(tracer)
        metrics = resolve_metrics(metrics)
        options = self.options()
        mode = fastengine.resolve_engine_mode(engine)
        with tracer.span(
            "model:{}".format(options.name),
            cat="model",
            pid=PID_RUNTIME,
            args={"application": plan.application},
        ):
            if mode != "reference":
                if (
                    provenance is not None
                    or journal is not None
                    or telemetry is not None
                ):
                    metrics.inc("engine.fallback.observers")
                else:
                    stats = fastengine.run_fast(
                        plan, self.gpu_config, options, mode, tracer,
                        metrics,
                    )
                    if stats is not None:
                        return stats
            metrics.inc("engine.tier.reference")
            reference = ExecutionEngine(
                plan,
                self.gpu_config,
                options,
                tracer=tracer,
                metrics=metrics,
                provenance=provenance,
                journal=journal,
                telemetry=telemetry,
            )
            return reference.run()


# ----------------------------------------------------------------------
@dataclass
class _KernelState:
    plan: object  # KernelPlan
    enqueued_ns: Optional[float] = None
    launch_begin_ns: Optional[float] = None
    resident_ns: Optional[float] = None
    input_ready_ns: float = 0.0
    launched: bool = False
    resident: bool = False
    all_tbs_done: bool = False
    all_tbs_done_ns: Optional[float] = None
    completed: bool = False
    completed_ns: Optional[float] = None
    dispatched: int = 0
    finished: int = 0
    ready: deque = field(default_factory=deque)
    pending_counters: Optional[List[int]] = None
    #: TBs whose counters resolved while the ready queue was at capacity
    deferred_ready: deque = field(default_factory=deque)
    tb_finish_ns: Dict[int, float] = field(default_factory=dict)
    first_tb_start_ns: Optional[float] = None
    queued_ready: int = 0  # TBs pushed to ready (incl. dispatched)
    made_eligible: bool = False


class EngineDrainError(RuntimeError):
    """The event queue drained with work still outstanding.

    Raised instead of silently reporting a truncated makespan when
    thread blocks were never released (dependency cycle, scheduler bug)
    or API calls never completed.  ``details`` is a structured dict:
    ``{"calls": [positions...], "kernels": [{"index", "name",
    "finished", "num_tbs", "unreleased", "stuck_tbs": [{"tb",
    "pending_parents", "unmet_parents"} | {"tb", "reason"}]}]}``.  When
    the run carried a :class:`~repro.obs.journal.JournalRecorder`,
    ``details["journal_tail"]`` additionally holds the last ~20 journal
    events — the flight recorder's black-box tail.
    """

    def __init__(self, message, details=None):
        super().__init__(message)
        self.details = details or {}


class ExecutionEngine:
    def __init__(
        self,
        plan: RuntimePlan,
        gpu_config: GPUConfig,
        options: EngineOptions,
        tracer=None,
        metrics=None,
        provenance=None,
        journal=None,
        telemetry=None,
        device=None,
    ):
        self.plan = plan
        self.config = gpu_config
        self.opts = options
        self.tracer = resolve_tracer(tracer)
        self.metrics = resolve_metrics(metrics)
        #: observation-only recorder of scheduling decisions (critpath)
        self.prov = provenance
        #: observation-only flight recorder of every engine event
        self.journal = journal
        #: observation-only time-series sampler (occupancy, queues, DLB)
        self.telemetry = telemetry
        #: the event context: what kind of event is currently executing
        #: (provenance annotation only — never consulted for scheduling)
        self._ctx = ("host",)
        self.events = EventQueue()
        self.device = device if device is not None else Device(
            gpu_config, tracer=self.tracer, metrics=self.metrics
        )
        self.timing = gpu_config.timing
        self.kernels = [_KernelState(plan=kp) for kp in plan.kernels]
        self.call_done = [False] * len(plan.order)
        self.call_done_ns = [0.0] * len(plan.order)
        self.call_enqueued = [False] * len(plan.order)
        self.call_enqueued_ns = [0.0] * len(plan.order)
        self.call_started = [False] * len(plan.order)
        self.tb_records: List[TBRecord] = []
        self.counters: Dict[str, float] = {
            "dispatch_passes": 0.0,
            "host_blocks": 0.0,
        }
        self._host_cursor = 0
        self._host_time = 0.0
        self._call_waiters: Dict[int, list] = {}
        #: inverse adjacency of explicit graphs, for stall statistics
        self._parents_of = self._build_parents_of()
        # per-stream structures: command positions, kernel chains and
        # launch cursors (streams are independent command queues)
        self._stream_positions: Dict[int, List[int]] = {}
        self._position_in_stream: Dict[int, int] = {}
        for position, call in enumerate(plan.order):
            lst = self._stream_positions.setdefault(call.stream_id, [])
            self._position_in_stream[position] = len(lst)
            lst.append(position)
        self._stream_done_prefix: Dict[int, int] = {
            s: 0 for s in self._stream_positions
        }
        self._stream_kernels: Dict[int, List[int]] = {}
        for kp in plan.kernels:
            self._stream_kernels.setdefault(kp.stream, []).append(
                kp.kernel_index
            )
        self._stream_launch_cursor: Dict[int, int] = {
            s: 0 for s in self._stream_kernels
        }

    # ------------------------------------------------------------------
    def _build_parents_of(self):
        parents_of = {}
        for ki, kp in enumerate(self.plan.kernels):
            graph = kp.graph
            if graph is None or graph.is_fully_connected or graph.is_independent:
                continue
            inverse = [[] for _ in range(graph.num_children)]
            for p, children in enumerate(graph.children_of):
                for c in children:
                    inverse[c].append(p)
            parents_of[ki] = inverse
        return parents_of

    def _advance_done_prefix(self, stream):
        positions = self._stream_positions[stream]
        cursor = self._stream_done_prefix[stream]
        while cursor < len(positions) and self.call_done[positions[cursor]]:
            cursor += 1
        self._stream_done_prefix[stream] = cursor

    def _stream_prefix_done(self, position):
        """All earlier commands of the same stream are complete."""
        stream = self.plan.order[position].stream_id
        return (
            self._stream_done_prefix[stream]
            >= self._position_in_stream[position]
        )

    def _prereqs_done(self, position):
        if self.opts.strict_order:
            # streams are independent queues even in the baseline; each
            # processes strictly in order.  Cross-stream data
            # dependencies (the program's implicit event ordering) must
            # hold in both modes.
            if not self._stream_prefix_done(position):
                return False
            return all(self.call_done[p] for p in self.plan.deps[position])
        for p in self.plan.deps[position]:
            if self.call_done[p]:
                continue
            # BlockMaestro bypasses synchronize/event barriers: the
            # direct data dependencies are tracked separately, so a
            # pending barrier prerequisite does not gate the command.
            if isinstance(self.plan.order[p], _BYPASSED_BARRIERS):
                continue
            return False
        return True

    # ------------------------------------------------------------------
    # main entry
    # ------------------------------------------------------------------
    def run(self) -> RunStats:
        if self.prov is not None:
            self.prov.begin(self)
        if self.journal is not None:
            self.journal.begin(self)
        if self.telemetry is not None:
            self.telemetry.begin(self)
        self._init_fine_grain()
        self.events.schedule(0.0, self._host_resume)
        makespan = self.events.run()
        self.device.finalize(makespan)
        stats = RunStats(
            model=self.opts.name,
            application=self.plan.application,
            makespan_ns=makespan,
            tb_records=self.tb_records,
            kernel_records=self._kernel_records(),
            concurrency_integral=self.device.concurrency_integral,
            busy_ns=self.device.busy_ns,
            kernel_memory_requests=self.plan.total_kernel_requests(),
            dependency_memory_requests=(
                self.plan.total_dependency_requests()
                if self.opts.fine_grain and self.opts.count_dependency_traffic
                else 0.0
            ),
            graph_plain_bytes=self.plan.graph_plain_bytes,
            graph_encoded_bytes=self.plan.graph_encoded_bytes,
            counters=dict(self.counters),
        )
        self._check_all_complete()
        stats.validate_invariants()
        if self.prov is not None:
            self.prov.finalize(self)
        if self.journal is not None:
            self.journal.finalize(self)
        if self.telemetry is not None:
            self.telemetry.finalize(self)
        self._emit_trace(stats)
        self._record_metrics(stats)
        return stats

    def _journal_emit(self, kind, **fields):
        """Emit one flight-recorder event at the current engine time.

        Observation only: neither the journal nor the telemetry sampler
        feeds back into scheduling, so simulated signatures are
        byte-identical with them on or off.
        """
        if self.journal is not None:
            self.journal.emit(kind, self.events.now, **fields)
        if self.telemetry is not None:
            self.telemetry.observe(kind, self.events.now, **fields)

    # ------------------------------------------------------------------
    # observability (pure observation: derived from the finished run's
    # records, so tracing can never perturb simulated behaviour)
    # ------------------------------------------------------------------
    def _emit_trace(self, stats: RunStats):
        emit_engine_trace(
            self.tracer, self.plan, self.call_enqueued_ns,
            self.call_done_ns, stats,
        )

    def _record_metrics(self, stats: RunStats):
        record_engine_metrics(
            self.metrics, stats,
            events_processed=self.events.processed,
            peak_pending=self.events.peak_pending,
            counters=self.counters,
        )

    def _check_all_complete(self):
        pending_calls = [p for p, done in enumerate(self.call_done) if not done]
        stuck_kernels = [ks for ks in self.kernels if not ks.completed]
        if not pending_calls and not stuck_kernels:
            return
        raise self._drain_error(pending_calls, stuck_kernels)

    def _drain_error(self, pending_calls, stuck_kernels):
        """Structured diagnosis of a drained-but-incomplete run: name
        the stuck thread blocks and their unmet parents."""
        kernel_rows = []
        for ks in stuck_kernels:
            ki = ks.plan.kernel_index
            unreleased = [
                tb for tb in range(ks.plan.num_tbs)
                if tb not in ks.tb_finish_ns
            ]
            stuck_tbs = []
            for tb in unreleased[:8]:
                if ks.pending_counters is not None:
                    prev = ks.plan.chain_prev
                    parent = self.kernels[prev] if prev is not None else None
                    parents = self._parents_of.get(ki, [[]] * ks.plan.num_tbs)
                    unmet = [
                        p for p in parents[tb]
                        if parent is None or p not in parent.tb_finish_ns
                    ]
                    stuck_tbs.append({
                        "tb": tb,
                        "pending_parents": ks.pending_counters[tb],
                        "unmet_parents": unmet[:8],
                    })
                elif not ks.resident:
                    stuck_tbs.append(
                        {"tb": tb, "reason": "kernel never became resident"}
                    )
                else:
                    stuck_tbs.append(
                        {"tb": tb, "reason": "kernel-level gate never opened"}
                    )
            kernel_rows.append({
                "index": ki,
                "name": ks.plan.name,
                "finished": ks.finished,
                "num_tbs": ks.plan.num_tbs,
                "unreleased": len(unreleased),
                "stuck_tbs": stuck_tbs,
            })
        bits = []
        for row in kernel_rows[:4]:
            desc = "k{} {} ({}/{} TBs finished, {} unreleased".format(
                row["index"], row["name"], row["finished"], row["num_tbs"],
                row["unreleased"],
            )
            if row["stuck_tbs"]:
                first = row["stuck_tbs"][0]
                if "unmet_parents" in first:
                    desc += "; tb {} waits on {} parents, e.g. {}".format(
                        first["tb"], first["pending_parents"],
                        first["unmet_parents"],
                    )
                else:
                    desc += "; " + first["reason"]
            bits.append(desc + ")")
        if len(kernel_rows) > 4:
            bits.append("... {} more kernels".format(len(kernel_rows) - 4))
        if pending_calls:
            bits.append("calls {} incomplete".format(pending_calls[:6]))
        details = {"calls": pending_calls, "kernels": kernel_rows}
        if self.journal is not None:
            # the flight recorder's black-box tail: the last events the
            # engine processed before stalling, so the report is
            # self-contained without re-running under a debugger
            tail = self.journal.tail(20)
            details["journal_tail"] = tail
            bits.append("journal tail attached ({} events)".format(len(tail)))
        return EngineDrainError(
            "event queue drained with work still outstanding: "
            + "; ".join(bits),
            details=details,
        )

    def _kernel_records(self):
        records = []
        for ks in self.kernels:
            records.append(
                KernelRecord(
                    index=ks.plan.kernel_index,
                    name=ks.plan.name,
                    num_tbs=ks.plan.num_tbs,
                    queued_ns=ks.enqueued_ns or 0.0,
                    launch_begin_ns=ks.launch_begin_ns or 0.0,
                    resident_ns=ks.resident_ns or 0.0,
                    first_tb_start_ns=ks.first_tb_start_ns or 0.0,
                    all_tbs_done_ns=ks.all_tbs_done_ns or 0.0,
                    completed_ns=ks.completed_ns or 0.0,
                    stream=ks.plan.stream,
                )
            )
        return records

    def _init_fine_grain(self):
        if self.opts.ignore_dependencies:
            return  # what-if replay: no parent counters, no gating
        for ks in self.kernels:
            graph = ks.plan.graph
            if (
                self.opts.fine_grain
                and graph is not None
                and not graph.is_fully_connected
                and not graph.is_independent
            ):
                ks.pending_counters = list(graph.parent_counts)

    # ------------------------------------------------------------------
    # host
    # ------------------------------------------------------------------
    def _host_resume(self):
        while self._host_cursor < len(self.plan.order):
            position = self._host_cursor
            call = self.plan.order[position]
            issue_at = max(self._host_time, self.events.now)
            enqueue_at = issue_at + self.opts.api_call_ns
            self._host_cursor += 1
            self._host_time = enqueue_at
            self._journal_emit(
                "host_issue",
                position=position,
                op=getattr(call, "trace_name", type(call).__name__),
                stream=call.stream_id,
                issue_ns=issue_at,
                blocking=self._host_blocks_on(call),
            )
            self.events.schedule(enqueue_at, lambda p=position: self._enqueue(p))
            if self._host_blocks_on(call):
                self.counters["host_blocks"] += 1
                # suspend: resume when this call completes
                self._wait_for_call(position, self._host_unblock)
                return

    def _host_blocks_on(self, call):
        if self.opts.blockmaestro_host:
            return call.blocks_host_blockmaestro
        return call.blocks_host_baseline

    def _host_unblock(self, position):
        self._host_time = max(self._host_time, self.call_done_ns[position])
        self._host_resume()

    def _wait_for_call(self, position, callback):
        if self.call_done[position]:
            callback(position)
            return
        self._call_waiters.setdefault(position, []).append(callback)

    # ------------------------------------------------------------------
    # command queue
    # ------------------------------------------------------------------
    def _enqueue(self, position):
        self._ctx = ("enqueue", position)
        self.call_enqueued[position] = True
        self.call_enqueued_ns[position] = self.events.now
        call = self.plan.order[position]
        self._journal_emit(
            "call_enqueue",
            position=position,
            op=getattr(call, "trace_name", type(call).__name__),
            stream=call.stream_id,
        )
        if isinstance(call, KernelLaunchCall):
            ki = self.plan.kernel_at_position[position]
            self.kernels[ki].enqueued_ns = self.events.now
        self._pump()

    def _pump(self):
        """Start every startable command; called on all state changes."""
        progress = True
        while progress:
            progress = False
            for position, call in enumerate(self.plan.order):
                if (
                    self.call_started[position]
                    or not self.call_enqueued[position]
                    or not self._prereqs_done(position)
                ):
                    continue
                if isinstance(call, KernelLaunchCall):
                    continue  # kernels go through the launch engine
                self.call_started[position] = True
                progress = True
                self._start_command(position, call)
        self._try_launch()
        self._dispatch()

    def _start_command(self, position, call):
        now = self.events.now
        if self.prov is not None:
            self.prov.note_call_start(position, now)
        self._journal_emit(
            "call_start",
            position=position,
            op=getattr(call, "trace_name", type(call).__name__),
            stream=call.stream_id,
        )
        if isinstance(call, MallocCall):
            duration = self.timing.malloc_ns
        elif isinstance(call, (MemcpyH2D, MemcpyD2H)):
            duration = self.timing.memcpy_ns(call.bytes)
        else:  # synchronizes, events, waits: bookkeeping only
            duration = 0.0
        self.events.schedule(
            now + duration, lambda: self._scheduled_complete(position)
        )

    def _scheduled_complete(self, position):
        self._ctx = ("call", position)
        self._complete_call(position)

    def _complete_call(self, position):
        if self.call_done[position]:
            return
        self.call_done[position] = True
        self.call_done_ns[position] = self.events.now
        call = self.plan.order[position]
        self._journal_emit(
            "call_complete",
            position=position,
            op=getattr(call, "trace_name", type(call).__name__),
            stream=call.stream_id,
        )
        self._advance_done_prefix(self.plan.order[position].stream_id)
        for callback in self._call_waiters.pop(position, ()):  # host resume
            callback(position)
        self._pump()

    # ------------------------------------------------------------------
    # launch engine
    # ------------------------------------------------------------------
    def _kernels_in_flight(self, stream):
        return sum(
            1
            for ki in self._stream_kernels.get(stream, ())
            if self.kernels[ki].launched and not self.kernels[ki].completed
        )

    def _try_launch(self):
        """Launch every queued kernel the pre-launch windows allow.

        Launches begin strictly in queue order *within each stream*, but
        multiple launches may be in flight at once: pre-launching the
        next w-1 kernels of a stream is what masks their launch
        overheads behind the current kernel's execution (paper Fig. 2b).
        Streams launch independently.
        """
        for stream, chain in self._stream_kernels.items():
            while True:
                cursor = self._stream_launch_cursor[stream]
                if cursor >= len(chain):
                    break
                ki = chain[cursor]
                ks = self.kernels[ki]
                position = ks.plan.order_position
                if not self.call_enqueued[position]:
                    break
                if not self._prereqs_done_for_kernel(position):
                    break
                if self._kernels_in_flight(stream) >= self.opts.window:
                    break
                ks.launched = True
                ks.launch_begin_ns = self.events.now
                ks.input_ready_ns = self._input_ready_ns(position)
                if self.prov is not None:
                    self.prov.note_launch_trigger(
                        ki, self.events.now, self._ctx
                    )
                self._journal_emit(
                    "kernel_launch",
                    kernel=ki,
                    name=ks.plan.name,
                    stream=stream,
                    edge=_edge_fields(self._ctx),
                )
                self.call_started[position] = True
                self._stream_launch_cursor[stream] = cursor + 1
                self.events.schedule(
                    self.events.now + self.opts.launch_overhead_ns,
                    lambda k=ki: self._launch_done(k),
                )

    def _prereqs_done_for_kernel(self, position):
        """Kernel launch gating.

        Strict mode: every earlier command must be complete (the
        serialized baseline).  Relaxed mode: only non-kernel true
        dependencies gate the launch — dependencies on earlier *kernels*
        are resolved by the TB scheduler, which is exactly what makes
        pre-launching legal.
        """
        if self.opts.strict_order:
            if not self._stream_prefix_done(position):
                return False
            return all(self.call_done[p] for p in self.plan.deps[position])
        for p in self.plan.deps[position]:
            if isinstance(
                self.plan.order[p],
                (KernelLaunchCall,) + _BYPASSED_BARRIERS,
            ):
                continue
            if not self.call_done[p]:
                return False
        return True

    def _input_ready_ns(self, position):
        """Completion time of the kernel's non-kernel *data*
        prerequisites (device-side data availability, used for stall
        accounting).  Kernels are handled by the TB-level graph;
        barriers are ordering, not data, so they do not count."""
        ready = 0.0
        for p in self.plan.deps[position]:
            if isinstance(
                self.plan.order[p],
                (KernelLaunchCall,) + _BYPASSED_BARRIERS,
            ):
                continue
            ready = max(ready, self.call_done_ns[p])
        return ready

    def _launch_done(self, ki):
        self._ctx = ("launch", ki)
        ks = self.kernels[ki]
        ks.resident = True
        ks.resident_ns = self.events.now
        self._journal_emit("kernel_resident", kernel=ki, name=ks.plan.name)
        self._refresh_ready(ki)
        self._pump()

    # ------------------------------------------------------------------
    # TB readiness
    # ------------------------------------------------------------------
    def _tb_eligible(self, ki):
        """Kernel-level gate before any of its TBs may run."""
        ks = self.kernels[ki]
        if not ks.resident:
            return False
        if self.opts.ignore_dependencies:
            return True
        # cross-stream data dependencies: coarse completion barriers
        for dep in ks.plan.cross_stream_deps:
            if not self.kernels[dep].completed:
                return False
        if self.opts.fine_grain:
            grandparent = ks.plan.chain_grandparent
            if ks.plan.grandparent_barrier and grandparent is not None:
                if not self.kernels[grandparent].completed:
                    return False
            return True
        # coarse: the same-stream predecessor must have finished its TBs
        prev = ks.plan.chain_prev
        if prev is None:
            return True
        return self.kernels[prev].all_tbs_done

    def _refresh_ready(self, ki):
        """(Re)compute which TBs of kernel ``ki`` are ready to dispatch."""
        ks = self.kernels[ki]
        if not self._tb_eligible(ki):
            return
        graph = ks.plan.graph
        if not ks.made_eligible:
            ks.made_eligible = True
            if self.opts.ignore_dependencies:
                self._push_all_tbs(ks)
            elif self.opts.fine_grain and graph is not None:
                if graph.is_fully_connected:
                    # children wait for the whole parent kernel
                    if not self.kernels[ks.plan.chain_prev].all_tbs_done:
                        ks.made_eligible = False
                    else:
                        self._push_all_tbs(ks)
                elif graph.is_independent:
                    self._push_all_tbs(ks)
                else:
                    for tb in range(ks.plan.num_tbs):
                        if ks.pending_counters[tb] == 0:
                            self._push_ready(ks, tb)
            else:
                self._push_all_tbs(ks)
        self._drain_deferred(ks)

    def _push_all_tbs(self, ks):
        for tb in range(ks.plan.num_tbs):
            self._push_ready(ks, tb)

    def _tracked_tasks(self, ks):
        """Tasks holding a dependency-tracking entry: ready to run or
        currently running (Wireframe's pending-update-buffer occupancy)."""
        return len(ks.ready) + (ks.dispatched - ks.finished)

    def _push_ready(self, ks, tb):
        if (
            self.opts.ready_capacity is not None
            and self._tracked_tasks(ks) >= self.opts.ready_capacity
        ):
            ks.deferred_ready.append(tb)
            return
        ks.ready.append(tb)
        ks.queued_ready += 1
        if self.prov is not None:
            self.prov.note_ready(
                ks.plan.kernel_index, tb, self.events.now, self._ctx
            )
        self._journal_emit(
            "tb_ready",
            kernel=ks.plan.kernel_index,
            tb=tb,
            edge=_edge_fields(self._ctx),
        )

    def _drain_deferred(self, ks):
        capacity = self.opts.ready_capacity
        while ks.deferred_ready and (
            capacity is None or self._tracked_tasks(ks) < capacity
        ):
            tb = ks.deferred_ready.popleft()
            ks.ready.append(tb)
            ks.queued_ready += 1
            if self.prov is not None:
                self.prov.note_ready(
                    ks.plan.kernel_index, tb, self.events.now, self._ctx
                )
            self._journal_emit(
                "tb_ready",
                kernel=ks.plan.kernel_index,
                tb=tb,
                edge=_edge_fields(self._ctx),
            )

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _kernel_dispatch_order(self):
        active = [
            ks
            for ks in self.kernels
            if ks.resident and ks.dispatched < ks.plan.num_tbs
        ]
        if self.opts.policy.prefers_consumer:
            return list(reversed(active))
        return active

    def _producer_gate_ok(self, ks):
        """Producer priority: a kernel's TBs may dispatch only once every
        older resident kernel *of its stream* has scheduled all of its
        TBs (streams contend for slots but do not gate each other)."""
        if self.opts.policy.prefers_consumer:
            return True
        prev = ks.plan.chain_prev
        while prev is not None:
            other = self.kernels[prev]
            if other.launched and other.dispatched < other.plan.num_tbs:
                return False
            prev = other.plan.chain_prev
        return True

    def _dispatch(self):
        self.counters["dispatch_passes"] += 1
        now = self.events.now
        for ks in self._kernel_dispatch_order():
            if not ks.ready or not self._producer_gate_ok(ks):
                continue
            threads = ks.plan.threads_per_tb
            while ks.ready:
                sm = self.device.try_place(threads, now)
                if sm is None:
                    break  # saturated for this block size; try others
                tb = ks.ready.popleft()
                if self.prov is not None:
                    self.prov.note_start(
                        ks.plan.kernel_index, tb, now, self._ctx
                    )
                self._journal_emit(
                    "tb_dispatch",
                    kernel=ks.plan.kernel_index,
                    tb=tb,
                    sm=sm,
                    edge=_edge_fields(self._ctx),
                )
                self._drain_deferred(ks)
                ks.dispatched += 1
                if ks.first_tb_start_ns is None:
                    ks.first_tb_start_ns = now
                duration = ks.plan.tb_duration_ns(tb)
                ready_ns = self._tb_ready_time(ks, tb)
                record = TBRecord(
                    kernel_index=ks.plan.kernel_index,
                    tb_id=tb,
                    ready_ns=min(ready_ns, now),
                    start_ns=now,
                    finish_ns=now + duration,
                    sm=sm,
                )
                self.tb_records.append(record)
                self.events.schedule(
                    now + duration,
                    lambda k=ks, t=tb, s=sm, th=threads: self._tb_finished(
                        k, t, s, th
                    ),
                )

    def _tb_ready_time(self, ks, tb):
        """Data-availability time for stall statistics (model independent:
        when were this block's dependencies actually satisfied?)."""
        ki = ks.plan.kernel_index
        ready = ks.input_ready_ns
        if self.opts.ignore_dependencies:
            return ready  # only input data gates blocks in this replay
        graph = ks.plan.graph
        if graph is not None and ks.plan.chain_prev is not None:
            parent = self.kernels[ks.plan.chain_prev]
            if graph.is_fully_connected:
                ready = max(ready, parent.all_tbs_done_ns or ready)
            elif not graph.is_independent:
                for p in self._parents_of[ki][tb]:
                    ready = max(ready, parent.tb_finish_ns.get(p, ready))
        grandparent = ks.plan.chain_grandparent
        if ks.plan.grandparent_barrier and grandparent is not None:
            older = self.kernels[grandparent]
            if older.completed_ns is not None:
                ready = max(ready, older.completed_ns)
        for dep in ks.plan.cross_stream_deps:
            dep_done = self.kernels[dep].completed_ns
            if dep_done is not None:
                ready = max(ready, dep_done)
        return ready

    # ------------------------------------------------------------------
    def _tb_finished(self, ks, tb, sm, threads):
        now = self.events.now
        ki = ks.plan.kernel_index
        self._ctx = ("tb_finish", ki, tb)
        self._journal_emit("tb_finish", kernel=ki, tb=tb, sm=sm)
        self.device.release(sm, threads, now)
        ks.finished += 1
        ks.tb_finish_ns[tb] = now
        self._drain_deferred(ks)  # a tracking entry freed up
        child_ki = ks.plan.chain_next
        # resolve children's parent counters (dependency list lookup)
        if self.opts.fine_grain and child_ki is not None:
            child = self.kernels[child_ki]
            graph = child.plan.graph
            if graph is not None and child.pending_counters is not None:
                for c in graph.children(tb):
                    child.pending_counters[c] -= 1
                    if child.pending_counters[c] == 0 and child.made_eligible:
                        self._push_ready(child, c)
        if ks.finished == ks.plan.num_tbs:
            ks.all_tbs_done = True
            ks.all_tbs_done_ns = now
            self._journal_emit("kernel_drain", kernel=ki, name=ks.plan.name)
            self._on_all_tbs_done(ki)
            self._ctx = ("tb_finish", ki, tb)  # leaving the cascade
        if child_ki is not None:
            self._refresh_ready(child_ki)
        self._dispatch()

    def _on_all_tbs_done(self, ki):
        # in-order completion cascade along the stream's kernel chain
        idx = ki
        while idx is not None:
            ks = self.kernels[idx]
            if ks.completed or not ks.all_tbs_done:
                break
            prev = ks.plan.chain_prev
            if prev is not None and not self.kernels[prev].completed:
                break
            ks.completed = True
            ks.completed_ns = self.events.now
            self._ctx = ("completion", idx)
            self._journal_emit(
                "kernel_complete", kernel=idx, name=ks.plan.name
            )
            self._complete_call(ks.plan.order_position)
            # downstream kernels gated on this completion may unblock:
            # same-stream descendants (grandparent barriers, coarse
            # blocking) and cross-stream dependents
            child = ks.plan.chain_next
            hops = 0
            while child is not None and hops < 2:
                self._refresh_ready(child)
                child = self.kernels[child].plan.chain_next
                hops += 1
            for other in self.kernels:
                if idx in other.plan.cross_stream_deps:
                    self._refresh_ready(other.plan.kernel_index)
            idx = ks.plan.chain_next
        self._pump()


# ----------------------------------------------------------------------
# shared observability emitters (pure observation, derived from the
# finished run's records — used by both the scalar engine above and the
# batched tiers in repro.models.fastengine, so trace and metrics output
# is identical whichever engine produced the stats)
# ----------------------------------------------------------------------
def emit_engine_trace(tracer, plan, call_enqueued_ns, call_done_ns, stats):
    if not tracer.enabled:
        return
    # host command queue: one span per API call, enqueue → complete
    for position, call in enumerate(plan.order):
        tracer.name_thread(
            PID_HOST, call.stream_id, "stream {}".format(call.stream_id)
        )
        tracer.sim_span(
            call.trace_name,
            call_enqueued_ns[position],
            call_done_ns[position],
            cat="host.queue",
            pid=PID_HOST,
            tid=call.stream_id,
            args=call.trace_args(),
        )
    # kernel lifecycle phases: one thread row per kernel so phases of
    # concurrently in-flight kernels never collide
    for kr in stats.kernel_records:
        tid = kr.index
        tracer.name_thread(
            PID_DEVICE, tid, "k{:02d} {} (s{})".format(kr.index, kr.name, kr.stream)
        )
        info = {"kernel": kr.name, "index": kr.index, "stream": kr.stream}
        if kr.launch_begin_ns > kr.queued_ns:
            tracer.sim_span(
                "queued", kr.queued_ns, kr.launch_begin_ns,
                cat="kernel.queued", pid=PID_DEVICE, tid=tid, args=info,
            )
        tracer.sim_span(
            "launch", kr.launch_begin_ns, kr.resident_ns,
            cat="kernel.launch", pid=PID_DEVICE, tid=tid, args=info,
        )
        first = kr.first_tb_start_ns or kr.resident_ns
        if first > kr.resident_ns:
            tracer.sim_span(
                "stall", kr.resident_ns, first,
                cat="kernel.stall", pid=PID_DEVICE, tid=tid, args=info,
            )
        tracer.sim_span(
            "exec", first, kr.all_tbs_done_ns,
            cat="kernel.exec", pid=PID_DEVICE, tid=tid,
            args=dict(info, num_tbs=kr.num_tbs),
        )
        tracer.instant(
            "complete", ts_us=kr.completed_ns / 1e3,
            cat="kernel.complete", pid=PID_DEVICE, tid=tid, args=info,
        )
    # per-TB lifecycle on SM rows; async events because blocks of
    # several kernels overlap on one SM
    for tb in stats.tb_records:
        tracer.name_thread(PID_SM, tb.sm, "SM {:02d}".format(tb.sm))
        event_id = "k{}.tb{}".format(tb.kernel_index, tb.tb_id)
        name = "k{}/tb{}".format(tb.kernel_index, tb.tb_id)
        tracer.async_begin(
            name, tb.start_ns / 1e3, event_id,
            cat="tb", pid=PID_SM, tid=tb.sm,
            args={
                "kernel": tb.kernel_index,
                "tb": tb.tb_id,
                "ready_ns": tb.ready_ns,
                "stall_ns": tb.stall_ns,
            },
        )
        tracer.async_end(name, tb.finish_ns / 1e3, event_id, cat="tb",
                         pid=PID_SM, tid=tb.sm)


def record_engine_metrics(metrics, stats, events_processed, peak_pending,
                          counters):
    m = metrics
    if not m.enabled:
        return
    m.set_gauge("engine.makespan_ns", stats.makespan_ns)
    m.set_gauge("engine.avg_tb_concurrency", stats.avg_tb_concurrency())
    m.set_gauge("engine.events_processed", events_processed)
    m.set_gauge("engine.peak_pending_events", peak_pending)
    for name, value in counters.items():
        m.set_gauge("engine.{}".format(name), value)
    for tb in stats.tb_records:
        m.observe("engine.tb_stall_ns", tb.stall_ns)
        m.observe("engine.tb_duration_ns", tb.duration_ns)
