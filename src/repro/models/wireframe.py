"""Wireframe model (paper Fig. 14).

Wireframe [MICRO'17] is a "Tasks as Thread Blocks" design: the whole
multi-kernel workload becomes a single mega-kernel whose thread blocks
carry explicit programmer-specified dependencies, resolved by hardware.
Two properties define its behaviour relative to BlockMaestro:

* **no kernel launch overhead** — one mega-kernel is launched once, so
  per-level launch costs vanish;
* **buffer-constrained run-ahead** — dependency state lives in
  size-constrained hardware *pending update buffers*, which the paper
  found limits run-ahead to about three wavefront levels and caps how
  many tasks can be tracked as ready at once.  (BlockMaestro keeps task
  state in global memory and is not so constrained, at the price of the
  Fig. 13 memory traffic.)

We model this as the shared engine with zero launch overhead, fine-grain
consumer-priority scheduling, a window of three concurrent levels, and a
cap on ready-but-undispatched blocks per level.
"""

from repro.core.policy import SchedulingPolicy
from repro.models.base import EngineOptions, ExecutionModel
from repro.sim.config import GPUConfig

#: Pending-update-buffer capacity, in tracked ready tasks per level.
DEFAULT_PENDING_BUFFER_TASKS = 12


class WireframeModel(ExecutionModel):
    def __init__(
        self,
        gpu_config: GPUConfig = None,
        run_ahead_levels: int = 3,
        pending_buffer_tasks: int = DEFAULT_PENDING_BUFFER_TASKS,
    ):
        super().__init__(gpu_config)
        self.run_ahead_levels = run_ahead_levels
        self.pending_buffer_tasks = pending_buffer_tasks

    def options(self):
        return EngineOptions(
            name="wireframe",
            window=self.run_ahead_levels,
            fine_grain=True,
            policy=SchedulingPolicy.CONSUMER_PRIORITY,
            strict_order=False,
            blockmaestro_host=True,
            launch_overhead_ns=0.0,
            api_call_ns=0.0,  # tasks pre-loaded into the mega-kernel
            ready_capacity=self.pending_buffer_tasks,
            count_dependency_traffic=False,  # state stays on-chip
        )
