"""CUDA Dynamic Parallelism model (paper Fig. 14).

CDP is a "Tasks as Kernels" execution model: each task level launches
its successor from the device.  The paper models a CDP launch at 3 us
(the 5 us host launch minus the 2 us API-call component, following the
Kepler-based model of Wang et al. adjusted to modern launch times).

Behaviourally a CDP run is the serialized baseline with the cheaper
launch cost and no host API call on the critical path: each kernel
(wavefront level) launches after its predecessor completes.
"""

from repro.models.base import EngineOptions, ExecutionModel


class CDPModel(ExecutionModel):
    def options(self):
        timing = self.gpu_config.timing
        return EngineOptions(
            name="cdp",
            window=1,
            fine_grain=False,
            strict_order=True,
            blockmaestro_host=False,
            launch_overhead_ns=timing.cdp_launch_ns,
            api_call_ns=0.0,  # device-side launch: no host API call
        )
