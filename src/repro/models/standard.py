"""The paper's main execution models (Figs. 2 and 9)."""

from repro.core.policy import SchedulingPolicy
from repro.models.base import EngineOptions, ExecutionModel
from repro.sim.config import GPUConfig


class SerializedBaseline(ExecutionModel):
    """Default CUDA semantics: one command processed at a time, memory
    APIs block the host, every kernel pays the full launch overhead on
    the critical path (paper Fig. 2a)."""

    def options(self):
        timing = self.gpu_config.timing
        return EngineOptions(
            name="baseline",
            window=1,
            fine_grain=False,
            strict_order=True,
            blockmaestro_host=False,
            launch_overhead_ns=timing.kernel_launch_total_ns,
        )


class IdealBaseline(ExecutionModel):
    """The baseline with kernel launch overheads removed — the "ideal"
    reference bar in Fig. 9.  Dependency stalls remain."""

    def options(self):
        return EngineOptions(
            name="ideal",
            window=1,
            fine_grain=False,
            strict_order=True,
            blockmaestro_host=False,
            launch_overhead_ns=0.0,
        )


class PrelaunchOnly(ExecutionModel):
    """Kernel pre-launching alone (paper Fig. 2b): the command queue is
    reordered and de-blocked so the next kernel's launch overhead
    overlaps the current kernel's execution, but consumer thread blocks
    are conservatively held until every producer block finished."""

    def __init__(self, gpu_config: GPUConfig = None, window: int = 2):
        super().__init__(gpu_config)
        self.window = window

    def options(self):
        timing = self.gpu_config.timing
        return EngineOptions(
            name="prelaunch",
            window=self.window,
            fine_grain=False,
            strict_order=False,
            blockmaestro_host=True,
            launch_overhead_ns=timing.kernel_launch_total_ns,
        )


class BlockMaestroModel(ExecutionModel):
    """Full BlockMaestro (paper Fig. 2c): pre-launching plus hardware
    TB-level dependency resolution.

    ``window`` counts concurrently launched kernels (window = 1 +
    pre-launched kernels); ``policy`` selects producer or consumer
    priority.  The paper's headline configurations are
    ``producer``/window 2 and ``consumer``/windows 2-4.
    """

    def __init__(
        self,
        gpu_config: GPUConfig = None,
        window: int = 2,
        policy: SchedulingPolicy = SchedulingPolicy.PRODUCER_PRIORITY,
        name: str = None,
    ):
        super().__init__(gpu_config)
        self.window = window
        self.policy = policy
        self._name = name or "blockmaestro-{}{}".format(
            policy.value, window
        )

    def options(self):
        timing = self.gpu_config.timing
        return EngineOptions(
            name=self._name,
            window=self.window,
            fine_grain=True,
            policy=self.policy,
            strict_order=False,
            blockmaestro_host=True,
            launch_overhead_ns=timing.kernel_launch_total_ns,
        )
