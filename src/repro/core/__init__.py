"""BlockMaestro core: the paper's primary contribution.

Subpackages/modules:

* :mod:`repro.core.dependency_graph` — bipartite thread-block dependency
  graphs between consecutive kernels (paper Fig. 1) and their builder.
* :mod:`repro.core.patterns` — Table I dependency-pattern detection.
* :mod:`repro.core.encoding` — pattern-aware graph encodings and their
  storage costs (Tables I and III).
* :mod:`repro.core.hardware` — Dependency List Buffer / Parent Counter
  Buffer model (Fig. 7) with memory-request accounting (Fig. 13).
* :mod:`repro.core.reorder` — programmer-transparent command-queue
  reordering (Fig. 5).
* :mod:`repro.core.policy` — thread-block scheduling policies.
* :mod:`repro.core.runtime` — the launch-time pipeline tying analysis,
  graph construction and encoding together for an API trace.
"""

from repro.core.dependency_graph import (
    BipartiteGraph,
    GraphKind,
    build_bipartite_graph,
)
from repro.core.patterns import DependencyPattern, classify_pattern
from repro.core.encoding import encoded_bytes, plain_bytes
from repro.core.policy import SchedulingPolicy
from repro.core.reorder import reorder_trace
from repro.core.runtime import BlockMaestroRuntime, KernelPlan, RuntimePlan
from repro.core.hardware import DependencyHardware, HardwareConfig

__all__ = [
    "BipartiteGraph",
    "GraphKind",
    "build_bipartite_graph",
    "DependencyPattern",
    "classify_pattern",
    "encoded_bytes",
    "plain_bytes",
    "SchedulingPolicy",
    "reorder_trace",
    "BlockMaestroRuntime",
    "KernelPlan",
    "RuntimePlan",
    "DependencyHardware",
    "HardwareConfig",
]
