"""The BlockMaestro launch-time pipeline.

:class:`BlockMaestroRuntime` performs everything the paper does at
kernel-launch time, for a whole API trace at once (the simulator's
equivalent of processing the command queue):

1. optionally reorder the command queue (:mod:`repro.core.reorder`);
2. run the value-range analysis on every kernel launch
   (:mod:`repro.analysis`);
3. build the bipartite dependency graph between each consecutive kernel
   pair (:mod:`repro.core.dependency_graph`);
4. choose each graph's hardware encoding, collapsing over-threshold
   degrees to fully connected (:mod:`repro.core.encoding`);
5. detect *grandparent* dependencies — reads from kernels more than one
   position back within the pre-launch window — which in-order
   completion turns into a coarse "predecessor-complete" barrier;
6. price the dependency-resolution memory traffic
   (:mod:`repro.core.hardware`) and per-TB durations
   (:mod:`repro.sim.cost`).

The result, a :class:`RuntimePlan`, is the single input every execution
model consumes.  Models that predate BlockMaestro (the serialized
baseline) use the same plan built without reordering — they simply
ignore the fine-grain information except for statistics.
"""

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.analyzer import KernelSummary, LaunchConfig, analyze_kernel
from repro.analysis.intervals import IntervalSet
from repro.core.dependency_graph import BipartiteGraph
from repro.core.encoding import EncodedGraph, encode_graph
from repro.core.hardware import DependencyHardware, HardwareConfig, PairTraffic
from repro.core.reorder import reorder_trace
from repro.host.api import KernelLaunchCall, kernel_param_directions
from repro.host.trace import compute_true_dependencies
from repro.obs import resolve_metrics, resolve_tracer
from repro.sim.config import GPUConfig
from repro.sim.cost import CostModel


def jitter_factor(kernel_index, tb_id, jitter):
    """Deterministic per-block duration spread in ``[1-j, 1+j]``.

    A splitmix-style integer hash of ``(kernel_index, tb_id)`` keeps the
    factor stable across execution models and runs, so comparisons stay
    apples-to-apples and every simulation is reproducible.
    """
    h = (kernel_index * 0x9E3779B1 + tb_id * 0x85EBCA77 + 0x165667B1) & 0xFFFFFFFF
    h ^= h >> 16
    h = (h * 0x045D9F3B) & 0xFFFFFFFF
    h ^= h >> 16
    unit = h / float(1 << 32)
    return 1.0 + jitter * (2.0 * unit - 1.0)


@dataclass
class KernelPlan:
    """Everything the scheduler needs about one kernel launch.

    Kernels form a *chain per stream*: ``chain_prev``/``chain_next`` are
    kernel indices of the same-stream neighbours (the paper's parent and
    child kernels), and the dependency graph is built against
    ``chain_prev``.  ``cross_stream_deps`` lists kernels in *other*
    streams whose data this kernel reads; those are enforced as coarse
    completion barriers (cross-stream fine-grain tracking is out of the
    paper's scope — it tracks consecutive kernels of one queue).
    """

    kernel_index: int  # position among kernels, in queue order
    order_position: int  # position in the (possibly reordered) queue
    call: KernelLaunchCall
    summary: KernelSummary
    stream: int = 0
    chain_prev: Optional[int] = None
    chain_next: Optional[int] = None
    #: same-stream kernel two back (in-order completion anchor for
    #: grandparent dependencies)
    chain_grandparent: Optional[int] = None
    #: graph to the same-stream predecessor (None for a chain head)
    encoded: Optional[EncodedGraph] = None
    #: TBs must additionally wait for chain_grandparent to complete
    grandparent_barrier: bool = False
    cross_stream_deps: Tuple[int, ...] = ()
    traffic: PairTraffic = field(default_factory=PairTraffic)
    kernel_memory_requests: float = 0.0
    _base_duration_ns: float = 0.0
    _duration_fn: Optional[Callable[[int], float]] = None
    _duration_scale_fn: Optional[Callable[[int], float]] = None
    _jitter: float = 0.0

    @property
    def graph(self) -> Optional[BipartiteGraph]:
        """The effective (post-encoding) dependency graph."""
        return self.encoded.effective if self.encoded is not None else None

    @property
    def num_tbs(self):
        return self.call.num_tbs

    @property
    def threads_per_tb(self):
        return self.call.threads_per_tb

    @property
    def name(self):
        return self.call.tag or self.call.kernel.name

    def tb_duration_ns(self, tb_id):
        if self._duration_fn is not None:
            return float(self._duration_fn(tb_id))
        duration = self._base_duration_ns
        if self._duration_scale_fn is not None:
            duration *= float(self._duration_scale_fn(tb_id))
        if self._jitter:
            duration *= jitter_factor(self.kernel_index, tb_id, self._jitter)
        return duration


@dataclass
class RuntimePlan:
    """Analyzed, ordered view of one application run."""

    application: str
    order: List[object]  # APICall objects in execution order
    deps: List[List[int]]  # per order position, prerequisite positions
    kernels: List[KernelPlan]
    kernel_at_position: Dict[int, int]  # order position -> kernel index
    graph_plain_bytes: int = 0
    graph_encoded_bytes: int = 0
    reordered: bool = False
    #: wall time spent in launch-time analysis + graph construction.
    #: In the real system this is JIT-compiler work performed while the
    #: previous kernel executes (the paper: "performed off the critical
    #: path and ... masked by the proposed kernel pre-launching"); it is
    #: reported for transparency, not charged to the simulated timeline.
    analysis_seconds: float = 0.0

    @property
    def num_kernels(self):
        return len(self.kernels)

    def analysis_seconds_per_kernel(self):
        if not self.kernels:
            return 0.0
        return self.analysis_seconds / len(self.kernels)

    def total_dependency_requests(self):
        return sum(k.traffic.total for k in self.kernels)

    def total_kernel_requests(self):
        return sum(k.kernel_memory_requests for k in self.kernels)


class BlockMaestroRuntime:
    """Builds :class:`RuntimePlan` objects from applications."""

    def __init__(
        self,
        config: GPUConfig = None,
        hardware: HardwareConfig = None,
        hazards=("raw",),
        window: int = 2,
        max_intervals: int = 64,
        tracer=None,
        metrics=None,
        cache=None,
        fastpath=None,
    ):
        self.config = config or GPUConfig()
        self.hardware_config = hardware or HardwareConfig()
        self.tracer = resolve_tracer(tracer)
        self.metrics = resolve_metrics(metrics)
        self.hardware = DependencyHardware(self.hardware_config, metrics=self.metrics)
        self.cost_model = CostModel(self.config)
        self.hazards = tuple(hazards)
        self.window = window
        self.max_intervals = max_intervals
        #: optional persistent AnalysisCache (repro.analysis.cache);
        #: content-addressed, so sharing one across configs is safe
        self.cache = cache
        #: graph-construction tier policy (repro.analysis.fastpath);
        #: ``None`` consults REPRO_FASTPATH, defaulting to "auto".  The
        #: tiers are differential-tested to produce identical graphs, so
        #: the mode never changes a plan — only how fast it is built —
        #: and cache entries interoperate across modes.
        # imported lazily: repro.analysis.fastpath builds on
        # repro.core.dependency_graph, whose package init loads this
        # module — a module-level import here would cycle
        from repro.analysis.fastpath import resolve_fastpath_mode

        self.fastpath = resolve_fastpath_mode(fastpath)
        self._summary_cache = {}

    # ------------------------------------------------------------------
    def plan(self, application, reorder=True, window=None) -> RuntimePlan:
        """Analyze an application (anything with ``.name`` and ``.trace``)."""
        window = window if window is not None else self.window
        tracer, metrics = self.tracer, self.metrics
        analysis_start = time.perf_counter()
        with tracer.span(
            "plan:{}".format(application.name),
            cat="plan",
            args={"application": application.name, "reorder": reorder, "window": window},
        ):
            trace = application.trace
            with tracer.span("plan.validate", cat="plan"):
                trace.validate()
            with tracer.span("plan.reorder", cat="plan"):
                order = reorder_trace(trace) if reorder else list(trace.calls)
            with tracer.span("plan.true-deps", cat="plan"):
                deps = compute_true_dependencies(order)

            kernels: List[KernelPlan] = []
            kernel_at_position = {}
            chain_tail: Dict[int, int] = {}  # stream -> last kernel index
            with tracer.span("plan.analyze", cat="plan"):
                for position, call in enumerate(order):
                    if not call.is_kernel:
                        continue
                    summary = self._analyze(call)
                    coalescing = 1.0
                    if self.config.model_coalescing:
                        coalescing = summary.coalescing_factor(
                            warp_size=self.config.warp_size,
                            line_bytes=self.config.line_bytes,
                        )
                    plan = KernelPlan(
                        kernel_index=len(kernels),
                        order_position=position,
                        call=call,
                        summary=summary,
                        stream=call.stream_id,
                        kernel_memory_requests=self.cost_model.kernel_memory_requests(
                            summary.dynamic_mix,
                            call.threads_per_tb,
                            call.num_tbs,
                            coalescing=coalescing,
                        ),
                        _base_duration_ns=self.cost_model.tb_duration_ns(
                            summary.dynamic_mix,
                            call.threads_per_tb,
                            call.intensity,
                            coalescing=coalescing,
                        ),
                        _duration_fn=call.tb_duration_fn,
                        _duration_scale_fn=call.tb_duration_scale_fn,
                        _jitter=self.config.duration_jitter,
                    )
                    prev = chain_tail.get(call.stream_id)
                    if prev is not None:
                        plan.chain_prev = prev
                        plan.chain_grandparent = kernels[prev].chain_prev
                        kernels[prev].chain_next = plan.kernel_index
                    chain_tail[call.stream_id] = plan.kernel_index
                    kernel_at_position[position] = plan.kernel_index
                    kernels.append(plan)
            metrics.inc("plan.kernels", len(kernels))

            plain_total = 0
            encoded_total = 0
            with tracer.span("plan.graphs", cat="plan"):
                for plan in kernels:
                    if plan.chain_prev is None:
                        continue
                    encoded = self._encoded_graph_for(
                        kernels[plan.chain_prev], plan
                    )
                    plan.encoded = encoded
                    plan.traffic = self.hardware.pair_traffic(encoded.effective)
                    plain_total += encoded.plain_bytes
                    encoded_total += encoded.encoded_bytes
                    plan.grandparent_barrier = self._has_grandparent_dep(
                        kernels, plan.kernel_index, window
                    )
                    metrics.inc("plan.graphs_built")
                    if encoded.collapsed:
                        metrics.inc("plan.graphs_collapsed")
                    if tracer.enabled:
                        tracer.instant(
                            "graph:{}".format(plan.name),
                            cat="plan.graph",
                            args={
                                "pattern": encoded.original_pattern.pattern.value,
                                "edges": encoded.original.num_edges,
                                "collapsed": encoded.collapsed,
                                "encoded_bytes": encoded.encoded_bytes,
                                "plain_bytes": encoded.plain_bytes,
                                "grandparent_barrier": plan.grandparent_barrier,
                            },
                        )

            with tracer.span("plan.cross-stream", cat="plan"):
                self._attach_cross_stream_deps(kernels, deps, kernel_at_position)

        analysis_seconds = time.perf_counter() - analysis_start
        metrics.set_gauge("plan.analysis_ms", analysis_seconds * 1e3)
        metrics.set_gauge("plan.graph_plain_bytes", plain_total)
        metrics.set_gauge("plan.graph_encoded_bytes", encoded_total)
        return RuntimePlan(
            application=application.name,
            order=order,
            deps=deps,
            kernels=kernels,
            kernel_at_position=kernel_at_position,
            graph_plain_bytes=plain_total,
            graph_encoded_bytes=encoded_total,
            reordered=reorder,
            analysis_seconds=analysis_seconds,
        )

    # ------------------------------------------------------------------
    def _analyze(self, call: KernelLaunchCall) -> KernelSummary:
        launch = LaunchConfig.create(
            grid=call.grid, block=call.block, args=call.arg_values()
        )
        # Identical launches (same kernel body and concrete parameters,
        # e.g. ping-pong iterations) share one analysis result.
        key = (id(call.kernel), launch)
        cached = self._summary_cache.get(key)
        if cached is not None:
            self.metrics.inc("plan.analysis_cache_hits")
            return cached
        disk_key = None
        if self.cache is not None:
            disk_key = self.cache.summary_key(
                call.kernel, launch, self.max_intervals
            )
            summary = self.cache.get_summary(disk_key)
            if summary is not None:
                self._summary_cache[key] = summary
                return summary
        summary = analyze_kernel(
            call.kernel, launch, max_intervals=self.max_intervals
        )
        self._summary_cache[key] = summary
        if disk_key is not None:
            self.cache.put_summary(disk_key, summary)
        self.metrics.inc("plan.kernels_analyzed")
        if not summary.exact:
            self.metrics.inc("plan.analysis_fallbacks")
        return summary

    def _encoded_graph_for(self, parent_plan, child_plan):
        """Build (or load from the persistent cache) the child's encoded
        dependency graph against its same-stream predecessor.

        Launches with an explicit ``dependency_override`` bypass the
        cache: the override is an arbitrary callable whose content the
        cache cannot address.
        """
        use_cache = (
            self.cache is not None
            and child_plan.call.dependency_override is None
        )
        graph_key = None
        if use_cache:
            graph_key = self.cache.graph_key(
                self.cache.summary_key(
                    parent_plan.call.kernel,
                    parent_plan.summary.launch,
                    self.max_intervals,
                ),
                self.cache.summary_key(
                    child_plan.call.kernel,
                    child_plan.summary.launch,
                    self.max_intervals,
                ),
                self.hazards,
                self.hardware_config.degree_threshold,
            )
            encoded = self.cache.get_graph(graph_key)
            if encoded is not None:
                return encoded
        graph = self._graph_for(parent_plan, child_plan)
        encoded = encode_graph(
            graph, degree_threshold=self.hardware_config.degree_threshold
        )
        if graph_key is not None:
            self.cache.put_graph(graph_key, encoded)
        return encoded

    def _graph_for(self, parent_plan, child_plan):
        """The child's dependency graph vs. its same-stream predecessor:
        analysis-derived, or the launch's explicit override."""
        override = child_plan.call.dependency_override
        if override is None:
            from repro.analysis.fastpath import build_graph_fast

            graph, tier = build_graph_fast(
                parent_plan.summary,
                child_plan.summary,
                hazards=self.hazards,
                mode=self.fastpath,
            )
            self.metrics.inc("analysis.fastpath.%s" % tier)
            return graph
        graph = (
            override(parent_plan.summary, child_plan.summary)
            if callable(override)
            else override
        )
        if not isinstance(graph, BipartiteGraph):
            raise TypeError(
                "dependency_override must yield a BipartiteGraph, got %r"
                % (type(graph),)
            )
        if (
            graph.num_parents != parent_plan.num_tbs
            or graph.num_children != child_plan.num_tbs
        ):
            raise ValueError(
                "dependency_override shape {}x{} does not match kernels "
                "{}x{}".format(
                    graph.num_parents,
                    graph.num_children,
                    parent_plan.num_tbs,
                    child_plan.num_tbs,
                )
            )
        return graph

    def _has_grandparent_dep(self, kernels, i, window):
        """Does kernel ``i`` read data written by a same-stream kernel
        more than one chain position back that could still be running
        inside the window?

        With in-order completion and a pre-launch window of ``window``
        concurrent kernels per stream, a chain ancestor ``j`` can overlap
        kernel ``i`` iff it is fewer than ``window`` positions back;
        dependencies on the immediate predecessor are covered by the
        bipartite graph, so only positions 2..window-1 back need the
        coarse barrier (waiting for the grandparent's in-order completion
        point, which transitively covers all older chain members).
        """
        reads_i = self._footprint(kernels[i], "read")
        if reads_i.empty:
            return False
        ancestor = kernels[i].chain_grandparent
        hops = 2
        while ancestor is not None and hops < window:
            writes = self._footprint(kernels[ancestor], "write")
            if reads_i.overlaps(writes):
                return True
            ancestor = kernels[ancestor].chain_prev
            hops += 1
        return False

    def _attach_cross_stream_deps(self, kernels, deps, kernel_at_position):
        """Kernel-to-kernel data dependencies that cross streams become
        coarse completion barriers (fine-grain tracking is per queue)."""
        for plan in kernels:
            cross = []
            for dep_position in deps[plan.order_position]:
                dep_kernel = kernel_at_position.get(dep_position)
                if dep_kernel is None:
                    continue
                if kernels[dep_kernel].stream != plan.stream:
                    cross.append(dep_kernel)
            plan.cross_stream_deps = tuple(cross)

    def _footprint(self, plan: KernelPlan, kind) -> IntervalSet:
        """Kernel-level footprint; falls back to whole-buffer extents of
        the relevant pointer arguments when analysis fell back."""
        summary = plan.summary
        if summary.exact:
            return (
                summary.kernel_reads() if kind == "read" else summary.kernel_writes()
            )
        directions = kernel_param_directions(plan.call.kernel)
        names = directions.reads if kind == "read" else directions.writes
        intervals = []
        for name, buffer in plan.call.pointer_buffers().items():
            if name in names:
                intervals.append(buffer.interval())
        return IntervalSet(intervals)
