"""Thread-block scheduling policies (paper Section III-D).

* **Producer priority** (BlockMaestro's default): thread blocks of the
  producing (older) kernel are always preferred; consumer blocks are not
  scheduled until every producer block has been scheduled.  This drains
  producers fast, resolving the most dependencies per unit time.
* **Consumer priority**: ready consumer blocks are preferred, letting
  dependent kernels "run ahead" — more cross-kernel overlap (and the 2x
  result against Wireframe in Fig. 14), at the cost of slower producer
  completion.

Neither policy can deadlock: a consumer block only becomes schedulable
once its dependencies are satisfied, so consumers can never starve the
producer indefinitely — eventually consumer blocks stall on unmet
dependencies and producer blocks get the free slots.
"""

from enum import Enum


class SchedulingPolicy(str, Enum):
    PRODUCER_PRIORITY = "producer"
    CONSUMER_PRIORITY = "consumer"

    @property
    def prefers_consumer(self):
        return self is SchedulingPolicy.CONSUMER_PRIORITY
