"""Dependency-pattern detection (paper Table I / Fig. 8).

Inter-kernel thread-block dependency graphs are rarely arbitrary: SIMT
code indexes memory with regular expressions of the block index, so the
bipartite graphs fall into a small set of shapes the hardware can encode
compactly.  :func:`classify_pattern` recognizes the seven patterns of
Table I:

1. fully connected          — every child depends on every parent
2. n-group fully connected  — parent groups fully connected to
                               disjoint child groups
3. 1-to-1                   — child i depends exactly on parent i
4. 1-to-n                   — each parent owns exclusive children
5. n-to-1                   — each parent feeds at most one child
6. overlapped               — children depend on sliding contiguous
                               parent windows that share parents
7. independent              — no edges

plus ``arbitrary`` for anything else (stored as a plain list).
"""

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict

from repro.core.dependency_graph import BipartiteGraph, GraphKind


class DependencyPattern(str, Enum):
    FULLY_CONNECTED = "fully_connected"
    N_GROUP = "n_group"
    ONE_TO_ONE = "one_to_one"
    ONE_TO_N = "one_to_n"
    N_TO_ONE = "n_to_one"
    OVERLAPPED = "overlapped"
    INDEPENDENT = "independent"
    ARBITRARY = "arbitrary"

    @property
    def table1_number(self):
        """The paper's Table I row number for this pattern."""
        return {
            DependencyPattern.FULLY_CONNECTED: 1,
            DependencyPattern.N_GROUP: 2,
            DependencyPattern.ONE_TO_ONE: 3,
            DependencyPattern.ONE_TO_N: 4,
            DependencyPattern.N_TO_ONE: 5,
            DependencyPattern.OVERLAPPED: 6,
            DependencyPattern.INDEPENDENT: 7,
            DependencyPattern.ARBITRARY: 0,
        }[self]


@dataclass
class PatternInfo:
    pattern: DependencyPattern
    detail: Dict[str, object] = field(default_factory=dict)


def classify_pattern(graph: BipartiteGraph) -> PatternInfo:
    """Classify a bipartite graph into its Table I pattern.

    Checks run from most to least specific among the mutually ambiguous
    shapes (a 1-to-1 graph is also a degenerate n-group, 1-to-n and
    n-to-1; the specific label wins, matching the paper's taxonomy).
    """
    if graph.kind is GraphKind.INDEPENDENT:
        return PatternInfo(DependencyPattern.INDEPENDENT)
    if graph.kind is GraphKind.FULLY_CONNECTED:
        # A complete bipartite graph with a single parent (or child) is
        # degenerate: the paper's taxonomy calls a one-producer fan-out
        # 1-to-n and a many-producer fan-in n-to-1 (e.g. GAUSSIAN's
        # Fan1->Fan2 and Fan2->Fan1 pairs).  True fully connected
        # requires multiple blocks on both sides.
        if graph.num_parents == 1 and graph.num_children == 1:
            return PatternInfo(DependencyPattern.ONE_TO_ONE)
        if graph.num_parents == 1:
            return PatternInfo(
                DependencyPattern.ONE_TO_N,
                {"max_children_per_parent": graph.num_children},
            )
        if graph.num_children == 1:
            return PatternInfo(
                DependencyPattern.N_TO_ONE,
                {"max_parents_per_child": graph.num_parents},
            )
        return PatternInfo(DependencyPattern.FULLY_CONNECTED)

    children_of = graph.children_of
    n, m = graph.num_parents, graph.num_children

    if n == m and all(children_of[p] == (p,) for p in range(n)):
        return PatternInfo(DependencyPattern.ONE_TO_ONE)

    parents_of = [[] for _ in range(m)]
    for p, children in enumerate(children_of):
        for c in children:
            parents_of[c].append(p)

    if all(len(parents) <= 1 for parents in parents_of):
        return PatternInfo(
            DependencyPattern.ONE_TO_N,
            {"max_children_per_parent": graph.max_parent_out_degree()},
        )

    if all(len(children) <= 1 for children in children_of):
        return PatternInfo(
            DependencyPattern.N_TO_ONE,
            {"max_parents_per_child": graph.max_child_in_degree()},
        )

    groups = _match_n_group(children_of, parents_of)
    if groups is not None:
        return PatternInfo(DependencyPattern.N_GROUP, {"num_groups": groups})

    if _match_overlapped(parents_of):
        return PatternInfo(
            DependencyPattern.OVERLAPPED,
            {"max_degree": graph.max_child_in_degree()},
        )

    return PatternInfo(DependencyPattern.ARBITRARY)


def _match_n_group(children_of, parents_of):
    """n-group fully connected: parents sharing an identical child set
    form a group, and every child in that set must have exactly that
    parent group as its parents.  Returns the group count or ``None``."""
    group_of_children = {}
    for p, children in enumerate(children_of):
        if not children:
            continue
        group_of_children.setdefault(children, []).append(p)
    claimed_children = set()
    for children, parent_group in group_of_children.items():
        parent_set = sorted(parent_group)
        for c in children:
            if c in claimed_children:
                return None  # child sets must be disjoint across groups
            if parents_of[c] != parent_set:
                return None
            claimed_children.add(c)
    return len(group_of_children) or None


def _match_overlapped(parents_of):
    """Overlapped/stencil: each child's parents form a contiguous window,
    windows slide monotonically, and at least one parent is shared
    between two children (otherwise the graph would be 1-to-n)."""
    prev_lo = prev_hi = None
    shared = False
    seen_parents = set()
    for parents in parents_of:
        if not parents:
            continue
        lo, hi = parents[0], parents[-1]
        if hi - lo + 1 != len(parents):
            return False  # gap in the window
        if prev_lo is not None and (lo < prev_lo or hi < prev_hi):
            return False  # window moved backwards
        prev_lo, prev_hi = lo, hi
        if seen_parents.intersection(parents):
            shared = True
        seen_parents.update(parents)
    return shared
