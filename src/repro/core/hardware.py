"""Thread-block scheduler hardware model (paper Fig. 7).

Two structures support runtime dependency resolution:

* **Dependency List Buffer (DLB)** — per actively-running thread block,
  the list of its child TB IDs.  896 entries (28 SMs x 32 TBs), 4 child
  IDs per entry; wider lists span multiple entries or spill to the
  global-memory copy.
* **Parent Counter Buffer (PCB)** — per pending child TB, a 6-bit
  saturating count of unresolved parents.  An entry is allocated when a
  parent's list is buffered and deallocated when the child is selected
  for execution.

The full dependency list and initial counters always live in global
memory; the buffers are caches.  Their traffic is the memory-request
overhead of Figure 13: fetching a scheduled TB's dependency-list entry,
fetching/writing back parent counters, all in 128-byte lines.

:class:`DependencyHardware` provides both the area/storage arithmetic
(Section IV-C, ~22KB) and the per-graph request accounting used by the
execution models.
"""

import math
from dataclasses import dataclass

from repro.core.dependency_graph import BipartiteGraph, GraphKind
from repro.obs import resolve_metrics


@dataclass(frozen=True)
class HardwareConfig:
    dlb_entries: int = 896
    children_per_entry: int = 4
    pcb_entries: int = 896
    counter_bits: int = 6
    tb_id_bits: int = 32
    kernel_tag_bits: int = 2
    child_id_bits: int = 32
    line_bytes: int = 128

    @property
    def degree_threshold(self):
        """Maximum child in-degree the parent counter can represent."""
        return (1 << self.counter_bits)

    @property
    def dlb_entry_bits(self):
        """One DLB entry: tagged TB ID plus child ID slots."""
        return (
            self.tb_id_bits
            + self.kernel_tag_bits
            + self.children_per_entry * self.child_id_bits
        )

    @property
    def pcb_entry_bits(self):
        """One PCB entry: tagged TB ID plus the counter."""
        return self.tb_id_bits + self.kernel_tag_bits + self.counter_bits

    @property
    def total_storage_bytes(self):
        """Structure storage (the paper reports ~22KB total)."""
        bits = (
            self.dlb_entries * self.dlb_entry_bits
            + self.pcb_entries * self.pcb_entry_bits
        )
        return bits // 8


@dataclass
class PairTraffic:
    """Memory requests induced by one kernel-pair dependency graph."""

    list_fetch_requests: float = 0.0
    counter_requests: float = 0.0

    @property
    def total(self):
        return self.list_fetch_requests + self.counter_requests


class DependencyHardware:
    """Request accounting for the DLB/PCB against a dependency graph.

    When a :class:`~repro.obs.MetricsRegistry` is attached, every pair
    also feeds occupancy and spill counters: total DLB entries occupied
    (wide child lists span several entries — ``hw.dlb_spill_lists``
    counts those), PCB entries allocated, and pairs whose working set
    alone exceeds a buffer's capacity (``hw.*_overflow_pairs`` — the
    global-memory copy absorbs the spill).
    """

    def __init__(self, config: HardwareConfig = None, metrics=None):
        self.config = config or HardwareConfig()
        self.metrics = resolve_metrics(metrics)

    def pair_traffic(self, graph: BipartiteGraph) -> PairTraffic:
        """Requests to resolve one parent/child kernel pair.

        * independent: nothing to fetch.
        * fully connected (or collapsed): one metadata word describes
          the whole graph — a single request, no per-TB traffic.
        * explicit: each parent TB's child list is fetched when the TB
          is scheduled (ceil(4*out_degree / line) requests, at least one
          for any parent with children); the child kernel's parent
          counters are fetched once and written back as they decrement
          (2 * ceil(children_with_parents / counters_per_line)).
        """
        cfg = self.config
        m = self.metrics
        if graph.kind is GraphKind.INDEPENDENT:
            m.inc("hw.pairs_independent")
            return PairTraffic()
        if graph.kind is GraphKind.FULLY_CONNECTED:
            m.inc("hw.pairs_fully_connected")
            return PairTraffic(list_fetch_requests=1.0)
        list_requests = 0.0
        dlb_entries = 0
        spill_lists = 0
        max_out_degree = 0
        for p in range(graph.num_parents):
            out_degree = len(graph.children_of[p])
            if out_degree == 0:
                continue
            dlb_entries += self.dlb_entries_for(out_degree)
            if out_degree > cfg.children_per_entry:
                spill_lists += 1
            if out_degree > max_out_degree:
                max_out_degree = out_degree
            bytes_needed = 4 * out_degree
            list_requests += math.ceil(bytes_needed / cfg.line_bytes)
        counters_per_line = cfg.line_bytes  # 1 byte per 6-bit counter slot
        dependent_children = sum(1 for c in graph.parent_counts if c > 0)
        counter_requests = 2.0 * math.ceil(dependent_children / counters_per_line)
        if m.enabled:
            m.inc("hw.pairs_explicit")
            m.inc("hw.dlb_entries", dlb_entries)
            m.inc("hw.dlb_spill_lists", spill_lists)
            m.inc("hw.pcb_entries", dependent_children)
            m.inc("hw.list_fetch_requests", list_requests)
            m.inc("hw.counter_requests", counter_requests)
            if dlb_entries > cfg.dlb_entries:
                m.inc("hw.dlb_overflow_pairs")
            if dependent_children > cfg.pcb_entries:
                m.inc("hw.pcb_overflow_pairs")
            m.observe("hw.max_out_degree", max_out_degree)
            m.observe("hw.dependent_children", dependent_children)
        return PairTraffic(
            list_fetch_requests=list_requests, counter_requests=counter_requests
        )

    # ------------------------------------------------------------------
    # functional buffer model (used by tests and the scheduler model to
    # check capacity behaviour; timing impact is folded into the request
    # counts above)
    # ------------------------------------------------------------------
    def dlb_entries_for(self, out_degree):
        """DLB entries one parent TB occupies (wide lists span entries)."""
        if out_degree <= 0:
            return 1
        return math.ceil(out_degree / self.config.children_per_entry)

    def counter_fits(self, in_degree):
        return in_degree <= self.config.degree_threshold
