"""Bipartite thread-block dependency graphs (paper Fig. 1).

A graph connects the thread blocks of a *parent* kernel to the thread
blocks of the *child* kernel launched immediately after it in the
command queue.  An edge ``p -> c`` means child block ``c`` reads at
least one byte that parent block ``p`` writes (a RAW dependency; WAR and
WAW hazards can optionally be tracked too).

Because BlockMaestro enforces in-order kernel completion, only
consecutive kernel pairs need a graph; dependencies on older kernels are
implicit (Section III-B.1) — the runtime adds a coarse
``grandparent barrier`` when it detects a read from a kernel more than
one position back inside the pre-launch window.

Fully connected and empty graphs are represented symbolically rather
than materialized, both because the hardware encodes them in O(1)
(Table I) and because materializing ``N*M`` edges for e.g. AlexNet's
fully-connected layers would be wasteful in the simulator too.
"""

import bisect
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple


class GraphKind(str, Enum):
    INDEPENDENT = "independent"
    FULLY_CONNECTED = "fully_connected"
    EXPLICIT = "explicit"


@dataclass(frozen=True)
class BipartiteGraph:
    """Dependency graph between a parent and a child kernel.

    ``children_of`` / ``parent_counts`` are populated only for
    ``EXPLICIT`` graphs; the symbolic kinds answer queries analytically.
    """

    num_parents: int
    num_children: int
    kind: GraphKind
    children_of: Tuple[Tuple[int, ...], ...] = ()
    parent_counts: Tuple[int, ...] = ()

    # ------------------------------------------------------------------
    @classmethod
    def independent(cls, num_parents, num_children):
        return cls(num_parents, num_children, GraphKind.INDEPENDENT)

    @classmethod
    def fully_connected(cls, num_parents, num_children):
        return cls(num_parents, num_children, GraphKind.FULLY_CONNECTED)

    @classmethod
    def explicit(cls, num_parents, num_children, children_of):
        children_of = tuple(tuple(sorted(set(ch))) for ch in children_of)
        if len(children_of) != num_parents:
            raise ValueError("children_of must have one entry per parent")
        counts = [0] * num_children
        for children in children_of:
            for c in children:
                if not 0 <= c < num_children:
                    raise ValueError("child id %d out of range" % c)
                counts[c] += 1
        total = sum(counts)
        return cls.explicit_prebuilt(
            num_parents, num_children, children_of, tuple(counts), total
        )

    @classmethod
    def explicit_prebuilt(
        cls, num_parents, num_children, children_of, parent_counts, total
    ):
        """Explicit graph from already-canonical adjacency.

        ``children_of`` must be a tuple of sorted, duplicate-free tuples
        of in-range python ints, ``parent_counts`` the matching
        in-degree tuple and ``total`` the edge count — the closed-form /
        vectorized graph builders produce adjacency in exactly this form
        and skip :meth:`explicit`'s O(E log E) re-canonicalization.  The
        same collapse rules apply, so the result is indistinguishable
        from :meth:`explicit` on equivalent input.
        """
        if total == 0:
            return cls.independent(num_parents, num_children)
        if total == num_parents * num_children:
            return cls.fully_connected(num_parents, num_children)
        return cls(
            num_parents,
            num_children,
            GraphKind.EXPLICIT,
            children_of=children_of,
            parent_counts=parent_counts,
        )

    # ------------------------------------------------------------------
    @property
    def is_independent(self):
        return self.kind is GraphKind.INDEPENDENT

    @property
    def is_fully_connected(self):
        return self.kind is GraphKind.FULLY_CONNECTED

    @property
    def num_edges(self):
        if self.kind is GraphKind.INDEPENDENT:
            return 0
        if self.kind is GraphKind.FULLY_CONNECTED:
            return self.num_parents * self.num_children
        return sum(len(ch) for ch in self.children_of)

    def children(self, parent_tb):
        if not 0 <= parent_tb < self.num_parents:
            raise IndexError("parent %d out of range" % parent_tb)
        if self.kind is GraphKind.INDEPENDENT:
            return ()
        if self.kind is GraphKind.FULLY_CONNECTED:
            return tuple(range(self.num_children))
        return self.children_of[parent_tb]

    def parent_count(self, child_tb):
        if not 0 <= child_tb < self.num_children:
            raise IndexError("child %d out of range" % child_tb)
        if self.kind is GraphKind.INDEPENDENT:
            return 0
        if self.kind is GraphKind.FULLY_CONNECTED:
            return self.num_parents
        return self.parent_counts[child_tb]

    def parents_of(self, child_tb):
        """Inverse adjacency (computed on demand; test/analysis helper)."""
        if self.kind is GraphKind.INDEPENDENT:
            return ()
        if self.kind is GraphKind.FULLY_CONNECTED:
            return tuple(range(self.num_parents))
        parents = []
        for p, children in enumerate(self.children_of):
            # children tuples are sorted: bisect beats the O(deg)
            # tuple-membership scan on wide fan-outs
            i = bisect.bisect_left(children, child_tb)
            if i < len(children) and children[i] == child_tb:
                parents.append(p)
        return tuple(parents)

    def max_child_in_degree(self):
        if self.kind is GraphKind.INDEPENDENT:
            return 0
        if self.kind is GraphKind.FULLY_CONNECTED:
            return self.num_parents
        return max(self.parent_counts)

    def max_parent_out_degree(self):
        if self.kind is GraphKind.INDEPENDENT:
            return 0
        if self.kind is GraphKind.FULLY_CONNECTED:
            return self.num_children
        return max((len(ch) for ch in self.children_of), default=0)

    def to_dot(self, parent_label="Kp", child_label="Kc", max_nodes=64):
        """Render the bipartite graph in Graphviz DOT (paper Fig. 1 style).

        Graphs wider than ``max_nodes`` on either side are truncated
        with an ellipsis node, keeping the output viewable.
        """
        lines = [
            "digraph dependencies {",
            "  rankdir=TB;",
            '  node [shape=box, fontsize=10];',
        ]
        n = min(self.num_parents, max_nodes)
        m = min(self.num_children, max_nodes)
        for p in range(n):
            lines.append('  "{}:{}" [rank=source];'.format(parent_label, p))
        if self.num_parents > max_nodes:
            lines.append('  "{}:...";'.format(parent_label))
        for c in range(m):
            lines.append('  "{}:{}";'.format(child_label, c))
        if self.num_children > max_nodes:
            lines.append('  "{}:...";'.format(child_label))
        if self.kind is GraphKind.FULLY_CONNECTED and (
            self.num_parents > max_nodes or self.num_children > max_nodes
        ):
            lines.append(
                '  "{}:0" -> "{}:0" [label="fully connected", style=bold];'.format(
                    parent_label, child_label
                )
            )
        else:
            for p in range(n):
                for c in self.children(p):
                    if c < m:
                        lines.append(
                            '  "{}:{}" -> "{}:{}";'.format(
                                parent_label, p, child_label, c
                            )
                        )
        lines.append("}")
        return "\n".join(lines)

    def edges(self):
        """Iterate ``(parent, child)`` pairs.  Avoid on symbolic FC graphs
        of large kernels — the edge set is quadratic by definition."""
        if self.kind is GraphKind.INDEPENDENT:
            return
        if self.kind is GraphKind.FULLY_CONNECTED:
            for p in range(self.num_parents):
                for c in range(self.num_children):
                    yield (p, c)
            return
        for p, children in enumerate(self.children_of):
            for c in children:
                yield (p, c)


class EdgeBudgetExceeded(Exception):
    """Internal: explicit construction crossed ``max_explicit_edges``."""


#: Default cap before an explicit graph collapses to fully connected.
DEFAULT_MAX_EXPLICIT_EDGES = 4_000_000


def build_bipartite_graph(
    parent_summary,
    child_summary,
    hazards=("raw",),
    max_explicit_edges=DEFAULT_MAX_EXPLICIT_EDGES,
):
    """Build the dependency graph between two analyzed kernel launches.

    ``hazards`` selects which hazard classes create edges:

    * ``raw`` — child reads vs. parent writes (the paper's choice);
    * ``waw`` — child writes vs. parent writes;
    * ``war`` — child writes vs. parent reads.

    If either kernel's analysis fell back, the graph is conservatively
    fully connected — the child cannot start until the parent finishes,
    exactly the paper's Algorithm 1 bail-out behaviour.  If the explicit
    edge count crosses ``max_explicit_edges`` the graph also collapses
    to fully connected (a legal over-approximation; the hardware would
    do the same via its degree threshold).
    """
    num_parents = parent_summary.num_tbs
    num_children = child_summary.num_tbs
    if parent_summary.fallback or child_summary.fallback:
        return BipartiteGraph.fully_connected(num_parents, num_children)

    pairs = []
    if "raw" in hazards:
        pairs.append(("write", "read"))
    if "waw" in hazards:
        pairs.append(("write", "write"))
    if "war" in hazards:
        pairs.append(("read", "write"))
    if not pairs:
        raise ValueError("at least one hazard class required")

    # Kernel-level prefilter: skip the per-TB sweep entirely when the
    # kernels touch disjoint memory.
    relevant = False
    for parent_kind, child_kind in pairs:
        parent_set = (
            parent_summary.kernel_writes()
            if parent_kind == "write"
            else parent_summary.kernel_reads()
        )
        child_set = (
            child_summary.kernel_reads()
            if child_kind == "read"
            else child_summary.kernel_writes()
        )
        if parent_set.overlaps(child_set):
            relevant = True
            break
    if not relevant:
        return BipartiteGraph.independent(num_parents, num_children)

    parent_kinds = {pk for pk, _ in pairs}
    child_kinds = {ck for _, ck in pairs}
    index = _ParentIntervalIndex(parent_summary, parent_kinds)

    children_of = [set() for _ in range(num_parents)]
    total_edges = 0
    try:
        for child_tb in range(num_children):
            child_intervals = []
            if "read" in child_kinds:
                child_intervals.extend(child_summary.tb_reads(child_tb))
            if "write" in child_kinds:
                child_intervals.extend(child_summary.tb_writes(child_tb))
            parents = index.overlapping_parents(child_intervals)
            for p in parents:
                if child_tb not in children_of[p]:
                    children_of[p].add(child_tb)
                    total_edges += 1
                    if total_edges > max_explicit_edges:
                        raise EdgeBudgetExceeded()
    except EdgeBudgetExceeded:
        return BipartiteGraph.fully_connected(num_parents, num_children)

    return BipartiteGraph.explicit(num_parents, num_children, children_of)


class _ParentIntervalIndex:
    """Sorted interval list with a prefix-max pruning array.

    Entries are ``(lo, hi, parent_tb)`` sorted by ``lo``; queries bisect
    to the last entry whose ``lo`` is below the probe's ``hi`` and walk
    left while the running maximum of ``hi`` still reaches the probe.
    """

    def __init__(self, parent_summary, kinds):
        entries = []
        for tb in range(parent_summary.num_tbs):
            sets = []
            if "write" in kinds:
                sets.append(parent_summary.tb_writes(tb))
            if "read" in kinds:
                sets.append(parent_summary.tb_reads(tb))
            for interval_set in sets:
                for iv in interval_set:
                    entries.append((iv.lo, iv.hi, tb))
        entries.sort()
        self._los = [e[0] for e in entries]
        self._entries = entries
        self._prefix_max_hi = []
        running = float("-inf")
        for _lo, hi, _tb in entries:
            running = max(running, hi)
            self._prefix_max_hi.append(running)

    def overlapping_parents(self, probe_intervals):
        found = set()
        for probe in probe_intervals:
            idx = bisect.bisect_left(self._los, probe.hi) - 1
            j = idx
            while j >= 0 and self._prefix_max_hi[j] > probe.lo:
                lo, hi, tb = self._entries[j]
                if hi > probe.lo and lo < probe.hi:
                    found.add(tb)
                j -= 1
        # deterministic result order regardless of set iteration /
        # PYTHONHASHSEED — callers consume parents in ascending TB order
        return tuple(sorted(found))
