"""Programmer-transparent command-queue reordering (paper Fig. 5).

The baseline command queue carries calls in program order; blocking
memory APIs interleaved between kernel launches prevent the queue from
holding several kernels at once, which is what kernel pre-launching
needs.  BlockMaestro reorders the queue — preserving every true data
dependency between API calls — so kernel launches sit adjacent to each
other and memory operations move as early as their dependencies allow.

Implementation: Kahn's algorithm over the trace's dependency DAG with a
priority that favours (a) memory/allocation calls feeding upcoming
kernels, then (b) kernel launches, then (c) trailing host-bound calls
(device-to-host copies, synchronizes).  Within a class, program order
breaks ties, keeping the result deterministic and stable.
"""

import heapq

from repro.host.api import DeviceSynchronize, KernelLaunchCall, MemcpyD2H
from repro.host.trace import APITrace


def reorder_trace(trace: APITrace):
    """Return the reordered call list (original call objects, new order).

    The output is always a valid topological order of
    :meth:`APITrace.true_dependencies`, so replaying it respects every
    RAW/WAR/WAW relation of the original program.
    """
    deps = [set(d) for d in trace.true_dependencies()]
    calls = trace.calls
    n = len(calls)
    # Kernel launches keep their relative program order: the reordering
    # pass moves *memory operations* around kernels (Fig. 5c), never
    # kernels around each other — kernel order defines the parent/child
    # chains the dependency graphs are built on.
    previous_kernel = None
    for i, call in enumerate(calls):
        if call.is_kernel:
            if previous_kernel is not None:
                deps[i].add(previous_kernel)
            previous_kernel = i
    dependents = [[] for _ in range(n)]
    indegree = [0] * n
    for i, prereqs in enumerate(deps):
        indegree[i] = len(prereqs)
        for p in prereqs:
            dependents[p].append(i)

    def priority(i):
        call = calls[i]
        if isinstance(call, KernelLaunchCall):
            klass = 1
        elif isinstance(call, (MemcpyD2H, DeviceSynchronize)):
            klass = 2
        else:
            klass = 0
        return (klass, i)

    heap = [priority(i) for i in range(n) if indegree[i] == 0]
    heapq.heapify(heap)
    order = []
    while heap:
        _klass, i = heapq.heappop(heap)
        order.append(calls[i])
        for j in dependents[i]:
            indegree[j] -= 1
            if indegree[j] == 0:
                heapq.heappush(heap, priority(j))
    if len(order) != n:
        raise RuntimeError("dependency cycle in API trace (bug)")
    return order


def reorder_distance(original_calls, reordered_calls):
    """Total displacement of calls, a simple effectiveness metric."""
    position = {id(call): i for i, call in enumerate(original_calls)}
    return sum(
        abs(position[id(call)] - j) for j, call in enumerate(reordered_calls)
    )
