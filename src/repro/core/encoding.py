"""Pattern-aware encoding of bipartite dependency graphs.

Storage model (paper Section III-E, Tables I and III):

* *plain* storage keeps the dependency list literally: a 4-byte child TB
  ID per edge plus a 4-byte per-parent index — ``4*E + 4*N`` bytes.  A
  fully connected graph stored plainly costs ``4*N*M + 4*N`` (the
  paper's "O(MN) without encoding").
* *encoded* storage exploits the detected pattern:

  - fully connected / independent: a single flag word (O(1));
  - n-group fully connected: one group pointer per parent and one group
    descriptor per child — ``4*(N + M)``;
  - 1-to-1, 1-to-n, n-to-1, overlapped, arbitrary: the dependency list
    itself is already within a constant factor of the pattern's Table I
    bound, so the encoded form equals plain storage (this is why those
    applications show a ratio of exactly 1 in the paper's Table III).

* *degree threshold*: the hardware's parent counters are 6 bits wide, so
  a graph whose maximum child in-degree exceeds 64 is conservatively
  re-encoded as fully connected — "the device can ignore the
  fine-grained dependency resolution and treat the kernels as if they
  are fully connected".  This is what collapses GAUSSIAN-like patterns
  to near-zero storage in Table III, and it is also a *behavioural*
  change: the effective graph used by the scheduler is the collapsed
  one.
"""

from dataclasses import dataclass

from repro.core.dependency_graph import BipartiteGraph, GraphKind
from repro.core.patterns import DependencyPattern, PatternInfo, classify_pattern

#: bytes per thread-block identifier (32-bit ID; the 2 kernel tag bits
#: ride in the same word)
ID_BYTES = 4
#: default maximum encodable child in-degree (6-bit parent counter)
DEFAULT_DEGREE_THRESHOLD = 64


def plain_bytes(graph: BipartiteGraph) -> int:
    """Un-encoded dependency-list size in bytes."""
    if graph.num_edges == 0:
        return 0
    return ID_BYTES * graph.num_edges + ID_BYTES * graph.num_parents


@dataclass
class EncodedGraph:
    """An encoding decision for one kernel-pair graph."""

    original: BipartiteGraph
    effective: BipartiteGraph  # what the scheduler enforces
    #: pattern of the graph as analyzed (Table II reporting)
    original_pattern: PatternInfo
    #: pattern actually enforced after any degree collapse
    pattern: PatternInfo
    encoded_bytes: int
    plain_bytes: int
    collapsed: bool = False  # degree threshold forced fully-connected

    @property
    def storage_ratio(self):
        if self.plain_bytes == 0:
            return None
        return self.encoded_bytes / self.plain_bytes


def encoded_bytes(graph: BipartiteGraph, pattern: PatternInfo) -> int:
    """Encoded size for a graph under its detected pattern."""
    if pattern.pattern is DependencyPattern.INDEPENDENT:
        return 0
    if pattern.pattern is DependencyPattern.FULLY_CONNECTED:
        return ID_BYTES
    if pattern.pattern is DependencyPattern.N_GROUP:
        # one group pointer per parent + one descriptor per child; for
        # sparse graphs the plain list may already be smaller — the
        # encoder picks whichever representation is cheaper
        return min(
            ID_BYTES * (graph.num_parents + graph.num_children),
            plain_bytes(graph),
        )
    return plain_bytes(graph)


def encode_graph(
    graph: BipartiteGraph, degree_threshold=DEFAULT_DEGREE_THRESHOLD
) -> EncodedGraph:
    """Pick the encoding (and possibly collapse) for a dependency graph.

    A graph whose maximum child in-degree exceeds the parent counter's
    capacity cannot be resolved at fine grain: it is re-encoded — and
    *enforced* — as fully connected (a single flag word), unless the
    n-group encoding already represents it compactly.
    """
    plain = plain_bytes(graph)
    original_pattern = classify_pattern(graph)
    collapsed = False
    effective = graph
    pattern = original_pattern
    max_in = (
        0 if graph.kind is GraphKind.INDEPENDENT else graph.max_child_in_degree()
    )
    if max_in > degree_threshold and original_pattern.pattern not in (
        DependencyPattern.FULLY_CONNECTED,
        DependencyPattern.INDEPENDENT,
    ):
        effective = BipartiteGraph.fully_connected(
            graph.num_parents, graph.num_children
        )
        pattern = PatternInfo(
            DependencyPattern.FULLY_CONNECTED, {"collapsed_from": max_in}
        )
        collapsed = True
    if collapsed:
        size = ID_BYTES
    else:
        size = encoded_bytes(effective, pattern)
    return EncodedGraph(
        original=graph,
        effective=effective,
        original_pattern=original_pattern,
        pattern=pattern,
        encoded_bytes=size,
        plain_bytes=plain,
        collapsed=collapsed,
    )
