"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                          — the benchmark suite (Table II)
* ``analyze <workload>``            — run launch-time analysis, print
                                      per-kernel patterns and storage
* ``run <workload> [--model M]``    — simulate and print a timeline
                                      (``--json [FILE]`` for RunStats JSON)
* ``compare <workload>``            — all roster models side by side
                                      (``--json [FILE]`` for RunStats JSON)
* ``trace <workload> [--model M]``  — export a Chrome trace-event JSON
                                      (open in Perfetto) + metrics sidecar
* ``blame <workload> [--model M]``  — systemd-analyze-style attribution:
                                      simulated time per kernel, wall
                                      clock per pipeline phase
* ``experiments [names...]``        — regenerate paper tables/figures
                                      (``--out DIR`` for JSON reports)
* ``ablations``                     — the design-choice sweeps

Model names accept the roster (``baseline``, ``ideal``, ``prelaunch``,
``producer``, ``consumer2``..``consumer4``) plus the ``blockmaestro``
alias for the headline consumer/window-3 configuration.
"""

import argparse
import json
import sys

from repro.core.runtime import BlockMaestroRuntime
from repro.experiments.common import (
    MODEL_ALIASES,
    STANDARD_MODELS,
    ExperimentContext,
    _make_model,
    _model_plan_params,
    canonical_model_name,
    format_table,
)
from repro.obs import MetricsRegistry, Tracer
from repro.obs.report import format_blame, run_stats_dict
from repro.sim.timeline import compare_timelines, render_kernel_timeline
from repro.workloads import all_workloads, get_workload

MODEL_NAMES = [m[0] for m in STANDARD_MODELS]
MODEL_CHOICES = MODEL_NAMES + sorted(MODEL_ALIASES)


def cmd_list(_args):
    rows = [
        {
            "name": spec.name,
            "suite": spec.suite,
            "kernels": spec.paper_kernels,
            "patterns": ",".join(str(p) for p in spec.paper_patterns),
            "description": spec.description,
        }
        for spec in all_workloads()
    ]
    print(
        format_table(
            rows,
            ["name", "suite", "kernels", "patterns", "description"],
            title="Benchmark suite (paper Table II)",
        )
    )


def cmd_analyze(args):
    app = get_workload(args.workload).build()
    runtime = BlockMaestroRuntime()
    plan = runtime.plan(app, reorder=True, window=args.window)
    rows = []
    for kp in plan.kernels[: args.limit]:
        enc = kp.encoded
        rows.append(
            {
                "kernel": kp.name,
                "blocks": kp.num_tbs,
                "pattern": "-" if enc is None else enc.original_pattern.pattern.value,
                "edges": "-" if enc is None else enc.original.num_edges,
                "collapsed": "-" if enc is None else ("yes" if enc.collapsed else "no"),
                "encoded_B": "-" if enc is None else enc.encoded_bytes,
                "fallback": kp.summary.fallback or "-",
            }
        )
    print(
        format_table(
            rows,
            ["kernel", "blocks", "pattern", "edges", "collapsed", "encoded_B", "fallback"],
            title="Launch-time analysis: {} (first {} kernels)".format(
                app.name, args.limit
            ),
        )
    )
    print(
        "\ntotal dependency-graph storage: {} B encoded / {} B plain".format(
            plan.graph_encoded_bytes, plan.graph_plain_bytes
        )
    )
    print(
        "analysis wall time: {:.1f} ms total, {:.2f} ms per launch "
        "(JIT-time work, masked by pre-launching)".format(
            plan.analysis_seconds * 1e3,
            plan.analysis_seconds_per_kernel() * 1e3,
        )
    )


def _emit_json(payload, destination):
    """Write a JSON payload to stdout (``-``) or a file path."""
    text = json.dumps(payload, indent=2, sort_keys=True)
    if destination == "-":
        print(text)
    else:
        with open(destination, "w") as handle:
            handle.write(text + "\n")
        print("wrote", destination)


def cmd_run(args):
    app = get_workload(args.workload).build()
    ctx = ExperimentContext()
    ctx.register_app(app)
    stats = ctx.run_model(app, args.model)
    if args.json == "-":
        _emit_json(run_stats_dict(stats, include_tb_records=args.tb_records), "-")
        return
    print(render_kernel_timeline(stats, width=args.width))
    print()
    print("model     :", stats.model)
    print("makespan  : {:.1f} us".format(stats.makespan_ns / 1000))
    print("concurrency: {:.1f} avg thread blocks".format(stats.avg_tb_concurrency()))
    q1, med, q3 = stats.stall_quartiles()
    print("stalls    : q1={:.2f} median={:.2f} q3={:.2f}".format(q1, med, q3))
    if args.json:
        _emit_json(
            run_stats_dict(stats, include_tb_records=args.tb_records), args.json
        )


def cmd_compare(args):
    app = get_workload(args.workload).build()
    ctx = ExperimentContext()
    ctx.register_app(app)
    runs = [ctx.run_model(app, name) for name in MODEL_NAMES]
    baseline = runs[0]
    if args.json:
        payload = {
            "workload": app.name,
            "baseline": baseline.model,
            "runs": [
                dict(run_stats_dict(stats), speedup=stats.speedup_over(baseline))
                for stats in runs
            ],
        }
        _emit_json(payload, args.json)
        if args.json == "-":
            return
    rows = [
        {
            "model": stats.model,
            "makespan_us": stats.makespan_ns / 1000,
            "speedup": stats.speedup_over(baseline),
            "concurrency": stats.avg_tb_concurrency(),
        }
        for stats in runs
    ]
    print(
        format_table(
            rows,
            ["model", "makespan_us", "speedup", "concurrency"],
            title="Model comparison: {}".format(app.name),
        )
    )
    if args.timelines:
        print()
        print(compare_timelines(runs[:1] + runs[2:], width=args.width))


def _traced_run(workload, model_name):
    """Build, plan, and simulate one workload under full observation.

    Returns ``(app, stats, tracer, metrics)`` — shared by ``trace`` and
    ``blame``.
    """
    tracer = Tracer()
    metrics = MetricsRegistry()
    spec = get_workload(workload)
    with tracer.span("workload.build:{}".format(spec.name), cat="ptx"):
        app = spec.build()  # PTX parse + trace construction
    model_name = canonical_model_name(model_name)
    reorder, window = _model_plan_params(model_name)
    runtime = BlockMaestroRuntime(tracer=tracer, metrics=metrics)
    plan = runtime.plan(app, reorder=reorder, window=window)
    model = _make_model(model_name, runtime.config)
    stats = model.run(plan, tracer=tracer, metrics=metrics)
    return app, stats, tracer, metrics


def cmd_trace(args):
    app, stats, tracer, metrics = _traced_run(args.workload, args.model)
    out = args.output or "{}-trace.json".format(app.name)
    tracer.write(out)
    sidecar = args.metrics_out or (
        out[: -len(".json")] + ".metrics.json" if out.endswith(".json")
        else out + ".metrics.json"
    )
    metrics.write(sidecar)
    print("model    :", stats.model)
    print("makespan : {:.1f} us (simulated)".format(stats.makespan_ns / 1000))
    print("events   : {} trace events -> {}".format(len(tracer), out))
    print("metrics  : {} -> open the trace at https://ui.perfetto.dev".format(sidecar))


def cmd_blame(args):
    _app, stats, tracer, _metrics = _traced_run(args.workload, args.model)
    print(format_blame(stats, tracer=tracer, limit=args.limit))


def cmd_dot(args):
    app = get_workload(args.workload).build()
    runtime = BlockMaestroRuntime()
    plan = runtime.plan(app, reorder=True, window=3)
    kernels = [kp for kp in plan.kernels if kp.encoded is not None]
    if not kernels:
        raise SystemExit("workload has no dependent kernel pairs")
    index = max(0, min(args.pair, len(kernels) - 1))
    kp = kernels[index]
    parent = plan.kernels[kp.chain_prev]
    print(
        kp.encoded.original.to_dot(
            parent_label=parent.name, child_label=kp.name,
            max_nodes=args.max_nodes,
        )
    )


def cmd_validate(args):
    """Functional replay validation: simulate, replay the block start
    order at real values, diff against serialized execution."""
    from repro.models import BlockMaestroModel
    from repro.sim.funcsim import FunctionalSimulator, schedule_from_stats
    from repro.core.policy import SchedulingPolicy

    spec = get_workload(args.workload)
    app = spec.build_small()
    print(app.describe(), "(scaled-down variant)")
    runtime = BlockMaestroRuntime(hazards=("raw", "war", "waw"))
    plan = runtime.plan(app, reorder=True, window=args.window)
    golden = FunctionalSimulator(app.allocator).run_application(app)
    for policy in SchedulingPolicy:
        stats = BlockMaestroModel(window=args.window, policy=policy).run(plan)
        replayed = FunctionalSimulator(app.allocator).run_application(
            app, tb_order=schedule_from_stats(stats)
        )
        verdict = "PASS" if replayed == golden else "FAIL"
        print(
            "  {:10s} policy: {} ({} thread blocks replayed)".format(
                policy.value, verdict, len(stats.tb_records)
            )
        )
        if verdict == "FAIL":
            raise SystemExit(1)
    print("schedules preserve program semantics.")


def cmd_experiments(args):
    from repro.experiments import runner

    runner.run_all(args.names or None, out_dir=args.out)


def cmd_ablations(_args):
    from repro.experiments import ablations

    ablations.main()


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="BlockMaestro reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite")

    p_analyze = sub.add_parser("analyze", help="launch-time analysis report")
    p_analyze.add_argument("workload")
    p_analyze.add_argument("--window", type=int, default=3)
    p_analyze.add_argument("--limit", type=int, default=24)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("workload")
    p_run.add_argument("--model", choices=MODEL_CHOICES, default="consumer3")
    p_run.add_argument("--width", type=int, default=72)
    p_run.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="dump RunStats as JSON to stdout (no FILE) or FILE",
    )
    p_run.add_argument(
        "--tb-records",
        action="store_true",
        help="include per-thread-block records in --json output",
    )

    p_compare = sub.add_parser("compare", help="all models on one workload")
    p_compare.add_argument("workload")
    p_compare.add_argument("--timelines", action="store_true")
    p_compare.add_argument("--width", type=int, default=72)
    p_compare.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="dump every model's RunStats as JSON to stdout or FILE",
    )

    p_trace = sub.add_parser(
        "trace", help="export a Chrome trace-event JSON (Perfetto-loadable)"
    )
    p_trace.add_argument("workload")
    p_trace.add_argument("--model", choices=MODEL_CHOICES, default="consumer3")
    p_trace.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="trace path (default: <workload>-trace.json)",
    )
    p_trace.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="metrics sidecar path (default: <trace>.metrics.json)",
    )

    p_blame = sub.add_parser(
        "blame", help="attribute simulated/wall time, worst offenders first"
    )
    p_blame.add_argument("workload")
    p_blame.add_argument("--model", choices=MODEL_CHOICES, default="consumer3")
    p_blame.add_argument(
        "--limit", type=int, default=None,
        help="show only the N most expensive kernels",
    )

    p_exp = sub.add_parser("experiments", help="regenerate paper artifacts")
    p_exp.add_argument("names", nargs="*")
    p_exp.add_argument(
        "--out", default=None, metavar="DIR",
        help="also write one JSON report per experiment into DIR",
    )

    p_dot = sub.add_parser("dot", help="Graphviz DOT of a kernel-pair graph")
    p_dot.add_argument("workload")
    p_dot.add_argument("--pair", type=int, default=0)
    p_dot.add_argument("--max-nodes", type=int, default=32)

    p_val = sub.add_parser(
        "validate", help="functional replay check on a scaled-down workload"
    )
    p_val.add_argument("workload")
    p_val.add_argument("--window", type=int, default=3)

    sub.add_parser("ablations", help="design-choice sweeps")
    return parser


COMMANDS = {
    "list": cmd_list,
    "dot": cmd_dot,
    "validate": cmd_validate,
    "analyze": cmd_analyze,
    "run": cmd_run,
    "compare": cmd_compare,
    "trace": cmd_trace,
    "blame": cmd_blame,
    "experiments": cmd_experiments,
    "ablations": cmd_ablations,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        COMMANDS[args.command](args)
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away; not an error
        try:
            sys.stdout.close()
        except OSError:
            pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
