"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                          — the benchmark suite (Table II)
* ``analyze <workload>``            — run launch-time analysis, print
                                      per-kernel patterns and storage
* ``run <workload> [--model M]``    — simulate and print a timeline
* ``compare <workload>``            — all roster models side by side
* ``experiments [names...]``        — regenerate paper tables/figures
* ``ablations``                     — the design-choice sweeps
"""

import argparse
import sys

from repro.core.runtime import BlockMaestroRuntime
from repro.experiments.common import (
    STANDARD_MODELS,
    ExperimentContext,
    _make_model,
    _model_plan_params,
    format_table,
)
from repro.sim.timeline import compare_timelines, render_kernel_timeline
from repro.workloads import all_workloads, get_workload

MODEL_NAMES = [m[0] for m in STANDARD_MODELS]


def cmd_list(_args):
    rows = [
        {
            "name": spec.name,
            "suite": spec.suite,
            "kernels": spec.paper_kernels,
            "patterns": ",".join(str(p) for p in spec.paper_patterns),
            "description": spec.description,
        }
        for spec in all_workloads()
    ]
    print(
        format_table(
            rows,
            ["name", "suite", "kernels", "patterns", "description"],
            title="Benchmark suite (paper Table II)",
        )
    )


def cmd_analyze(args):
    app = get_workload(args.workload).build()
    runtime = BlockMaestroRuntime()
    plan = runtime.plan(app, reorder=True, window=args.window)
    rows = []
    for kp in plan.kernels[: args.limit]:
        enc = kp.encoded
        rows.append(
            {
                "kernel": kp.name,
                "blocks": kp.num_tbs,
                "pattern": "-" if enc is None else enc.original_pattern.pattern.value,
                "edges": "-" if enc is None else enc.original.num_edges,
                "collapsed": "-" if enc is None else ("yes" if enc.collapsed else "no"),
                "encoded_B": "-" if enc is None else enc.encoded_bytes,
                "fallback": kp.summary.fallback or "-",
            }
        )
    print(
        format_table(
            rows,
            ["kernel", "blocks", "pattern", "edges", "collapsed", "encoded_B", "fallback"],
            title="Launch-time analysis: {} (first {} kernels)".format(
                app.name, args.limit
            ),
        )
    )
    print(
        "\ntotal dependency-graph storage: {} B encoded / {} B plain".format(
            plan.graph_encoded_bytes, plan.graph_plain_bytes
        )
    )
    print(
        "analysis wall time: {:.1f} ms total, {:.2f} ms per launch "
        "(JIT-time work, masked by pre-launching)".format(
            plan.analysis_seconds * 1e3,
            plan.analysis_seconds_per_kernel() * 1e3,
        )
    )


def cmd_run(args):
    app = get_workload(args.workload).build()
    ctx = ExperimentContext()
    ctx.register_app(app)
    stats = ctx.run_model(app, args.model)
    print(render_kernel_timeline(stats, width=args.width))
    print()
    print("model     :", stats.model)
    print("makespan  : {:.1f} us".format(stats.makespan_ns / 1000))
    print("concurrency: {:.1f} avg thread blocks".format(stats.avg_tb_concurrency()))
    q1, med, q3 = stats.stall_quartiles()
    print("stalls    : q1={:.2f} median={:.2f} q3={:.2f}".format(q1, med, q3))


def cmd_compare(args):
    app = get_workload(args.workload).build()
    ctx = ExperimentContext()
    ctx.register_app(app)
    runs = [ctx.run_model(app, name) for name in MODEL_NAMES]
    baseline = runs[0]
    rows = [
        {
            "model": stats.model,
            "makespan_us": stats.makespan_ns / 1000,
            "speedup": stats.speedup_over(baseline),
            "concurrency": stats.avg_tb_concurrency(),
        }
        for stats in runs
    ]
    print(
        format_table(
            rows,
            ["model", "makespan_us", "speedup", "concurrency"],
            title="Model comparison: {}".format(app.name),
        )
    )
    if args.timelines:
        print()
        print(compare_timelines(runs[:1] + runs[2:], width=args.width))


def cmd_dot(args):
    app = get_workload(args.workload).build()
    runtime = BlockMaestroRuntime()
    plan = runtime.plan(app, reorder=True, window=3)
    kernels = [kp for kp in plan.kernels if kp.encoded is not None]
    if not kernels:
        raise SystemExit("workload has no dependent kernel pairs")
    index = max(0, min(args.pair, len(kernels) - 1))
    kp = kernels[index]
    parent = plan.kernels[kp.chain_prev]
    print(
        kp.encoded.original.to_dot(
            parent_label=parent.name, child_label=kp.name,
            max_nodes=args.max_nodes,
        )
    )


def cmd_validate(args):
    """Functional replay validation: simulate, replay the block start
    order at real values, diff against serialized execution."""
    from repro.models import BlockMaestroModel
    from repro.sim.funcsim import FunctionalSimulator, schedule_from_stats
    from repro.core.policy import SchedulingPolicy

    spec = get_workload(args.workload)
    app = spec.build_small()
    print(app.describe(), "(scaled-down variant)")
    runtime = BlockMaestroRuntime(hazards=("raw", "war", "waw"))
    plan = runtime.plan(app, reorder=True, window=args.window)
    golden = FunctionalSimulator(app.allocator).run_application(app)
    for policy in SchedulingPolicy:
        stats = BlockMaestroModel(window=args.window, policy=policy).run(plan)
        replayed = FunctionalSimulator(app.allocator).run_application(
            app, tb_order=schedule_from_stats(stats)
        )
        verdict = "PASS" if replayed == golden else "FAIL"
        print(
            "  {:10s} policy: {} ({} thread blocks replayed)".format(
                policy.value, verdict, len(stats.tb_records)
            )
        )
        if verdict == "FAIL":
            raise SystemExit(1)
    print("schedules preserve program semantics.")


def cmd_experiments(args):
    from repro.experiments import runner

    runner.run_all(args.names or None)


def cmd_ablations(_args):
    from repro.experiments import ablations

    ablations.main()


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="BlockMaestro reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite")

    p_analyze = sub.add_parser("analyze", help="launch-time analysis report")
    p_analyze.add_argument("workload")
    p_analyze.add_argument("--window", type=int, default=3)
    p_analyze.add_argument("--limit", type=int, default=24)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("workload")
    p_run.add_argument("--model", choices=MODEL_NAMES, default="consumer3")
    p_run.add_argument("--width", type=int, default=72)

    p_compare = sub.add_parser("compare", help="all models on one workload")
    p_compare.add_argument("workload")
    p_compare.add_argument("--timelines", action="store_true")
    p_compare.add_argument("--width", type=int, default=72)

    p_exp = sub.add_parser("experiments", help="regenerate paper artifacts")
    p_exp.add_argument("names", nargs="*")

    p_dot = sub.add_parser("dot", help="Graphviz DOT of a kernel-pair graph")
    p_dot.add_argument("workload")
    p_dot.add_argument("--pair", type=int, default=0)
    p_dot.add_argument("--max-nodes", type=int, default=32)

    p_val = sub.add_parser(
        "validate", help="functional replay check on a scaled-down workload"
    )
    p_val.add_argument("workload")
    p_val.add_argument("--window", type=int, default=3)

    sub.add_parser("ablations", help="design-choice sweeps")
    return parser


COMMANDS = {
    "list": cmd_list,
    "dot": cmd_dot,
    "validate": cmd_validate,
    "analyze": cmd_analyze,
    "run": cmd_run,
    "compare": cmd_compare,
    "experiments": cmd_experiments,
    "ablations": cmd_ablations,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
