"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list [--json]``                 — the benchmark suite (Table II)
* ``analyze <workload>``            — run launch-time analysis, print
                                      per-kernel patterns and storage
* ``run <workload> [--model M]``    — simulate and print a timeline
                                      (``--json [FILE]`` for RunStats JSON)
* ``compare <workload>``            — all roster models side by side
                                      (``--json [FILE]`` for RunStats JSON)
* ``trace <workload> [--model M]``  — export a Chrome trace-event JSON
                                      (open in Perfetto) + metrics sidecar
* ``blame <workload> [--model M]``  — systemd-analyze-style attribution:
                                      simulated time per kernel, wall
                                      clock per pipeline phase
* ``critpath <workload> [--model M] [--whatif]``
                                    — critical-path profile: which chain
                                      of TBs/launches/copies determined
                                      the makespan, hierarchical
                                      attribution, optimistic what-if
                                      speedup bounds (``--json``)
* ``journal <workload> [--model M]`` — record the engine's flight
                                      recorder: every scheduling event
                                      with its release edge, as digested
                                      JSONL (``docs/observability.md``)
* ``telemetry <workload> [--model M]``
                                    — hardware telemetry time series:
                                      SM occupancy, queue depths,
                                      DLB/PCB occupancy, per-pair
                                      overlap, idle-bubble blame
                                      (``--json``, ``--prom FILE``)
* ``report <workload> [--model M]`` — single self-contained HTML
                                      flight report: telemetry
                                      timelines + critpath attribution
                                      + overlap table + journal digest
* ``jdiff <A> <B> [--window N]``    — align two journals, report the
                                      first divergence with blame and a
                                      waterfall window; exit 1 on drift
* ``experiments [names...]``        — regenerate paper tables/figures
                                      (``--out DIR`` for JSON reports)
* ``ablations``                     — the design-choice sweeps
* ``bench run|diff|trend``          — performance benchmarking and
                                      regression tracking (see
                                      ``docs/benchmarking.md``)
* ``bench fastpath``                — dependency-analysis fast-path
                                      microbench: reference vs tiered
                                      graph build (``--census`` for the
                                      per-workload tier breakdown)
* ``bench engine``                  — simulation-engine fast-path
                                      microbench: scalar event-queue
                                      oracle vs tiered engine
                                      (``--census`` for the per-workload
                                      tier breakdown, ``docs/engine.md``)
* ``serve [--host H --port P]``     — long-running simulation daemon:
                                      the run/compare/critpath/
                                      telemetry/bench pipelines over
                                      HTTP/JSON with warm state,
                                      request coalescing, ``/metrics``,
                                      ``/healthz``, ``/statusz``,
                                      ``/events`` (``docs/serving.md``)
* ``client <cmd> [--url URL]``      — thin client for the daemon:
                                      ``run``/``compare``/``critpath``/
                                      ``telemetry``/``bench`` plus
                                      ``health``/``status``/``version``/
                                      ``metrics``/``events``/``shutdown``
* ``bench serve``                   — daemon load test: latency
                                      quantiles, RPS, coalescing under
                                      a concurrent burst, CLI
                                      cold-start baseline
* ``fuzz [--count N] [--seed S]``   — differential fuzzing: seeded
                                      generator corpus, every
                                      ``REPRO_FASTPATH`` mode and every
                                      ``REPRO_ENGINE`` tier vs the
                                      scalar oracles, minimized repro
                                      files on divergence; exit 1 on
                                      any divergence
                                      (``docs/fuzzing.md``)

``run``, ``critpath``, and ``bench run`` accept ``--engine MODE`` to
pin the simulation-engine tier (``auto`` | ``closed_form`` |
``vectorized`` | ``reference``) for the invocation — equivalent to
setting ``REPRO_ENGINE``, and inherited by worker processes.

Model names accept the roster (``baseline``, ``ideal``, ``prelaunch``,
``producer``, ``consumer2``..``consumer4``) plus the ``blockmaestro``
alias for the headline consumer/window-3 configuration.  Unknown
workload or model names exit with code 2 and a one-line message.

``bench run``, ``experiments``, and ``compare`` accept ``--jobs N`` to
fan independent work out over worker processes; ``bench run`` also
accepts ``--cache`` / ``--cache-dir DIR`` to persist launch-time
analysis across runs.  See ``docs/parallelism.md``.

``repro --version`` prints the package version plus every report
schema version this build emits (bench, critpath, fuzz, journal,
serve, status, telemetry); the ``serve`` entry is the client/daemon
handshake token.
"""

import argparse
import sys

from repro.core.runtime import BlockMaestroRuntime
from repro.experiments.common import (
    MODEL_ALIASES,
    STANDARD_MODELS,
    ExperimentContext,
    UnknownModelError,
    _make_model,
    _model_plan_params,
    canonical_model_name,
    format_table,
)
from repro.obs import MetricsRegistry, Tracer
from repro.obs.report import dump_json, format_blame, run_stats_dict, write_text
from repro.sim.timeline import compare_timelines, render_kernel_timeline
from repro.workloads import UnknownWorkloadError, all_workloads, get_workload

MODEL_NAMES = [m[0] for m in STANDARD_MODELS]
MODEL_CHOICES = MODEL_NAMES + sorted(MODEL_ALIASES)

#: ``--engine`` values: canonical modes plus the aliases
#: :func:`repro.models.fastengine.resolve_engine_mode` accepts
ENGINE_CHOICES = (
    "auto", "closed_form", "vectorized", "reference",
    "on", "off", "scalar", "oracle",
)


def cmd_list(args):
    if getattr(args, "json", None):
        payload = []
        for spec in all_workloads():
            entry = spec.as_dict()
            app = spec.build()
            entry["num_kernels"] = app.trace.num_kernels
            entry["total_tbs"] = sum(
                call.num_tbs for call in app.trace.kernel_calls
            )
            payload.append(entry)
        _emit_json(payload, args.json)
        return
    rows = [
        {
            "name": spec.name,
            "suite": spec.suite,
            "kernels": spec.paper_kernels,
            "patterns": ",".join(str(p) for p in spec.paper_patterns),
            "description": spec.description,
        }
        for spec in all_workloads()
    ]
    print(
        format_table(
            rows,
            ["name", "suite", "kernels", "patterns", "description"],
            title="Benchmark suite (paper Table II)",
        )
    )


def cmd_analyze(args):
    app = get_workload(args.workload).build()
    runtime = BlockMaestroRuntime()
    plan = runtime.plan(app, reorder=True, window=args.window)
    rows = []
    for kp in plan.kernels[: args.limit]:
        enc = kp.encoded
        rows.append(
            {
                "kernel": kp.name,
                "blocks": kp.num_tbs,
                "pattern": "-" if enc is None else enc.original_pattern.pattern.value,
                "edges": "-" if enc is None else enc.original.num_edges,
                "collapsed": "-" if enc is None else ("yes" if enc.collapsed else "no"),
                "encoded_B": "-" if enc is None else enc.encoded_bytes,
                "fallback": kp.summary.fallback or "-",
            }
        )
    print(
        format_table(
            rows,
            ["kernel", "blocks", "pattern", "edges", "collapsed", "encoded_B", "fallback"],
            title="Launch-time analysis: {} (first {} kernels)".format(
                app.name, args.limit
            ),
        )
    )
    print(
        "\ntotal dependency-graph storage: {} B encoded / {} B plain".format(
            plan.graph_encoded_bytes, plan.graph_plain_bytes
        )
    )
    print(
        "analysis wall time: {:.1f} ms total, {:.2f} ms per launch "
        "(JIT-time work, masked by pre-launching)".format(
            plan.analysis_seconds * 1e3,
            plan.analysis_seconds_per_kernel() * 1e3,
        )
    )


class _VersionAction(argparse.Action):
    """``--version``: package + schema versions, imported lazily."""

    def __init__(self, option_strings, dest, **kwargs):
        kwargs["nargs"] = 0
        super().__init__(option_strings, dest, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        from repro.version import version_lines

        print("\n".join(version_lines()))
        parser.exit(0)


def _emit_json(payload, destination):
    """Write a JSON payload to stdout (``-``) or a file path."""
    dump_json(payload, destination)
    if destination != "-":
        print("wrote", destination)


def _pin_engine_mode(value):
    """Pin ``--engine MODE`` for this invocation via the environment.

    The env var — not a call argument — is the conduit because the
    memoized :meth:`ExperimentContext.run_model` path and forked bench
    workers both resolve ``REPRO_ENGINE`` at run time; pinning the
    environment reaches every run the command makes.
    """
    if value is None:
        return
    import os

    from repro.models.fastengine import ENGINE_ENV, resolve_engine_mode

    os.environ[ENGINE_ENV] = resolve_engine_mode(value)


def cmd_run(args):
    _pin_engine_mode(args.engine)
    app = get_workload(args.workload).build()
    ctx = ExperimentContext()
    ctx.register_app(app)
    stats = ctx.run_model(app, args.model)
    if args.json == "-":
        _emit_json(run_stats_dict(stats, include_tb_records=args.tb_records), "-")
        return
    print(render_kernel_timeline(stats, width=args.width))
    print()
    print("model     :", stats.model)
    print("makespan  : {:.1f} us".format(stats.makespan_ns / 1000))
    print("concurrency: {:.1f} avg thread blocks".format(stats.avg_tb_concurrency()))
    q1, med, q3 = stats.stall_quartiles()
    print("stalls    : q1={:.2f} median={:.2f} q3={:.2f}".format(q1, med, q3))
    if args.json:
        _emit_json(
            run_stats_dict(stats, include_tb_records=args.tb_records), args.json
        )


def _compare_model(item):
    """``compare --jobs`` worker: one roster model, self-contained."""
    workload, model_name = item
    from repro.workloads import get_workload as _get

    app = _get(workload).build()
    ctx = ExperimentContext()
    ctx.register_app(app)
    return ctx.run_model(app, model_name)


def cmd_compare(args):
    app = get_workload(args.workload).build()
    jobs = getattr(args, "jobs", 1) or 1
    if jobs > 1:
        from repro.parallel import SuiteExecutor

        executor = SuiteExecutor(jobs=jobs)
        runs = executor.map(
            _compare_model, [(args.workload, name) for name in MODEL_NAMES]
        )
    else:
        ctx = ExperimentContext()
        ctx.register_app(app)
        runs = [ctx.run_model(app, name) for name in MODEL_NAMES]
    baseline = runs[0]
    if args.json:
        payload = {
            "workload": app.name,
            "baseline": baseline.model,
            "runs": [
                dict(run_stats_dict(stats), speedup=stats.speedup_over(baseline))
                for stats in runs
            ],
        }
        _emit_json(payload, args.json)
        if args.json == "-":
            return
    rows = [
        {
            "model": stats.model,
            "makespan_us": stats.makespan_ns / 1000,
            "speedup": stats.speedup_over(baseline),
            "concurrency": stats.avg_tb_concurrency(),
        }
        for stats in runs
    ]
    print(
        format_table(
            rows,
            ["model", "makespan_us", "speedup", "concurrency"],
            title="Model comparison: {}".format(app.name),
        )
    )
    if args.timelines:
        print()
        print(compare_timelines(runs[:1] + runs[2:], width=args.width))


def _traced_run(workload, model_name, per_sm=False, provenance=None,
                telemetry=None):
    """Build, plan, and simulate one workload under full observation.

    Returns ``(app, stats, tracer, metrics, plan, model)`` — shared by
    ``trace``, ``blame``, and ``critpath``.
    """
    tracer = Tracer(per_sm_counters=per_sm)
    metrics = MetricsRegistry()
    spec = get_workload(workload)
    with tracer.span("workload.build:{}".format(spec.name), cat="ptx"):
        app = spec.build()  # PTX parse + trace construction
    model_name = canonical_model_name(model_name)
    reorder, window = _model_plan_params(model_name)
    runtime = BlockMaestroRuntime(tracer=tracer, metrics=metrics)
    plan = runtime.plan(app, reorder=reorder, window=window)
    model = _make_model(model_name, runtime.config)
    stats = model.run(
        plan, tracer=tracer, metrics=metrics, provenance=provenance,
        telemetry=telemetry,
    )
    return app, stats, tracer, metrics, plan, model


def cmd_trace(args):
    from repro.obs import critpath as cp

    prov = cp.ProvenanceRecorder() if args.critpath else None
    sampler = None
    if args.telemetry:
        from repro.obs import telemetry as tm

        sampler = tm.TelemetrySampler()
    app, stats, tracer, metrics, plan, _model = _traced_run(
        args.workload, args.model, per_sm=args.per_sm, provenance=prov,
        telemetry=sampler,
    )
    if prov is not None:
        segments = cp.extract_critical_path(stats, plan, prov)
        cp.emit_critpath_flow(tracer, segments)
    if sampler is not None:
        from repro.obs import telemetry as tm

        tm.emit_telemetry_counters(tracer, tm.build_report(stats, sampler))
    out = args.output or "{}-trace.json".format(app.name)
    tracer.write(out)
    sidecar = args.metrics_out or (
        out[: -len(".json")] + ".metrics.json" if out.endswith(".json")
        else out + ".metrics.json"
    )
    metrics.write(sidecar)
    if args.json:
        from repro.obs.report import trace_summary_payload

        _emit_json(trace_summary_payload(stats, tracer, out, sidecar), args.json)
        if args.json == "-":
            return
    write_text(
        "model    : {}\n"
        "makespan : {:.1f} us (simulated)\n"
        "events   : {} trace events -> {}\n"
        "metrics  : {} -> open the trace at https://ui.perfetto.dev".format(
            stats.model, stats.makespan_ns / 1000, len(tracer), out, sidecar
        ),
        args.out,
    )


def cmd_blame(args):
    _app, stats, tracer, _metrics, _plan, _model = _traced_run(
        args.workload, args.model
    )
    if args.json:
        from repro.obs.report import blame_payload

        _emit_json(blame_payload(stats, tracer=tracer, limit=args.limit), args.json)
        if args.json == "-":
            return
    write_text(format_blame(stats, tracer=tracer, limit=args.limit), args.out)


def cmd_critpath(args):
    from repro.obs import critpath as cp

    # provenance attaches an observer, so a non-reference --engine pin
    # falls back to the scalar oracle (counted, documented behavior);
    # the pin is still honored so users can see exactly that.
    _pin_engine_mode(args.engine)
    prov = cp.ProvenanceRecorder()
    _app, stats, tracer, _metrics, plan, model = _traced_run(
        args.workload, args.model, provenance=prov
    )
    report = cp.build_report(
        stats, plan, prov, model.gpu_config,
        options=model.options(), whatif=args.whatif,
    )
    errors = cp.validate_critpath_report(report)
    if errors:  # a profiler bug, not a user error — fail loudly
        raise AssertionError(
            "generated critpath report is invalid: {}".format(errors[:3])
        )
    if args.json:
        _emit_json(report, args.json)
        if args.json == "-":
            return
    print(cp.format_critpath(report, limit=args.limit))


def cmd_journal(args):
    from repro.obs import journal as jr

    recorder, stats = jr.record_run(args.workload, args.model)
    errors = jr.validate_journal(recorder.header(), recorder.events)
    if errors:  # a recorder bug, not a user error — fail loudly
        raise AssertionError(
            "recorded journal is invalid: {}".format(errors[:3])
        )
    out = args.out or "{}-{}.journal.jsonl".format(
        recorder.application, recorder.model
    )
    jr.write_journal(recorder, out)
    print("model    :", stats.model)
    print("makespan : {:.1f} us (simulated)".format(stats.makespan_ns / 1000))
    print("events   : {} journal events -> {}".format(
        len(recorder.events), out
    ))
    print("digest   :", recorder.digest())


def cmd_telemetry(args):
    from repro.obs import telemetry as tm

    sampler, stats = tm.record_telemetry(args.workload, args.model)
    report = tm.build_report(stats, sampler)
    errors = tm.validate_telemetry_report(report)
    if errors:  # a sampler bug, not a user error — fail loudly
        raise AssertionError(
            "generated telemetry report is invalid: {}".format(errors[:3])
        )
    if args.prom:
        write_text(tm.write_prometheus(report), args.prom)
    if args.json:
        _emit_json(report, args.json)
        if args.json == "-":
            return
    print(tm.format_telemetry(report, limit=args.limit))


def cmd_report(args):
    from repro.obs import flight

    path, data = flight.write_flight_report(
        args.workload, args.model, out=args.out, bench_dir=args.bench
    )
    telemetry = data["telemetry"]
    print("model    :", data["model"])
    print("makespan : {:.1f} us (simulated)".format(
        telemetry["makespan_ns"] / 1000
    ))
    print("overlap  : {} kernel pair{} with achieved overlap".format(
        len(telemetry["overlap"]["pairs"]),
        "" if len(telemetry["overlap"]["pairs"]) == 1 else "s",
    ))
    print("report   : {} (self-contained HTML)".format(path))


def cmd_jdiff(args):
    from repro.obs import jdiff as jd
    from repro.obs import journal as jr

    try:
        a_header, a_events = jr.load_journal(args.a)
        b_header, b_events = jr.load_journal(args.b)
    except (OSError, ValueError) as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    report = jd.diff_journals(
        a_header, a_events, b_header, b_events,
        window=args.window, a_label=args.a, b_label=args.b,
    )
    exit_code = 0 if report["identical"] else 1
    if args.json:
        _emit_json(report, args.json)
        if args.json == "-":
            return exit_code
    print(jd.format_jdiff(report))
    return exit_code


def cmd_dot(args):
    app = get_workload(args.workload).build()
    runtime = BlockMaestroRuntime()
    plan = runtime.plan(app, reorder=True, window=3)
    kernels = [kp for kp in plan.kernels if kp.encoded is not None]
    if not kernels:
        raise SystemExit("workload has no dependent kernel pairs")
    index = max(0, min(args.pair, len(kernels) - 1))
    kp = kernels[index]
    parent = plan.kernels[kp.chain_prev]
    print(
        kp.encoded.original.to_dot(
            parent_label=parent.name, child_label=kp.name,
            max_nodes=args.max_nodes,
        )
    )


def cmd_validate(args):
    """Functional replay validation: simulate, replay the block start
    order at real values, diff against serialized execution."""
    from repro.models import BlockMaestroModel
    from repro.sim.funcsim import FunctionalSimulator, schedule_from_stats
    from repro.core.policy import SchedulingPolicy

    spec = get_workload(args.workload)
    app = spec.build_small()
    print(app.describe(), "(scaled-down variant)")
    runtime = BlockMaestroRuntime(hazards=("raw", "war", "waw"))
    plan = runtime.plan(app, reorder=True, window=args.window)
    golden = FunctionalSimulator(app.allocator).run_application(app)
    for policy in SchedulingPolicy:
        stats = BlockMaestroModel(window=args.window, policy=policy).run(plan)
        replayed = FunctionalSimulator(app.allocator).run_application(
            app, tb_order=schedule_from_stats(stats)
        )
        verdict = "PASS" if replayed == golden else "FAIL"
        print(
            "  {:10s} policy: {} ({} thread blocks replayed)".format(
                policy.value, verdict, len(stats.tb_records)
            )
        )
        if verdict == "FAIL":
            raise SystemExit(1)
    print("schedules preserve program semantics.")


def cmd_bench_run(args):
    from repro import bench
    from repro.analysis.cache import resolve_cache_dir

    _pin_engine_mode(args.engine)
    cache_dir = resolve_cache_dir(
        cache_dir=args.cache_dir, enabled=bool(args.cache_dir or args.cache)
    )
    config = bench.resolve_config(
        quick=args.quick,
        models=args.models,
        filter_globs=args.filter,
        repeats=args.repeats,
        warmup=args.warmup,
        profile=args.profile,
        profile_top=args.profile_top,
        jobs=args.jobs,
        cache_dir=cache_dir,
        critpath=args.critpath,
        telemetry=args.telemetry,
        fuzz=args.fuzz,
        fuzz_seed=args.fuzz_seed,
    )
    payload = bench.run_suite(config, status_file=args.status_file)
    errors = bench.validate_report(payload)
    if errors:  # a schema bug, not a user error — fail loudly
        raise AssertionError("generated report is invalid: {}".format(errors[:3]))
    path = bench.write_report(payload, path=args.output, directory=args.out)
    rows = []
    for wname, wentry in payload["workloads"].items():
        for mname, mentry in wentry["models"].items():
            rows.append(
                {
                    "workload": wname,
                    "model": mname,
                    "wall_p50_ms": mentry["wall"]["total_s"]["p50"] * 1e3,
                    "makespan_us": mentry["simulated"]["makespan_ns"] / 1e3,
                    "speedup": mentry["simulated"]["speedup_vs_baseline"],
                }
            )
    print(
        format_table(
            rows,
            ["workload", "model", "wall_p50_ms", "makespan_us", "speedup"],
            title="bench run ({} repeats, {} warmup, {} job{})".format(
                config.repeats, config.warmup, config.jobs,
                "" if config.jobs == 1 else "s",
            ),
        )
    )
    cache_section = payload.get("cache")
    if cache_section:
        counters = cache_section["counters"]
        hits = sum(v for k, v in counters.items() if k.endswith(".hits"))
        misses = sum(v for k, v in counters.items() if k.endswith(".misses"))
        print(
            "cache: {:.0f} hits / {:.0f} misses ({})".format(
                hits, misses, cache_section["dir"]
            )
        )
    fastpath_section = payload.get("fastpath")
    if fastpath_section:
        counters = fastpath_section["counters"]
        prefix = "analysis.fastpath."
        print(
            "fastpath ({}): {}".format(
                fastpath_section["mode"],
                ", ".join(
                    "{} {:.0f}".format(name[len(prefix):], counters[name])
                    for name in sorted(counters)
                ),
            )
        )
    engine_section = payload.get("engine")
    if engine_section:
        counters = engine_section["counters"]
        prefix = "engine."
        print(
            "engine ({}): {}".format(
                engine_section["mode"],
                ", ".join(
                    "{} {:.0f}".format(name[len(prefix):], counters[name])
                    for name in sorted(counters)
                ),
            )
        )
    print("wrote", path)


def cmd_bench_diff(args):
    from repro import bench

    try:
        old = bench.load_report(args.old)
        new = bench.load_report(args.new)
    except ValueError as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    result = bench.diff_reports(
        old, new, tolerance=args.tolerance, min_seconds=args.min_seconds
    )
    print(bench.format_diff(result, tolerance=args.tolerance, strict=args.strict))
    if args.forensics and result.drift:
        from repro.obs import jdiff as jd

        # one forensics pass per drifted (workload, model) cell: record
        # two fresh journals on the *current* code (reference fastpath
        # vs ambient mode) and localize the first diverging event
        drifted = sorted({(d.workload, d.model) for d in result.drift})
        for wname, mname in drifted:
            print()
            print("forensics: re-recording {} x {} ...".format(wname, mname))
            forensic = jd.drift_forensics(wname, mname)
            print(jd.format_jdiff(forensic))
            if forensic["identical"]:
                print(
                    "forensics: engine is internally consistent on this "
                    "code — the drift comes from code changes between the "
                    "reports; record `repro journal {} --model {}` at each "
                    "commit and jdiff those".format(wname, mname)
                )
    return 1 if result.failed(strict=args.strict) else 0


def cmd_bench_fastpath(args):
    from repro.bench import fastpath as fp

    if args.census:
        census = fp.registry_tier_census()
        print(fp.format_census(census))
        if fp.census_closed_form_total(census) == 0:
            print(
                "error: closed-form tier fired on zero registry workloads",
                file=sys.stderr,
            )
            return 1
        return 0
    from repro.obs.log import get_logger

    summary = fp.run_fastpath_bench(
        args.out,
        repeats=args.repeats,
        warmup=args.warmup,
        jobs=args.jobs,
        log=get_logger("bench").info,
    )
    rows = [
        {"workload": wname, "encode_speedup": speedup}
        for wname, speedup in summary["encode_speedups"].items()
    ]
    print(
        format_table(
            rows,
            ["workload", "encode_speedup"],
            title="fastpath vs reference (encode-phase p50, cold)",
        )
    )
    counters = summary["counters"]
    prefix = "analysis.fastpath."
    print(
        "tiers: {}".format(
            ", ".join(
                "{} {:.0f}".format(name[len(prefix):], counters[name])
                for name in sorted(counters)
            ) or "(none)"
        )
    )
    print("wrote", summary["before"])
    print("wrote", summary["after"])
    print("wrote", summary["diff"])
    if summary["drift"]:
        print(
            "error: simulated drift between reference and fastpath runs — "
            "the tiers must produce identical graphs (see {})".format(
                summary["diff"]
            ),
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_bench_engine(args):
    from repro.bench import engine as eng

    if args.census:
        census = eng.registry_engine_census()
        print(eng.format_census(census))
        if eng.census_closed_form_total(census) == 0:
            print(
                "error: closed-form tier fired on zero workloads",
                file=sys.stderr,
            )
            return 1
        return 0
    from repro.obs.log import get_logger

    summary = eng.run_engine_bench(
        args.out,
        repeats=args.repeats,
        warmup=args.warmup,
        jobs=args.jobs,
        log=get_logger("bench").info,
    )
    rows = [
        {"workload/model": key, "simulate_speedup": speedup}
        for key, speedup in summary["simulate_speedups"].items()
    ]
    print(
        format_table(
            rows,
            ["workload/model", "simulate_speedup"],
            title="fast engine vs reference (simulate-phase p50, cold)",
        )
    )
    counters = summary["counters"]
    prefix = "engine."
    print(
        "tiers: {}".format(
            ", ".join(
                "{} {:.0f}".format(name[len(prefix):], counters[name])
                for name in sorted(counters)
            ) or "(none)"
        )
    )
    print("wrote", summary["before"])
    print("wrote", summary["after"])
    print("wrote", summary["diff"])
    if summary["drift"]:
        print(
            "error: simulated drift between reference and fast-engine "
            "runs — the tiers must produce identical RunStats (see "
            "{})".format(summary["diff"]),
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_bench_trend(args):
    from repro import bench
    from repro.bench.trend import METRICS

    if args.metric not in METRICS:
        print(
            "error: unknown trend metric {!r}; available: {}".format(
                args.metric, ", ".join(sorted(METRICS))
            ),
            file=sys.stderr,
        )
        return 2
    reports = bench.load_reports(args.directory)
    print(bench.format_trend(reports, metric=args.metric))


def cmd_bench_serve(args):
    from repro.bench import serve as sbench
    from repro.obs.log import get_logger

    log = get_logger("bench")
    try:
        payload = sbench.run_serve_bench(
            url=args.url,
            requests=args.requests,
            concurrency=args.concurrency,
            burst=args.burst,
            model=args.model,
            baseline_repeats=args.baseline,
            log=log.info,
        )
    except (ValueError, RuntimeError) as exc:
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    errors = sbench.validate_serve_bench_report(payload)
    if errors:  # a bench bug, not a user error — fail loudly
        raise AssertionError(
            "generated serve-bench report is invalid: {}".format(errors[:3])
        )
    path = args.output or sbench.serve_bench_filename()
    sbench.write_serve_bench_report(payload, path)
    print("\n".join(sbench.format_serve_bench_report(payload)))
    print("wrote", path)
    coalesce = payload["phases"]["coalesce"]
    if (
        coalesce["completed"] != coalesce["burst"]
        or coalesce["simulations"] != 1
    ):
        # the daemon failed the coalescing contract under load
        print(
            "COALESCE FAIL: {} of {} burst requests completed, {} "
            "simulations (expected exactly 1)".format(
                coalesce["completed"], coalesce["burst"],
                coalesce["simulations"],
            ),
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_serve(args):
    import asyncio

    from repro.analysis.cache import resolve_cache_dir
    from repro.serve.server import (
        ReproServer,
        ServeStartupError,
        preflight_host,
    )

    try:
        port = int(args.port)
    except (TypeError, ValueError):
        print(
            "error: --port must be an integer (got {!r})".format(args.port),
            file=sys.stderr,
        )
        return 2
    if not 0 <= port <= 65535:
        print(
            "error: --port must be in 0..65535 (got {})".format(port),
            file=sys.stderr,
        )
        return 2
    cache_dir = resolve_cache_dir(
        cache_dir=args.cache_dir, enabled=bool(args.cache_dir or args.cache)
    )
    try:
        preflight_host(args.host, port)
        server = ReproServer(
            host=args.host,
            port=port,
            cache_dir=cache_dir,
            status_file=args.status_file,
            trace_out=args.trace_out,
            bench_jobs=args.jobs,
        )
        return asyncio.run(server.run(announce=print))
    except ServeStartupError as exc:
        # port in use / unresolvable host: one line, exit 2, no traceback
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 0


def cmd_client(args):
    from repro.serve.client import ClientError, ServeClient

    command = args.client_command
    try:
        client = ServeClient(args.url)
        if command == "run":
            payload = client.run(
                args.workload,
                model=args.model,
                engine=args.engine,
                journal=args.journal,
                tb_records=args.tb_records,
            )
        elif command == "compare":
            payload = client.compare(args.workload)
        elif command == "critpath":
            payload = client.critpath(
                args.workload, model=args.model, whatif=args.whatif
            )
        elif command == "telemetry":
            payload = client.telemetry(args.workload, model=args.model)
        elif command == "bench":
            payload = client.bench(
                quick=not args.full,
                repeats=args.repeats,
                warmup=args.warmup,
            )
        elif command == "health":
            payload = client.health()
        elif command == "status":
            payload = client.statusz()
        elif command == "version":
            payload = client.version()
        elif command == "workloads":
            payload = client.workloads()
        elif command == "metrics":
            print(client.metrics(), end="")
            return 0
        elif command == "events":
            for event in client.events(max_events=args.count):
                dump_json(event, "-")
            return 0
        else:  # command == "shutdown"
            payload = client.shutdown()
    except ClientError as exc:
        # daemon down / refused / schema mismatch: one line, exit 2
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    _emit_json(payload, getattr(args, "json", None) or "-")
    return 0


def cmd_bench(args):
    handler = {
        "run": cmd_bench_run,
        "diff": cmd_bench_diff,
        "trend": cmd_bench_trend,
        "serve": cmd_bench_serve,
        "fastpath": cmd_bench_fastpath,
        "engine": cmd_bench_engine,
    }[args.bench_command]
    return handler(args)


def cmd_fuzz(args):
    from repro import fuzz
    from repro.obs.log import get_logger

    try:
        config = fuzz.resolve_fuzz_config(
            count=args.count,
            seed=args.seed,
            modes=args.modes,
            engines=args.engines,
            model=args.model,
            jobs=args.jobs,
            out_dir=args.out,
            shrink=not args.no_shrink,
        )
    except ValueError as exc:
        # bad count/seed/mode: one line, exit 2, like unknown names
        print("error: {}".format(exc), file=sys.stderr)
        return 2
    report = fuzz.run_fuzz(config, log=get_logger("fuzz").info)
    errors = fuzz.validate_fuzz_report(report)
    if errors:  # a harness bug, not a user error — fail loudly
        raise AssertionError(
            "generated fuzz report is invalid: {}".format(errors[:3])
        )
    exit_code = 1 if report["num_divergent"] else 0
    if args.json:
        _emit_json(report, args.json)
        if args.json == "-":
            return exit_code
    print(fuzz.format_fuzz(report))
    return exit_code


def cmd_experiments(args):
    from repro.experiments import runner

    runner.run_all(
        args.names or None, out_dir=args.out, jobs=args.jobs,
        status_file=args.status_file,
    )


def cmd_ablations(_args):
    from repro.experiments import ablations

    ablations.main()


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="BlockMaestro reproduction toolkit"
    )
    parser.add_argument(
        "--log", default=None, metavar="LEVEL[:SUBSYS,...]",
        help="stderr log threshold, optionally scoped to subsystems "
             "(e.g. debug or debug:bench,parallel); overrides $REPRO_LOG",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines (one object per line); "
             "same as REPRO_LOG_JSON=1",
    )
    parser.add_argument(
        "--version", action=_VersionAction,
        help="print the package version and every report-schema version",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list the benchmark suite")
    p_list.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="machine-readable registry to stdout (no FILE) or FILE",
    )

    p_analyze = sub.add_parser("analyze", help="launch-time analysis report")
    p_analyze.add_argument("workload")
    p_analyze.add_argument("--window", type=int, default=3)
    p_analyze.add_argument("--limit", type=int, default=24)

    p_run = sub.add_parser("run", help="simulate one workload")
    p_run.add_argument("workload")
    p_run.add_argument("--model", choices=MODEL_CHOICES, default="consumer3")
    p_run.add_argument("--width", type=int, default=72)
    p_run.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="dump RunStats as JSON to stdout (no FILE) or FILE",
    )
    p_run.add_argument(
        "--tb-records",
        action="store_true",
        help="include per-thread-block records in --json output",
    )
    p_run.add_argument(
        "--engine", choices=ENGINE_CHOICES, default=None,
        help="pin the simulation-engine tier for this run "
             "(same as REPRO_ENGINE; default: auto)",
    )

    p_compare = sub.add_parser("compare", help="all models on one workload")
    p_compare.add_argument("workload")
    p_compare.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run roster models on N worker processes (default: 1, serial)",
    )
    p_compare.add_argument("--timelines", action="store_true")
    p_compare.add_argument("--width", type=int, default=72)
    p_compare.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="dump every model's RunStats as JSON to stdout or FILE",
    )

    p_trace = sub.add_parser(
        "trace", help="export a Chrome trace-event JSON (Perfetto-loadable)"
    )
    p_trace.add_argument("workload")
    p_trace.add_argument("--model", choices=MODEL_CHOICES, default="consumer3")
    p_trace.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="trace path (default: <workload>-trace.json)",
    )
    p_trace.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="metrics sidecar path (default: <trace>.metrics.json)",
    )
    p_trace.add_argument(
        "--per-sm", action="store_true",
        help="also sample per-SM running_tbs[sm=i] occupancy counters "
             "(bigger trace)",
    )
    p_trace.add_argument(
        "--critpath", action="store_true",
        help="overlay the critical path as Perfetto flow-event arrows",
    )
    p_trace.add_argument(
        "--telemetry", action="store_true",
        help="merge hardware telemetry counter tracks (occupancy, "
             "queue depths, DLB/PCB entries) into the trace",
    )
    p_trace.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="machine-readable run summary to stdout (no FILE) or FILE",
    )
    p_trace.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the text summary to FILE instead of stdout",
    )

    p_blame = sub.add_parser(
        "blame", help="attribute simulated/wall time, worst offenders first"
    )
    p_blame.add_argument("workload")
    p_blame.add_argument("--model", choices=MODEL_CHOICES, default="consumer3")
    p_blame.add_argument(
        "--limit", type=int, default=None,
        help="show only the N most expensive kernels",
    )
    p_blame.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="machine-readable attribution to stdout (no FILE) or FILE",
    )
    p_blame.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the text attribution to FILE instead of stdout",
    )

    p_cp = sub.add_parser(
        "critpath",
        help="critical-path profile: makespan attribution + what-if bounds",
    )
    p_cp.add_argument("workload")
    p_cp.add_argument("--model", choices=MODEL_CHOICES, default="consumer3")
    p_cp.add_argument(
        "--whatif", action="store_true",
        help="also replay with zero launch overhead / infinite SMs / "
             "dependencies dropped and report speedup bounds",
    )
    p_cp.add_argument(
        "--limit", type=int, default=12,
        help="path segments to show in text mode (default: 12)",
    )
    p_cp.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="schema-validated critpath report to stdout (no FILE) or FILE",
    )
    p_cp.add_argument(
        "--engine", choices=ENGINE_CHOICES, default=None,
        help="pin the simulation-engine tier (provenance recording "
             "forces the reference oracle; the fallback is counted)",
    )

    p_journal = sub.add_parser(
        "journal",
        help="record the engine flight recorder as digested JSONL",
    )
    p_journal.add_argument("workload")
    p_journal.add_argument(
        "--model", choices=MODEL_CHOICES, default="consumer3"
    )
    p_journal.add_argument(
        "--out", default=None, metavar="FILE",
        help="journal path (default: <workload>-<model>.journal.jsonl)",
    )

    p_telemetry = sub.add_parser(
        "telemetry",
        help="hardware telemetry: occupancy/queue/DLB time series, "
             "overlap analysis, idle-bubble blame",
    )
    p_telemetry.add_argument("workload")
    p_telemetry.add_argument(
        "--model", choices=MODEL_CHOICES, default="consumer3"
    )
    p_telemetry.add_argument(
        "--limit", type=int, default=10,
        help="kernel pairs / bubbles to show in text mode (default: 10)",
    )
    p_telemetry.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="schema-validated telemetry report to stdout (no FILE) or FILE",
    )
    p_telemetry.add_argument(
        "--prom", default=None, metavar="FILE",
        help="also write a Prometheus text-exposition snapshot to FILE",
    )

    p_report = sub.add_parser(
        "report",
        help="one-stop HTML flight report: telemetry + critpath + "
             "journal + bench deltas",
    )
    p_report.add_argument("workload")
    p_report.add_argument(
        "--model", choices=MODEL_CHOICES, default="consumer3"
    )
    p_report.add_argument(
        "--out", default=None, metavar="FILE",
        help="report path (default: flight-<workload>-<model>.html)",
    )
    p_report.add_argument(
        "--bench", default=None, metavar="DIR",
        help="include wall/simulated deltas from the two newest "
             "BENCH_*.json reports in DIR",
    )

    p_jdiff = sub.add_parser(
        "jdiff",
        help="first-divergence diff of two journals; exit 1 on drift",
    )
    p_jdiff.add_argument("a", help="reference *.journal.jsonl")
    p_jdiff.add_argument("b", help="candidate *.journal.jsonl")
    p_jdiff.add_argument(
        "--window", type=int, default=8, metavar="N",
        help="waterfall context events on each side of the divergence "
             "(default: 8)",
    )
    p_jdiff.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="machine-readable jdiff report to stdout (no FILE) or FILE",
    )

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: seeded corpus, fastpath tiers vs "
             "the scalar oracle, shrinking repro files on divergence",
    )
    p_fuzz.add_argument(
        "--count", type=int, default=50, metavar="N",
        help="number of generated cases (default: 50)",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="first case seed; case i uses seed S+i (default: 0)",
    )
    p_fuzz.add_argument(
        "--modes", nargs="+", default=None, metavar="MODE",
        help="fastpath modes to check against the reference oracle "
             "(default: closed_form vectorized auto)",
    )
    p_fuzz.add_argument(
        "--engines", nargs="+", default=None, metavar="TIER",
        help="engine tiers to check against the scalar oracle "
             "(default: closed_form vectorized auto; 'none' disables "
             "the engine sweep)",
    )
    p_fuzz.add_argument(
        "--model", choices=MODEL_CHOICES, default="consumer3"
    )
    p_fuzz.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="check cases on N worker processes; the report is "
             "bit-identical to --jobs 1",
    )
    p_fuzz.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="schema-validated fuzz report to stdout (no FILE) or FILE",
    )
    p_fuzz.add_argument(
        "--out", default=".", metavar="DIR",
        help="directory for minimized repro-fuzz-case files (default: .)",
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="report divergences without minimizing them",
    )

    p_exp = sub.add_parser("experiments", help="regenerate paper artifacts")
    p_exp.add_argument("names", nargs="*")
    p_exp.add_argument(
        "--out", default=None, metavar="DIR",
        help="also write one JSON report per experiment into DIR",
    )
    p_exp.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run independent experiments on N worker processes",
    )
    p_exp.add_argument(
        "--status-file", default=None, metavar="FILE",
        help="atomically rewrite a JSON progress snapshot here after "
             "every experiment (also $REPRO_STATUS_FILE)",
    )

    p_dot = sub.add_parser("dot", help="Graphviz DOT of a kernel-pair graph")
    p_dot.add_argument("workload")
    p_dot.add_argument("--pair", type=int, default=0)
    p_dot.add_argument("--max-nodes", type=int, default=32)

    p_val = sub.add_parser(
        "validate", help="functional replay check on a scaled-down workload"
    )
    p_val.add_argument("workload")
    p_val.add_argument("--window", type=int, default=3)

    sub.add_parser("ablations", help="design-choice sweeps")

    p_bench = sub.add_parser(
        "bench", help="performance benchmarking and regression tracking"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    b_run = bench_sub.add_parser(
        "run", help="run the suite, write BENCH_<UTC-timestamp>.json"
    )
    b_run.add_argument(
        "--quick",
        action="store_true",
        help="3 fast workloads x (baseline, blockmaestro), 2 repeats",
    )
    b_run.add_argument(
        "--models",
        nargs="+",
        default=None,
        metavar="MODEL",
        help="roster names / aliases, or 'all' (baseline always included)",
    )
    b_run.add_argument(
        "--filter",
        nargs="+",
        default=None,
        metavar="GLOB",
        help="workload subset as shell globs (e.g. 'mvt' 'f*')",
    )
    b_run.add_argument(
        "--fuzz", type=int, default=None, metavar="N",
        help="append N seeded fuzz applications (fuzz-<seed>..) as "
             "extra load-generator workloads (docs/fuzzing.md)",
    )
    b_run.add_argument(
        "--fuzz-seed", type=int, default=0, metavar="S",
        help="first fuzz workload seed for --fuzz (default: 0)",
    )
    b_run.add_argument("--repeats", type=int, default=None, metavar="N")
    b_run.add_argument("--warmup", type=int, default=None, metavar="N")
    b_run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run independent (workload, model) cells on N worker "
             "processes; simulated metrics are identical to --jobs 1",
    )
    b_run.add_argument(
        "--cache", action="store_true",
        help="persist launch-time analysis in the default cache dir "
             "(~/.cache/repro, or $REPRO_CACHE_DIR)",
    )
    b_run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist launch-time analysis in DIR (implies --cache)",
    )
    b_run.add_argument(
        "--profile",
        action="store_true",
        help="embed cProfile top-k cumulative hotspots per workload/model",
    )
    b_run.add_argument(
        "--critpath",
        action="store_true",
        help="embed per-model critical-path attribution (one extra "
             "untimed provenance pass per cell; see bench diff)",
    )
    b_run.add_argument(
        "--telemetry",
        action="store_true",
        help="embed per-cell telemetry summaries (occupancy, overlap, "
             "idle bubbles; one extra untimed pass per cell)",
    )
    b_run.add_argument("--profile-top", type=int, default=15, metavar="K")
    b_run.add_argument(
        "--out", default=".", metavar="DIR",
        help="directory for the timestamped report (default: .)",
    )
    b_run.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="explicit report path (overrides --out naming)",
    )
    b_run.add_argument(
        "--status-file", default=None, metavar="FILE",
        help="atomically rewrite a JSON progress snapshot here after "
             "every suite cell (also $REPRO_STATUS_FILE)",
    )
    b_run.add_argument(
        "--engine", choices=ENGINE_CHOICES, default=None,
        help="pin the simulation-engine tier for every cell "
             "(same as REPRO_ENGINE; inherited by --jobs workers)",
    )

    b_diff = bench_sub.add_parser(
        "diff", help="compare two reports; non-zero exit on regression"
    )
    b_diff.add_argument("old", help="reference BENCH_*.json")
    b_diff.add_argument("new", help="candidate BENCH_*.json")
    b_diff.add_argument(
        "--tolerance", type=float, default=0.25, metavar="FRAC",
        help="relative wall-clock noise band (default 0.25 = +/-25%%)",
    )
    b_diff.add_argument(
        "--min-seconds", type=float, default=0.010, metavar="S",
        help="ignore wall deltas smaller than this (default 10ms)",
    )
    b_diff.add_argument(
        "--strict", action="store_true",
        help="also fail when entries present in OLD are missing from NEW",
    )
    b_diff.add_argument(
        "--forensics", action="store_true",
        help="on simulated drift, re-record each drifted cell's journal "
             "under REPRO_FASTPATH=reference vs the current mode and "
             "print the first-divergence jdiff",
    )

    b_fp = bench_sub.add_parser(
        "fastpath",
        help="analysis-fastpath microbench: reference vs tiered graph "
             "build, before/after reports + DIFF (docs/analysis.md)",
    )
    b_fp.add_argument(
        "--out", default="fastpath-bench", metavar="DIR",
        help="output directory for the two reports and DIFF.txt "
             "(default: fastpath-bench)",
    )
    b_fp.add_argument("--repeats", type=int, default=3, metavar="N")
    b_fp.add_argument("--warmup", type=int, default=1, metavar="N")
    b_fp.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per pass (default 1)",
    )
    b_fp.add_argument(
        "--census", action="store_true",
        help="instead of benchmarking, print which tier serves each "
             "registry workload; exit 1 if closed-form never fires",
    )

    b_eng = bench_sub.add_parser(
        "engine",
        help="simulation-engine microbench: scalar event-queue oracle "
             "vs tiered fast engine, before/after reports + DIFF "
             "(docs/engine.md)",
    )
    b_eng.add_argument(
        "--out", default="engine-bench", metavar="DIR",
        help="output directory for the two reports and DIFF.txt "
             "(default: engine-bench)",
    )
    b_eng.add_argument("--repeats", type=int, default=3, metavar="N")
    b_eng.add_argument("--warmup", type=int, default=1, metavar="N")
    b_eng.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per pass (default 1)",
    )
    b_eng.add_argument(
        "--census", action="store_true",
        help="instead of benchmarking, print which engine tier "
             "simulates each workload under a jitter-free config; "
             "exit 1 if closed-form never fires",
    )

    b_trend = bench_sub.add_parser(
        "trend", help="per-workload trajectory across all BENCH_*.json"
    )
    b_trend.add_argument(
        "directory", nargs="?", default=".",
        help="where to look for BENCH_*.json (default: .)",
    )
    b_trend.add_argument(
        "--metric", default="wall", metavar="NAME",
        help="wall | makespan | speedup (default: wall)",
    )

    b_serve = bench_sub.add_parser(
        "serve",
        help="load-test the serve daemon: latency quantiles, RPS, "
             "coalescing under a concurrent burst, CLI cold-start "
             "baseline (docs/serving.md)",
    )
    b_serve.add_argument(
        "--url", default=None, metavar="URL",
        help="bench an already-running daemon (default: spawn one for "
             "the duration of the bench)",
    )
    b_serve.add_argument(
        "--requests", type=int, default=24, metavar="N",
        help="requests per load phase (default: 24)",
    )
    b_serve.add_argument(
        "--concurrency", type=int, default=4, metavar="C",
        help="client threads in the throughput phase (default: 4)",
    )
    b_serve.add_argument(
        "--burst", type=int, default=8, metavar="N",
        help="simultaneous identical requests in the coalesce phase "
             "(default: 8)",
    )
    b_serve.add_argument(
        "--model", choices=MODEL_CHOICES, default="consumer3",
    )
    b_serve.add_argument(
        "--baseline", type=int, default=1, metavar="N",
        help="one-shot CLI subprocess runs for the cold-start "
             "baseline; 0 skips it (default: 1)",
    )
    b_serve.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="report path (default: SERVEBENCH_<UTC>.json)",
    )

    from repro.serve import DEFAULT_PORT

    p_serve = sub.add_parser(
        "serve",
        help="long-running simulation daemon: run/compare/critpath/"
             "telemetry/bench over HTTP with request coalescing, "
             "/metrics, /healthz, /statusz, /events (docs/serving.md)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", metavar="HOST",
        help="bind address (default: 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port", default=str(DEFAULT_PORT), metavar="PORT",
        help="TCP port; 0 picks an ephemeral one (default: {})".format(
            DEFAULT_PORT
        ),
    )
    p_serve.add_argument(
        "--cache", action="store_true",
        help="persist launch-time analysis in the default cache dir "
             "(~/.cache/repro, or $REPRO_CACHE_DIR)",
    )
    p_serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist launch-time analysis in DIR (implies --cache)",
    )
    p_serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for /v1/bench suites (default: 1)",
    )
    p_serve.add_argument(
        "--status-file", default=None, metavar="FILE",
        help="atomically rewrite a repro-status JSON snapshot here on "
             "every heartbeat (same schema as bench --status-file)",
    )
    p_serve.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a Chrome trace of serve.request spans (with "
             "request ids) at shutdown",
    )

    p_client = sub.add_parser(
        "client",
        help="talk to a running serve daemon "
             "($REPRO_SERVE_URL or http://127.0.0.1:{})".format(
                 DEFAULT_PORT
             ),
    )
    p_client.add_argument(
        "--url", default=None, metavar="URL",
        help="daemon base URL (default: $REPRO_SERVE_URL or "
             "http://127.0.0.1:{})".format(DEFAULT_PORT),
    )
    client_sub = p_client.add_subparsers(
        dest="client_command", required=True
    )

    c_run = client_sub.add_parser("run", help="simulate one workload")
    c_run.add_argument("workload")
    c_run.add_argument(
        "--model", choices=MODEL_CHOICES, default="consumer3"
    )
    c_run.add_argument(
        "--engine", choices=ENGINE_CHOICES, default=None,
        help="pin the daemon's simulation-engine tier for this request",
    )
    c_run.add_argument(
        "--journal", action="store_true",
        help="include the run's journal digest in the response",
    )
    c_run.add_argument(
        "--tb-records", action="store_true",
        help="include per-thread-block records in the response",
    )

    c_compare = client_sub.add_parser(
        "compare", help="all roster models on one workload"
    )
    c_compare.add_argument("workload")

    c_cp = client_sub.add_parser(
        "critpath", help="critical-path report for one workload"
    )
    c_cp.add_argument("workload")
    c_cp.add_argument(
        "--model", choices=MODEL_CHOICES, default="consumer3"
    )
    c_cp.add_argument("--whatif", action="store_true")

    c_tm = client_sub.add_parser(
        "telemetry", help="telemetry report for one workload"
    )
    c_tm.add_argument("workload")
    c_tm.add_argument(
        "--model", choices=MODEL_CHOICES, default="consumer3"
    )

    c_bench = client_sub.add_parser(
        "bench", help="run a bench suite inside the daemon"
    )
    c_bench.add_argument(
        "--full", action="store_true",
        help="full suite instead of the quick set",
    )
    c_bench.add_argument("--repeats", type=int, default=None, metavar="N")
    c_bench.add_argument("--warmup", type=int, default=None, metavar="N")

    client_sub.add_parser("health", help="GET /healthz")
    client_sub.add_parser("status", help="GET /statusz")
    client_sub.add_parser("version", help="GET /version")
    client_sub.add_parser("workloads", help="GET /workloads")
    client_sub.add_parser(
        "metrics", help="GET /metrics (raw Prometheus text)"
    )
    c_events = client_sub.add_parser(
        "events", help="tail the /events SSE stream as JSON lines"
    )
    c_events.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="stop after N events (default: until the stream closes)",
    )
    client_sub.add_parser(
        "shutdown", help="ask the daemon to shut down gracefully"
    )

    return parser


COMMANDS = {
    "list": cmd_list,
    "dot": cmd_dot,
    "validate": cmd_validate,
    "analyze": cmd_analyze,
    "run": cmd_run,
    "compare": cmd_compare,
    "trace": cmd_trace,
    "blame": cmd_blame,
    "critpath": cmd_critpath,
    "journal": cmd_journal,
    "telemetry": cmd_telemetry,
    "report": cmd_report,
    "jdiff": cmd_jdiff,
    "fuzz": cmd_fuzz,
    "experiments": cmd_experiments,
    "ablations": cmd_ablations,
    "bench": cmd_bench,
    "serve": cmd_serve,
    "client": cmd_client,
}


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.log is not None or args.log_json:
        from repro.obs.log import configure

        configure(
            spec=args.log,
            json_lines=True if args.log_json else None,
        )
    try:
        return COMMANDS[args.command](args) or 0
    except (UnknownWorkloadError, UnknownModelError) as exc:
        # user typo'd a name: one line, exit 2, no traceback
        message = exc.args[0] if exc.args else str(exc)
        print("error: {}".format(message), file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away; not an error
        try:
            sys.stdout.close()
        except OSError:
            pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
