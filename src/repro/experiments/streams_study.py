"""Streams study: programmer-managed streams vs. BlockMaestro.

Quantifies the paper's Section III-C / Fig. 11 remark that BlockMaestro
"can gain the benefit of executing independent concurrent kernels
across streams automatically, while also extracting benefits for more
complex dependency patterns":

* the same multi-pipeline computation is written single-stream (legacy
  style) and multi-stream (hand-optimized);
* the serialized baseline only overlaps the multi-stream version;
* BlockMaestro recovers (and exceeds) the multi-stream baseline's
  performance *from the single-stream code*, and still adds pre-launch
  and fine-grain overlap on top of hand-written streams.
"""

from repro.core.policy import SchedulingPolicy
from repro.core.runtime import BlockMaestroRuntime
from repro.experiments.common import format_table
from repro.models import BlockMaestroModel, SerializedBaseline
from repro.workloads.streams import build_pipelines


def run(pipelines=(2, 3, 4), stages=4, window=4):
    runtime = BlockMaestroRuntime()
    rows = []
    for count in pipelines:
        single = build_pipelines(pipelines=count, stages=stages, use_streams=False)
        multi = build_pipelines(pipelines=count, stages=stages, use_streams=True)
        base_single = SerializedBaseline().run(
            runtime.plan(single, reorder=False, window=1)
        )
        base_multi = SerializedBaseline().run(
            runtime.plan(multi, reorder=False, window=1)
        )
        bm_single = BlockMaestroModel(
            window=window, policy=SchedulingPolicy.CONSUMER_PRIORITY
        ).run(runtime.plan(single, reorder=True, window=window))
        bm_multi = BlockMaestroModel(
            window=window, policy=SchedulingPolicy.CONSUMER_PRIORITY
        ).run(runtime.plan(multi, reorder=True, window=window))
        rows.append(
            {
                "pipelines": count,
                "baseline_single": 1.0,
                "baseline_streams": base_single.makespan_ns / base_multi.makespan_ns,
                "bm_single": base_single.makespan_ns / bm_single.makespan_ns,
                "bm_streams": base_single.makespan_ns / bm_multi.makespan_ns,
            }
        )
    return rows


def format_rows(rows):
    return format_table(
        rows,
        [
            "pipelines",
            "baseline_single",
            "baseline_streams",
            "bm_single",
            "bm_streams",
        ],
        title="Streams study: speedup over the single-stream baseline",
    )


def main():
    print(format_rows(run()))


if __name__ == "__main__":
    main()
