"""Table II: the benchmark inventory, regenerated from our suite.

For every workload, builds the application, runs the launch-time
analysis, and reports the kernel-launch count and the set of detected
Table I dependency patterns next to the paper's values.
"""

from repro.experiments.common import ExperimentContext, format_table
from repro.workloads import all_workloads


def run(ctx: ExperimentContext = None):
    ctx = ctx or ExperimentContext()
    rows = []
    for spec in all_workloads():
        app = ctx.app(spec.name)
        plan = ctx.plan_for(app, reorder=False, window=1)
        detected = set()
        for kp in plan.kernels:
            if kp.encoded is not None:
                number = kp.encoded.original_pattern.pattern.table1_number
                detected.add(number)
        rows.append(
            {
                "benchmark": spec.name,
                "description": spec.description,
                "suite": spec.suite,
                "kernels": plan.num_kernels,
                "paper_kernels": spec.paper_kernels,
                "patterns": ",".join(str(p) for p in sorted(detected)),
                "paper_patterns": ",".join(str(p) for p in spec.paper_patterns),
            }
        )
    return rows


def format_rows(rows):
    return format_table(
        rows,
        [
            "benchmark",
            "description",
            "suite",
            "kernels",
            "paper_kernels",
            "patterns",
            "paper_patterns",
        ],
        title="Table II: benchmarks, kernel counts and dependency patterns",
    )


def main():
    print(format_rows(run()))


if __name__ == "__main__":
    main()
