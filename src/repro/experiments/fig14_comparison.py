"""Figure 14: comparison with CDP and Wireframe on wavefront workloads.

Six 4K-task wavefront applications run under four execution models:

* **CDP** — device-side per-level launches at 3 us (the normalization
  baseline);
* **BlockMaestro producer priority** (window 2);
* **Wireframe** — zero launch overhead, hardware dependency graph, but
  run-ahead limited by its pending-update buffers;
* **BlockMaestro consumer priority** (window 4) — unconstrained
  run-ahead with dependency state in global memory.

Expected shape (paper): producer-priority BlockMaestro edges out CDP
(~6%), Wireframe is clearly better (~37%), and consumer-priority
BlockMaestro beats Wireframe (~2x over CDP) because its run-ahead is
not buffer-constrained.
"""

from repro.core.policy import SchedulingPolicy
from repro.core.runtime import BlockMaestroRuntime
from repro.experiments.common import ExperimentContext, format_table, geomean
from repro.models import BlockMaestroModel, CDPModel, WireframeModel
from repro.workloads.wavefront import WAVEFRONT_APPS, build_wavefront

MODELS = ("cdp", "bm-producer", "wireframe", "bm-consumer")


def run(ctx: ExperimentContext = None, side=64):
    ctx = ctx or ExperimentContext()
    cfg = ctx.gpu_config
    models = {
        "cdp": CDPModel(cfg),
        "bm-producer": BlockMaestroModel(
            cfg, window=2, policy=SchedulingPolicy.PRODUCER_PRIORITY, name="producer"
        ),
        "wireframe": WireframeModel(cfg),
        "bm-consumer": BlockMaestroModel(
            cfg, window=4, policy=SchedulingPolicy.CONSUMER_PRIORITY, name="consumer4"
        ),
    }
    plan_params = {
        "cdp": (False, 1),
        "bm-producer": (True, 2),
        "wireframe": (True, 3),
        "bm-consumer": (True, 4),
    }
    rows = []
    for name, parents, intensity, factor, fraction in WAVEFRONT_APPS:
        app = build_wavefront(
            name,
            side=side,
            parents=parents,
            intensity=intensity,
            straggler_factor=factor,
            straggler_fraction=fraction,
        )
        runtime = BlockMaestroRuntime(cfg)
        stats = {}
        for model_name, model in models.items():
            reorder, window = plan_params[model_name]
            plan = runtime.plan(app, reorder=reorder, window=window)
            stats[model_name] = model.run(plan)
        row = {"benchmark": name}
        for model_name in MODELS:
            row[model_name] = stats[model_name].speedup_over(stats["cdp"])
        rows.append(row)
    summary = {"benchmark": "geomean"}
    for model_name in MODELS:
        summary[model_name] = geomean([r[model_name] for r in rows])
    rows.append(summary)
    return rows


def format_rows(rows):
    return format_table(
        rows,
        ["benchmark"] + list(MODELS),
        title="Figure 14: speedup normalized to CDP",
    )


def main():
    print(format_rows(run()))


if __name__ == "__main__":
    main()
