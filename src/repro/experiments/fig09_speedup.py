"""Figure 9: normalized speedup w.r.t. the serialized baseline.

For every benchmark, runs the whole model roster — kernel pre-launching
only, producer-priority BlockMaestro, consumer-priority BlockMaestro
with 2/3/4 concurrent kernels — plus the zero-launch-overhead ideal
baseline, and reports speedup over the baseline.

Expected shape (paper): every configuration >= 1.0; consumer priority
grows with window and saturates around 3 pre-launched kernels;
GAUSSIAN/GRAMSCHM gain mostly from pre-launching; 3MM/BICG/FDTD gain
mostly from fine-grain dependency resolution; AlexNet gains little.
"""

from repro.experiments.common import ExperimentContext, format_table, geomean
from repro.workloads import workload_names

MODELS = ("prelaunch", "producer", "consumer2", "consumer3", "consumer4", "ideal")


def run(ctx: ExperimentContext = None, benchmarks=None):
    ctx = ctx or ExperimentContext()
    rows = []
    for name in benchmarks or workload_names():
        app = ctx.app(name)
        baseline = ctx.run_model(app, "baseline")
        row = {"benchmark": name}
        for model in MODELS:
            stats = ctx.run_model(app, model)
            row[model] = stats.speedup_over(baseline)
        rows.append(row)
    summary = {"benchmark": "geomean"}
    for model in MODELS:
        summary[model] = geomean([r[model] for r in rows])
    rows.append(summary)
    return rows


def format_rows(rows):
    return format_table(
        rows,
        ["benchmark"] + list(MODELS),
        title="Figure 9: speedup over serialized baseline",
    )


def main():
    print(format_rows(run()))


if __name__ == "__main__":
    main()
