"""Table I: hardware storage overhead per dependency pattern.

Builds a synthetic bipartite graph for each of the seven patterns,
checks the classifier recovers the pattern, and reports the measured
encoded storage against the paper's asymptotic bound.
"""

from repro.core.dependency_graph import BipartiteGraph
from repro.core.encoding import encode_graph, plain_bytes
from repro.core.patterns import classify_pattern
from repro.experiments.common import format_table


def synthetic_graph(pattern, n=64, m=64, group=8, degree=3):
    """Construct a canonical graph for each Table I pattern."""
    if pattern == "fully_connected":
        return BipartiteGraph.fully_connected(n, m)
    if pattern == "independent":
        return BipartiteGraph.independent(n, m)
    if pattern == "one_to_one":
        return BipartiteGraph.explicit(n, n, [[p] for p in range(n)])
    if pattern == "one_to_n":
        fan = m // n
        return BipartiteGraph.explicit(
            n, m, [list(range(p * fan, (p + 1) * fan)) for p in range(n)]
        )
    if pattern == "n_to_one":
        fan = n // m
        children = [[p // fan] for p in range(n)]
        return BipartiteGraph.explicit(n, m, children)
    if pattern == "n_group":
        children = [
            list(range((p // group) * group, (p // group + 1) * group))
            for p in range(n)
        ]
        return BipartiteGraph.explicit(n, n, children)
    if pattern == "overlapped":
        children = [
            [c for c in range(p - degree + 1, p + 1) if 0 <= c < m]
            for p in range(n)
        ]
        return BipartiteGraph.explicit(n, m, children)
    raise KeyError(pattern)


PATTERNS = (
    ("fully_connected", "O(1) (O(MN) plain)"),
    ("n_group", "O(M+N)"),
    ("one_to_one", "O(N)"),
    ("one_to_n", "O(M+N)"),
    ("n_to_one", "O(N)"),
    ("overlapped", "O(N + M*deg_max)"),
    ("independent", "O(1)"),
)


def run(n=64, m=64):
    rows = []
    for pattern_name, bound in PATTERNS:
        # asymmetric sides keep 1-to-n / n-to-1 from degenerating to 1-to-1
        if pattern_name == "one_to_n":
            graph = synthetic_graph(pattern_name, n=n // 4, m=m)
        elif pattern_name == "n_to_one":
            graph = synthetic_graph(pattern_name, n=n, m=m // 4)
        else:
            graph = synthetic_graph(pattern_name, n=n, m=m)
        detected = classify_pattern(graph)
        encoded = encode_graph(graph)
        rows.append(
            {
                "pattern": pattern_name,
                "table1_row": detected.pattern.table1_number,
                "detected": detected.pattern.value,
                "plain_bytes": plain_bytes(graph),
                "encoded_bytes": encoded.encoded_bytes,
                "paper_bound": bound,
            }
        )
    return rows


def format_rows(rows):
    return format_table(
        rows,
        [
            "pattern",
            "table1_row",
            "detected",
            "plain_bytes",
            "encoded_bytes",
            "paper_bound",
        ],
        title="Table I: encoding overhead per dependency pattern (N=M=64)",
    )


def main():
    print(format_rows(run()))


if __name__ == "__main__":
    main()
