"""Ablation studies for BlockMaestro's design choices.

Beyond the paper's own figures, these sweeps isolate the contribution
of each mechanism:

* **window** — pre-launch depth 1..6: where does the paper's
  "diminishing returns past 3" come from, per benchmark class?
* **counter_bits** — the parent-counter width sets the fully-connected
  collapse threshold (Table I/III): storage vs. speedup trade-off.
* **reorder** — command-queue reordering and host un-blocking, the two
  halves of the paper's Fig. 5 mechanism, measured separately on a
  pipeline with memory traffic interleaved between kernels.  Finding:
  un-blocking the host is the dominant lever; once device commands are
  *dependency-gated* (as in this engine's relaxed mode), explicit
  reordering adds nothing and can even cost a little by serializing
  copies ahead of compute and delaying the first kernel's enqueue.
  Reordering matters for strictly position-ordered command processors —
  the regime the paper's Fig. 5 depicts.
* **jitter** — sensitivity of fine-grain benefits to thread-block
  duration variance (the substitute for warp-level timing; DESIGN.md).
* **hazards** — RAW-only (the paper) vs. full RAW+WAR+WAW tracking:
  the cost of airtight hazard coverage.
* **coalescing** — the opt-in transactions-per-warp memory model's
  effect on the headline speedups.
* **launch_overhead** — speedup vs. the kernel launch cost across the
  paper's cited 5-30 us range (launch-bound apps scale, compute-bound
  ones saturate).
"""

from repro.core.hardware import HardwareConfig
from repro.core.policy import SchedulingPolicy
from repro.core.runtime import BlockMaestroRuntime
from repro.experiments.common import format_table, geomean
from repro.models import BlockMaestroModel, PrelaunchOnly, SerializedBaseline
from repro.sim.config import GPUConfig
from repro.workloads import get_workload

#: small-but-representative benchmark set for sweeps
DEFAULT_BENCHMARKS = ("3mm", "bicg", "fdtd-2d", "hs", "lud", "path")


def _speedup(app, gpu_config=None, window=2, reorder=True,
             policy=SchedulingPolicy.CONSUMER_PRIORITY, hardware=None,
             hazards=("raw",)):
    gpu_config = gpu_config or GPUConfig()
    runtime = BlockMaestroRuntime(gpu_config, hardware=hardware, hazards=hazards)
    base = SerializedBaseline(gpu_config).run(
        runtime.plan(app, reorder=False, window=1)
    )
    bm = BlockMaestroModel(gpu_config, window=window, policy=policy).run(
        runtime.plan(app, reorder=reorder, window=window)
    )
    return bm.speedup_over(base)


# ----------------------------------------------------------------------
def run_window_sweep(benchmarks=DEFAULT_BENCHMARKS, windows=(1, 2, 3, 4, 5, 6)):
    """Speedup vs. pre-launch window depth."""
    rows = []
    for name in benchmarks:
        app = get_workload(name).build()
        row = {"benchmark": name}
        for window in windows:
            row["w{}".format(window)] = _speedup(app, window=window)
        rows.append(row)
    summary = {"benchmark": "geomean"}
    for window in windows:
        key = "w{}".format(window)
        summary[key] = geomean([r[key] for r in rows])
    rows.append(summary)
    return rows


def format_window_sweep(rows):
    columns = ["benchmark"] + [k for k in rows[0] if k != "benchmark"]
    return format_table(rows, columns, title="Ablation: pre-launch window depth")


# ----------------------------------------------------------------------
def run_counter_bits_sweep(bits_options=(3, 4, 5, 6, 7, 8), benchmark="gaussian"):
    """Parent-counter width: collapse threshold vs. storage and speedup."""
    app = get_workload(benchmark).build()
    rows = []
    for bits in bits_options:
        hardware = HardwareConfig(counter_bits=bits)
        runtime = BlockMaestroRuntime(hardware=hardware)
        plan = runtime.plan(app, reorder=True, window=3)
        collapsed = sum(
            1 for kp in plan.kernels if kp.encoded is not None and kp.encoded.collapsed
        )
        base = SerializedBaseline().run(runtime.plan(app, reorder=False, window=1))
        bm = BlockMaestroModel(
            window=3, policy=SchedulingPolicy.CONSUMER_PRIORITY
        ).run(plan)
        ratio = (
            plan.graph_encoded_bytes / plan.graph_plain_bytes
            if plan.graph_plain_bytes
            else None
        )
        rows.append(
            {
                "counter_bits": bits,
                "threshold": hardware.degree_threshold,
                "collapsed_graphs": collapsed,
                "storage_ratio": ratio,
                "speedup": bm.speedup_over(base),
            }
        )
    return rows


def format_counter_bits(rows):
    return format_table(
        rows,
        ["counter_bits", "threshold", "collapsed_graphs", "storage_ratio", "speedup"],
        title="Ablation: parent counter width (GAUSSIAN)",
    )


# ----------------------------------------------------------------------
class _BlockingHostPrelaunch(BlockMaestroModel):
    """Pre-launching BlockMaestro with *baseline* host semantics: the
    host still blocks on mallocs and copies.

    This isolates the paper's Fig. 5 motivation for queue reordering:
    with memory APIs interleaved between kernel launches, a blocked host
    cannot fill the command queue, so pre-launching starves — unless the
    reordering pass hoists the memory operations out of the way first.
    (The full BlockMaestro also un-blocks the host, which is why the
    reorder knob alone shows little effect under full BM semantics.)
    """

    def options(self):
        from dataclasses import replace

        return replace(super().options(), blockmaestro_host=False)


def build_streaming_app(stages=6, tbs=96, block=256, intensity=4.0):
    """A Fig. 5-style pipeline: each stage mallocs its own buffer and
    copies data in right before launching its kernel."""
    from repro.workloads.base import AppBuilder
    from repro.workloads import ptxgen

    b = AppBuilder("streaming")
    kernel = ptxgen.elementwise("stream_stage", num_inputs=2, alu=2)
    elems = tbs * block
    prev = b.alloc("IN", elems * 4)
    b.h2d(prev)
    for stage in range(stages):
        fresh = b.alloc("W{}".format(stage), elems * 4)
        b.h2d(fresh)  # blocking in the baseline: stalls the host mid-pipe
        out = b.alloc("OUT{}".format(stage), elems * 4)
        b.launch(
            kernel,
            grid=tbs,
            block=block,
            args={"IN0": prev, "IN1": fresh, "OUT": out},
            intensity=intensity,
            tag="stage{}".format(stage),
        )
        prev = out
    b.d2h(prev)
    return b.build()


def run_reorder_ablation(stages=6):
    """Queue reordering on/off, with and without host un-blocking."""
    app = build_streaming_app(stages=stages)
    runtime = BlockMaestroRuntime()
    base = SerializedBaseline().run(runtime.plan(app, reorder=False, window=1))
    rows = []
    for host, model_cls in (
        ("blocking", _BlockingHostPrelaunch),
        ("non-blocking", BlockMaestroModel),
    ):
        for reorder in (False, True):
            plan = runtime.plan(app, reorder=reorder, window=2)
            stats = model_cls(window=2).run(plan)
            rows.append(
                {
                    "host": host,
                    "reordered": "yes" if reorder else "no",
                    "speedup": stats.speedup_over(base),
                }
            )
    return rows


def format_reorder(rows):
    return format_table(
        rows,
        ["host", "reordered", "speedup"],
        title="Ablation: command queue reordering (streaming pipeline)",
    )


# ----------------------------------------------------------------------
def run_jitter_sweep(jitters=(0.0, 0.05, 0.15, 0.30), benchmarks=("hs", "path", "lud")):
    """Fine-grain benefit (BlockMaestro over pre-launch-only) vs. the
    per-block duration spread."""
    rows = []
    for jitter in jitters:
        gpu_config = GPUConfig(duration_jitter=jitter)
        runtime = BlockMaestroRuntime(gpu_config)
        gains = []
        for name in benchmarks:
            app = get_workload(name).build()
            plan = runtime.plan(app, reorder=True, window=3)
            pre = PrelaunchOnly(gpu_config, window=3).run(plan)
            bm = BlockMaestroModel(
                gpu_config, window=3, policy=SchedulingPolicy.PRODUCER_PRIORITY
            ).run(plan)
            gains.append(bm.speedup_over(pre))
        rows.append(
            {"jitter": jitter, "fine_grain_gain": geomean(gains)}
        )
    return rows


def format_jitter(rows):
    return format_table(
        rows,
        ["jitter", "fine_grain_gain"],
        title="Ablation: TB duration variance vs fine-grain benefit",
    )


# ----------------------------------------------------------------------
def run_hazard_ablation(benchmarks=DEFAULT_BENCHMARKS):
    """RAW-only (paper) vs. full RAW+WAR+WAW dependency tracking."""
    rows = []
    for name in benchmarks:
        app = get_workload(name).build()
        raw_only = _speedup(app, hazards=("raw",))
        full = _speedup(app, hazards=("raw", "war", "waw"))
        rows.append(
            {
                "benchmark": name,
                "raw_only": raw_only,
                "full_hazards": full,
                "cost_pct": 100.0 * (1.0 - full / raw_only),
            }
        )
    return rows


def format_hazards(rows):
    return format_table(
        rows,
        ["benchmark", "raw_only", "full_hazards", "cost_pct"],
        title="Ablation: hazard classes tracked",
    )


# ----------------------------------------------------------------------
def run_launch_overhead_sweep(
    overheads_us=(1, 2, 5, 10, 20, 30), benchmarks=("gaussian", "nw", "hs")
):
    """Speedup vs. the kernel-launch overhead.

    The paper fixes the launch overhead at 5 us but cites measurements
    of 5-30 us [27]; this sweep shows how BlockMaestro's benefit scales
    with it — launch-bound applications (GAUSSIAN, NW) gain roughly
    linearly, compute-bound ones saturate.
    """
    from repro.host.timing import HostTimingModel

    rows = []
    for overhead_us in overheads_us:
        timing = HostTimingModel(
            kernel_launch_device_ns=overhead_us * 1000.0 - 1000.0,
            api_call_ns=1000.0,
        )
        gpu_config = GPUConfig(timing=timing)
        row = {"launch_us": overhead_us}
        for name in benchmarks:
            app = get_workload(name).build()
            row[name] = _speedup(app, gpu_config=gpu_config, window=3)
        rows.append(row)
    return rows


def format_launch_overhead(rows):
    columns = ["launch_us"] + [k for k in rows[0] if k != "launch_us"]
    return format_table(
        rows, columns, title="Ablation: kernel launch overhead (us)"
    )


# ----------------------------------------------------------------------
def run_coalescing_ablation(benchmarks=DEFAULT_BENCHMARKS):
    """Effect of modelling memory coalescing (transactions per warp
    derived from inter-thread strides) on the headline speedups.

    The coalescing model stretches strided kernels (matrix columns,
    grouped reads) relative to contiguous ones; the *relative* ordering
    of the execution models should be robust to it — this sweep is the
    evidence.
    """
    rows = []
    for name in benchmarks:
        app = get_workload(name).build()
        off = _speedup(app, gpu_config=GPUConfig(model_coalescing=False))
        on = _speedup(app, gpu_config=GPUConfig(model_coalescing=True))
        runtime = BlockMaestroRuntime(GPUConfig(model_coalescing=True))
        plan = runtime.plan(app, reorder=False, window=1)
        factors = [
            kp.summary.coalescing_factor() for kp in plan.kernels
        ]
        rows.append(
            {
                "benchmark": name,
                "mean_coalescing": sum(factors) / len(factors),
                "speedup_off": off,
                "speedup_on": on,
            }
        )
    return rows


def format_coalescing(rows):
    return format_table(
        rows,
        ["benchmark", "mean_coalescing", "speedup_off", "speedup_on"],
        title="Ablation: memory coalescing model",
    )


# ----------------------------------------------------------------------
ABLATIONS = {
    "window": (run_window_sweep, format_window_sweep),
    "counter_bits": (run_counter_bits_sweep, format_counter_bits),
    "reorder": (run_reorder_ablation, format_reorder),
    "jitter": (run_jitter_sweep, format_jitter),
    "hazards": (run_hazard_ablation, format_hazards),
    "coalescing": (run_coalescing_ablation, format_coalescing),
    "launch_overhead": (run_launch_overhead_sweep, format_launch_overhead),
}


def main():
    for name, (run_fn, format_fn) in ABLATIONS.items():
        print(format_fn(run_fn()))
        print()


if __name__ == "__main__":
    main()
