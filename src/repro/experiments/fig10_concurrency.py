"""Figure 10: normalized average thread-block concurrency.

Average number of concurrently executing thread blocks (time integral
of running blocks over device-busy time), normalized to the serialized
baseline.  Fine-grain dependency resolution raises concurrency by
letting dependent kernels' blocks fill freed SM slots.
"""

from repro.experiments.common import ExperimentContext, format_table, geomean
from repro.workloads import workload_names

MODELS = ("prelaunch", "producer", "consumer2", "consumer3", "consumer4")


def run(ctx: ExperimentContext = None, benchmarks=None):
    ctx = ctx or ExperimentContext()
    rows = []
    for name in benchmarks or workload_names():
        app = ctx.app(name)
        base = ctx.run_model(app, "baseline").avg_tb_concurrency()
        row = {"benchmark": name}
        for model in MODELS:
            conc = ctx.run_model(app, model).avg_tb_concurrency()
            row[model] = conc / base if base > 0 else 0.0
        rows.append(row)
    summary = {"benchmark": "geomean"}
    for model in MODELS:
        summary[model] = geomean([r[model] for r in rows])
    rows.append(summary)
    return rows


def format_rows(rows):
    return format_table(
        rows,
        ["benchmark"] + list(MODELS),
        title="Figure 10: normalized average TB concurrency",
    )


def main():
    print(format_rows(run()))


if __name__ == "__main__":
    main()
