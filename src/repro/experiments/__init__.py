"""Experiment harness: one module per paper table/figure.

================  =============================================
module            paper artifact
================  =============================================
fig09_speedup     Fig. 9 — normalized speedup per configuration
fig10_concurrency Fig. 10 — normalized average TB concurrency
fig11_stalls      Fig. 11 — dependency stall distribution
fig12_interconnectivity  Fig. 12 — dependency-degree sweep
fig13_memory_overhead    Fig. 13 — memory request overhead
fig14_comparison  Fig. 14 — CDP vs Wireframe vs BlockMaestro
table1_overhead   Table I — encoding overhead per pattern
table2_benchmarks Table II — benchmark inventory
table3_storage    Table III — dependency graph storage
================  =============================================

Each module exposes ``run(...) -> rows`` returning plain dicts and a
``format_rows`` helper; :mod:`repro.experiments.runner` drives them all
and writes EXPERIMENTS-ready summaries.
"""

from repro.experiments.common import (
    ExperimentContext,
    STANDARD_MODELS,
    format_table,
    geomean,
)

__all__ = [
    "ExperimentContext",
    "STANDARD_MODELS",
    "format_table",
    "geomean",
]
