"""Figure 12: interconnectivity analysis.

Sweeps the dependency degree of a two-kernel VectorAdd microbenchmark
(n-group pattern with groups of ``degree``) for several workload sizes
(thread blocks per kernel), reporting BlockMaestro's speedup over the
serialized baseline, plus the fully-connected reference (pre-launch
only) each curve converges to.

Expected shape (paper): benefits decay as the degree grows and flatten
to the fully-connected level once the degree crosses the encodable
threshold; larger workloads gain less (execution swamps the launch
overhead), with the speedup essentially gone by 2048 blocks per kernel.
"""

from repro.core.runtime import BlockMaestroRuntime
from repro.core.policy import SchedulingPolicy
from repro.experiments.common import ExperimentContext, format_table
from repro.models import BlockMaestroModel, PrelaunchOnly, SerializedBaseline
from repro.workloads.microbench import build_vecadd_pair

SIZES = (128, 256, 512, 1024, 2048)
DEGREES = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def run(ctx: ExperimentContext = None, sizes=SIZES, degrees=DEGREES):
    ctx = ctx or ExperimentContext()
    baseline = SerializedBaseline(ctx.gpu_config)
    fully_connected = PrelaunchOnly(ctx.gpu_config, window=2)
    blockmaestro = BlockMaestroModel(
        ctx.gpu_config,
        window=2,
        policy=SchedulingPolicy.PRODUCER_PRIORITY,
        name="producer",
    )
    rows = []
    for size in sizes:
        row = {"num_tbs": size}
        for degree in degrees:
            if degree > size:
                row["deg{}".format(degree)] = None
                continue
            app = build_vecadd_pair(num_tbs=size, degree=degree)
            runtime = BlockMaestroRuntime(ctx.gpu_config)
            base_stats = baseline.run(runtime.plan(app, reorder=False, window=1))
            plan = runtime.plan(app, reorder=True, window=2)
            bm_stats = blockmaestro.run(plan)
            row["deg{}".format(degree)] = bm_stats.speedup_over(base_stats)
            if degree == degrees[0]:
                fc_stats = fully_connected.run(plan)
                row["fully_connected"] = fc_stats.speedup_over(base_stats)
        rows.append(row)
    return rows


def format_rows(rows):
    columns = ["num_tbs"] + ["deg{}".format(d) for d in DEGREES] + ["fully_connected"]
    return format_table(
        rows, columns, title="Figure 12: speedup vs dependency degree"
    )


def main():
    print(format_rows(run()))


if __name__ == "__main__":
    main()
