"""Figure 13: memory request overhead of dependency resolution.

BlockMaestro keeps dependency lists and parent counters in global
memory and buffers them in the TB scheduler; the extra requests (list
fetches + counter read/writebacks) are reported as a percentage of the
kernels' own global-memory requests.  The paper measures about 1.36%
on average.
"""

from repro.experiments.common import ExperimentContext, format_table
from repro.workloads import workload_names

MODEL = "producer"


def run(ctx: ExperimentContext = None, benchmarks=None):
    ctx = ctx or ExperimentContext()
    rows = []
    total = 0.0
    count = 0
    for name in benchmarks or workload_names():
        app = ctx.app(name)
        stats = ctx.run_model(app, MODEL)
        pct = stats.memory_overhead_fraction() * 100.0
        rows.append(
            {
                "benchmark": name,
                "kernel_requests": stats.kernel_memory_requests,
                "dependency_requests": stats.dependency_memory_requests,
                "overhead_pct": pct,
            }
        )
        total += pct
        count += 1
    rows.append(
        {
            "benchmark": "average",
            "kernel_requests": None,
            "dependency_requests": None,
            "overhead_pct": total / max(count, 1),
        }
    )
    return rows


def format_rows(rows):
    return format_table(
        rows,
        ["benchmark", "kernel_requests", "dependency_requests", "overhead_pct"],
        title="Figure 13: memory request overhead (%)",
    )


def main():
    print(format_rows(run()))


if __name__ == "__main__":
    main()
