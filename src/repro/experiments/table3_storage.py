"""Table III: total bipartite dependency graph storage, normalized to
plain (unencoded) storage, for the whole run of each application.

Expected shape (paper): applications whose graphs are fully connected
or collapse under the degree threshold (AlexNet, GAUSSIAN, 3MM,
GRAMSCHM) shrink well below 1; pure stencil/butterfly applications
(FDTD, FFT, HS, NW, PATH) stay at exactly 1; BICG and MVT have no
dependencies at all (no storage).
"""

from repro.experiments.common import ExperimentContext, format_table
from repro.workloads import workload_names


def run(ctx: ExperimentContext = None, benchmarks=None):
    ctx = ctx or ExperimentContext()
    rows = []
    ratios = []
    for name in benchmarks or workload_names():
        app = ctx.app(name)
        plan = ctx.plan_for(app, reorder=False, window=1)
        ratio = (
            plan.graph_encoded_bytes / plan.graph_plain_bytes
            if plan.graph_plain_bytes
            else None
        )
        rows.append(
            {
                "benchmark": name,
                "plain_bytes": plan.graph_plain_bytes,
                "encoded_bytes": plan.graph_encoded_bytes,
                "ratio": ratio,
            }
        )
        if ratio is not None:
            ratios.append(ratio)
    rows.append(
        {
            "benchmark": "average",
            "plain_bytes": None,
            "encoded_bytes": None,
            "ratio": sum(ratios) / len(ratios) if ratios else None,
        }
    )
    return rows


def format_rows(rows):
    return format_table(
        rows,
        ["benchmark", "plain_bytes", "encoded_bytes", "ratio"],
        title="Table III: dependency graph storage normalized to plain",
    )


def main():
    print(format_rows(run()))


if __name__ == "__main__":
    main()
