"""Pattern census: every kernel-pair graph in the suite, classified.

Table II lists each benchmark's pattern *set*; this census counts how
many of its kernel-pair graphs fall into each Table I pattern, how many
collapse under the parent-counter threshold, and the edge volume — the
quantitative backdrop for the storage results of Table III and the
encoding choices of Section III-E.
"""

from collections import Counter

from repro.core.patterns import DependencyPattern
from repro.experiments.common import ExperimentContext, format_table
from repro.workloads import workload_names

_PATTERN_COLUMNS = [
    ("fc", DependencyPattern.FULLY_CONNECTED),
    ("ngrp", DependencyPattern.N_GROUP),
    ("1to1", DependencyPattern.ONE_TO_ONE),
    ("1ton", DependencyPattern.ONE_TO_N),
    ("nto1", DependencyPattern.N_TO_ONE),
    ("ovlp", DependencyPattern.OVERLAPPED),
    ("ind", DependencyPattern.INDEPENDENT),
    ("arb", DependencyPattern.ARBITRARY),
]


def run(ctx: ExperimentContext = None, benchmarks=None):
    ctx = ctx or ExperimentContext()
    rows = []
    for name in benchmarks or workload_names():
        app = ctx.app(name)
        plan = ctx.plan_for(app, reorder=False, window=1)
        counts = Counter()
        collapsed = 0
        edges = 0
        pairs = 0
        for kp in plan.kernels:
            if kp.encoded is None:
                continue
            pairs += 1
            counts[kp.encoded.original_pattern.pattern] += 1
            collapsed += kp.encoded.collapsed
            edges += kp.encoded.original.num_edges
        row = {"benchmark": name, "pairs": pairs}
        for column, pattern in _PATTERN_COLUMNS:
            row[column] = counts.get(pattern, 0)
        row["collapsed"] = collapsed
        row["edges"] = edges
        rows.append(row)
    return rows


def format_rows(rows):
    columns = (
        ["benchmark", "pairs"]
        + [c for c, _ in _PATTERN_COLUMNS]
        + ["collapsed", "edges"]
    )
    return format_table(
        rows, columns, title="Pattern census: kernel-pair graphs by Table I class"
    )


def main():
    print(format_rows(run()))


if __name__ == "__main__":
    main()
