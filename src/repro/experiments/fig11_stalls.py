"""Figure 11: dependency-stall distribution per thread block.

A thread block's dependency stall is the time between its data
dependencies being satisfied and it starting execution, normalized to
its own execution time (a value of 2 = it waited twice as long as it
ran).  The paper shows box plots (quartiles + median) for the baseline
vs. BlockMaestro; BICG and MVT collapse to ~0 under BlockMaestro since
their two kernels run concurrently.
"""

from repro.experiments.common import ExperimentContext, format_table
from repro.workloads import workload_names

MODELS = ("baseline", "consumer3")


def run(ctx: ExperimentContext = None, benchmarks=None, models=MODELS):
    ctx = ctx or ExperimentContext()
    rows = []
    for name in benchmarks or workload_names():
        app = ctx.app(name)
        for model in models:
            stats = ctx.run_model(app, model)
            q1, median, q3 = stats.stall_quartiles()
            attr = ctx.critpath_attribution(app, model)
            telemetry = ctx.telemetry_summary(app, model)
            rows.append(
                {
                    "benchmark": name,
                    "model": model,
                    "q1": q1,
                    "median": median,
                    "q3": q3,
                    "max": max(stats.normalized_stalls(), default=0.0),
                    # critical-path makespan fractions: where the
                    # end-to-end time actually went (stall quartiles are
                    # per-TB and do not weight by path membership)
                    "cp_exec": attr.get("exec", 0.0),
                    "cp_launch": attr.get("launch", 0.0),
                    "cp_stall": (
                        attr.get("dependency", 0.0)
                        + attr.get("occupancy", 0.0)
                        + attr.get("barrier", 0.0)
                    ),
                    # telemetry view of the same story: how much
                    # cross-kernel overlap the model achieved, and what
                    # fraction of the makespan any TB was resident
                    "tm_overlap": telemetry["mean_overlap_fraction"],
                    "tm_busy": telemetry["busy_fraction"],
                }
            )
    return rows


def format_rows(rows):
    return format_table(
        rows,
        ["benchmark", "model", "q1", "median", "q3", "max",
         "cp_exec", "cp_launch", "cp_stall", "tm_overlap", "tm_busy"],
        title="Figure 11: dependency stall distribution (normalized to TB time)",
    )


def main():
    print(format_rows(run()))


if __name__ == "__main__":
    main()
