"""Run every experiment and print (or save) all paper artifacts.

Usage::

    python -m repro.experiments.runner            # everything
    python -m repro.experiments.runner fig09 tab3 # selected
    python -m repro.experiments.runner --out reports/   # + JSON artifacts

``--output FILE`` captures the text tables; ``--out DIR`` additionally
writes one machine-readable JSON report per experiment
(``DIR/<name>.json``, schema in :mod:`repro.obs.report`) so benchmark
trajectories can be recorded and diffed across commits.

``--jobs N`` runs independent experiments on a process pool
(:class:`~repro.parallel.SuiteExecutor`).  Each worker builds its own
:class:`~repro.experiments.common.ExperimentContext`; text and JSON
artifacts are emitted by the parent in registry order, so the output is
byte-identical to a serial run (modulo the wall-clock ``elapsed_s``
field and the ``[... finished in Ns]`` footers).
"""

import sys
import time

from repro.obs.log import Heartbeat
from repro.obs.report import write_experiment_report
from repro.parallel import SuiteExecutor

from repro.experiments import common
from repro.experiments import (
    fig09_speedup,
    fig10_concurrency,
    fig11_stalls,
    fig12_interconnectivity,
    fig13_memory_overhead,
    fig14_comparison,
    pattern_census,
    streams_study,
    table1_overhead,
    table2_benchmarks,
    table3_storage,
)

EXPERIMENTS = {
    "fig09": fig09_speedup,
    "fig10": fig10_concurrency,
    "fig11": fig11_stalls,
    "fig12": fig12_interconnectivity,
    "fig13": fig13_memory_overhead,
    "fig14": fig14_comparison,
    "tab1": table1_overhead,
    "tab2": table2_benchmarks,
    "tab3": table3_storage,
    "streams": streams_study,
    "census": pattern_census,
}

#: experiments that accept the shared ExperimentContext
_CTX_AWARE = {"fig09", "fig10", "fig11", "fig13", "tab2", "tab3", "census"}


def _run_one(name, ctx=None):
    """Run one experiment; returns ``(rows, elapsed_s)``.

    Doubles as the ``--jobs`` worker body (``ctx=None`` builds a fresh
    context), so it must stay module-level and picklable.
    """
    module = EXPERIMENTS[name]
    if ctx is None:
        ctx = common.ExperimentContext()
    start = time.time()
    if name in _CTX_AWARE:
        rows = module.run(ctx)
    elif name in ("fig12", "fig14"):
        rows = module.run(common.ExperimentContext(gpu_config=ctx.gpu_config))
    else:
        rows = module.run()
    return rows, time.time() - start


def _run_one_task(name):
    return _run_one(name)


def run_all(names=None, stream=sys.stdout, out_dir=None, jobs=1,
            status_file=None):
    names = list(names or EXPERIMENTS)
    results = {}
    heartbeat = Heartbeat(
        len(names), phase="experiments", status_path=status_file
    )
    try:
        if jobs > 1:
            executor = SuiteExecutor(
                jobs=jobs,
                on_result=lambda result: heartbeat.advance(
                    current=names[result.index]
                ),
            )
            produced = executor.map(_run_one_task, names)
        else:
            # serial: one shared context keeps plans/runs memoized across
            # experiments (the pre---jobs behavior, bit for bit)
            ctx = common.ExperimentContext()
            produced = None
        for index, name in enumerate(names):
            if produced is not None:
                rows, elapsed = produced[index]
            else:
                rows, elapsed = _run_one(name, ctx)
                heartbeat.advance(current=name)
            module = EXPERIMENTS[name]
            results[name] = rows
            stream.write(module.format_rows(rows))
            stream.write("\n[{} finished in {:.1f}s]\n\n".format(name, elapsed))
            stream.flush()
            if out_dir:
                path = write_experiment_report(out_dir, name, rows, elapsed)
                stream.write("[report: {}]\n".format(path))
    finally:
        heartbeat.finish()
    return results


def _pop_flag(argv, flag):
    if flag not in argv:
        return None
    idx = argv.index(flag)
    try:
        value = argv[idx + 1]
    except IndexError:
        raise SystemExit("{} requires a path".format(flag))
    del argv[idx : idx + 2]
    return value


def main(argv=None):
    argv = list(argv if argv is not None else sys.argv[1:])
    output_path = _pop_flag(argv, "--output")
    out_dir = _pop_flag(argv, "--out")
    status_file = _pop_flag(argv, "--status-file")
    jobs_value = _pop_flag(argv, "--jobs")
    try:
        jobs = int(jobs_value) if jobs_value is not None else 1
    except ValueError:
        raise SystemExit("--jobs requires an integer, got {!r}".format(jobs_value))
    unknown = [a for a in argv if a not in EXPERIMENTS]
    if unknown:
        raise SystemExit(
            "unknown experiments {}; available: {}".format(
                unknown, ", ".join(EXPERIMENTS)
            )
        )
    if output_path:
        with open(output_path, "w") as handle:
            run_all(argv or None, stream=handle, out_dir=out_dir, jobs=jobs,
                    status_file=status_file)
        print("wrote", output_path)
    else:
        run_all(argv or None, out_dir=out_dir, jobs=jobs,
                status_file=status_file)


if __name__ == "__main__":
    main()
