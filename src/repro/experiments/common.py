"""Shared experiment machinery: model roster, plan caching, tables."""

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.policy import SchedulingPolicy
from repro.core.runtime import BlockMaestroRuntime, RuntimePlan
from repro.models import (
    BlockMaestroModel,
    IdealBaseline,
    PrelaunchOnly,
    SerializedBaseline,
)
from repro.sim.config import GPUConfig
from repro.workloads import UnknownWorkloadError, all_workloads

#: The Fig. 9 model roster: (name, factory(gpu_config), reorder, window)
STANDARD_MODELS = (
    ("baseline", SerializedBaseline, False, 1),
    ("ideal", IdealBaseline, False, 1),
    ("prelaunch", PrelaunchOnly, True, 2),
    ("producer", None, True, 2),  # producer-priority BlockMaestro
    ("consumer2", None, True, 2),
    ("consumer3", None, True, 3),
    ("consumer4", None, True, 4),
)

#: convenience names accepted anywhere a roster model is named
MODEL_ALIASES = {"blockmaestro": "consumer3", "bm": "consumer3"}


class UnknownModelError(KeyError):
    """A model name is not in the roster (nor an alias).

    Subclasses :class:`KeyError` for backward compatibility; the CLI
    maps it to exit code 2 with a one-line message.
    """


def _unknown_model(name):
    roster = ", ".join([m[0] for m in STANDARD_MODELS] + sorted(MODEL_ALIASES))
    return UnknownModelError(
        "unknown model {!r}; available: {}".format(name, roster)
    )


def canonical_model_name(name):
    """Resolve aliases (``blockmaestro`` → its headline configuration)."""
    return MODEL_ALIASES.get(name, name)


def _make_model(name, gpu_config):
    name = canonical_model_name(name)
    if name == "baseline":
        return SerializedBaseline(gpu_config)
    if name == "ideal":
        return IdealBaseline(gpu_config)
    if name == "prelaunch":
        return PrelaunchOnly(gpu_config, window=2)
    if name == "producer":
        return BlockMaestroModel(
            gpu_config,
            window=2,
            policy=SchedulingPolicy.PRODUCER_PRIORITY,
            name="producer",
        )
    if name.startswith("consumer"):
        try:
            window = int(name[len("consumer"):])
        except ValueError:
            raise _unknown_model(name) from None
        return BlockMaestroModel(
            gpu_config,
            window=window,
            policy=SchedulingPolicy.CONSUMER_PRIORITY,
            name=name,
        )
    raise _unknown_model(name)


@dataclass
class ExperimentContext:
    """Caches applications, plans and run results across experiments.

    One context per process keeps the full Fig. 9-13 sweep affordable:
    an application is built once, analyzed once per (reorder, window)
    pair, and each model's simulation result is memoized.
    """

    gpu_config: GPUConfig = field(default_factory=GPUConfig)
    runtime: BlockMaestroRuntime = None
    _apps: Dict[str, object] = field(default_factory=dict)
    _plans: Dict[Tuple[str, bool, int], RuntimePlan] = field(default_factory=dict)
    _runs: Dict[Tuple[str, str], object] = field(default_factory=dict)
    _critpaths: Dict[Tuple[str, str], Dict[str, float]] = field(default_factory=dict)
    _telemetry: Dict[Tuple[str, str], Dict[str, object]] = field(default_factory=dict)

    def __post_init__(self):
        if self.runtime is None:
            self.runtime = BlockMaestroRuntime(self.gpu_config)

    # ------------------------------------------------------------------
    def app(self, name, **overrides):
        key = name if not overrides else "{}|{}".format(name, sorted(overrides.items()))
        if key not in self._apps:
            for spec in all_workloads():
                if spec.name == name:
                    self._apps[key] = spec.build(**overrides)
                    break
            else:
                raise UnknownWorkloadError("unknown workload %r" % name)
        return self._apps[key]

    def register_app(self, app):
        """Register an externally built application (microbenchmarks)."""
        self._apps[app.name] = app
        return app

    def plan_for(self, app, reorder, window):
        key = (app.name, reorder, window)
        if key not in self._plans:
            self._plans[key] = self.runtime.plan(
                app, reorder=reorder, window=window
            )
        return self._plans[key]

    def run_model(self, app, model_name):
        """Run one roster model on one app, memoized."""
        model_name = canonical_model_name(model_name)
        key = (app.name, model_name)
        if key not in self._runs:
            reorder, window = _model_plan_params(model_name)
            plan = self.plan_for(app, reorder, window)
            model = _make_model(model_name, self.gpu_config)
            self._runs[key] = model.run(plan)
        return self._runs[key]

    def critpath_attribution(self, app, model_name):
        """Critical-path makespan fractions per component, memoized.

        Runs a separate provenance-recording pass (the memoized
        :meth:`run_model` result stays recording-free), so experiment
        signatures are untouched.
        """
        model_name = canonical_model_name(model_name)
        key = (app.name, model_name)
        if key not in self._critpaths:
            # Imported lazily: critpath imports models.base for what-if
            # replay, so a module-level import here would be a cycle.
            from repro.obs.critpath import ProvenanceRecorder, build_report

            reorder, window = _model_plan_params(model_name)
            plan = self.plan_for(app, reorder, window)
            model = _make_model(model_name, self.gpu_config)
            prov = ProvenanceRecorder()
            stats = model.run(plan, provenance=prov)
            report = build_report(stats, plan, prov, self.gpu_config)
            self._critpaths[key] = dict(report["attribution_fraction"])
        return self._critpaths[key]

    def telemetry_summary(self, app, model_name):
        """Flat telemetry summary (occupancy/overlap/bubbles), memoized.

        Like :meth:`critpath_attribution`, a separate sampler-carrying
        pass so the memoized :meth:`run_model` result stays
        observation-free and experiment signatures are untouched.
        """
        model_name = canonical_model_name(model_name)
        key = (app.name, model_name)
        if key not in self._telemetry:
            # Lazy for the same reason as critpath: telemetry must not
            # be imported from repro.obs.__init__ (engine import cycle).
            from repro.obs.telemetry import (
                TelemetrySampler,
                bench_summary,
                build_report,
            )

            reorder, window = _model_plan_params(model_name)
            plan = self.plan_for(app, reorder, window)
            model = _make_model(model_name, self.gpu_config)
            sampler = TelemetrySampler()
            stats = model.run(plan, telemetry=sampler)
            self._telemetry[key] = bench_summary(build_report(stats, sampler))
        return self._telemetry[key]

    def run_all(self, app, model_names=None):
        names = model_names or [m[0] for m in STANDARD_MODELS]
        return {name: self.run_model(app, name) for name in names}


def _model_plan_params(model_name):
    model_name = canonical_model_name(model_name)
    for name, _factory, reorder, window in STANDARD_MODELS:
        if name == model_name:
            return reorder, window
    raise _unknown_model(model_name)


def geomean(values):
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(rows, columns, title=None):
    """Render dict rows as a fixed-width text table."""
    widths = {
        col: max(len(col), *(len(_fmt(r.get(col))) for r in rows)) if rows else len(col)
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)


def _fmt(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        return "{:.3f}".format(value)
    return str(value)
