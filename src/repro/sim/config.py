"""Device configuration (Titan X Pascal-like, paper Section IV-A)."""

from dataclasses import dataclass, field

from repro.host.timing import HostTimingModel


@dataclass(frozen=True)
class GPUConfig:
    """Static device parameters for the simulator.

    Defaults follow the paper's methodology: 28 SMs, each able to hold
    up to 32 thread blocks, with a 5 microsecond kernel launch overhead.
    Cost-model constants approximate a ~1.4 GHz part; the experiments
    only rely on *relative* kernel durations, not absolute cycle
    fidelity (see DESIGN.md).
    """

    num_sms: int = 28
    max_tbs_per_sm: int = 32
    max_threads_per_sm: int = 2048
    clock_ghz: float = 1.417
    warp_size: int = 32

    #: cost model: average issue cycles per warp-instruction by class
    alu_cycles: float = 4.0
    mem_cycles: float = 40.0
    shared_cycles: float = 8.0
    control_cycles: float = 4.0
    barrier_cycles: float = 20.0
    #: fixed per-thread-block overhead (launch/drain) in cycles
    tb_fixed_cycles: float = 1500.0
    #: how many warp schedulers share the work of one thread block
    warp_schedulers: int = 4
    #: deterministic per-thread-block duration spread (fraction).  Real
    #: GPUs stagger block completion times through cache behaviour and
    #: warp scheduling; a TB-granularity model needs an explicit spread,
    #: or same-size blocks finish in lockstep and fine-grain dependency
    #: release degenerates to a kernel barrier.  0 disables.
    duration_jitter: float = 0.15
    #: scale memory cost and request counts by each kernel's measured
    #: coalescing factor (transactions per warp per access, derived from
    #: inter-thread strides).  Off by default: the headline experiments
    #: are calibrated against the paper without it; the
    #: ``coalescing`` ablation quantifies its effect.
    model_coalescing: bool = False
    #: memory transaction (cache line) size for the coalescing model
    line_bytes: int = 128

    timing: HostTimingModel = field(default_factory=HostTimingModel)

    @property
    def cycle_ns(self):
        return 1.0 / self.clock_ghz

    @property
    def total_tb_slots(self):
        return self.num_sms * self.max_tbs_per_sm

    def tbs_per_sm_for(self, threads_per_tb):
        """Occupancy limit for a kernel with the given block size."""
        if threads_per_tb <= 0:
            raise ValueError("threads_per_tb must be positive")
        by_threads = self.max_threads_per_sm // threads_per_tb
        return max(1, min(self.max_tbs_per_sm, by_threads))
