"""Text timelines (Gantt charts) for simulation results.

Renders a :class:`~repro.sim.stats.RunStats` as the paper's Fig. 2-style
execution diagram: one row per kernel, with launch overhead, waiting,
and thread-block execution phases drawn across a character raster.

Example (two overlapping kernels under BlockMaestro)::

    k0 produce  |LL####
    k1 consume  |.LL.####
                0.0us      12.3us

Legend: ``L`` launch overhead, ``#`` thread blocks executing, ``-``
resident but waiting on dependencies, ``.`` queued.
"""

from repro.sim.stats import RunStats

LAUNCH_CHAR = "L"
RUN_CHAR = "#"
WAIT_CHAR = "-"
QUEUED_CHAR = "."


def render_kernel_timeline(stats: RunStats, width=72, label_width=16):
    """Per-kernel execution rows across the run's makespan."""
    if not stats.kernel_records:
        return "(no kernels)"
    span = max(stats.makespan_ns, 1e-9)
    scale = width / span

    def col(t):
        return min(width - 1, max(0, int(t * scale)))

    lines = []
    for kr in stats.kernel_records:
        row = [" "] * width
        _fill(row, col(kr.queued_ns), col(kr.launch_begin_ns), QUEUED_CHAR)
        _fill(row, col(kr.launch_begin_ns), col(kr.resident_ns), LAUNCH_CHAR)
        first = kr.first_tb_start_ns or kr.resident_ns
        _fill(row, col(kr.resident_ns), col(first), WAIT_CHAR)
        _fill(row, col(first), col(kr.all_tbs_done_ns) + 1, RUN_CHAR)
        label = _truncate_label("k{} {}".format(kr.index, kr.name), label_width)
        lines.append("{:<{w}s} |{}".format(label, "".join(row), w=label_width))
    axis = "{:<{w}s}  0us{}{:.1f}us".format(
        "", " " * (width - 12), span / 1000.0, w=label_width
    )
    lines.append(axis)
    lines.append(
        "legend: {}=queued {}=launching {}=waiting {}=executing".format(
            QUEUED_CHAR, LAUNCH_CHAR, WAIT_CHAR, RUN_CHAR
        )
    )
    return "\n".join(lines)


def render_concurrency_profile(stats: RunStats, width=72, height=8):
    """A small vertical-bar profile of running thread blocks over time."""
    if not stats.tb_records:
        return "(no thread blocks)"
    span = max(stats.makespan_ns, 1e-9)
    buckets = [0.0] * width
    for tb in stats.tb_records:
        lo = int(tb.start_ns / span * width)
        hi = int(tb.finish_ns / span * width)
        for b in range(max(0, lo), min(width, hi + 1)):
            buckets[b] += 1
    peak = max(buckets) or 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = peak * (level - 0.5) / height
        rows.append(
            "".join("#" if value >= threshold else " " for value in buckets)
        )
    rows.append("-" * width)
    rows.append("peak {} concurrent thread blocks".format(int(peak)))
    return "\n".join(rows)


def compare_timelines(list_of_stats, width=72):
    """Stack several runs' kernel timelines for side-by-side reading."""
    blocks = []
    for stats in list_of_stats:
        blocks.append(
            "=== {} ({:.1f} us) ===".format(
                stats.model, stats.makespan_ns / 1000.0
            )
        )
        blocks.append(render_kernel_timeline(stats, width=width))
    return "\n".join(blocks)


def _truncate_label(label, width):
    """Fit ``label`` into ``width`` columns, marking truncation with an
    ellipsis so over-long kernel names can never widen (and misalign)
    the raster."""
    if len(label) <= width:
        return label
    if width <= 1:
        return label[:width]
    return label[: width - 1] + "…"


def _fill(row, start, end, char):
    for i in range(max(0, start), min(len(row), end)):
        if row[i] == " ":
            row[i] = char
