"""Simulation statistics.

:class:`RunStats` is the uniform result object every execution model
returns.  It records per-thread-block lifecycle timestamps — when data
dependencies were satisfied (``ready_ns``), when the block started
executing (``start_ns``) and finished (``finish_ns``) — from which the
paper's metrics derive:

* speedup: ratio of ``makespan_ns`` between two runs (Fig. 9, 12, 14);
* average TB concurrency: time-integral of running blocks divided by
  device-busy time (Fig. 10);
* dependency stall distribution: ``(start - ready) / duration`` per
  block (Fig. 11);
* memory request overhead: dependency-tracking requests vs. kernel
  requests (Fig. 13);
* dependency-graph storage: encoded vs. plain bytes (Table III).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.metrics import percentile


@dataclass
class TBRecord:
    """Lifecycle of one thread block in one kernel launch."""

    kernel_index: int
    tb_id: int
    ready_ns: float
    start_ns: float
    finish_ns: float
    #: SM the block ran on (-1 when the engine did not record it)
    sm: int = -1

    @property
    def duration_ns(self):
        return self.finish_ns - self.start_ns

    @property
    def stall_ns(self):
        """Dependency stall: time spent ready-but-not-running."""
        return max(0.0, self.start_ns - self.ready_ns)

    @property
    def normalized_stall(self):
        """Stall normalized to the block's own execution time (Fig. 11)."""
        if self.duration_ns <= 0:
            return 0.0
        return self.stall_ns / self.duration_ns


@dataclass
class KernelRecord:
    """Lifecycle of one kernel launch."""

    index: int
    name: str
    num_tbs: int
    queued_ns: float = 0.0
    launch_begin_ns: float = 0.0
    resident_ns: float = 0.0  # launch overhead paid, TBs dispatchable
    first_tb_start_ns: float = 0.0
    all_tbs_done_ns: float = 0.0
    completed_ns: float = 0.0  # in-order completion point
    stream: int = 0


@dataclass
class RunStats:
    """Complete result of simulating one application under one model."""

    model: str
    application: str
    makespan_ns: float = 0.0
    tb_records: List[TBRecord] = field(default_factory=list)
    kernel_records: List[KernelRecord] = field(default_factory=list)
    #: integral over time of the number of concurrently running TBs
    concurrency_integral: float = 0.0
    #: wall time during which at least one TB was running
    busy_ns: float = 0.0
    #: baseline kernel global-memory requests
    kernel_memory_requests: float = 0.0
    #: extra requests from dependency list / parent counter traffic
    dependency_memory_requests: float = 0.0
    #: dependency graph storage for the whole run, bytes
    graph_plain_bytes: int = 0
    graph_encoded_bytes: int = 0
    #: free-form counters from models (deadlock retries, reorders, ...)
    counters: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def speedup_over(self, baseline):
        """Speedup of this run relative to ``baseline`` (>1 = faster)."""
        if self.makespan_ns <= 0:
            raise ValueError("run has no makespan")
        return baseline.makespan_ns / self.makespan_ns

    def avg_tb_concurrency(self):
        """Average number of concurrently executing thread blocks over
        the busy portion of the run (Fig. 10)."""
        if self.busy_ns <= 0:
            return 0.0
        return self.concurrency_integral / self.busy_ns

    def normalized_stalls(self):
        """Per-TB dependency stall normalized to execution time."""
        return [tb.normalized_stall for tb in self.tb_records]

    def stall_quartiles(self):
        """(q1, median, q3) of the normalized stall distribution."""
        values = sorted(self.normalized_stalls())
        if not values:
            return (0.0, 0.0, 0.0)
        return (
            percentile(values, 0.25),
            percentile(values, 0.50),
            percentile(values, 0.75),
        )

    def memory_overhead_fraction(self):
        """Figure 13: dependency-tracking requests as a fraction of
        kernel requests."""
        if self.kernel_memory_requests <= 0:
            return 0.0
        return self.dependency_memory_requests / self.kernel_memory_requests

    def storage_ratio(self):
        """Table III: encoded graph bytes over plain bytes (None when the
        application has no inter-kernel dependencies)."""
        if self.graph_plain_bytes <= 0:
            return None
        return self.graph_encoded_bytes / self.graph_plain_bytes

    def to_dict(self, include_tb_records=False):
        """JSON-safe dictionary form — the one serializer shared by
        ``repro run --json``, ``repro trace`` sidecars, and the
        experiment report artifacts (see :mod:`repro.obs.report`)."""
        from repro.obs.report import run_stats_dict

        return run_stats_dict(self, include_tb_records=include_tb_records)

    def simulated_signature(self):
        """Flat dict of the run's simulated metrics, for exact comparison.

        The timing model is deterministic, so two runs of the same code
        on the same workload must agree on every one of these values
        bit-for-bit — ``repro bench diff`` enforces that with zero
        tolerance.  Keep this free of anything wall-clock dependent.

        This dict (together with the ordered ``tb_records``) is also the
        differential contract for the engine fast tiers: every
        :mod:`repro.models.fastengine` tier must reproduce it exactly
        against the scalar oracle, so any field added here is
        automatically covered by the engine gate and the fuzz sweep.
        """
        q1, median, q3 = self.stall_quartiles()
        return {
            "makespan_ns": self.makespan_ns,
            "busy_ns": self.busy_ns,
            "concurrency_integral": self.concurrency_integral,
            "avg_tb_concurrency": self.avg_tb_concurrency(),
            "num_tbs": len(self.tb_records),
            "num_kernels": len(self.kernel_records),
            "stall_q1": q1,
            "stall_median": median,
            "stall_q3": q3,
            "kernel_memory_requests": self.kernel_memory_requests,
            "dependency_memory_requests": self.dependency_memory_requests,
            "memory_overhead_fraction": self.memory_overhead_fraction(),
            "graph_plain_bytes": self.graph_plain_bytes,
            "graph_encoded_bytes": self.graph_encoded_bytes,
        }

    def validate_invariants(self):
        """Sanity checks every correct simulation must satisfy."""
        for tb in self.tb_records:
            if tb.start_ns + 1e-9 < tb.ready_ns:
                raise AssertionError(
                    "TB {}:{} started before its dependencies resolved".format(
                        tb.kernel_index, tb.tb_id
                    )
                )
            if tb.finish_ns < tb.start_ns:
                raise AssertionError("negative TB duration")
        previous_completion = {}
        for kr in self.kernel_records:
            prior = previous_completion.get(kr.stream, 0.0)
            if kr.completed_ns + 1e-6 < prior:
                raise AssertionError(
                    "kernel {} completed before its same-stream "
                    "predecessor".format(kr.index)
                )
            previous_completion[kr.stream] = kr.completed_ns
        return self
