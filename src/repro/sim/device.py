"""SM occupancy tracking and thread-block placement.

The device holds ``num_sms`` streaming multiprocessors; each SM can host
thread blocks subject to two limits: a hard cap of ``max_tbs_per_sm``
resident blocks and a thread budget of ``max_threads_per_sm``.  Blocks
from different kernels may co-reside on one SM — this is exactly what
lets pre-launched kernels' blocks fill slots freed by the producer
kernel (and is provided by Hyper-Q / Warped-Slicer in the paper's
baseline hardware).

Placement policy: least-loaded SM first (by resident thread count, then
block count, then index), which spreads blocks evenly and is
deterministic.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import PID_DEVICE, resolve_metrics, resolve_tracer
from repro.sim.config import GPUConfig


@dataclass
class SMState:
    index: int
    resident_tbs: int = 0
    resident_threads: int = 0

    def fits(self, threads_per_tb, config):
        if self.resident_tbs >= config.max_tbs_per_sm:
            return False
        return self.resident_threads + threads_per_tb <= config.max_threads_per_sm


def empty_device_slots(config: GPUConfig, threads_per_tb: int) -> int:
    """Blocks of the given size an *idle* device holds.

    Equals ``Device.free_slots`` on a freshly constructed device (every
    SM contributes the same ``min`` of its block cap and thread budget).
    This is the wave width of the fast engine tiers
    (:mod:`repro.models.fastengine`): under a device-serial plan each
    kernel starts on an empty device, so its TBs run in waves of exactly
    this many slots.
    """
    per_sm = min(
        config.max_tbs_per_sm,
        config.max_threads_per_sm // max(1, threads_per_tb),
    )
    return config.num_sms * max(0, per_sm)


class Device:
    """Occupancy bookkeeping plus the running-TB concurrency integral.

    With a tracer attached, every placement/release also emits a
    ``running_tbs`` counter sample on the simulated clock, so Perfetto
    renders the SM-occupancy profile alongside the kernel spans.
    Tracing is observation only and never changes placement decisions.
    """

    def __init__(self, config: GPUConfig, tracer=None, metrics=None):
        self.config = config
        self.tracer = resolve_tracer(tracer)
        self.metrics = resolve_metrics(metrics)
        self.sms = [SMState(i) for i in range(config.num_sms)]
        self.running = 0
        self._last_event_ns = 0.0
        self.concurrency_integral = 0.0
        self.busy_ns = 0.0
        self.peak_concurrency = 0
        self.placements = 0

    def _sample_occupancy(self, now_ns, sm=None):
        self.tracer.counter(
            "running_tbs",
            {"running": self.running},
            ts_us=now_ns / 1e3,
            cat="device",
            pid=PID_DEVICE,
        )
        if sm is not None and getattr(self.tracer, "per_sm_counters", False):
            self.tracer.counter(
                "running_tbs[sm={:02d}]".format(sm.index),
                {"running": sm.resident_tbs},
                ts_us=now_ns / 1e3,
                cat="device.sm",
                pid=PID_DEVICE,
            )

    # ------------------------------------------------------------------
    def _advance(self, now_ns):
        dt = now_ns - self._last_event_ns
        if dt > 0:
            self.concurrency_integral += dt * self.running
            if self.running > 0:
                self.busy_ns += dt
            self._last_event_ns = now_ns

    def free_slots(self, threads_per_tb):
        """Total blocks of the given size that could be placed right now."""
        total = 0
        for sm in self.sms:
            by_tbs = self.config.max_tbs_per_sm - sm.resident_tbs
            by_threads = (
                self.config.max_threads_per_sm - sm.resident_threads
            ) // max(1, threads_per_tb)
            total += max(0, min(by_tbs, by_threads))
        return total

    def try_place(self, threads_per_tb, now_ns):
        """Place one block on the least-loaded SM; returns the SM index
        or ``None`` when nothing fits."""
        best: Optional[SMState] = None
        for sm in self.sms:
            if not sm.fits(threads_per_tb, self.config):
                continue
            if best is None or (sm.resident_threads, sm.resident_tbs, sm.index) < (
                best.resident_threads,
                best.resident_tbs,
                best.index,
            ):
                best = sm
        if best is None:
            return None
        self._advance(now_ns)
        best.resident_tbs += 1
        best.resident_threads += threads_per_tb
        self.running += 1
        self.placements += 1
        self.peak_concurrency = max(self.peak_concurrency, self.running)
        if self.tracer.enabled:
            self._sample_occupancy(now_ns, sm=best)
        return best.index

    def release(self, sm_index, threads_per_tb, now_ns):
        self._advance(now_ns)
        sm = self.sms[sm_index]
        if sm.resident_tbs <= 0 or sm.resident_threads < threads_per_tb:
            raise RuntimeError("release without matching placement")
        sm.resident_tbs -= 1
        sm.resident_threads -= threads_per_tb
        self.running -= 1
        if self.tracer.enabled:
            self._sample_occupancy(now_ns, sm=sm)

    def finalize(self, now_ns):
        """Close the concurrency integral at end of simulation."""
        self._advance(now_ns)
        m = self.metrics
        if m.enabled:
            m.set_gauge("device.peak_tb_concurrency", self.peak_concurrency)
            m.set_gauge("device.busy_ns", self.busy_ns)
            m.set_gauge("device.concurrency_integral", self.concurrency_integral)
            m.inc("device.tb_placements", self.placements)


class UnboundedDevice(Device):
    """A device with no occupancy limits — every placement succeeds.

    Used by the what-if analyzer's ``infinite_sms`` replay: placement is
    O(1) (everything lands on SM 0) so the replay does not pay the
    least-loaded scan over an artificially huge SM array.  Accounting
    (concurrency integral, busy time, counters) matches :class:`Device`.
    """

    def __init__(self, config: GPUConfig, tracer=None, metrics=None):
        super().__init__(config, tracer=tracer, metrics=metrics)
        self.sms = [SMState(0)]

    def free_slots(self, threads_per_tb):
        return 1 << 30

    def try_place(self, threads_per_tb, now_ns):
        self._advance(now_ns)
        sm = self.sms[0]
        sm.resident_tbs += 1
        sm.resident_threads += threads_per_tb
        self.running += 1
        self.placements += 1
        self.peak_concurrency = max(self.peak_concurrency, self.running)
        if self.tracer.enabled:
            self._sample_occupancy(now_ns, sm=sm)
        return 0
