"""Deterministic discrete-event queue.

Events are ``(time, seq, callback)`` heap entries; ``seq`` is a
monotonically increasing tiebreaker so same-time events fire in
scheduling order, keeping every simulation run fully deterministic.
"""

import heapq
import itertools


class EventQueue:
    """The queue also keeps two free observability counters — events
    ``processed`` and ``peak_pending`` heap depth — cheap integers the
    engine copies into a metrics registry after the run."""

    def __init__(self):
        self._heap = []
        self._seq = itertools.count()
        self._now = 0.0
        self.processed = 0
        self.peak_pending = 0

    @property
    def now(self):
        return self._now

    @property
    def empty(self):
        return not self._heap

    def __len__(self):
        return len(self._heap)

    def schedule(self, time, callback):
        """Schedule ``callback()`` at absolute ``time``."""
        if time < self._now:
            raise ValueError(
                "cannot schedule event at {} before now {}".format(time, self._now)
            )
        heapq.heappush(self._heap, (float(time), next(self._seq), callback))
        if len(self._heap) > self.peak_pending:
            self.peak_pending = len(self._heap)

    def schedule_after(self, delay, callback):
        self.schedule(self._now + delay, callback)

    def step(self):
        """Pop and run the earliest event; returns False when drained."""
        if not self._heap:
            return False
        time, _seq, callback = heapq.heappop(self._heap)
        self._now = time
        self.processed += 1
        callback()
        return True

    def run(self, max_events=50_000_000):
        """Run until the queue drains; guards against runaway loops."""
        count = 0
        while self.step():
            count += 1
            if count > max_events:
                raise RuntimeError("event cap exceeded; simulation livelock?")
        return self._now
