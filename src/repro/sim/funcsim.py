"""Functional (value-level) execution of mini-PTX applications.

The timing simulator (:mod:`repro.sim.device`) never touches data; this
module complements it with a *functional* simulator that executes
kernels on real device-memory contents.  Its purpose is end-to-end
validation of BlockMaestro's correctness story: replaying thread blocks
in the order a scheduler produced — any linearization consistent with
the extracted dependency graphs — must leave device memory identical to
fully serialized execution.

It is deliberately scalar and simple (one thread at a time); use small
grids.  Supported kernels are the analyzable subset: integer/float
arithmetic, structured loops, guarded forward branches, global
loads/stores.  ``bar.sync`` is a no-op because thread blocks execute
atomically here (block-level linearization is exactly what the replay
check needs).
"""

import math

import numpy as np

from repro.host.api import (
    DeviceSynchronize,
    KernelLaunchCall,
    MallocCall,
    MemcpyD2H,
    MemcpyH2D,
)
from repro.ptx.isa import (
    Immediate,
    Label,
    MemOperand,
    Opcode,
    Register,
    SpecialRegister,
)


class FunctionalError(Exception):
    """The functional simulator cannot execute the given program."""


class DeviceMemory:
    """Byte-addressed global memory backed by per-buffer numpy arrays."""

    def __init__(self, allocator):
        self.allocator = allocator
        self._arrays = {
            buf.buffer_id: np.zeros(buf.size, dtype=np.uint8)
            for buf in allocator.buffers
        }

    def _locate(self, address, width, for_write):
        buf = self.allocator.buffer_at(address)
        if buf is None or address + width > buf.end:
            if for_write:
                raise FunctionalError(
                    "write of {} bytes at 0x{:x} outside any buffer".format(
                        width, address
                    )
                )
            # Halo reads past a buffer edge land in the allocator's guard
            # gap by design (stencil kernels read a few elements before/
            # after their logical range); unmapped reads return zero,
            # matching the timing model's treatment of them as harmless.
            return None, 0
        return buf, address - buf.base

    def load_f32(self, address):
        buf, offset = self._locate(address, 4, for_write=False)
        if buf is None:
            return 0.0
        return float(
            self._arrays[buf.buffer_id][offset : offset + 4].view(np.float32)[0]
        )

    def store_f32(self, address, value):
        buf, offset = self._locate(address, 4, for_write=True)
        self._arrays[buf.buffer_id][offset : offset + 4] = np.frombuffer(
            np.float32(value).tobytes(), dtype=np.uint8
        )

    def load_u32(self, address):
        buf, offset = self._locate(address, 4, for_write=False)
        if buf is None:
            return 0
        return int(
            self._arrays[buf.buffer_id][offset : offset + 4].view(np.uint32)[0]
        )

    def store_u32(self, address, value):
        buf, offset = self._locate(address, 4, for_write=True)
        self._arrays[buf.buffer_id][offset : offset + 4] = np.frombuffer(
            np.uint32(value & 0xFFFFFFFF).tobytes(), dtype=np.uint8
        )

    def write_buffer_f32(self, buffer, values):
        data = np.asarray(values, dtype=np.float32).tobytes()
        if len(data) > buffer.size:
            raise FunctionalError("initializer larger than buffer")
        self._arrays[buffer.buffer_id][: len(data)] = np.frombuffer(
            data, dtype=np.uint8
        )

    def read_buffer_f32(self, buffer, count=None):
        count = buffer.size // 4 if count is None else count
        return (
            self._arrays[buffer.buffer_id][: count * 4]
            .view(np.float32)
            .copy()
        )

    def snapshot(self):
        """Immutable copy of all buffer contents (bytes)."""
        return {bid: arr.tobytes() for bid, arr in self._arrays.items()}


_STEP_CAP = 1 << 20


class FunctionalSimulator:
    """Executes applications (or individual thread blocks) on values."""

    def __init__(self, allocator):
        self.memory = DeviceMemory(allocator)

    # ------------------------------------------------------------------
    def run_application(self, app, tb_order=None, initializer=None):
        """Execute an application's trace.

        ``tb_order``: optional list of ``(kernel_index, tb_id)`` pairs
        giving the global thread-block execution order (e.g. the start
        order from a timing simulation).  Defaults to fully serialized
        order.  ``initializer(buffer) -> iterable of f32`` seeds buffers
        on H2D copies; the default writes a deterministic ramp.

        Returns the final :class:`DeviceMemory` snapshot.
        """
        kernel_calls = [c for c in app.trace.calls if c.is_kernel]
        if tb_order is None:
            tb_order = [
                (ki, tb)
                for ki, call in enumerate(kernel_calls)
                for tb in range(call.num_tbs)
            ]
        self._validate_order(tb_order, kernel_calls)
        # host-to-device copies seed memory first (their order relative
        # to kernels is handled by the dependency-respecting schedules
        # this simulator is used to check; inputs are never overwritten
        # by copies mid-run in the supported applications)
        for call in app.trace.calls:
            if isinstance(call, MemcpyH2D):
                self._seed(call.buffer, initializer)
        for ki, tb in tb_order:
            self.run_thread_block(kernel_calls[ki], tb)
        return self.memory.snapshot()

    def _validate_order(self, tb_order, kernel_calls):
        expected = {
            (ki, tb)
            for ki, call in enumerate(kernel_calls)
            for tb in range(call.num_tbs)
        }
        seen = set()
        for item in tb_order:
            if item in seen:
                raise FunctionalError("thread block %r executed twice" % (item,))
            seen.add(item)
        if seen != expected:
            raise FunctionalError(
                "schedule covers {} blocks, application has {}".format(
                    len(seen), len(expected)
                )
            )

    def _seed(self, buffer, initializer):
        if initializer is not None:
            self.memory.write_buffer_f32(buffer, initializer(buffer))
            return
        count = buffer.size // 4
        ramp = (
            np.arange(count, dtype=np.float32) % 97 + buffer.buffer_id
        ) / 97.0
        self.memory.write_buffer_f32(buffer, ramp)

    # ------------------------------------------------------------------
    def run_thread_block(self, call: KernelLaunchCall, tb_id):
        gx, gy, gz = call.grid
        bx = tb_id % gx
        by = (tb_id // gx) % gy
        bz = tb_id // (gx * gy)
        tx_max, ty_max, tz_max = call.block
        args = call.arg_values()
        for tz in range(tz_max):
            for ty in range(ty_max):
                for tx in range(tx_max):
                    self._run_thread(
                        call.kernel, args, call.grid, call.block,
                        (bx, by, bz), (tx, ty, tz),
                    )

    def _run_thread(self, kernel, args, grid, block, ctaid, tid):
        regs = {}
        specials = {
            ("tid", "x"): tid[0],
            ("tid", "y"): tid[1],
            ("tid", "z"): tid[2],
            ("ctaid", "x"): ctaid[0],
            ("ctaid", "y"): ctaid[1],
            ("ctaid", "z"): ctaid[2],
            ("ntid", "x"): block[0],
            ("ntid", "y"): block[1],
            ("ntid", "z"): block[2],
            ("nctaid", "x"): grid[0],
            ("nctaid", "y"): grid[1],
            ("nctaid", "z"): grid[2],
            ("laneid", None): tid[0] % 32,
            ("warpid", None): tid[0] // 32,
        }

        def value(op):
            if isinstance(op, Register):
                try:
                    return regs[op]
                except KeyError:
                    raise FunctionalError("read of undefined %s" % op)
            if isinstance(op, Immediate):
                return op.value
            if isinstance(op, SpecialRegister):
                return specials[(op.family, op.dim)]
            raise FunctionalError("unsupported operand %r" % (op,))

        def address(inst):
            mem = inst.address_operand()
            return value(mem.base) + mem.offset

        instructions = kernel.instructions
        i = 0
        steps = 0
        while i < len(instructions):
            steps += 1
            if steps > _STEP_CAP:
                raise FunctionalError("thread exceeded step cap")
            inst = instructions[i]
            if inst.guard is not None:
                taken = bool(regs.get(inst.guard)) != inst.guard_negated
                if not taken:
                    i += 1
                    continue
            op = inst.opcode
            if op in (Opcode.RET, Opcode.EXIT):
                return
            if op is Opcode.BRA:
                target = next(s for s in inst.srcs if isinstance(s, Label))
                i = kernel.labels[target.name]
                continue
            if op is Opcode.BAR_SYNC:
                i += 1
                continue
            if op is Opcode.LD_PARAM:
                mem = inst.address_operand()
                regs[inst.dsts[0]] = args[mem.base.name] + mem.offset
                i += 1
                continue
            if op is Opcode.LD_GLOBAL:
                addr = address(inst)
                if inst.dtype and inst.dtype.startswith("f"):
                    regs[inst.dsts[0]] = self.memory.load_f32(addr)
                else:
                    regs[inst.dsts[0]] = self.memory.load_u32(addr)
                i += 1
                continue
            if op is Opcode.ST_GLOBAL:
                addr = address(inst)
                val = value(inst.srcs[0])
                if inst.dtype and inst.dtype.startswith("f"):
                    self.memory.store_f32(addr, float(val))
                else:
                    self.memory.store_u32(addr, int(val))
                i += 1
                continue
            if op is Opcode.ATOM_ADD:
                addr = address(inst)
                old = self.memory.load_u32(addr)
                self.memory.store_u32(addr, old + int(value(inst.srcs[0])))
                written = [d for d in inst.dsts if isinstance(d, Register)]
                if written:
                    regs[written[0]] = old
                i += 1
                continue
            if op in (Opcode.LD_SHARED, Opcode.ST_SHARED):
                raise FunctionalError(
                    "shared memory is not modelled by the functional simulator"
                )
            self._alu(inst, regs, value)
            i += 1

    def _alu(self, inst, regs, value):
        op = inst.opcode
        srcs = [value(s) for s in inst.srcs]
        is_float = inst.dtype is not None and inst.dtype.startswith("f")
        if op is Opcode.MOV:
            result = srcs[0]
        elif op is Opcode.ADD:
            result = srcs[0] + srcs[1]
        elif op is Opcode.SUB:
            result = srcs[0] - srcs[1]
        elif op in (Opcode.MUL, Opcode.MUL_LO, Opcode.MUL_WIDE):
            result = srcs[0] * srcs[1]
        elif op in (Opcode.MAD, Opcode.MAD_LO, Opcode.MAD_WIDE, Opcode.FMA):
            result = srcs[0] * srcs[1] + srcs[2]
        elif op is Opcode.DIV:
            if is_float:
                result = srcs[0] / srcs[1] if srcs[1] else math.inf
            else:
                if srcs[1] == 0:
                    raise FunctionalError("integer division by zero")
                result = srcs[0] // srcs[1]
        elif op is Opcode.REM:
            result = srcs[0] % srcs[1]
        elif op is Opcode.NEG:
            result = -srcs[0]
        elif op is Opcode.ABS:
            result = abs(srcs[0])
        elif op is Opcode.MIN:
            result = min(srcs)
        elif op is Opcode.MAX:
            result = max(srcs)
        elif op is Opcode.SHL:
            result = int(srcs[0]) << int(srcs[1])
        elif op is Opcode.SHR:
            result = int(srcs[0]) >> int(srcs[1])
        elif op is Opcode.AND:
            result = int(srcs[0]) & int(srcs[1])
        elif op is Opcode.OR:
            result = int(srcs[0]) | int(srcs[1])
        elif op is Opcode.XOR:
            result = int(srcs[0]) ^ int(srcs[1])
        elif op is Opcode.NOT:
            result = ~int(srcs[0])
        elif op in (Opcode.CVT, Opcode.CVTA):
            if is_float:
                result = float(srcs[0])
            else:
                result = int(srcs[0])
        elif op is Opcode.SETP:
            a, b = srcs
            result = {
                "eq": a == b,
                "ne": a != b,
                "lt": a < b,
                "le": a <= b,
                "gt": a > b,
                "ge": a >= b,
                "lo": a < b,
                "ls": a <= b,
                "hi": a > b,
                "hs": a >= b,
            }[inst.compare]
        elif op is Opcode.SELP:
            result = srcs[0] if srcs[2] else srcs[1]
        elif op is Opcode.SQRT:
            result = math.sqrt(srcs[0]) if srcs[0] >= 0 else math.nan
        elif op is Opcode.RSQRT:
            result = 1.0 / math.sqrt(srcs[0]) if srcs[0] > 0 else math.inf
        elif op is Opcode.RCP:
            result = 1.0 / srcs[0] if srcs[0] else math.inf
        elif op is Opcode.EX2:
            result = 2.0 ** srcs[0]
        elif op is Opcode.LG2:
            result = math.log2(srcs[0]) if srcs[0] > 0 else math.nan
        else:
            raise FunctionalError("unsupported opcode %s" % op)
        if is_float and op is not Opcode.SETP:
            # float32 rounding; overflow to inf is well-defined here
            with np.errstate(over="ignore"):
                result = float(np.float32(result))
        regs[inst.dsts[0]] = result


def schedule_from_stats(stats):
    """Extract the global thread-block start order from a timing run.

    Thread blocks are sorted by start time; ties break by (kernel, tb)
    so the replay is deterministic.  Because the scheduler only starts a
    block after its dependencies *finished*, this linearization respects
    every enforced dependency edge.
    """
    records = sorted(
        stats.tb_records, key=lambda r: (r.start_ns, r.kernel_index, r.tb_id)
    )
    return [(r.kernel_index, r.tb_id) for r in records]
