"""Thread-block-granularity GPU timing simulator.

The paper evaluates on GPGPU-Sim with a Titan X (Pascal) configuration:
28 SMs, up to 32 resident thread blocks per SM.  BlockMaestro's
mechanisms (kernel pre-launching, TB-level dependency release, producer/
consumer scheduling priority) all act at thread-block scheduling
granularity, so this reproduction models the device at that granularity:
a discrete-event simulator dispatches thread blocks to SM slots and a
PTX-derived cost model sets each block's execution latency.  See
DESIGN.md ("Substitutions") for the fidelity discussion.
"""

from repro.sim.config import GPUConfig
from repro.sim.cost import CostModel
from repro.sim.device import Device
from repro.sim.events import EventQueue
from repro.sim.stats import RunStats, TBRecord

__all__ = [
    "GPUConfig",
    "CostModel",
    "Device",
    "EventQueue",
    "RunStats",
    "TBRecord",
]
