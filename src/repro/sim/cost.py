"""Per-thread-block latency model.

Durations are derived from the *dynamic* per-thread instruction mix the
launch-time analysis produces (loop trip counts included), scaled by the
number of warps in the block.  A thread block's latency is::

    cycles = tb_fixed + (warps / warp_schedulers) * sum(class_count * class_cycles)
    latency_ns = cycles * cycle_ns * intensity

``intensity`` is a per-kernel-launch scale factor workloads use to model
arithmetic density the instruction mix alone cannot express (e.g. a
convolution's inner loops that our mini-PTX kernels summarize).

Only relative durations across kernels matter for the reproduced
experiments; see DESIGN.md.
"""

from dataclasses import dataclass

from repro.sim.config import GPUConfig


@dataclass
class CostModel:
    config: GPUConfig

    def tb_cycles(self, dynamic_mix, threads_per_tb, coalescing=1.0):
        cfg = self.config
        warps = max(1, (threads_per_tb + cfg.warp_size - 1) // cfg.warp_size)
        per_warp = (
            dynamic_mix.get("alu", 0.0) * cfg.alu_cycles
            + dynamic_mix.get("mem_global", 0.0) * cfg.mem_cycles * coalescing
            + dynamic_mix.get("mem_shared", 0.0) * cfg.shared_cycles
            + dynamic_mix.get("mem_param", 0.0) * cfg.alu_cycles
            + dynamic_mix.get("control", 0.0) * cfg.control_cycles
            + dynamic_mix.get("barrier", 0.0) * cfg.barrier_cycles
        )
        return cfg.tb_fixed_cycles + per_warp * warps / cfg.warp_schedulers

    def tb_duration_ns(
        self, dynamic_mix, threads_per_tb, intensity=1.0, coalescing=1.0
    ):
        """Latency of one thread block in nanoseconds.

        ``coalescing`` is the kernel's memory transactions per warp per
        access (>= 1); it scales the global-memory cycle cost when the
        coalescing model is enabled.
        """
        cycles = self.tb_cycles(dynamic_mix, threads_per_tb, coalescing)
        return cycles * self.config.cycle_ns * max(intensity, 1e-9)

    def kernel_memory_requests(
        self, dynamic_mix, threads_per_tb, num_tbs, coalescing=1.0
    ):
        """Baseline global-memory request count of a kernel launch:
        ``coalescing`` transactions per warp per global memory
        instruction (1.0 = fully coalesced).  This is the denominator of
        the paper's Figure 13 memory-request overhead."""
        cfg = self.config
        warps = max(1, (threads_per_tb + cfg.warp_size - 1) // cfg.warp_size)
        return (
            dynamic_mix.get("mem_global", 0.0) * warps * num_tbs * coalescing
        )
