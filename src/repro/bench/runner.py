"""Benchmark suite runner: wall-clock percentiles + simulated metrics.

For every (workload, model) pair the runner does ``warmup`` throwaway
passes and then ``repeats`` measured passes.  Each pass is *cold*: the
workload is rebuilt from PTX, re-planned, and re-simulated under a
fresh :class:`~repro.obs.Tracer` / :class:`~repro.obs.MetricsRegistry`,
so the wall numbers cover the whole pipeline, attributed to the four
phases the PR 1 tracer spans already delimit:

* ``parse``    — ``workload.build:*`` (PTX parse + trace construction)
* ``analyze``  — ``plan.validate`` / ``plan.reorder`` / ``plan.true-deps``
  / ``plan.analyze`` / ``plan.cross-stream``
* ``encode``   — ``plan.graphs`` (graph build + pattern encoding)
* ``simulate`` — ``model:*`` (the discrete-event engine)

Wall clock is noisy, so it is summarized as p50/p95/max/mean over the
repeats.  Simulated results are deterministic, so they are recorded
once — and the runner *asserts* every repeat produced the same
makespan, catching nondeterminism at the source.  ``baseline`` (the
paper's serialized ``standard`` launch model) is always run so every
model entry carries ``speedup_vs_baseline``.

``profile=True`` additionally runs one pass per pair under
:mod:`cProfile` and embeds the top-k cumulative-time hotspots.

``jobs > 1`` fans the independent (workload, model) cells out over a
:class:`~repro.parallel.SuiteExecutor` process pool; results merge back
in suite order, so simulated metrics are identical to a serial run.
``cache_dir`` enables the persistent
:class:`~repro.analysis.cache.AnalysisCache`, whose hit/miss counters
are folded into the report's ``cache`` section
(see ``docs/parallelism.md``).

Graph-construction tier counters (``analysis.fastpath.*`` — which of
the closed-form / vectorized / reference builders served each kernel
pair, see ``docs/analysis.md``) are folded into the report's
``fastpath`` section whenever any fired, alongside the effective
``REPRO_FASTPATH`` mode.

Simulation-engine tier counters (``engine.tier.*`` / ``engine.fallback.*``
— which fast-engine tier served each model run and why the rest fell
back to the scalar oracle, see ``docs/engine.md``) are folded into the
report's ``engine`` section the same way, alongside the effective
``REPRO_ENGINE`` mode.
"""

import cProfile
import os
import pstats
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.cache import AnalysisCache
from repro.analysis.fastpath import resolve_fastpath_mode
from repro.bench import schema
from repro.core.runtime import BlockMaestroRuntime
from repro.experiments.common import (
    STANDARD_MODELS,
    _make_model,
    _model_plan_params,
    canonical_model_name,
)
from repro.models.fastengine import resolve_engine_mode
from repro.obs import MetricsRegistry, Tracer
from repro.obs.log import Heartbeat, get_logger
from repro.obs.metrics import percentile
from repro.obs.report import dump_json
from repro.parallel import SuiteExecutor
from repro.workloads import all_workloads, get_workload, matching_workloads

#: the quick suite: the three fastest Table II workloads — used by CI
QUICK_WORKLOADS = ("mvt", "bicg", "path")

#: default model roster for a bench run: baseline + the headline config
DEFAULT_MODELS = ("baseline", "prelaunch", "consumer3")

QUICK_MODELS = ("baseline", "consumer3")

ROSTER = tuple(m[0] for m in STANDARD_MODELS)


@dataclass
class BenchConfig:
    """Everything that shapes one bench run (recorded in the report)."""

    workloads: Tuple[str, ...] = ()
    models: Tuple[str, ...] = DEFAULT_MODELS
    repeats: int = 3
    warmup: int = 1
    quick: bool = False
    profile: bool = False
    profile_top: int = 15
    filter: Optional[Tuple[str, ...]] = None
    #: worker processes for independent (workload, model) cells; 1 = serial
    jobs: int = 1
    #: persistent AnalysisCache directory (None = caching disabled)
    cache_dir: Optional[str] = None
    #: embed a per-model critical-path attribution section (one extra
    #: provenance pass per cell; see docs/observability.md)
    critpath: bool = False
    #: embed a per-model telemetry summary section (occupancy, overlap,
    #: idle bubbles; one extra sampler pass per cell)
    telemetry: bool = False

    def as_dict(self):
        return {
            "workloads": list(self.workloads),
            "models": list(self.models),
            "repeats": self.repeats,
            "warmup": self.warmup,
            "quick": self.quick,
            "profile": self.profile,
            "filter": list(self.filter) if self.filter else None,
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
            "critpath": self.critpath,
            "telemetry": self.telemetry,
        }


def resolve_config(
    quick=False,
    models=None,
    filter_globs=None,
    repeats=None,
    warmup=None,
    profile=False,
    profile_top=15,
    jobs=1,
    cache_dir=None,
    critpath=False,
    telemetry=False,
    fuzz=None,
    fuzz_seed=0,
):
    """Fold CLI-ish arguments into a concrete :class:`BenchConfig`.

    Precedence: explicit flags beat ``--quick`` presets beat defaults.
    ``models`` may include ``"all"`` for the full roster and aliases
    (``blockmaestro``); names are canonicalized and validated here so
    unknown ones fail before any work is done.  ``fuzz=N`` appends N
    seeded generator applications (``fuzz-<seed>``..``fuzz-<seed+N-1>``,
    see :mod:`repro.fuzz`) as extra load-generator workloads; with
    ``--filter`` they are the only way such hidden names enter a run.
    """
    if filter_globs:
        specs = matching_workloads(filter_globs)
        workloads = tuple(spec.name for spec in specs)
    elif quick:
        workloads = QUICK_WORKLOADS
    else:
        workloads = tuple(spec.name for spec in all_workloads())
    if fuzz:
        first = int(fuzz_seed or 0)
        workloads = workloads + tuple(
            "fuzz-{}".format(first + i) for i in range(int(fuzz))
        )
    if models:
        expanded = []
        for name in models:
            if name == "all":
                expanded.extend(ROSTER)
            else:
                expanded.append(canonical_model_name(name))
        # validate + dedupe, preserving order
        seen = []
        for name in expanded:
            _model_plan_params(name)  # raises UnknownModelError
            if name not in seen:
                seen.append(name)
        model_names = tuple(seen)
    else:
        model_names = QUICK_MODELS if quick else DEFAULT_MODELS
    # baseline is the speedup reference: always present, always first
    model_names = ("baseline",) + tuple(
        name for name in model_names if name != "baseline"
    )
    return BenchConfig(
        workloads=workloads,
        models=model_names,
        repeats=repeats if repeats is not None else (2 if quick else 3),
        warmup=warmup if warmup is not None else 1,
        quick=quick,
        profile=profile,
        profile_top=profile_top,
        filter=tuple(filter_globs) if filter_globs else None,
        jobs=max(1, int(jobs)),
        cache_dir=cache_dir,
        critpath=critpath,
        telemetry=telemetry,
    )


# ----------------------------------------------------------------------
# one measured pass
# ----------------------------------------------------------------------
def _phase_of(span_name):
    """Map a PR 1 tracer span name to a bench phase (or ``None``)."""
    if span_name.startswith("workload.build"):
        return "parse"
    if span_name == "plan.graphs":
        return "encode"
    if span_name.startswith("plan."):
        return "analyze"
    if span_name.startswith("model:"):
        return "simulate"
    return None  # plan:<app> outer span would double-count its children


def _run_once(spec, model_name, cache=None):
    """One cold build+plan+simulate pass under full observation.

    Returns ``(stats, phases_s, total_s, metrics)``.  ``cache`` (an
    :class:`~repro.analysis.cache.AnalysisCache` or ``None``) memoizes
    the launch-time analysis across passes and processes; its hit/miss
    counters land in the returned registry.
    """
    tracer = Tracer()
    metrics = MetricsRegistry()
    if cache is not None:
        cache.metrics = metrics  # count this pass's traffic separately
    start = time.perf_counter()
    with tracer.span("workload.build:{}".format(spec.name), cat="ptx"):
        app = spec.build()
    reorder, window = _model_plan_params(model_name)
    runtime = BlockMaestroRuntime(tracer=tracer, metrics=metrics, cache=cache)
    plan = runtime.plan(app, reorder=reorder, window=window)
    model = _make_model(model_name, runtime.config)
    stats = model.run(plan, tracer=tracer, metrics=metrics)
    total_s = time.perf_counter() - start
    phases = {key: 0.0 for key in schema.PHASE_KEYS}
    for name, total_us, _count in tracer.wall_phase_totals():
        phase = _phase_of(name)
        if phase is not None:
            phases[phase] += total_us / 1e6
    return stats, phases, total_s, metrics


def _critpath_entry(spec, model_name, cache=None):
    """One provenance pass -> the per-model ``critpath`` bench section.

    Deliberately a separate (untimed) pass so the attribution never
    contaminates the wall-clock samples; the simulation is
    deterministic, so the recorded path matches the measured repeats.
    """
    from repro.obs.critpath import ProvenanceRecorder, build_report

    prov = ProvenanceRecorder()
    spec_app = spec.build()
    reorder, window = _model_plan_params(model_name)
    runtime = BlockMaestroRuntime(cache=cache)
    plan = runtime.plan(spec_app, reorder=reorder, window=window)
    model = _make_model(model_name, runtime.config)
    stats = model.run(plan, provenance=prov)
    report = build_report(stats, plan, prov, model.gpu_config)
    return {
        "attribution_ns": report["attribution_ns"],
        "attribution_fraction": report["attribution_fraction"],
        "num_segments": report["critical_path"]["num_segments"],
    }


def _telemetry_entry(spec, model_name, cache=None):
    """One sampler pass -> the per-model ``telemetry`` bench section.

    Like :func:`_critpath_entry`, a separate untimed pass: the sampler
    is observation-only (the simulation is deterministic either way),
    but keeping it out of the measured repeats keeps wall samples
    comparable with and without ``--telemetry``.
    """
    from repro.obs.telemetry import TelemetrySampler, bench_summary, build_report

    sampler = TelemetrySampler()
    spec_app = spec.build()
    reorder, window = _model_plan_params(model_name)
    runtime = BlockMaestroRuntime(cache=cache)
    plan = runtime.plan(spec_app, reorder=reorder, window=window)
    model = _make_model(model_name, runtime.config)
    stats = model.run(plan, telemetry=sampler)
    return bench_summary(build_report(stats, sampler))


def _percentile_block(samples):
    values = sorted(samples)
    return {
        "repeats": len(values),
        "mean": sum(values) / len(values),
        "p50": percentile(values, 0.50),
        "p95": percentile(values, 0.95),
        "max": values[-1],
    }


def _profile_pass(spec, model_name, top, cache=None):
    """One extra pass under cProfile; returns the top-k hotspot rows."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        _run_once(spec, model_name, cache=cache)
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    rows = []
    for (filename, lineno, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        if filename.startswith("<") and func.startswith("<"):
            continue  # profiler bookkeeping / builtins noise
        rows.append(
            {
                "func": "{}:{}({})".format(os.path.basename(filename), lineno, func),
                "ncalls": nc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    rows.sort(key=lambda row: (-row["cumtime_s"], row["func"]))
    return rows[:top]


# ----------------------------------------------------------------------
# the suite
# ----------------------------------------------------------------------
def _run_cell(cell):
    """One (workload, model) suite cell: warmup + measured repeats.

    This is the :class:`~repro.parallel.SuiteExecutor` task body — it
    must stay a module-level function of one picklable argument, and it
    must be self-contained (the workload is rebuilt from its registry
    name inside the worker).  ``speedup_vs_baseline`` is *not* computed
    here: it couples a cell to its workload's baseline cell, so the
    merge step fills it in from the ordered results.

    Returns ``(entry, metrics_snapshot)``.
    """
    (wname, mname, repeats, warmup, profile, profile_top, cache_dir,
     critpath, telemetry) = cell
    spec = get_workload(wname)
    cache = AnalysisCache(cache_dir) if cache_dir else None
    cell_metrics = MetricsRegistry()
    for _ in range(warmup):
        _, _, _, warm_metrics = _run_once(spec, mname, cache=cache)
        # warmup passes don't contribute wall samples, but their cache
        # traffic is real — without this a cold run looks all-hits
        # because only the (now warm) measured passes would be counted
        cell_metrics.merge(warm_metrics.snapshot())
    totals, phase_samples = [], {key: [] for key in schema.PHASE_KEYS}
    stats = metrics = None
    makespans = set()
    for _ in range(repeats):
        stats, phases, total_s, metrics = _run_once(spec, mname, cache=cache)
        totals.append(total_s)
        for key, value in phases.items():
            phase_samples[key].append(value)
        makespans.add(stats.makespan_ns)
        cell_metrics.merge(metrics.snapshot())
    if len(makespans) != 1:
        raise AssertionError(
            "nondeterministic simulation: {} x {} produced makespans "
            "{}".format(spec.name, mname, sorted(makespans))
        )
    simulated = stats.simulated_signature()
    # DLB/PCB occupancy + traffic counters from the hardware model
    # (from the last repeat: the simulation is deterministic, so every
    # repeat produced identical hw.* values)
    for name, value in metrics.snapshot()["counters"].items():
        if name.startswith("hw."):
            simulated[name] = value
    entry = {
        "wall": {
            "total_s": _percentile_block(totals),
            "phases": {
                key: _percentile_block(samples)
                for key, samples in phase_samples.items()
            },
        },
        "simulated": simulated,
    }
    if profile:
        entry["profile"] = _profile_pass(spec, mname, profile_top, cache=cache)
    if critpath:
        entry["critpath"] = _critpath_entry(spec, mname, cache=cache)
    if telemetry:
        entry["telemetry"] = _telemetry_entry(spec, mname, cache=cache)
    return entry, cell_metrics.snapshot()


def run_suite(config, log=None, executor=None, status_file=None):
    """Execute the configured suite; returns the report payload dict.

    Cells — independent (workload, model) pairs — are dispatched through
    a :class:`~repro.parallel.SuiteExecutor` (``config.jobs`` workers)
    and merged back in deterministic suite order, so a ``--jobs 4``
    report carries exactly the simulated signatures of a serial run.
    Host and git metadata are captured once per report, up front.

    Progress goes through the ``bench`` logger (``REPRO_LOG`` /
    ``--log-json``) and a :class:`~repro.obs.log.Heartbeat` that ticks
    once per finished cell: a live line on a TTY, plus an atomically
    rewritten JSON status file when ``status_file`` (or
    ``REPRO_STATUS_FILE``) names one.
    """
    log = log if log is not None else get_logger("bench").info
    # hoisted: one capture per report, not per cell/repeat — git metadata
    # alone is three subprocess invocations
    host_meta = schema.host_metadata()
    git_meta = schema.git_metadata()
    cells = [
        (wname, mname, config.repeats, config.warmup,
         config.profile, config.profile_top, config.cache_dir,
         config.critpath, config.telemetry)
        for wname in config.workloads
        for mname in config.models
    ]
    for cell in cells:
        log("bench: {} x {} (warmup {}, repeats {})".format(
            cell[0], cell[1], cell[3], cell[2]))
    heartbeat = Heartbeat(
        len(cells), phase="bench", status_path=status_file
    )
    cache_tally = {"hits": 0.0, "misses": 0.0}

    def _on_result(result):
        _entry, snapshot = result.value
        for name, value in snapshot["counters"].items():
            if name.startswith("cache.") and name.endswith(".hits"):
                cache_tally["hits"] += value
            elif name.startswith("cache.") and name.endswith(".misses"):
                cache_tally["misses"] += value
        lookups = cache_tally["hits"] + cache_tally["misses"]
        heartbeat.advance(
            current="{} x {}".format(
                cells[result.index][0], cells[result.index][1]
            ),
            cache_hit_rate=(
                cache_tally["hits"] / lookups if lookups else None
            ),
        )

    if executor is None:
        executor = SuiteExecutor(
            jobs=config.jobs, log=log, on_result=_on_result
        )
    elif getattr(executor, "on_result", None) is None:
        executor.on_result = _on_result
    merged_metrics = MetricsRegistry()
    try:
        results = executor.map(_run_cell, cells)
    finally:
        heartbeat.finish()

    workloads = {}
    baseline_makespans = {}
    for cell, (entry, metrics_snapshot) in zip(cells, results):
        wname, mname = cell[0], cell[1]
        merged_metrics.merge(metrics_snapshot)
        if wname not in workloads:
            workloads[wname] = {
                "spec": get_workload(wname).as_dict(),
                "models": {},
            }
        makespan = entry["simulated"]["makespan_ns"]
        if mname == "baseline":
            baseline_makespans[wname] = makespan
        baseline_makespan = baseline_makespans.get(wname)
        entry["simulated"]["speedup_vs_baseline"] = (
            baseline_makespan / makespan
            if baseline_makespan is not None and makespan > 0
            else 0.0
        )
        workloads[wname]["models"][mname] = entry
    payload = {
        "kind": schema.REPORT_KIND,
        "schema_version": schema.SCHEMA_VERSION,
        "created_utc": schema.utc_timestamp(),
        "host": host_meta,
        "git": git_meta,
        "config": config.as_dict(),
        "workloads": workloads,
    }
    counters = merged_metrics.snapshot()["counters"]
    if config.cache_dir:
        payload["cache"] = {
            "dir": config.cache_dir,
            "counters": {
                name: value
                for name, value in counters.items()
                if name.startswith("cache.")
            },
        }
    fastpath_counters = {
        name: value
        for name, value in counters.items()
        if name.startswith("analysis.fastpath.")
    }
    if fastpath_counters:
        # which graph-construction tier served each kernel pair, summed
        # over every cell (warmup included — tier choice is wall-clock,
        # not simulated, so warm passes exercise the same code path)
        payload["fastpath"] = {
            "mode": resolve_fastpath_mode(None),
            "counters": fastpath_counters,
        }
    engine_counters = {
        name: value
        for name, value in counters.items()
        if name.startswith("engine.tier.")
        or name.startswith("engine.fallback.")
    }
    if engine_counters:
        # which simulation-engine tier served each run, and why runs
        # fell back to the scalar reference (repro.models.fastengine)
        payload["engine"] = {
            "mode": resolve_engine_mode(None),
            "counters": engine_counters,
        }
    return payload


def write_report(payload, path=None, directory="."):
    """Write ``BENCH_<UTC-timestamp>.json`` (or an explicit ``path``)."""
    if path is None:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, schema.bench_filename())
    return dump_json(payload, path)
