"""``repro bench serve`` — load-test the serve daemon, report latency.

The bench answers the question the daemon exists to answer: *how much
faster is a warm daemon than a cold CLI invocation, and does request
coalescing actually hold under concurrency?*  Four phases against one
daemon (an external one via ``--url``, else a subprocess spawned and
reaped by the bench):

1. **warmup** — one request per target workload primes the daemon's
   warm :class:`~repro.experiments.common.ExperimentContext`;
2. **latency** — N sequential requests round-robin over the targets;
   per-request wall-clock p50/p95/p99;
3. **throughput** — the same requests fired from C concurrent client
   threads; requests/second plus the same latency quantiles;
4. **coalesce** — C threads release a barrier simultaneously on one
   *fresh* key (a workload held out of the earlier phases, so the
   response cache cannot answer it).  Exactly one response must report
   ``source == "simulated"``; the rest must be ``"coalesced"`` — and
   the daemon's own ``serve.coalesce.*`` counters must agree.

An optional **CLI baseline** times ``repro run`` one-shot subprocesses
(interpreter + parse + analyze cold start each time) for the speedup
headline.  The result is a schema-versioned
``repro-serve-bench-report`` JSON with its own structural validator,
written as ``SERVEBENCH_<UTC>.json``.
"""

import json
import os
import subprocess
import sys
import threading
import time

SERVE_BENCH_KIND = "repro-serve-bench-report"
SERVE_BENCH_SCHEMA_VERSION = 1
SERVE_BENCH_FILE_PREFIX = "SERVEBENCH_"

#: what the daemon prints once it is accepting connections
LISTENING_PREFIX = "repro serve: listening on "

#: quantile block every phase's ``wall_ms`` must carry
LATENCY_KEYS = ("p50", "p95", "p99", "mean", "max", "min", "count")

#: default load shape (kept light enough for CI smoke use)
DEFAULT_REQUESTS = 24
DEFAULT_CONCURRENCY = 4
DEFAULT_BURST = 8
DEFAULT_WORKLOADS = ("mvt", "bicg", "path")
#: held out of warmup/latency/throughput so its key is cold for the burst
DEFAULT_BURST_WORKLOAD = "nw"


# ----------------------------------------------------------------------
# daemon management
# ----------------------------------------------------------------------
class SpawnedDaemon:
    """Spawn ``repro serve`` as a subprocess; parse the announce line."""

    def __init__(self, extra_args=(), startup_timeout=60.0):
        self.extra_args = list(extra_args)
        self.startup_timeout = startup_timeout
        self.process = None
        self.url = None

    def start(self):
        command = [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", "127.0.0.1", "--port", "0",
        ] + self.extra_args
        self.process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.monotonic() + self.startup_timeout
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                break
            if line.startswith(LISTENING_PREFIX):
                # "... listening on http://H:P (pid N)"
                self.url = line[len(LISTENING_PREFIX):].split()[0]
                return self
        self.stop()
        raise RuntimeError(
            "spawned daemon never announced itself (within {}s)".format(
                self.startup_timeout
            )
        )

    def stop(self):
        if self.process is None:
            return
        if self.process.poll() is None:
            if self.url:
                try:
                    from repro.serve import ServeClient

                    ServeClient(self.url, timeout=5.0).shutdown()
                except Exception:  # noqa: BLE001 - fall through to kill
                    pass
            try:
                self.process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10.0)
        self.process = None

    def __enter__(self):
        return self.start()

    def __exit__(self, _exc_type, _exc, _tb):
        self.stop()
        return False


# ----------------------------------------------------------------------
# measurement helpers
# ----------------------------------------------------------------------
def _percentile(ordered, fraction):
    """Linear-interpolated percentile of an ascending-sorted list."""
    if not ordered:
        return 0.0
    position = fraction * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def latency_block(samples_ms):
    """The ``wall_ms`` quantile block for a list of millisecond samples."""
    ordered = sorted(samples_ms)
    count = len(ordered)
    return {
        "p50": round(_percentile(ordered, 0.50), 3),
        "p95": round(_percentile(ordered, 0.95), 3),
        "p99": round(_percentile(ordered, 0.99), 3),
        "mean": round(sum(ordered) / count, 3) if count else 0.0,
        "max": round(ordered[-1], 3) if count else 0.0,
        "min": round(ordered[0], 3) if count else 0.0,
        "count": count,
    }


def _timed_run(client, workload, model):
    """One ``/v1/run`` request; returns (elapsed_ms, source)."""
    started = time.perf_counter()
    envelope = client.run(workload, model=model)
    elapsed_ms = (time.perf_counter() - started) * 1e3
    return elapsed_ms, envelope.get("source", "?")


def _source_counts(sources):
    counts = {}
    for source in sources:
        counts[source] = counts.get(source, 0) + 1
    return counts


# ----------------------------------------------------------------------
# load phases
# ----------------------------------------------------------------------
def _phase_warmup(make_client, workloads, model):
    client = make_client()
    started = time.perf_counter()
    for workload in workloads:
        client.run(workload, model=model)
    return {
        "requests": len(workloads),
        "total_s": round(time.perf_counter() - started, 3),
    }


def _phase_latency(make_client, workloads, model, requests):
    client = make_client()
    samples, sources = [], []
    for index in range(requests):
        elapsed_ms, source = _timed_run(
            client, workloads[index % len(workloads)], model
        )
        samples.append(elapsed_ms)
        sources.append(source)
    return {
        "requests": requests,
        "wall_ms": latency_block(samples),
        "sources": _source_counts(sources),
    }


def _phase_throughput(make_client, workloads, model, requests, concurrency):
    samples, sources = [], []
    lock = threading.Lock()
    next_index = [0]

    def worker():
        client = make_client()
        while True:
            with lock:
                index = next_index[0]
                if index >= requests:
                    return
                next_index[0] += 1
            elapsed_ms, source = _timed_run(
                client, workloads[index % len(workloads)], model
            )
            with lock:
                samples.append(elapsed_ms)
                sources.append(source)

    threads = [
        threading.Thread(target=worker, name="bench-load-{}".format(i))
        for i in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed_s = time.perf_counter() - started
    return {
        "requests": requests,
        "concurrency": concurrency,
        "elapsed_s": round(elapsed_s, 3),
        "rps": round(requests / elapsed_s, 2) if elapsed_s > 0 else 0.0,
        "wall_ms": latency_block(samples),
        "sources": _source_counts(sources),
    }


def _phase_coalesce(make_client, workload, model, burst):
    """Barrier-released identical requests on a cold key."""
    results = []
    errors = []
    lock = threading.Lock()
    barrier = threading.Barrier(burst)

    def worker():
        client = make_client()
        try:
            barrier.wait(timeout=30.0)
            elapsed_ms, source = _timed_run(client, workload, model)
            with lock:
                results.append((elapsed_ms, source))
        except Exception as exc:  # noqa: BLE001 - reported in the block
            with lock:
                errors.append("{}: {}".format(type(exc).__name__, exc))

    threads = [
        threading.Thread(target=worker, name="bench-burst-{}".format(i))
        for i in range(burst)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    sources = [source for _ms, source in results]
    counts = _source_counts(sources)
    total = len(sources)
    coalesced = counts.get("coalesced", 0)
    return {
        "burst": burst,
        "workload": workload,
        "completed": total,
        "sources": counts,
        "simulations": counts.get("simulated", 0),
        "coalesce_hit_rate": round(coalesced / total, 4) if total else 0.0,
        "wall_ms": latency_block([ms for ms, _source in results]),
        "errors": errors,
    }


def _cli_baseline(workload, model, repeats):
    """Time one-shot ``repro run`` subprocesses (full cold start)."""
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "run", workload,
                "--model", model, "--json", os.devnull,
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            check=False,
        )
        elapsed_ms = (time.perf_counter() - started) * 1e3
        if completed.returncode == 0:
            samples.append(elapsed_ms)
    if not samples:
        return None
    return {
        "repeats": len(samples),
        "workload": workload,
        "wall_ms": latency_block(samples),
    }


# ----------------------------------------------------------------------
# the bench
# ----------------------------------------------------------------------
def run_serve_bench(url=None, requests=DEFAULT_REQUESTS,
                    concurrency=DEFAULT_CONCURRENCY, burst=DEFAULT_BURST,
                    workloads=None, burst_workload=DEFAULT_BURST_WORKLOAD,
                    model="consumer3", baseline_repeats=1, log=None):
    """Run all phases; return a ``repro-serve-bench-report`` payload.

    ``url=None`` spawns a daemon subprocess for the duration of the
    bench; otherwise the daemon at ``url`` is used (and left running).
    ``baseline_repeats=0`` skips the CLI cold-start baseline.
    """
    from repro.bench.schema import git_metadata, host_metadata, utc_timestamp
    from repro.serve import ServeClient

    emit = log or (lambda _message: None)
    workloads = list(workloads or DEFAULT_WORKLOADS)
    if burst_workload in workloads:
        raise ValueError(
            "burst workload {!r} must be held out of the load set "
            "(its key must be cold for the coalesce phase)".format(
                burst_workload
            )
        )

    spawned = url is None
    daemon = SpawnedDaemon() if spawned else None
    if spawned:
        emit("spawning daemon subprocess ...")
        daemon.start()
        url = daemon.url
        emit("daemon up at {}".format(url))

    def make_client():
        return ServeClient(url)

    try:
        probe = make_client()
        daemon_info = probe.version()
        status_before = probe.statusz()

        emit("warmup: {} workloads ...".format(len(workloads)))
        warmup = _phase_warmup(make_client, workloads, model)
        emit("latency: {} sequential requests ...".format(requests))
        latency = _phase_latency(make_client, workloads, model, requests)
        emit(
            "throughput: {} requests x {} threads ...".format(
                requests, concurrency
            )
        )
        throughput = _phase_throughput(
            make_client, workloads, model, requests, concurrency
        )
        emit("coalesce: {} simultaneous identical requests ...".format(burst))
        coalesce = _phase_coalesce(make_client, burst_workload, model, burst)

        status_after = probe.statusz()
        coalesce["counters"] = {
            "leaders_delta": (
                status_after.get("coalesce_leaders", 0)
                - status_before.get("coalesce_leaders", 0)
            ),
            "followers_delta": (
                status_after.get("coalesce_followers", 0)
                - status_before.get("coalesce_followers", 0)
            ),
        }

        baseline = None
        if baseline_repeats > 0:
            emit(
                "cli baseline: {} one-shot subprocess run(s) ...".format(
                    baseline_repeats
                )
            )
            baseline = _cli_baseline(workloads[0], model, baseline_repeats)
    finally:
        if spawned:
            daemon.stop()

    payload = {
        "kind": SERVE_BENCH_KIND,
        "schema_version": SERVE_BENCH_SCHEMA_VERSION,
        "created_utc": utc_timestamp(),
        "host": host_metadata(),
        "git": git_metadata(),
        "daemon": {
            "url": url,
            "spawned": spawned,
            "package": daemon_info.get("package"),
            "schemas": daemon_info.get("schemas"),
        },
        "config": {
            "requests": requests,
            "concurrency": concurrency,
            "burst": burst,
            "workloads": workloads,
            "burst_workload": burst_workload,
            "model": model,
            "baseline_repeats": baseline_repeats,
        },
        "phases": {
            "warmup": warmup,
            "latency": latency,
            "throughput": throughput,
            "coalesce": coalesce,
        },
        "cli_baseline": baseline,
    }
    warm_p50 = latency["wall_ms"]["p50"]
    if baseline is not None and warm_p50 > 0:
        payload["comparison"] = {
            "daemon_warm_p50_ms": warm_p50,
            "cli_cold_p50_ms": baseline["wall_ms"]["p50"],
            "speedup": round(baseline["wall_ms"]["p50"] / warm_p50, 2),
        }
    return payload


# ----------------------------------------------------------------------
# persistence / validation / formatting
# ----------------------------------------------------------------------
def serve_bench_filename(when=None):
    from repro.bench.schema import utc_timestamp

    return "{}{}.json".format(
        SERVE_BENCH_FILE_PREFIX,
        utc_timestamp(when).replace(":", "").replace("-", ""),
    )


def write_serve_bench_report(payload, path):
    """Atomic (tmp + rename) write of a serve-bench report."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp = "{}.tmp.{}".format(path, os.getpid())
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_latency(block, where, errors):
    if not isinstance(block, dict):
        errors.append("{}: not an object".format(where))
        return
    for key in LATENCY_KEYS:
        if not _is_number(block.get(key)):
            errors.append("{}.{}: missing or non-numeric".format(where, key))
    if not errors and block["count"] > 0 and block["min"] > block["max"]:
        errors.append("{}: min > max".format(where))


def validate_serve_bench_report(payload):
    """Structural validation; returns ``"path: problem"`` strings."""
    errors = []
    if not isinstance(payload, dict):
        return ["report: not an object"]
    if payload.get("kind") != SERVE_BENCH_KIND:
        errors.append(
            "kind: expected {!r}, got {!r}".format(
                SERVE_BENCH_KIND, payload.get("kind")
            )
        )
    if payload.get("schema_version") != SERVE_BENCH_SCHEMA_VERSION:
        errors.append(
            "schema_version: expected {}, got {!r}".format(
                SERVE_BENCH_SCHEMA_VERSION, payload.get("schema_version")
            )
        )
    for section in ("created_utc",):
        if not isinstance(payload.get(section), str):
            errors.append("{}: missing or not a string".format(section))
    for section in ("host", "git", "daemon", "config", "phases"):
        if not isinstance(payload.get(section), dict):
            errors.append("{}: missing or not an object".format(section))
    phases = payload.get("phases")
    if isinstance(phases, dict):
        for name in ("warmup", "latency", "throughput", "coalesce"):
            if not isinstance(phases.get(name), dict):
                errors.append(
                    "phases.{}: missing or not an object".format(name)
                )
        for name in ("latency", "throughput", "coalesce"):
            phase = phases.get(name)
            if isinstance(phase, dict):
                _check_latency(
                    phase.get("wall_ms"),
                    "phases.{}.wall_ms".format(name),
                    errors,
                )
        throughput = phases.get("throughput")
        if isinstance(throughput, dict) and not _is_number(
            throughput.get("rps")
        ):
            errors.append("phases.throughput.rps: missing or non-numeric")
        coalesce = phases.get("coalesce")
        if isinstance(coalesce, dict):
            for key in ("burst", "completed", "simulations",
                        "coalesce_hit_rate"):
                if not _is_number(coalesce.get(key)):
                    errors.append(
                        "phases.coalesce.{}: missing or "
                        "non-numeric".format(key)
                    )
            if not isinstance(coalesce.get("sources"), dict):
                errors.append("phases.coalesce.sources: missing object")
    baseline = payload.get("cli_baseline")
    if baseline is not None:
        if isinstance(baseline, dict):
            _check_latency(
                baseline.get("wall_ms"), "cli_baseline.wall_ms", errors
            )
        else:
            errors.append("cli_baseline: not an object or null")
    return errors


def format_serve_bench_report(payload):
    """Human-readable summary lines for one serve-bench report."""
    phases = payload.get("phases", {})
    lines = [
        "serve bench @ {} (daemon {})".format(
            payload.get("created_utc", "?"),
            payload.get("daemon", {}).get("url", "?"),
        )
    ]
    for name in ("latency", "throughput"):
        phase = phases.get(name, {})
        wall = phase.get("wall_ms", {})
        extra = (
            "  {:.2f} req/s".format(phase["rps"])
            if name == "throughput" and _is_number(phase.get("rps"))
            else ""
        )
        lines.append(
            "  {:<11} {:>4} reqs  p50 {:>8.2f}ms  p95 {:>8.2f}ms  "
            "p99 {:>8.2f}ms{}".format(
                name, phase.get("requests", 0), wall.get("p50", 0.0),
                wall.get("p95", 0.0), wall.get("p99", 0.0), extra,
            )
        )
    coalesce = phases.get("coalesce", {})
    lines.append(
        "  {:<11} {:>4} reqs  {} simulation(s)  hit rate {:.0%}".format(
            "coalesce", coalesce.get("burst", 0),
            coalesce.get("simulations", 0),
            coalesce.get("coalesce_hit_rate", 0.0),
        )
    )
    comparison = payload.get("comparison")
    if comparison:
        lines.append(
            "  warm daemon p50 {:.2f}ms vs cold CLI p50 {:.0f}ms "
            "({:.0f}x)".format(
                comparison["daemon_warm_p50_ms"],
                comparison["cli_cold_p50_ms"],
                comparison["speedup"],
            )
        )
    return lines
