"""The ``fast-engine`` microbench suite (``repro bench engine``).

Measures the :mod:`repro.models.fastengine` simulation tiers against
the scalar event-queue engine on device-serial workloads with large
grids — a long 1-to-1 map chain, a single very wide kernel, and a
fully-connected hop chain (see
:func:`repro.workloads.microbench.engine_specs`).  The driver runs the
same suite twice, cold:

1. ``REPRO_ENGINE=reference`` — every run through the scalar
   event-queue oracle (``BENCH_before_reference.json``);
2. ``REPRO_ENGINE=auto``      — tiered fast engine
   (``BENCH_after_engine.json``);

then diffs the two reports.  Because the tiers are differential-tested
to produce *identical* :class:`~repro.sim.stats.RunStats`, the diff
must show **zero simulated drift** — any drift is a fast-engine
correctness bug and :func:`run_engine_bench` flags it.  The wall-clock
win lands in the ``simulate`` phase (the ``model:*`` span);
``benchmarks/engine_demo/`` holds a committed run.

The suite benches both the ``baseline`` model (pure device-serial,
always fast-engine eligible) and ``consumer3`` (fine-grain
BlockMaestro).  Under fine-grain dependencies the fast engine only
accepts fully-connected cross-kernel graphs — so ``consumer3``
accelerates only ``eng-fc`` and honestly falls back to the oracle on
the 1-to-1 chains, which the per-tier counters in the ``engine``
report section make visible.

:func:`registry_engine_census` answers a different question — on the
registry workloads (small variants) plus the engine microbenches,
which tier simulates each model run under a jitter-free
:class:`~repro.sim.config.GPUConfig`? — and backs the CI gate that
the closed-form tier keeps firing on the proven-pattern microbenches.
"""

import os

from repro.bench.diff import diff_reports, format_diff
from repro.bench.runner import BenchConfig, run_suite, write_report
from repro.core.runtime import BlockMaestroRuntime
from repro.experiments.common import _make_model, _model_plan_params
from repro.models.fastengine import ENGINE_ENV
from repro.obs import MetricsRegistry
from repro.sim.config import GPUConfig
from repro.workloads import all_workloads, get_workload

#: the suite: hidden device-serial microbenches with large grids
ENGINE_WORKLOADS = ("eng-chain", "eng-wide", "eng-fc")

#: one always-eligible model plus a fine-grain model whose partial
#: eligibility (only the fully-connected chain) the report makes visible
ENGINE_MODELS = ("baseline", "consumer3")

BEFORE_NAME = "BENCH_before_reference.json"
AFTER_NAME = "BENCH_after_engine.json"
DIFF_NAME = "DIFF.txt"


def engine_config(repeats=3, warmup=1, jobs=1):
    """A :class:`BenchConfig` for the engine suite.

    Built directly (not via :func:`resolve_config`) because the eng-*
    workloads are hidden from the registry's glob matching on purpose.
    No ``cache_dir``: analysis cost is identical in both passes and not
    under test.
    """
    return BenchConfig(
        workloads=ENGINE_WORKLOADS,
        models=ENGINE_MODELS,
        repeats=max(1, int(repeats)),
        warmup=max(0, int(warmup)),
        jobs=max(1, int(jobs)),
    )


def _run_mode(mode, config, log):
    """Run the suite with ``REPRO_ENGINE`` pinned to ``mode``.

    The env var — not a runtime argument — is the knob because bench
    cells may execute in forked worker processes, which inherit the
    parent's environment.
    """
    saved = os.environ.get(ENGINE_ENV)
    os.environ[ENGINE_ENV] = mode
    try:
        return run_suite(config, log=log)
    finally:
        if saved is None:
            del os.environ[ENGINE_ENV]
        else:
            os.environ[ENGINE_ENV] = saved


def _phase_p50(payload, wname, model, phase):
    entry = payload["workloads"][wname]["models"][model]
    return entry["wall"]["phases"][phase]["p50"]


def run_engine_bench(out_dir, repeats=3, warmup=1, jobs=1, log=None):
    """Before/after engine comparison; writes three files to ``out_dir``.

    Returns a summary dict: report paths, per-(workload, model)
    simulate-phase p50 speedups (reference / fast engine), the tier
    counters of the fast-engine run, and ``drift`` (must be ``False``).
    """
    log = log if log is not None else (lambda msg: None)
    os.makedirs(out_dir, exist_ok=True)
    config = engine_config(repeats=repeats, warmup=warmup, jobs=jobs)

    log("engine bench: reference pass ({} workloads x {} models)".format(
        len(config.workloads), len(config.models)))
    before = _run_mode("reference", config, log)
    before_path = write_report(before, path=os.path.join(out_dir, BEFORE_NAME))

    log("engine bench: fast-engine pass")
    after = _run_mode("auto", config, log)
    after_path = write_report(after, path=os.path.join(out_dir, AFTER_NAME))

    result = diff_reports(before, after)
    diff_text = format_diff(result)
    diff_path = os.path.join(out_dir, DIFF_NAME)
    with open(diff_path, "w") as handle:
        handle.write(diff_text + "\n")

    speedups = {}
    for wname in config.workloads:
        for model in config.models:
            ref = _phase_p50(before, wname, model, "simulate")
            fast = _phase_p50(after, wname, model, "simulate")
            key = "{}/{}".format(wname, model)
            speedups[key] = ref / fast if fast > 0 else float("inf")

    return {
        "before": before_path,
        "after": after_path,
        "diff": diff_path,
        "simulate_speedups": speedups,
        "counters": after.get("engine", {}).get("counters", {}),
        "drift": bool(result.drift),
    }


def registry_engine_census(model="baseline"):
    """Which engine tier simulates each workload under ``auto``?

    Runs every registry workload's *small* variant — plus the engine
    microbenches' small variants — through ``model`` with a jitter-free
    :class:`GPUConfig` and collects the ``engine.*`` counters per
    workload.  Jitter-free, because the closed-form tier requires
    uniform per-TB durations; the census is the CI gate that the tier
    keeps firing on the proven-pattern microbenches.  Returns
    ``{workload: {tier_or_fallback: count}}``.
    """
    config = GPUConfig(duration_jitter=0.0)
    reorder, window = _model_plan_params(model)
    census = {}
    names = [spec.name for spec in all_workloads()] + list(ENGINE_WORKLOADS)
    for name in names:
        spec = get_workload(name)
        app = spec.build_small()
        runtime = BlockMaestroRuntime(config)
        plan = runtime.plan(app, reorder=reorder, window=window)
        metrics = MetricsRegistry()
        engine_model = _make_model(model, config)
        engine_model.run(plan, metrics=metrics, engine="auto")
        prefix = "engine."
        census[spec.name] = {
            counter[len(prefix):]: int(value)
            for counter, value in metrics.snapshot()["counters"].items()
            if counter.startswith(prefix)
            and (counter.startswith("engine.tier.")
                 or counter.startswith("engine.fallback."))
        }
    return census


def format_census(census):
    """One line per workload: ``name  tier.closed_form=.. ...``."""
    lines = []
    for name in sorted(census):
        tiers = census[name]
        detail = " ".join(
            "{}={}".format(tier, tiers[tier]) for tier in sorted(tiers)
        ) or "(no runs)"
        lines.append("{:<12} {}".format(name, detail))
    total = census_closed_form_total(census)
    lines.append("closed-form runs total: {}".format(total))
    return "\n".join(lines)


def census_closed_form_total(census):
    return sum(t.get("tier.closed_form", 0) for t in census.values())
