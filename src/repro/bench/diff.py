"""Bench report differ: banded wall clock, zero-tolerance simulated.

Two failure classes, deliberately asymmetric:

* **Wall clock** is hardware- and load-dependent, so total-time p50s
  are compared inside a relative *tolerance band* (default ±25%) with
  an absolute floor (default 10 ms) below which changes are ignored —
  a 2 ms workload doubling to 4 ms is noise, not a regression.
  Per-phase deltas are reported for attribution but only the total
  gates.
* **Simulated metrics** come from a deterministic timing model: the
  same code on the same workload must reproduce them bit-for-bit.
  *Any* difference — makespan, stall quartiles, DLB/PCB counters — is
  drift and fails the diff with zero tolerance, because it means the
  reproduced paper numbers (Fig. 9/10/11) silently changed.

``diff_reports`` returns a :class:`DiffResult`; ``DiffResult.failed``
drives the CLI exit code (0 clean, 1 regression/drift).
"""

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class Delta:
    """One observed difference between the two reports."""

    workload: str
    model: str
    metric: str       # "wall.total_s", "wall.phases.simulate", "simulated.makespan_ns", ...
    before: object
    after: object
    kind: str         # "wall" | "phase" | "simulated" | "coverage"

    @property
    def ratio(self):
        if isinstance(self.before, (int, float)) and self.before:
            return self.after / self.before
        return None

    def describe(self):
        if self.kind == "coverage":
            return "{}/{}: {} ({} -> {})".format(
                self.workload, self.model, self.metric, self.before, self.after
            )
        ratio = self.ratio
        arrow = "{} -> {}".format(_fmt(self.before), _fmt(self.after))
        if ratio is not None:
            arrow += " ({:+.1f}%)".format((ratio - 1.0) * 100)
        return "{}/{} {}: {}".format(self.workload, self.model, self.metric, arrow)


def _fmt(value):
    if isinstance(value, float):
        return "{:.6g}".format(value)
    return str(value)


@dataclass
class DiffResult:
    regressions: List[Delta] = field(default_factory=list)   # wall, over band
    improvements: List[Delta] = field(default_factory=list)  # wall, under band
    drift: List[Delta] = field(default_factory=list)         # simulated, any
    phase_deltas: List[Delta] = field(default_factory=list)  # informational
    missing: List[Delta] = field(default_factory=list)       # coverage shrank
    added: List[Delta] = field(default_factory=list)         # coverage grew
    compared: int = 0

    def failed(self, strict=False):
        """True when the diff should exit non-zero."""
        if self.regressions or self.drift:
            return True
        return bool(strict and self.missing)


def _model_entries(report):
    """Flatten a report to ``{(workload, model): entry}``."""
    entries = {}
    for wname, wentry in report.get("workloads", {}).items():
        for mname, mentry in wentry.get("models", {}).items():
            entries[(wname, mname)] = mentry
    return entries


def diff_reports(old, new, tolerance=0.25, min_seconds=0.010):
    """Compare two validated bench reports (``old`` is the reference).

    ``tolerance`` is the relative wall-clock band (0.25 = ±25%);
    ``min_seconds`` is the absolute floor a total must move by before a
    band violation counts.  Simulated metrics ignore both knobs.
    """
    result = DiffResult()
    old_entries = _model_entries(old)
    new_entries = _model_entries(new)
    for key in sorted(old_entries.keys() - new_entries.keys()):
        result.missing.append(
            Delta(key[0], key[1], "entry", "present", "missing", "coverage")
        )
    for key in sorted(new_entries.keys() - old_entries.keys()):
        result.added.append(
            Delta(key[0], key[1], "entry", "missing", "present", "coverage")
        )
    for key in sorted(old_entries.keys() & new_entries.keys()):
        wname, mname = key
        before, after = old_entries[key], new_entries[key]
        result.compared += 1

        # wall clock: banded comparison of the total's p50
        old_p50 = before["wall"]["total_s"]["p50"]
        new_p50 = after["wall"]["total_s"]["p50"]
        delta = Delta(wname, mname, "wall.total_s.p50", old_p50, new_p50, "wall")
        if abs(new_p50 - old_p50) >= min_seconds:
            if new_p50 > old_p50 * (1.0 + tolerance):
                result.regressions.append(delta)
            elif new_p50 < old_p50 * (1.0 - tolerance):
                result.improvements.append(delta)

        # phases: informational attribution, never gate on their own
        old_phases = before["wall"].get("phases", {})
        new_phases = after["wall"].get("phases", {})
        for phase in sorted(old_phases.keys() & new_phases.keys()):
            a, b = old_phases[phase]["p50"], new_phases[phase]["p50"]
            if abs(b - a) >= min_seconds and (
                b > a * (1.0 + tolerance) or b < a * (1.0 - tolerance)
            ):
                result.phase_deltas.append(
                    Delta(wname, mname, "wall.phases.{}.p50".format(phase),
                          a, b, "phase")
                )

        # simulated metrics: deterministic model, zero tolerance
        old_sim = before.get("simulated", {})
        new_sim = after.get("simulated", {})
        for metric in sorted(old_sim.keys() | new_sim.keys()):
            a = old_sim.get(metric)
            b = new_sim.get(metric)
            if a != b:
                result.drift.append(
                    Delta(wname, mname, "simulated.{}".format(metric),
                          a, b, "simulated")
                )

        # critical-path attribution: also deterministic, zero tolerance.
        # Only compared when both reports carry it (--critpath is opt-in),
        # so a report pair with and without the section diffs clean.
        old_cp = before.get("critpath")
        new_cp = after.get("critpath")
        if isinstance(old_cp, dict) and isinstance(new_cp, dict):
            old_attr = old_cp.get("attribution_ns", {})
            new_attr = new_cp.get("attribution_ns", {})
            for comp in sorted(old_attr.keys() | new_attr.keys()):
                a = old_attr.get(comp, 0.0)
                b = new_attr.get(comp, 0.0)
                if a != b:
                    result.drift.append(
                        Delta(wname, mname,
                              "critpath.attribution_ns.{}".format(comp),
                              a, b, "simulated")
                    )

        # telemetry summary: derived purely from simulated time, so any
        # change (overlap fractions included) is zero-tolerance drift.
        # Only compared when both reports carry it (--telemetry is
        # opt-in), so mixed-era report pairs diff clean.
        old_tm = before.get("telemetry")
        new_tm = after.get("telemetry")
        if isinstance(old_tm, dict) and isinstance(new_tm, dict):
            scalar_keys = (old_tm.keys() | new_tm.keys()) - {"pair_overlap"}
            for metric in sorted(scalar_keys):
                a = old_tm.get(metric)
                b = new_tm.get(metric)
                if a != b:
                    result.drift.append(
                        Delta(wname, mname,
                              "telemetry.{}".format(metric),
                              a, b, "simulated")
                    )
            old_pairs = old_tm.get("pair_overlap", {}) or {}
            new_pairs = new_tm.get("pair_overlap", {}) or {}
            for pair in sorted(old_pairs.keys() | new_pairs.keys()):
                a = old_pairs.get(pair, 0.0)
                b = new_pairs.get(pair, 0.0)
                if a != b:
                    result.drift.append(
                        Delta(wname, mname,
                              "telemetry.pair_overlap.{}".format(pair),
                              a, b, "simulated")
                    )
    return result


def format_diff(result, tolerance=0.25, strict=False):
    """Human-readable diff summary, regressions first."""
    lines = []
    if result.drift:
        lines.append(
            "SIMULATED DRIFT (zero tolerance — deterministic model changed):"
        )
        lines.extend("  " + delta.describe() for delta in result.drift)
    if result.regressions:
        lines.append(
            "WALL-CLOCK REGRESSIONS (over the +{:.0f}% band):".format(
                tolerance * 100
            )
        )
        lines.extend("  " + delta.describe() for delta in result.regressions)
    if result.phase_deltas:
        lines.append("phase attribution (informational):")
        lines.extend("  " + delta.describe() for delta in result.phase_deltas)
    if result.improvements:
        lines.append("wall-clock improvements:")
        lines.extend("  " + delta.describe() for delta in result.improvements)
    if result.missing:
        lines.append(
            "missing entries ({}):".format(
                "failure: --strict" if strict else "warning"
            )
        )
        lines.extend("  " + delta.describe() for delta in result.missing)
    if result.added:
        lines.append("new entries:")
        lines.extend("  " + delta.describe() for delta in result.added)
    verdict = "FAIL" if result.failed(strict=strict) else "OK"
    lines.append(
        "bench diff: {} ({} entries compared, {} regressions, {} drift)".format(
            verdict, result.compared, len(result.regressions), len(result.drift)
        )
    )
    return "\n".join(lines)
