"""Performance benchmarking & regression tracking (``repro bench``).

Four pieces, one file format:

* :mod:`repro.bench.schema` — the versioned ``BENCH_<UTC>.json`` report
  shape, host/git metadata capture, and structural validation;
* :mod:`repro.bench.runner` — the suite runner: warmup + N measured
  cold passes per (workload, model), wall-clock p50/p95/max per
  pipeline phase, deterministic simulated metrics, optional cProfile
  hotspots;
* :mod:`repro.bench.diff` — the regression gate: tolerance-banded
  wall-clock comparison, bit-identical (zero tolerance) simulated
  metrics;
* :mod:`repro.bench.trend` — folds a directory of reports into a
  per-workload performance trajectory;
* :mod:`repro.bench.fastpath` — the ``analysis-fastpath`` microbench
  suite: scalar-reference vs tiered graph construction, before/after
  reports plus a zero-drift gate (``repro bench fastpath``).

See ``docs/benchmarking.md`` for the workflow.
"""

from repro.bench.schema import (
    FILE_PREFIX,
    REPORT_KIND,
    SCHEMA_VERSION,
    bench_filename,
    load_report,
    validate_report,
)
from repro.bench.runner import (
    BenchConfig,
    DEFAULT_MODELS,
    QUICK_MODELS,
    QUICK_WORKLOADS,
    resolve_config,
    run_suite,
    write_report,
)
from repro.bench.diff import Delta, DiffResult, diff_reports, format_diff
from repro.bench.trend import find_reports, format_trend, load_reports, trend_rows
from repro.bench.fastpath import (
    FASTPATH_MODELS,
    FASTPATH_WORKLOADS,
    fastpath_config,
    registry_tier_census,
    run_fastpath_bench,
)

__all__ = [
    "BenchConfig",
    "DEFAULT_MODELS",
    "Delta",
    "DiffResult",
    "FASTPATH_MODELS",
    "FASTPATH_WORKLOADS",
    "FILE_PREFIX",
    "QUICK_MODELS",
    "QUICK_WORKLOADS",
    "REPORT_KIND",
    "SCHEMA_VERSION",
    "bench_filename",
    "diff_reports",
    "fastpath_config",
    "find_reports",
    "format_diff",
    "format_trend",
    "load_report",
    "load_reports",
    "registry_tier_census",
    "resolve_config",
    "run_fastpath_bench",
    "run_suite",
    "trend_rows",
    "validate_report",
    "write_report",
]
