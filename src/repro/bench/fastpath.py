"""The ``analysis-fastpath`` microbench suite (``repro bench fastpath``).

Measures the :mod:`repro.analysis.fastpath` graph-construction tiers
against the scalar reference builder on large-grid producer/consumer
pairs — one hidden workload per Table-I pattern family (see
:func:`repro.workloads.microbench.fastpath_specs`).  The driver runs
the same suite twice, cold, with no analysis cache:

1. ``REPRO_FASTPATH=reference`` — every graph through the scalar
   oracle (``BENCH_before_reference.json``);
2. ``REPRO_FASTPATH=auto``      — tiered fast path
   (``BENCH_after_fastpath.json``);

then diffs the two reports.  Because the tiers are differential-tested
to produce *identical* graphs, the diff must show **zero simulated
drift** — any drift is a fast-path correctness bug and
:func:`run_fastpath_bench` flags it.  The wall-clock win lands in the
``encode`` phase (the ``plan.graphs`` span, where dependency graphs are
built); ``benchmarks/fastpath_demo/`` holds a committed run.

:func:`registry_tier_census` answers a different question — on the
real Table-II workloads (small variants), which tier serves each
kernel pair? — and backs the CI gate that the closed-form tier keeps
firing on registry workloads.
"""

import os

from repro.bench.diff import diff_reports, format_diff
from repro.bench.runner import BenchConfig, run_suite, write_report
from repro.analysis.fastpath import FASTPATH_ENV
from repro.core.runtime import BlockMaestroRuntime
from repro.obs import MetricsRegistry
from repro.workloads import all_workloads, get_workload

#: the suite: one hidden microbench per Table-I pattern family
FASTPATH_WORKLOADS = ("fp-1to1", "fp-stencil", "fp-nto1", "fp-fc", "fp-ngroup")

#: simulation is not under test here — one cheap model keeps runs short
FASTPATH_MODELS = ("baseline",)

BEFORE_NAME = "BENCH_before_reference.json"
AFTER_NAME = "BENCH_after_fastpath.json"
DIFF_NAME = "DIFF.txt"


def fastpath_config(repeats=3, warmup=1, jobs=1):
    """A :class:`BenchConfig` for the fastpath suite.

    Built directly (not via :func:`resolve_config`) because the fp-*
    workloads are hidden from the registry's glob matching on purpose.
    No ``cache_dir``: every pass must be a cold analysis.
    """
    return BenchConfig(
        workloads=FASTPATH_WORKLOADS,
        models=FASTPATH_MODELS,
        repeats=max(1, int(repeats)),
        warmup=max(0, int(warmup)),
        jobs=max(1, int(jobs)),
    )


def _run_mode(mode, config, log):
    """Run the suite with ``REPRO_FASTPATH`` pinned to ``mode``.

    The env var — not a runtime argument — is the knob because bench
    cells may execute in forked worker processes, which inherit the
    parent's environment.
    """
    saved = os.environ.get(FASTPATH_ENV)
    os.environ[FASTPATH_ENV] = mode
    try:
        return run_suite(config, log=log)
    finally:
        if saved is None:
            del os.environ[FASTPATH_ENV]
        else:
            os.environ[FASTPATH_ENV] = saved


def _phase_p50(payload, wname, phase):
    entry = payload["workloads"][wname]["models"][FASTPATH_MODELS[0]]
    return entry["wall"]["phases"][phase]["p50"]


def run_fastpath_bench(out_dir, repeats=3, warmup=1, jobs=1, log=None):
    """Before/after fastpath comparison; writes three files to ``out_dir``.

    Returns a summary dict: report paths, per-workload encode-phase
    p50 speedups (reference / fastpath), the tier counters of the
    fastpath run, and ``drift`` (must be ``False``).
    """
    log = log if log is not None else (lambda msg: None)
    os.makedirs(out_dir, exist_ok=True)
    config = fastpath_config(repeats=repeats, warmup=warmup, jobs=jobs)

    log("fastpath bench: reference pass ({} workloads)".format(
        len(config.workloads)))
    before = _run_mode("reference", config, log)
    before_path = write_report(before, path=os.path.join(out_dir, BEFORE_NAME))

    log("fastpath bench: fastpath pass")
    after = _run_mode("auto", config, log)
    after_path = write_report(after, path=os.path.join(out_dir, AFTER_NAME))

    result = diff_reports(before, after)
    diff_text = format_diff(result)
    diff_path = os.path.join(out_dir, DIFF_NAME)
    with open(diff_path, "w") as handle:
        handle.write(diff_text + "\n")

    speedups = {}
    for wname in config.workloads:
        ref = _phase_p50(before, wname, "encode")
        fast = _phase_p50(after, wname, "encode")
        speedups[wname] = ref / fast if fast > 0 else float("inf")

    return {
        "before": before_path,
        "after": after_path,
        "diff": diff_path,
        "encode_speedups": speedups,
        "counters": after.get("fastpath", {}).get("counters", {}),
        "drift": bool(result.drift),
    }


def registry_tier_census(hazards=("raw",)):
    """Which fast-path tier served each Table-II registry workload?

    Plans every registry workload's *small* variant under ``auto`` mode
    with a fresh runtime and collects the ``analysis.fastpath.*``
    counters.  Returns ``{workload: {tier: count}}``; the CI fastpath
    job fails if no workload hits the closed-form tier.
    """
    census = {}
    for spec in all_workloads():
        metrics = MetricsRegistry()
        runtime = BlockMaestroRuntime(
            metrics=metrics, hazards=hazards, fastpath="auto"
        )
        runtime.plan(spec.build_small())
        prefix = "analysis.fastpath."
        census[spec.name] = {
            name[len(prefix):]: int(value)
            for name, value in metrics.snapshot()["counters"].items()
            if name.startswith(prefix)
        }
    return census


def format_census(census):
    """One line per workload: ``name  closed_form=.. vectorized=..``."""
    lines = []
    for name in sorted(census):
        tiers = census[name]
        detail = " ".join(
            "{}={}".format(tier, tiers[tier]) for tier in sorted(tiers)
        ) or "(no kernel pairs)"
        lines.append("{:<12} {}".format(name, detail))
    total = sum(t.get("closed_form", 0) for t in census.values())
    lines.append("closed-form graphs total: {}".format(total))
    return "\n".join(lines)


def census_closed_form_total(census):
    return sum(t.get("closed_form", 0) for t in census.values())
