"""Trend view: fold a directory of ``BENCH_*.json`` into trajectories.

Every committed bench report is one point on the repo's performance
trajectory.  ``repro bench trend`` collects all ``BENCH_*.json`` files
in a directory (skipping invalid ones with a warning), orders them by
``created_utc``, and renders one row per (workload, model) with the
chosen metric per report — so a perf PR can show its before/after in
context, and a slow creep across many PRs is visible at a glance.
"""

import glob
import os
import sys

from repro.bench.schema import FILE_PREFIX, load_report

#: metric name -> (extractor(model_entry), column label, formatter)
METRICS = {
    "wall": (
        lambda entry: entry["wall"]["total_s"]["p50"],
        "total wall p50 [ms]",
        lambda v: "{:.1f}".format(v * 1e3),
    ),
    "makespan": (
        lambda entry: entry["simulated"]["makespan_ns"],
        "simulated makespan [us]",
        lambda v: "{:.1f}".format(v / 1e3),
    ),
    "speedup": (
        lambda entry: entry["simulated"]["speedup_vs_baseline"],
        "speedup vs baseline",
        lambda v: "{:.3f}".format(v),
    ),
    # telemetry metrics are optional sections (--telemetry runs only);
    # reports without them render "-" in that column, like any other
    # missing entry — mixed-era directories must stay viewable
    "overlap": (
        lambda entry: entry["telemetry"]["mean_overlap_fraction"],
        "mean kernel-pair overlap",
        lambda v: "{:.3f}".format(v),
    ),
    "occupancy": (
        lambda entry: entry["telemetry"]["mean_occupancy_tbs"],
        "mean occupancy [TBs]",
        lambda v: "{:.1f}".format(v),
    ),
}


def find_reports(directory):
    """``BENCH_*.json`` paths in ``directory``, name-sorted (= by time)."""
    return sorted(glob.glob(os.path.join(directory, FILE_PREFIX + "*.json")))


def load_reports(directory, log=None):
    """Load + validate every report in ``directory``, oldest first.

    Invalid files are skipped with a one-line warning rather than
    aborting the whole view — one corrupt artifact must not hide the
    trajectory.  Returns ``[(path, payload), ...]``.
    """
    log = log if log is not None else (lambda msg: print(msg, file=sys.stderr))
    reports = []
    for path in find_reports(directory):
        try:
            reports.append((path, load_report(path)))
        except ValueError as exc:
            log("bench trend: skipping {}".format(exc))
    reports.sort(key=lambda item: (item[1].get("created_utc", ""), item[0]))
    return reports


def trend_rows(reports, metric="wall"):
    """Fold reports into ``(header, rows)`` for the trajectory table.

    ``header`` is ``["workload", "model", <stamp>, ...]``; each row maps
    those columns to formatted values (``-`` where a report lacks the
    entry).  Raises :class:`KeyError` for an unknown metric name.
    """
    try:
        extract, _label, fmt = METRICS[metric]
    except KeyError:
        raise KeyError(
            "unknown trend metric {!r}; available: {}".format(
                metric, ", ".join(sorted(METRICS))
            )
        ) from None
    stamps = [_stamp(payload, path) for path, payload in reports]
    pairs = []  # (workload, model), first-seen order
    for _path, payload in reports:
        for wname, wentry in payload.get("workloads", {}).items():
            for mname in wentry.get("models", {}):
                if (wname, mname) not in pairs:
                    pairs.append((wname, mname))
    rows = []
    for wname, mname in pairs:
        row = {"workload": wname, "model": mname}
        for stamp, (_path, payload) in zip(stamps, reports):
            entry = (
                payload.get("workloads", {})
                .get(wname, {})
                .get("models", {})
                .get(mname)
            )
            try:
                row[stamp] = fmt(extract(entry)) if entry else "-"
            except (KeyError, TypeError):
                row[stamp] = "-"
        rows.append(row)
    return ["workload", "model"] + stamps, rows


def _stamp(payload, path):
    """Short column label: ``08-05 10:15`` from created_utc, else name."""
    created = payload.get("created_utc", "")
    if len(created) >= 16:
        return "{} {}".format(created[5:10], created[11:16])
    return os.path.basename(path)


def format_trend(reports, metric="wall"):
    """Render the trajectory table for ``repro bench trend``."""
    from repro.experiments.common import format_table

    if not reports:
        return "no BENCH_*.json reports found"
    _extract, label, _fmt = METRICS[metric]
    header, rows = trend_rows(reports, metric=metric)
    title = "bench trend: {} across {} reports".format(label, len(reports))
    return format_table(rows, header, title=title)
