"""Bench report schema: metadata construction and structural validation.

A bench report is a single schema-versioned JSON document,
``BENCH_<UTC-timestamp>.json``, written at the repository root (or a
chosen directory).  Shape::

    {
      "kind": "repro-bench-report",
      "schema_version": 2,
      "created_utc": "2026-08-05T10:15:30Z",
      "host": {...},                # platform / python / cpu metadata
      "git": {...},                 # commit, branch, dirty flag
      "config": {...},              # repeats, warmup, models, jobs, ...
      "cache": {                    # optional: cache-enabled runs only
        "dir": "...", "counters": {"cache.summary.hits": ..., ...}
      },
      "fastpath": {                 # optional: graph-build tier census
        "mode": "auto", "counters": {"analysis.fastpath.closed_form": ...}
      },
      "engine": {                   # optional: simulation-engine tier census
        "mode": "auto", "counters": {"engine.tier.vectorized": ...}
      },
      "workloads": {
        "<workload>": {
          "models": {
            "<model>": {
              "wall": {
                "total_s": {p50, p95, max, mean, repeats},
                "phases": {"parse"|"analyze"|"encode"|"simulate": <same>}
              },
              "simulated": {"makespan_ns": ..., ...},   # zero-tolerance
              "critpath": {                             # optional: --critpath
                "attribution_ns": {...}, "attribution_fraction": {...},
                "num_segments": ...
              },
              "telemetry": {                            # optional: --telemetry
                "mean_occupancy_tbs": ..., "wavefront_efficiency": ...,
                "total_overlap_ns": ..., "idle_bubble_ns": ...,
                "pair_overlap": {"k0->k1": ...}         # zero-tolerance
              },
              "profile": [{"func", "ncalls", "tottime_s", "cumtime_s"}]
            }
          }
        }
      }
    }

Validation is structural and dependency-free (no ``jsonschema``):
:func:`validate_report` returns a list of ``"path: problem"`` strings,
empty when the document is valid.  ``repro bench diff`` and the CI
``bench-smoke`` job both gate on it.
"""

import json
import os
import subprocess
import time

SCHEMA_VERSION = 2
#: versions :func:`validate_report` accepts — v1 reports (no optional
#: "telemetry" sections) stay loadable so history remains diffable
SUPPORTED_SCHEMA_VERSIONS = (1, 2)
REPORT_KIND = "repro-bench-report"
FILE_PREFIX = "BENCH_"

#: phase keys every wall-clock block must carry (PR 1 tracer spans)
PHASE_KEYS = ("parse", "analyze", "encode", "simulate")

#: statistics every percentile block must carry
PERCENTILE_KEYS = ("p50", "p95", "max", "mean", "repeats")

#: critical-path components an optional "critpath" section may attribute
CRITPATH_COMPONENT_KEYS = (
    "exec",
    "launch",
    "dependency",
    "occupancy",
    "barrier",
    "copy",
    "host",
    "other",
)

#: numeric keys an optional "telemetry" section must carry (schema v2);
#: all derived from simulated time, so ``bench diff`` treats every one
#: as zero-tolerance drift
TELEMETRY_SUMMARY_KEYS = (
    "mean_occupancy_tbs",
    "p95_occupancy_tbs",
    "wavefront_efficiency",
    "busy_fraction",
    "total_overlap_ns",
    "mean_overlap_fraction",
    "idle_bubble_ns",
    "idle_bubble_count",
)

#: simulated metrics every model entry must carry (zero-tolerance set)
REQUIRED_SIMULATED_KEYS = (
    "makespan_ns",
    "busy_ns",
    "avg_tb_concurrency",
    "num_tbs",
    "num_kernels",
    "stall_q1",
    "stall_median",
    "stall_q3",
    "speedup_vs_baseline",
)


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def utc_timestamp(when=None):
    """ISO-8601 UTC second-resolution stamp (``2026-08-05T10:15:30Z``)."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(when))


def bench_filename(when=None):
    """``BENCH_20260805T101530Z.json`` — sorts chronologically by name."""
    return "{}{}.json".format(
        FILE_PREFIX, time.strftime("%Y%m%dT%H%M%SZ", time.gmtime(when))
    )


def host_metadata():
    """Where the numbers came from — wall clock is hardware-dependent."""
    import platform

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 0,
    }


def _git(args, cwd):
    try:
        out = subprocess.run(
            ["git"] + args,
            cwd=cwd,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.decode("utf-8", "replace").strip()


def git_metadata(cwd=None):
    """Commit/branch/dirty of the benchmarked tree (best effort)."""
    cwd = cwd or os.getcwd()
    commit = _git(["rev-parse", "HEAD"], cwd)
    if commit is None:
        return {"commit": None, "branch": None, "dirty": None}
    branch = _git(["rev-parse", "--abbrev-ref", "HEAD"], cwd)
    status = _git(["status", "--porcelain"], cwd)
    return {
        "commit": commit,
        "branch": branch,
        "dirty": bool(status) if status is not None else None,
    }


def load_report(path):
    """Load and validate one report; raises ``ValueError`` on problems."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ValueError("{}: {}".format(path, exc)) from None
    errors = validate_report(payload)
    if errors:
        raise ValueError(
            "{}: not a valid bench report: {}".format(path, "; ".join(errors[:5]))
        )
    return payload


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_percentile_block(block, where, errors):
    if not isinstance(block, dict):
        errors.append("{}: expected a percentile block, got {}".format(
            where, type(block).__name__))
        return
    for key in PERCENTILE_KEYS:
        if key not in block:
            errors.append("{}: missing {!r}".format(where, key))
        elif not _is_number(block[key]):
            errors.append("{}.{}: not a number".format(where, key))
    repeats = block.get("repeats")
    if _is_number(repeats) and repeats < 1:
        errors.append("{}.repeats: must be >= 1".format(where))


def validate_report(payload):
    """Structural validation; returns a list of problems (empty = valid)."""
    errors = []
    if not isinstance(payload, dict):
        return ["report: expected a JSON object"]
    if payload.get("kind") != REPORT_KIND:
        errors.append("kind: expected {!r}".format(REPORT_KIND))
    version = payload.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        errors.append(
            "schema_version: expected one of {}, got {!r}".format(
                SUPPORTED_SCHEMA_VERSIONS, version
            )
        )
    if not isinstance(payload.get("created_utc"), str):
        errors.append("created_utc: missing or not a string")
    for section in ("host", "git", "config"):
        if not isinstance(payload.get(section), dict):
            errors.append("{}: missing or not an object".format(section))
    config = payload.get("config") or {}
    if isinstance(config, dict):
        if not isinstance(config.get("repeats"), int) or config.get("repeats", 0) < 1:
            errors.append("config.repeats: must be an int >= 1")
        if not isinstance(config.get("warmup"), int) or config.get("warmup", 0) < 0:
            errors.append("config.warmup: must be an int >= 0")
        models = config.get("models")
        if not (isinstance(models, list) and models
                and all(isinstance(m, str) for m in models)):
            errors.append("config.models: must be a non-empty list of strings")
    cache = payload.get("cache")
    if cache is not None:  # optional: present only for cache-enabled runs
        if not isinstance(cache, dict):
            errors.append("cache: not an object")
        else:
            if not isinstance(cache.get("dir"), str):
                errors.append("cache.dir: missing or not a string")
            counters = cache.get("counters")
            if not isinstance(counters, dict):
                errors.append("cache.counters: missing or not an object")
            else:
                for name, value in counters.items():
                    if not _is_number(value):
                        errors.append("cache.counters.{}: not a number".format(name))
    fastpath = payload.get("fastpath")
    if fastpath is not None:  # optional: present when any tier counter fired
        if not isinstance(fastpath, dict):
            errors.append("fastpath: not an object")
        else:
            if not isinstance(fastpath.get("mode"), str):
                errors.append("fastpath.mode: missing or not a string")
            counters = fastpath.get("counters")
            if not isinstance(counters, dict):
                errors.append("fastpath.counters: missing or not an object")
            else:
                for name, value in counters.items():
                    if not _is_number(value):
                        errors.append(
                            "fastpath.counters.{}: not a number".format(name)
                        )
    engine = payload.get("engine")
    if engine is not None:  # optional: present when any tier counter fired
        if not isinstance(engine, dict):
            errors.append("engine: not an object")
        else:
            if not isinstance(engine.get("mode"), str):
                errors.append("engine.mode: missing or not a string")
            counters = engine.get("counters")
            if not isinstance(counters, dict):
                errors.append("engine.counters: missing or not an object")
            else:
                for name, value in counters.items():
                    if not _is_number(value):
                        errors.append(
                            "engine.counters.{}: not a number".format(name)
                        )
    workloads = payload.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        errors.append("workloads: missing or empty")
        return errors
    for wname, wentry in workloads.items():
        wpath = "workloads.{}".format(wname)
        if not isinstance(wentry, dict) or not isinstance(
            wentry.get("models"), dict
        ) or not wentry["models"]:
            errors.append("{}: missing non-empty 'models' object".format(wpath))
            continue
        for mname, mentry in wentry["models"].items():
            mpath = "{}.models.{}".format(wpath, mname)
            if not isinstance(mentry, dict):
                errors.append("{}: not an object".format(mpath))
                continue
            wall = mentry.get("wall")
            if not isinstance(wall, dict):
                errors.append("{}.wall: missing or not an object".format(mpath))
            else:
                _check_percentile_block(
                    wall.get("total_s"), mpath + ".wall.total_s", errors
                )
                phases = wall.get("phases")
                if not isinstance(phases, dict):
                    errors.append("{}.wall.phases: missing".format(mpath))
                else:
                    for phase in PHASE_KEYS:
                        _check_percentile_block(
                            phases.get(phase),
                            "{}.wall.phases.{}".format(mpath, phase),
                            errors,
                        )
            simulated = mentry.get("simulated")
            if not isinstance(simulated, dict):
                errors.append("{}.simulated: missing or not an object".format(mpath))
            else:
                for key in REQUIRED_SIMULATED_KEYS:
                    if key not in simulated:
                        errors.append("{}.simulated.{}: missing".format(mpath, key))
                    elif not _is_number(simulated[key]):
                        errors.append(
                            "{}.simulated.{}: not a number".format(mpath, key)
                        )
            critpath = mentry.get("critpath")
            if critpath is not None:  # optional: --critpath runs only
                cpath = mpath + ".critpath"
                if not isinstance(critpath, dict):
                    errors.append("{}: not an object".format(cpath))
                else:
                    for section in ("attribution_ns", "attribution_fraction"):
                        block = critpath.get(section)
                        if not isinstance(block, dict):
                            errors.append(
                                "{}.{}: missing or not an object".format(
                                    cpath, section
                                )
                            )
                            continue
                        for comp, value in block.items():
                            if comp not in CRITPATH_COMPONENT_KEYS:
                                errors.append(
                                    "{}.{}.{}: unknown component".format(
                                        cpath, section, comp
                                    )
                                )
                            elif not _is_number(value):
                                errors.append(
                                    "{}.{}.{}: not a number".format(
                                        cpath, section, comp
                                    )
                                )
                    if not _is_number(critpath.get("num_segments")):
                        errors.append(
                            "{}.num_segments: missing or not a number".format(cpath)
                        )
            telemetry = mentry.get("telemetry")
            if telemetry is not None:  # optional: --telemetry runs only
                tpath = mpath + ".telemetry"
                if not isinstance(telemetry, dict):
                    errors.append("{}: not an object".format(tpath))
                else:
                    for key in TELEMETRY_SUMMARY_KEYS:
                        if key not in telemetry:
                            errors.append("{}.{}: missing".format(tpath, key))
                        elif not _is_number(telemetry[key]):
                            errors.append(
                                "{}.{}: not a number".format(tpath, key)
                            )
                    pair_overlap = telemetry.get("pair_overlap")
                    if not isinstance(pair_overlap, dict):
                        errors.append(
                            "{}.pair_overlap: missing or not an object".format(
                                tpath
                            )
                        )
                    else:
                        for pair, value in pair_overlap.items():
                            if not _is_number(value):
                                errors.append(
                                    "{}.pair_overlap.{}: not a number".format(
                                        tpath, pair
                                    )
                                )
            profile = mentry.get("profile")
            if profile is not None:
                if not isinstance(profile, list):
                    errors.append("{}.profile: not a list".format(mpath))
                else:
                    for i, row in enumerate(profile):
                        if not isinstance(row, dict) or "func" not in row \
                                or "cumtime_s" not in row:
                            errors.append(
                                "{}.profile[{}]: needs 'func' and 'cumtime_s'".format(
                                    mpath, i
                                )
                            )
    return errors
