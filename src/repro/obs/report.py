"""Report artifacts: RunStats serialization, blame tables, experiment JSON.

This module is the single serializer for run results — ``repro run
--json``, ``repro compare --json``, ``repro trace``'s metrics sidecar
and ``experiments.runner --out`` all go through it, so every artifact
speaks the same schema.

The *blame* view is modelled on ``systemd-analyze blame`` /
``cloud-init analyze blame``: one line per unit, worst first, with the
time attribution that explains *why* it cost that much.  Here the units
are kernels (simulated time split into queue wait / launch overhead /
dependency stall / execution / in-order completion drain) and, when a
tracer was attached, launch-time pipeline phases (real wall clock).
"""

import json
import os
import sys
import tempfile


def atomic_write_text(text, path):
    """The one file writer behind every ``--out``/``-o`` artifact flag.

    Creates missing parent directories, writes to a temporary file in
    the destination directory, then atomically renames it into place —
    so a crashed run never leaves a truncated report, and
    ``--out deep/new/dir/file`` just works instead of raising a bare
    ``FileNotFoundError``.  Returns ``path``.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix="." + os.path.basename(path) + ".", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def dump_json(payload, destination, indent=2, sort_keys=True):
    """The one JSON writer: ``-`` for stdout, else a file path.

    Shared by the CLI ``--json`` flags and the bench report writer so
    every artifact is serialized the same way (stable key order,
    trailing newline).  Returns ``destination``.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys)
    if destination == "-":
        sys.stdout.write(text + "\n")
    else:
        atomic_write_text(text + "\n", destination)
    return destination


def write_text(text, destination=None):
    """The one *text*-report writer behind the ``--out FILE`` flags.

    ``None`` or ``-`` prints to stdout (the historical behavior of
    ``trace``/``blame``/``critpath``); a path writes the report there
    and confirms with the same ``wrote <path>`` line the JSON flags
    use.  Returns ``destination``.
    """
    if not text.endswith("\n"):
        text += "\n"
    if destination in (None, "-"):
        sys.stdout.write(text)
    else:
        atomic_write_text(text, destination)
        print("wrote", destination)
    return destination


# ----------------------------------------------------------------------
# RunStats serialization
# ----------------------------------------------------------------------
def tb_record_dict(tb):
    return {
        "kernel_index": tb.kernel_index,
        "tb_id": tb.tb_id,
        "sm": tb.sm,
        "ready_ns": tb.ready_ns,
        "start_ns": tb.start_ns,
        "finish_ns": tb.finish_ns,
        "stall_ns": tb.stall_ns,
    }


def kernel_record_dict(kr):
    return {
        "index": kr.index,
        "name": kr.name,
        "num_tbs": kr.num_tbs,
        "stream": kr.stream,
        "queued_ns": kr.queued_ns,
        "launch_begin_ns": kr.launch_begin_ns,
        "resident_ns": kr.resident_ns,
        "first_tb_start_ns": kr.first_tb_start_ns,
        "all_tbs_done_ns": kr.all_tbs_done_ns,
        "completed_ns": kr.completed_ns,
    }


def run_stats_dict(stats, include_tb_records=False):
    """Serialize a :class:`~repro.sim.stats.RunStats` to plain data."""
    q1, median, q3 = stats.stall_quartiles()
    payload = {
        "model": stats.model,
        "application": stats.application,
        "makespan_ns": stats.makespan_ns,
        "makespan_us": stats.makespan_ns / 1e3,
        "busy_ns": stats.busy_ns,
        "concurrency_integral": stats.concurrency_integral,
        "avg_tb_concurrency": stats.avg_tb_concurrency(),
        "num_tbs": len(stats.tb_records),
        "stall_quartiles": {"q1": q1, "median": median, "q3": q3},
        "kernel_memory_requests": stats.kernel_memory_requests,
        "dependency_memory_requests": stats.dependency_memory_requests,
        "memory_overhead_fraction": stats.memory_overhead_fraction(),
        "graph_plain_bytes": stats.graph_plain_bytes,
        "graph_encoded_bytes": stats.graph_encoded_bytes,
        "storage_ratio": stats.storage_ratio(),
        "counters": dict(stats.counters),
        "kernels": [kernel_record_dict(kr) for kr in stats.kernel_records],
    }
    if include_tb_records:
        payload["tb_records"] = [tb_record_dict(tb) for tb in stats.tb_records]
    return payload


# ----------------------------------------------------------------------
# blame
# ----------------------------------------------------------------------
def kernel_blame_rows(stats):
    """Per-kernel simulated-time attribution, worst total first.

    Phases partition each kernel's queued→completed lifetime:

    * ``queue_ns``  — enqueued, waiting for its pre-launch window slot
    * ``launch_ns`` — launch overhead (API + device-side setup)
    * ``stall_ns``  — resident but no thread block dispatched yet
      (waiting on producer blocks / barriers / SM slots)
    * ``exec_ns``   — first TB start to last TB finish
    * ``drain_ns``  — all TBs done, waiting for in-order completion
    """
    rows = []
    for kr in stats.kernel_records:
        first = kr.first_tb_start_ns or kr.resident_ns
        row = {
            "index": kr.index,
            "name": kr.name,
            "stream": kr.stream,
            "num_tbs": kr.num_tbs,
            "queue_ns": max(0.0, kr.launch_begin_ns - kr.queued_ns),
            "launch_ns": max(0.0, kr.resident_ns - kr.launch_begin_ns),
            "stall_ns": max(0.0, first - kr.resident_ns),
            "exec_ns": max(0.0, kr.all_tbs_done_ns - first),
            "drain_ns": max(0.0, kr.completed_ns - kr.all_tbs_done_ns),
            "total_ns": max(0.0, kr.completed_ns - kr.queued_ns),
        }
        rows.append(row)
    rows.sort(key=lambda row: (-row["total_ns"], row["index"]))
    return rows


def _us(ns):
    return "{:10.3f}us".format(ns / 1e3)


def format_blame(stats, tracer=None, limit=None):
    """Render the blame report for one run (plus plan phases if traced)."""
    lines = [
        "-- simulated time per kernel ({}: {}, makespan {:.1f}us) --".format(
            stats.model, stats.application, stats.makespan_ns / 1e3
        )
    ]
    rows = kernel_blame_rows(stats)
    shown = rows if limit is None else rows[:limit]
    for row in shown:
        lines.append(
            "  {} (k{:02d}/{})  queue {}  launch {}  stall {}  exec {}"
            "  drain {}".format(
                _us(row["total_ns"]),
                row["index"],
                row["name"],
                _us(row["queue_ns"]).strip(),
                _us(row["launch_ns"]).strip(),
                _us(row["stall_ns"]).strip(),
                _us(row["exec_ns"]).strip(),
                _us(row["drain_ns"]).strip(),
            )
        )
    if limit is not None and len(rows) > limit:
        lines.append("  ... {} more kernels".format(len(rows) - limit))
    totals = {
        key: sum(row[key] for row in rows)
        for key in ("queue_ns", "launch_ns", "stall_ns", "exec_ns", "drain_ns")
    }
    lines.append(
        "  totals: queue {}  launch {}  stall {}  exec {}  drain {}".format(
            *(
                _us(totals[key]).strip()
                for key in ("queue_ns", "launch_ns", "stall_ns", "exec_ns", "drain_ns")
            )
        )
    )
    q1, median, q3 = stats.stall_quartiles()
    lines.append(
        "  per-TB dependency stall (normalized): q1={:.2f} median={:.2f} "
        "q3={:.2f}".format(q1, median, q3)
    )
    if tracer is not None and tracer.enabled:
        phase_rows = tracer.wall_phase_totals()
        if phase_rows:
            lines.append("")
            lines.append("-- host wall clock per pipeline phase --")
            for name, total_us, count in phase_rows:
                lines.append(
                    "  {:10.3f}ms ({})  x{}".format(total_us / 1e3, name, count)
                )
    return "\n".join(lines)


def blame_payload(stats, tracer=None, limit=None):
    """Machine-readable form of :func:`format_blame` (``blame --json``)."""
    rows = kernel_blame_rows(stats)
    if limit is not None:
        rows = rows[:limit]
    q1, median, q3 = stats.stall_quartiles()
    payload = {
        "kind": "repro-blame-report",
        "workload": stats.application,
        "model": stats.model,
        "makespan_ns": stats.makespan_ns,
        "stall_quartiles": {"q1": q1, "median": median, "q3": q3},
        "kernels": rows,
    }
    if tracer is not None and getattr(tracer, "enabled", False):
        payload["wall_phases"] = [
            {"name": name, "total_us": total, "count": count}
            for name, total, count in tracer.wall_phase_totals()
        ]
    return payload


def trace_summary_payload(stats, tracer, trace_path, metrics_path):
    """Machine-readable summary printed by ``trace --json``."""
    return {
        "kind": "repro-trace-summary",
        "workload": stats.application,
        "model": stats.model,
        "makespan_ns": stats.makespan_ns,
        "num_events": len(tracer),
        "trace": trace_path,
        "metrics": metrics_path,
    }


# ----------------------------------------------------------------------
# experiment report artifacts
# ----------------------------------------------------------------------
def jsonable(value):
    """Best-effort conversion of experiment rows to JSON-safe data."""
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_experiment_report(out_dir, name, rows, elapsed_s):
    """Write one experiment's rows as ``<out_dir>/<name>.json``."""
    path = os.path.join(out_dir, "{}.json".format(name))
    payload = {
        "experiment": name,
        "elapsed_s": elapsed_s,
        "rows": jsonable(rows),
    }
    atomic_write_text(json.dumps(payload, indent=2), path)
    return path
