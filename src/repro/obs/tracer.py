"""Event tracing in Chrome trace-event format.

:class:`Tracer` collects *span* (duration) and *instant* events and
exports them as Chrome trace-event JSON — the format understood by
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.  Two clock
domains coexist in one trace, separated by synthetic process IDs:

* **wall clock** (:data:`PID_RUNTIME`) — real host time spent in the
  launch-time pipeline (reorder, Algorithm-1 analysis, graph build,
  pattern encoding) and in each model's simulation loop.  Timestamps
  are microseconds since the tracer's construction.
* **simulated time** (:data:`PID_HOST`, :data:`PID_DEVICE`,
  :data:`PID_SM`) — the discrete-event simulator's nanosecond clock,
  converted to microseconds.  Host command-queue activity, kernel
  lifecycle phases, and per-thread-block execution each get their own
  process row.

:class:`NullTracer` is the zero-cost stand-in used when tracing is
disabled: every method is a no-op and ``enabled`` is ``False`` so hot
paths can skip even building the argument dictionaries.  Instrumented
code must never behave differently based on which tracer it holds —
tracing is observation only.
"""

import json
import time

#: wall-clock domain: launch-time pipeline and model wall time
PID_RUNTIME = 1
#: simulated time: host command-queue activity (one thread per stream)
PID_HOST = 2
#: simulated time: kernel lifecycle phases (one thread per kernel)
PID_DEVICE = 3
#: simulated time: per-TB execution (one thread per SM)
PID_SM = 4

_PROCESS_NAMES = {
    PID_RUNTIME: "runtime (wall clock)",
    PID_HOST: "host queue (simulated)",
    PID_DEVICE: "kernels (simulated)",
    PID_SM: "SMs (simulated)",
}


class _SpanHandle:
    """Context manager for one wall-clock span."""

    __slots__ = ("_tracer", "_name", "_cat", "_pid", "_tid", "_args", "_start")

    def __init__(self, tracer, name, cat, pid, tid, args):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._pid = pid
        self._tid = tid
        self._args = args

    def __enter__(self):
        self._start = self._tracer._now_us()
        return self

    def __exit__(self, exc_type, exc, tb):
        end = self._tracer._now_us()
        self._tracer.complete(
            self._name,
            self._start,
            end - self._start,
            cat=self._cat,
            pid=self._pid,
            tid=self._tid,
            args=self._args,
        )
        return False


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects trace events; export with :meth:`to_dict` / :meth:`write`."""

    enabled = True

    def __init__(self, clock=None, per_sm_counters=False):
        self._clock = clock or time.perf_counter
        #: opt-in: the device also samples per-SM ``running_tbs[sm=i]``
        #: counters (off by default to keep trace size bounded)
        self.per_sm_counters = per_sm_counters
        self._epoch = self._clock()
        self._events = []
        self._named_threads = set()
        for pid, name in _PROCESS_NAMES.items():
            self._meta("process_name", pid, 0, {"name": name})
            # sort wall clock first, then host, device, SMs
            self._meta("process_sort_index", pid, 0, {"sort_index": pid})

    # ------------------------------------------------------------------
    def _now_us(self):
        return (self._clock() - self._epoch) * 1e6

    def _meta(self, name, pid, tid, args):
        self._events.append(
            {"name": name, "ph": "M", "ts": 0, "pid": pid, "tid": tid, "args": args}
        )

    def _event(self, name, ph, ts, pid, tid, cat, args, **extra):
        event = {
            "name": name,
            "ph": ph,
            "ts": round(float(ts), 3),
            "pid": pid,
            "tid": tid,
        }
        if cat:
            event["cat"] = cat
        if args:
            event["args"] = args
        event.update(extra)
        self._events.append(event)

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    def name_thread(self, pid, tid, name):
        """Label one (pid, tid) row; repeated calls are deduplicated."""
        key = (pid, tid)
        if key in self._named_threads:
            return
        self._named_threads.add(key)
        self._meta("thread_name", pid, tid, {"name": name})

    # ------------------------------------------------------------------
    # wall-clock spans
    # ------------------------------------------------------------------
    def span(self, name, cat="", pid=PID_RUNTIME, tid=0, args=None):
        """Context manager measuring a wall-clock duration event."""
        return _SpanHandle(self, name, cat, pid, tid, args)

    # ------------------------------------------------------------------
    # explicit-timestamp events (simulated clock or precomputed wall)
    # ------------------------------------------------------------------
    def complete(self, name, ts_us, dur_us, cat="", pid=PID_RUNTIME, tid=0, args=None):
        """A ``ph:"X"`` complete event at an explicit timestamp (us)."""
        self._event(
            name, "X", ts_us, pid, tid, cat, args, dur=round(float(dur_us), 3)
        )

    def sim_span(self, name, start_ns, end_ns, cat="", pid=PID_DEVICE, tid=0, args=None):
        """A complete event on the simulated clock (nanosecond inputs)."""
        self.complete(
            name,
            start_ns / 1e3,
            max(0.0, (end_ns - start_ns) / 1e3),
            cat=cat,
            pid=pid,
            tid=tid,
            args=args,
        )

    def instant(self, name, ts_us=None, cat="", pid=PID_RUNTIME, tid=0, args=None):
        """A ``ph:"i"`` instant event (thread-scoped)."""
        if ts_us is None:
            ts_us = self._now_us()
        self._event(name, "i", ts_us, pid, tid, cat, args, s="t")

    def counter(self, name, values, ts_us=None, cat="", pid=PID_DEVICE, tid=0):
        """A ``ph:"C"`` counter sample; ``values`` maps series to value."""
        if ts_us is None:
            ts_us = self._now_us()
        self._event(name, "C", ts_us, pid, tid, cat, dict(values))

    def async_begin(self, name, ts_us, event_id, cat="", pid=PID_SM, tid=0, args=None):
        """Async begin (``ph:"b"``): overlapping spans on one row."""
        self._event(name, "b", ts_us, pid, tid, cat, args, id=str(event_id))

    def async_end(self, name, ts_us, event_id, cat="", pid=PID_SM, tid=0):
        self._event(name, "e", ts_us, pid, tid, cat, None, id=str(event_id))

    def flow(self, name, ts_us, flow_id, phase, cat="", pid=PID_RUNTIME,
             tid=0, args=None):
        """A flow event (``ph:"s"/"t"/"f"``): Perfetto draws arrows
        between flow points sharing ``flow_id``, letting one logical
        chain (e.g. the critical path) span process/thread rows.

        ``phase`` is ``"begin"``, ``"step"``, or ``"end"``.  The ``"f"``
        end event carries ``bp:"e"`` so the final arrow binds to the
        enclosing slice rather than the next one.
        """
        ph = {"begin": "s", "step": "t", "end": "f"}[phase]
        extra = {"id": str(flow_id)}
        if ph == "f":
            extra["bp"] = "e"
        self._event(name, ph, ts_us, pid, tid, cat, args, **extra)

    # ------------------------------------------------------------------
    # inspection / export
    # ------------------------------------------------------------------
    def events(self, ph=None, pid=None, cat_prefix=None):
        """The recorded events, optionally filtered."""
        out = []
        for event in self._events:
            if ph is not None and event["ph"] != ph:
                continue
            if pid is not None and event["pid"] != pid:
                continue
            if cat_prefix is not None and not event.get("cat", "").startswith(
                cat_prefix
            ):
                continue
            out.append(event)
        return out

    def __len__(self):
        return len(self._events)

    def wall_phase_totals(self, cat_prefix="", pid=PID_RUNTIME):
        """Aggregate complete-event durations by name — blame input.

        Returns ``[(name, total_us, count), ...]`` sorted by descending
        total.  Nested spans each contribute their own full duration
        (like ``systemd-analyze blame``, attribution is per unit, not
        exclusive).
        """
        totals = {}
        for event in self.events(ph="X", pid=pid, cat_prefix=cat_prefix):
            total, count = totals.get(event["name"], (0.0, 0))
            totals[event["name"]] = (total + event.get("dur", 0.0), count + 1)
        rows = [
            (name, total, count) for name, (total, count) in totals.items()
        ]
        rows.sort(key=lambda row: (-row[1], row[0]))
        return rows

    def to_dict(self):
        """Chrome trace-event JSON object form."""
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.obs.Tracer",
                "clock_domains": {
                    str(pid): name for pid, name in _PROCESS_NAMES.items()
                },
            },
        }

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path):
        from repro.obs.report import atomic_write_text

        atomic_write_text(self.to_json(), path)
        return path


class NullTracer:
    """No-op tracer with the full :class:`Tracer` API surface."""

    enabled = False
    per_sm_counters = False

    def name_thread(self, pid, tid, name):
        pass

    def span(self, name, cat="", pid=PID_RUNTIME, tid=0, args=None):
        return _NULL_SPAN

    def complete(self, name, ts_us, dur_us, cat="", pid=PID_RUNTIME, tid=0, args=None):
        pass

    def sim_span(self, name, start_ns, end_ns, cat="", pid=PID_DEVICE, tid=0, args=None):
        pass

    def instant(self, name, ts_us=None, cat="", pid=PID_RUNTIME, tid=0, args=None):
        pass

    def counter(self, name, values, ts_us=None, cat="", pid=PID_DEVICE, tid=0):
        pass

    def async_begin(self, name, ts_us, event_id, cat="", pid=PID_SM, tid=0, args=None):
        pass

    def async_end(self, name, ts_us, event_id, cat="", pid=PID_SM, tid=0):
        pass

    def flow(self, name, ts_us, flow_id, phase, cat="", pid=PID_RUNTIME,
             tid=0, args=None):
        pass

    def events(self, ph=None, pid=None, cat_prefix=None):
        return []

    def __len__(self):
        return 0

    def wall_phase_totals(self, cat_prefix="", pid=PID_RUNTIME):
        return []


#: shared no-op instance — the default everywhere tracing is optional
NULL_TRACER = NullTracer()
