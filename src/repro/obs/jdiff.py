"""Journal differ: first-divergence forensics between two recordings.

Two journals of the same (workload, model, config) — across engine
versions, ``REPRO_FASTPATH`` modes, ``--jobs`` settings, or cache
cold/warm — must be identical event for event, because the engine is a
deterministic single-threaded event loop.  When they are not,
:func:`diff_journals` aligns the two streams and reports the *first*
diverging event with blame context: the thread block (or call/kernel)
each side scheduled, the release edge that caused it, whether the
A-side event was merely *reordered* (it appears later in B), and a
±N-event waterfall window so the surrounding schedule is visible
without opening either file.

The report is schema-versioned (``repro-jdiff-report``) and drives the
``repro jdiff`` exit code: 0 when identical, 1 on divergence.
:func:`drift_forensics` is the ``bench diff --forensics`` hook — it
re-records a drifted (workload, model) cell in-process under
``REPRO_FASTPATH=reference`` and under the current mode and diffs the
two journals, localizing same-code drift exactly and proving
cross-version drift needs a journal recorded at the old commit.
"""

import json
import os

from repro.obs.journal import canonical_line, journal_digest

JDIFF_KIND = "repro-jdiff-report"
JDIFF_SCHEMA_VERSION = 1

#: header fields whose disagreement makes two journals non-comparable
_HEADER_KEYS = ("workload", "model", "schema_version")

#: event fields that identify *what* an event is about (reorder matching)
_IDENTITY_FIELDS = ("kind", "kernel", "tb", "position", "sm")


def _side_summary(label, header, events):
    return {
        "label": label,
        "workload": header.get("workload"),
        "model": header.get("model"),
        "num_events": len(events),
        "digest": header.get("digest") or journal_digest(events),
    }


def _identity(event):
    return tuple(event.get(key) for key in _IDENTITY_FIELDS)


def describe_event(event):
    """One compact line per event, shared by text rendering and blame."""
    if event is None:
        return "(stream ended)"
    kind = event.get("kind", "?")
    bits = ["{:>12.3f}us".format(event.get("t_ns", 0.0) / 1e3), kind]
    if event.get("kernel") is not None:
        subject = "k{}".format(event["kernel"])
        if event.get("tb") is not None:
            subject += "/tb{}".format(event["tb"])
        if event.get("name"):
            subject += " ({})".format(event["name"])
        bits.append(subject)
    if event.get("position") is not None:
        bits.append("call {}{}".format(
            event["position"],
            " ({})".format(event["op"]) if event.get("op") else "",
        ))
    if event.get("sm") is not None:
        bits.append("sm={}".format(event["sm"]))
    edge = event.get("edge")
    if edge:
        bits.append("released by {}".format(_describe_edge(edge)))
    return "  ".join(bits)


def _describe_edge(edge):
    kind = edge.get("kind", "?")
    if edge.get("kernel") is not None and edge.get("tb") is not None:
        return "{} k{}/tb{}".format(kind, edge["kernel"], edge["tb"])
    if edge.get("kernel") is not None:
        return "{} k{}".format(kind, edge["kernel"])
    if edge.get("position") is not None:
        return "{} call {}".format(kind, edge["position"])
    return kind


def _changed_fields(a_event, b_event):
    if a_event is None or b_event is None:
        return []
    keys = sorted(set(a_event) | set(b_event))
    return [key for key in keys if a_event.get(key) != b_event.get(key)]


def _find_reorder(event, other_events, start):
    """Where (if anywhere) ``event`` shows up later in the other stream.

    Matches on the identity fields only — a reordered event keeps its
    subject (same TB, same call) but lands at a different seq/time.
    """
    if event is None:
        return None
    wanted = _identity(event)
    for j in range(start, len(other_events)):
        if _identity(other_events[j]) == wanted:
            return j
    return None


def _blame(a_event, b_event, a_events, b_events, index):
    """Name what diverged: the subject, the edges, reorder evidence."""
    blame = {
        "a": describe_event(a_event),
        "b": describe_event(b_event),
    }
    changed = _changed_fields(a_event, b_event)
    if a_event is None or b_event is None:
        longer, shorter = ("A", "B") if b_event is None else ("B", "A")
        blame["summary"] = (
            "{} ends at event {} while {} continues — "
            "the runs scheduled different amounts of work".format(
                shorter, index, longer
            )
        )
        return blame
    if _identity(a_event) == _identity(b_event):
        blame["summary"] = (
            "same event, different fields {}: the schedules agree on "
            "what ran but not on {}".format(
                changed, "its timing" if changed == ["t_ns"] else "how"
            )
        )
        return blame
    a_in_b = _find_reorder(a_event, b_events, index + 1)
    b_in_a = _find_reorder(b_event, a_events, index + 1)
    parts = []
    if a_in_b is not None:
        parts.append(
            "A's event reappears at seq {} in B (reordered {} later)".format(
                a_in_b, a_in_b - index
            )
        )
    if b_in_a is not None:
        parts.append(
            "B's event reappears at seq {} in A (reordered {} later)".format(
                b_in_a, b_in_a - index
            )
        )
    if not parts:
        parts.append("neither event appears in the other stream")
    blame["summary"] = "; ".join(parts)
    if a_in_b is not None:
        blame["a_reordered_to"] = a_in_b
    if b_in_a is not None:
        blame["b_reordered_to"] = b_in_a
    return blame


def diff_journals(a_header, a_events, b_header, b_events,
                  window=8, a_label="A", b_label="B"):
    """Compare two journals; returns the ``repro-jdiff-report`` dict.

    ``window`` bounds the waterfall context on each side of the first
    divergence.  Identical journals produce ``identical: True`` and no
    ``first_divergence`` entry.
    """
    header_mismatches = []
    for key in _HEADER_KEYS:
        if a_header.get(key) != b_header.get(key):
            header_mismatches.append(
                "{}: {!r} vs {!r}".format(
                    key, a_header.get(key), b_header.get(key)
                )
            )
    a_opts = a_header.get("options") or {}
    b_opts = b_header.get("options") or {}
    for key in sorted(set(a_opts) | set(b_opts)):
        if a_opts.get(key) != b_opts.get(key):
            header_mismatches.append(
                "options.{}: {!r} vs {!r}".format(
                    key, a_opts.get(key), b_opts.get(key)
                )
            )

    common = min(len(a_events), len(b_events))
    divergence_at = None
    for i in range(common):
        if canonical_line(a_events[i]) != canonical_line(b_events[i]):
            divergence_at = i
            break
    if divergence_at is None and len(a_events) != len(b_events):
        divergence_at = common

    report = {
        "kind": JDIFF_KIND,
        "schema_version": JDIFF_SCHEMA_VERSION,
        "a": _side_summary(a_label, a_header, a_events),
        "b": _side_summary(b_label, b_header, b_events),
        "header_mismatches": header_mismatches,
        "identical": divergence_at is None and not header_mismatches,
        "num_common_prefix": (
            divergence_at if divergence_at is not None else common
        ),
        "first_divergence": None,
    }
    if divergence_at is not None:
        i = divergence_at
        a_event = a_events[i] if i < len(a_events) else None
        b_event = b_events[i] if i < len(b_events) else None
        report["first_divergence"] = {
            "index": i,
            "a_event": a_event,
            "b_event": b_event,
            "changed_fields": _changed_fields(a_event, b_event),
            "blame": _blame(a_event, b_event, a_events, b_events, i),
            "window": {
                "before": a_events[max(0, i - window):i],
                "a_after": a_events[i:i + window],
                "b_after": b_events[i:i + window],
            },
        }
    return report


def validate_jdiff_report(report):
    """Structural validation; returns problem strings."""
    errors = []
    if not isinstance(report, dict):
        return ["report: expected a JSON object"]
    if report.get("kind") != JDIFF_KIND:
        errors.append("kind: expected {!r}".format(JDIFF_KIND))
    if report.get("schema_version") != JDIFF_SCHEMA_VERSION:
        errors.append(
            "schema_version: expected {}".format(JDIFF_SCHEMA_VERSION)
        )
    for side in ("a", "b"):
        if not isinstance(report.get(side), dict):
            errors.append("{}: missing or not an object".format(side))
    if not isinstance(report.get("identical"), bool):
        errors.append("identical: missing or not a boolean")
    divergence = report.get("first_divergence")
    if report.get("identical") and divergence is not None:
        errors.append("identical report carries a first_divergence")
    if divergence is not None:
        if not isinstance(divergence, dict):
            errors.append("first_divergence: not an object")
        elif not isinstance(divergence.get("index"), int):
            errors.append("first_divergence.index: missing or not an int")
    return errors


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def format_jdiff(report, window=None):
    """Human-readable first-divergence waterfall."""
    a, b = report["a"], report["b"]
    lines = [
        "jdiff: {} ({} x {}, {} events)".format(
            a["label"], a["workload"], a["model"], a["num_events"]
        ),
        "   vs: {} ({} x {}, {} events)".format(
            b["label"], b["workload"], b["model"], b["num_events"]
        ),
    ]
    for mismatch in report["header_mismatches"]:
        lines.append("  header mismatch: {}".format(mismatch))
    if report["identical"]:
        lines.append("  identical: {} events, digest {}".format(
            a["num_events"], a["digest"]
        ))
        return "\n".join(lines)
    divergence = report["first_divergence"]
    if divergence is None:
        lines.append(
            "  event streams identical; only headers differ (see above)"
        )
        return "\n".join(lines)
    i = divergence["index"]
    lines.append(
        "  first divergence at event {} (common prefix: {} events):".format(
            i, report["num_common_prefix"]
        )
    )
    before = divergence["window"]["before"]
    if window is not None:
        before = before[-window:] if window else []
    for event in before:
        lines.append("    = {:>6}  {}".format(
            event.get("seq", "?"), describe_event(event)
        ))
    lines.append("    A>{:>6}  {}".format(i, divergence["blame"]["a"]))
    lines.append("    B>{:>6}  {}".format(i, divergence["blame"]["b"]))
    if divergence["changed_fields"]:
        lines.append(
            "  changed fields: {}".format(
                ", ".join(divergence["changed_fields"])
            )
        )
    lines.append("  blame: {}".format(divergence["blame"]["summary"]))
    a_after = divergence["window"]["a_after"][1:]
    b_after = divergence["window"]["b_after"][1:]
    if window is not None:
        a_after, b_after = a_after[:window], b_after[:window]
    if a_after:
        lines.append("  A waterfall after:")
        for event in a_after:
            lines.append("      {:>6}  {}".format(
                event.get("seq", "?"), describe_event(event)
            ))
    if b_after:
        lines.append("  B waterfall after:")
        for event in b_after:
            lines.append("      {:>6}  {}".format(
                event.get("seq", "?"), describe_event(event)
            ))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# bench diff --forensics
# ----------------------------------------------------------------------
def drift_forensics(workload, model, window=8):
    """Re-record one drifted bench cell and localize the divergence.

    Records two in-process journals for (workload, model): one under
    ``REPRO_FASTPATH=reference`` (the scalar oracle graph builder) and
    one under the current/ambient mode.  Identical journals prove the
    engine is internally consistent *on this code* — the drift between
    the two bench reports then comes from code changes, and the fix is
    to record a journal at each commit and jdiff those.  A divergence
    here is localized to the exact first event, TB, and edge.
    """
    from repro.analysis.fastpath import FASTPATH_ENV
    from repro.obs.journal import record_run

    saved = os.environ.get(FASTPATH_ENV)
    try:
        os.environ[FASTPATH_ENV] = "reference"
        reference, _stats = record_run(workload, model)
    finally:
        if saved is None:
            os.environ.pop(FASTPATH_ENV, None)
        else:
            os.environ[FASTPATH_ENV] = saved
    current, _stats = record_run(workload, model)
    return diff_journals(
        reference.header(), reference.events,
        current.header(), current.events,
        window=window,
        a_label="{} x {} [REPRO_FASTPATH=reference]".format(workload, model),
        b_label="{} x {} [current mode]".format(workload, model),
    )


def load_journal_file(path):
    """CLI-facing loader (re-exported so the CLI imports one module)."""
    from repro.obs.journal import load_journal

    return load_journal(path)


def _selftest(argv=None):  # pragma: no cover - manual smoke helper
    from repro.obs.journal import record_run

    a, _ = record_run("mvt")
    b, _ = record_run("mvt")
    report = diff_journals(a.header(), a.events, b.header(), b.events)
    print(json.dumps({"identical": report["identical"]}))


if __name__ == "__main__":  # pragma: no cover
    _selftest()
