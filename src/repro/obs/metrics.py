"""Metrics registry: counters, gauges, and running-stat histograms.

A :class:`MetricsRegistry` is a flat, name-keyed bag of instruments.
Simulation components increment counters and observe histograms as they
work; :meth:`MetricsRegistry.snapshot` freezes everything into a plain
dictionary for the JSON sidecar written next to a trace.

Like the tracer, there is a zero-cost no-op twin
(:class:`NullMetrics`): its instrument accessors return one shared
object whose mutators do nothing, so instrumented code reads
identically whether metrics are collected or not.  Histograms keep
running statistics (count/total/min/max) plus a bounded reservoir of
samples, so observation cost is O(1) and memory stays bounded
regardless of run size while tail percentiles (p50/p95/p99) remain
quotable in bench reports and ``blame`` output.
"""

import json
import random


def percentile(sorted_values, q):
    """Linear-interpolation percentile of an already-sorted sequence.

    The single quantile definition shared by histogram summaries,
    :meth:`repro.sim.stats.RunStats.stall_quartiles`, and the bench
    runner's wall-clock percentile blocks.
    """
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount=1.0):
        self.value += amount


class Gauge:
    """Last-write-wins sample."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = float(value)

    def set_max(self, value):
        self.value = max(self.value, float(value))


class Histogram:
    """Running statistics plus a bounded sample reservoir.

    Exact count/total/min/max/mean are maintained incrementally; a
    reservoir of up to ``reservoir_size`` samples (algorithm R, seeded
    deterministically so identical observation sequences always yield
    identical percentiles) supports approximate p50/p95/p99.  Below
    ``reservoir_size`` observations the percentiles are exact.
    """

    __slots__ = ("count", "total", "min", "max", "_capacity", "_samples", "_rng")

    #: default reservoir capacity — memory stays bounded for any run size
    RESERVOIR_SIZE = 4096

    def __init__(self, reservoir_size=None):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self._capacity = self.RESERVOIR_SIZE if reservoir_size is None else reservoir_size
        self._samples = []
        # fixed seed: same observations -> same reservoir -> same percentiles
        self._rng = random.Random(0x5EED)

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < self._capacity:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._capacity:
                self._samples[slot] = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    @property
    def num_samples(self):
        """Samples currently held in the reservoir (<= count)."""
        return len(self._samples)

    def percentile(self, q):
        """Reservoir percentile at quantile ``q`` (``None`` when empty)."""
        if not self._samples:
            return None
        return percentile(sorted(self._samples), q)

    def summary(self):
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": percentile(ordered, 0.50) if ordered else None,
            "p95": percentile(ordered, 0.95) if ordered else None,
            "p99": percentile(ordered, 0.99) if ordered else None,
        }


class MetricsRegistry:
    """Get-or-create instrument store keyed by dotted names."""

    enabled = True

    def __init__(self):
        self._instruments = {}

    def _get(self, name, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                "metric {!r} is a {}, not a {}".format(
                    name, type(instrument).__name__, kind.__name__
                )
            )
        return instrument

    def counter(self, name) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name) -> Histogram:
        return self._get(name, Histogram)

    # convenience mutators ---------------------------------------------
    def inc(self, name, amount=1.0):
        self.counter(name).inc(amount)

    def set_gauge(self, name, value):
        self.gauge(name).set(value)

    def observe(self, name, value):
        self.histogram(name).observe(value)

    # cross-process folding --------------------------------------------
    def merge(self, snapshot):
        """Fold another registry's :meth:`snapshot` into this one.

        The contract parallel workers rely on (``--jobs N``): each
        worker process accumulates into its own registry, ships the
        snapshot home, and the parent *merges* — counters are summed
        (never clobbered), gauges keep the maximum (the only order-
        independent choice for last-write-wins instruments), histograms
        fold their exact running statistics (count/total/min/max).
        Histogram reservoirs are not transferable through a summary, so
        percentiles over merged histograms reflect only locally observed
        samples; bench percentile blocks are computed per-cell in the
        worker for exactly that reason.
        """
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set_max(value)
        for name, summary in (snapshot.get("histograms") or {}).items():
            if not summary or not summary.get("count"):
                continue
            hist = self.histogram(name)
            hist.count += summary["count"]
            hist.total += summary["total"]
            if summary.get("min") is not None:
                hist.min = (
                    summary["min"] if hist.min is None
                    else min(hist.min, summary["min"])
                )
            if summary.get("max") is not None:
                hist.max = (
                    summary["max"] if hist.max is None
                    else max(hist.max, summary["max"])
                )
        return self

    # export -----------------------------------------------------------
    def snapshot(self):
        """Freeze to ``{"counters": ..., "gauges": ..., "histograms": ...}``."""
        counters, gauges, histograms = {}, {}, {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.summary()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def to_json(self, indent=2):
        return json.dumps(self.snapshot(), indent=indent)

    def write(self, path):
        from repro.obs.report import atomic_write_text

        atomic_write_text(self.to_json(), path)
        return path


class _NullInstrument:
    """Stands in for Counter, Gauge, and Histogram at once."""

    __slots__ = ()
    value = 0.0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0
    num_samples = 0

    def inc(self, amount=1.0):
        pass

    def percentile(self, q):
        return None

    def set(self, value):
        pass

    def set_max(self, value):
        pass

    def observe(self, value):
        pass

    def summary(self):
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """No-op registry with the full :class:`MetricsRegistry` API."""

    enabled = False

    def counter(self, name):
        return _NULL_INSTRUMENT

    def gauge(self, name):
        return _NULL_INSTRUMENT

    def histogram(self, name):
        return _NULL_INSTRUMENT

    def inc(self, name, amount=1.0):
        pass

    def set_gauge(self, name, value):
        pass

    def observe(self, name, value):
        pass

    def merge(self, snapshot):
        return self

    def snapshot(self):
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self, indent=2):
        return json.dumps(self.snapshot(), indent=indent)

    def write(self, path):
        from repro.obs.report import atomic_write_text

        atomic_write_text(self.to_json(), path)
        return path


#: shared no-op instance — the default everywhere metrics are optional
NULL_METRICS = NullMetrics()
