"""Metrics registry: counters, gauges, and running-stat histograms.

A :class:`MetricsRegistry` is a flat, name-keyed bag of instruments.
Simulation components increment counters and observe histograms as they
work; :meth:`MetricsRegistry.snapshot` freezes everything into a plain
dictionary for the JSON sidecar written next to a trace.

Like the tracer, there is a zero-cost no-op twin
(:class:`NullMetrics`): its instrument accessors return one shared
object whose mutators do nothing, so instrumented code reads
identically whether metrics are collected or not.  Histograms keep
running statistics (count/total/min/max) rather than raw samples, so
observation cost is O(1) and bounded regardless of run size.
"""

import json


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount=1.0):
        self.value += amount


class Gauge:
    """Last-write-wins sample."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = float(value)

    def set_max(self, value):
        self.value = max(self.value, float(value))


class Histogram:
    """Running statistics over observed samples."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def summary(self):
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Get-or-create instrument store keyed by dotted names."""

    enabled = True

    def __init__(self):
        self._instruments = {}

    def _get(self, name, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                "metric {!r} is a {}, not a {}".format(
                    name, type(instrument).__name__, kind.__name__
                )
            )
        return instrument

    def counter(self, name) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name) -> Histogram:
        return self._get(name, Histogram)

    # convenience mutators ---------------------------------------------
    def inc(self, name, amount=1.0):
        self.counter(name).inc(amount)

    def set_gauge(self, name, value):
        self.gauge(name).set(value)

    def observe(self, name, value):
        self.histogram(name).observe(value)

    # export -----------------------------------------------------------
    def snapshot(self):
        """Freeze to ``{"counters": ..., "gauges": ..., "histograms": ...}``."""
        counters, gauges, histograms = {}, {}, {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.summary()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def to_json(self, indent=2):
        return json.dumps(self.snapshot(), indent=indent)

    def write(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_json())
        return path


class _NullInstrument:
    """Stands in for Counter, Gauge, and Histogram at once."""

    __slots__ = ()
    value = 0.0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0

    def inc(self, amount=1.0):
        pass

    def set(self, value):
        pass

    def set_max(self, value):
        pass

    def observe(self, value):
        pass

    def summary(self):
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """No-op registry with the full :class:`MetricsRegistry` API."""

    enabled = False

    def counter(self, name):
        return _NULL_INSTRUMENT

    def gauge(self, name):
        return _NULL_INSTRUMENT

    def histogram(self, name):
        return _NULL_INSTRUMENT

    def inc(self, name, amount=1.0):
        pass

    def set_gauge(self, name, value):
        pass

    def observe(self, name, value):
        pass

    def snapshot(self):
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def to_json(self, indent=2):
        return json.dumps(self.snapshot(), indent=indent)

    def write(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_json())
        return path


#: shared no-op instance — the default everywhere metrics are optional
NULL_METRICS = NullMetrics()
