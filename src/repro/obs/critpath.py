"""Critical-path profiling: per-TB provenance, makespan attribution,
and what-if speedup bounds.

The discrete-event engine can carry a :class:`ProvenanceRecorder`
(``model.run(plan, provenance=...)``).  Recording is observation only:
for every thread block the engine notes *which edge released it* —

* **dependency** — the last-finishing parent thread block resolved its
  parent counter (Dependency List Buffer behaviour);
* **occupancy**  — the block was ready but waited for an SM slot; the
  recorded source is the retiring block whose slot it took;
* **launch**     — the block became dispatchable when its own kernel's
  launch overhead finished;
* **barrier**    — an in-order kernel *completion* (grandparent
  barriers, cross-stream dependencies, coarse kernel-level blocking);
* **input**      — a non-kernel data prerequisite (e.g. an H2D copy)
  completed;
* **host**       — the releasing event was the host enqueueing a call.

From those records :func:`extract_critical_path` walks the last-arrival
blame graph *backwards* from the makespan-determining activity.  The
walk emits contiguous segments ``[t0, t1]`` covering ``[0, makespan]``,
each blamed on one component, so the **hierarchical makespan
attribution** (:data:`COMPONENT_KEYS`) sums to the makespan by
construction — a per-workload generalization of the paper's Fig. 11.

:func:`what_if_bounds` replays the recorded DAG under perturbed
parameters (zero launch overhead, infinite SMs, dependencies dropped)
on the *timing* engine only — no functional re-simulation — and
reports an optimistic speedup bound per knob.

Import note: this module must not be imported from
``repro.obs.__init__`` — the engine imports ``repro.obs`` at module
load, and the what-if analyzer imports the engine (lazily, inside the
function) to replay plans.
"""

import bisect
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.host.api import KernelLaunchCall, MallocCall, MemcpyD2H, MemcpyH2D
from repro.obs.tracer import PID_DEVICE, PID_HOST, PID_SM

CRITPATH_KIND = "repro-critpath-report"
CRITPATH_SCHEMA_VERSION = 1

#: attribution buckets; every critical-path segment lands in exactly one
COMPONENT_KEYS = (
    "exec",        # thread blocks executing on SMs
    "launch",      # kernel launch overhead on the launch engine
    "dependency",  # waiting on parent thread blocks (non-contiguous gaps)
    "occupancy",   # ready blocks waiting for an SM slot
    "barrier",     # in-order completion / grandparent / cross-stream waits
    "copy",        # host<->device memory transfers
    "host",        # host API issue cost and host-side bookkeeping
    "other",       # unexplained gaps (defensive; should stay ~0)
)

#: what-if knobs, each an independent optimistic relaxation
WHATIF_KNOBS = ("zero_launch", "infinite_sms", "no_dependencies", "ideal")

#: float-time matching tolerance (ns); event times are exact floats, but
#: derived anchors (enqueue - api cost) can carry rounding error
_EPS = 1e-3


# ----------------------------------------------------------------------
# provenance records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EdgeRef:
    """The releasing edge of one scheduling decision."""

    kind: str                      # one of the kinds documented above
    kernel: Optional[int] = None   # releasing kernel (dependency/launch/...)
    tb: Optional[int] = None       # releasing thread block (dependency/occupancy)
    position: Optional[int] = None  # releasing API-call position (input/host)

    def as_dict(self):
        out = {"kind": self.kind}
        if self.kernel is not None:
            out["kernel"] = self.kernel
        if self.tb is not None:
            out["tb"] = self.tb
        if self.position is not None:
            out["position"] = self.position
        return out


@dataclass(frozen=True)
class TBStart:
    """Start-reason record for one thread block."""

    ready_push_ns: float   # when the block entered the ready queue
    ready_edge: EdgeRef    # what pushed it there
    start_ns: float        # when it was placed on an SM
    release_edge: EdgeRef  # ready_edge, or an occupancy edge if it waited


def _edge_from_ctx(ctx, waited=False):
    """Map an engine event context tuple to an :class:`EdgeRef`.

    ``waited=True`` marks a dispatch that happened strictly after the
    ready push — the releasing resource is an SM slot, so the edge kind
    becomes ``occupancy`` (annotated with whatever freed the slot).
    """
    kind, rest = (ctx[0], ctx[1:]) if ctx else ("host", ())
    if waited:
        if kind == "tb_finish":
            return EdgeRef("occupancy", kernel=rest[0], tb=rest[1])
        if kind in ("launch", "completion"):
            return EdgeRef("occupancy", kernel=rest[0])
        return EdgeRef("occupancy")
    if kind == "tb_finish":
        return EdgeRef("dependency", kernel=rest[0], tb=rest[1])
    if kind == "launch":
        return EdgeRef("launch", kernel=rest[0])
    if kind == "completion":
        return EdgeRef("barrier", kernel=rest[0])
    if kind == "call":
        return EdgeRef("input", position=rest[0])
    if kind == "enqueue":
        return EdgeRef("host", position=rest[0])
    return EdgeRef("host")


class ProvenanceRecorder:
    """Observation-only capture of the engine's scheduling decisions.

    The engine calls the ``note_*`` hooks while it runs and
    :meth:`finalize` when the run completes; nothing here feeds back
    into the simulation (``RunStats.simulated_signature()`` is
    byte-identical with recording on or off — tests assert it).
    """

    def __init__(self):
        self.tb_starts: Dict[Tuple[int, int], TBStart] = {}
        self.kernel_launch_trigger: Dict[int, Tuple[float, EdgeRef]] = {}
        self.call_enqueued_ns: List[float] = []
        self.call_done_ns: List[float] = []
        self.call_start_ns: Dict[int, float] = {}
        self.options = None
        self._ready: Dict[Tuple[int, int], Tuple[float, EdgeRef]] = {}

    # -- engine-facing hooks -------------------------------------------
    def begin(self, engine):
        self.options = engine.opts

    def note_call_start(self, position, now):
        self.call_start_ns[position] = now

    def note_launch_trigger(self, kernel_index, now, ctx):
        self.kernel_launch_trigger[kernel_index] = (now, _edge_from_ctx(ctx))

    def note_ready(self, kernel_index, tb, now, ctx):
        self._ready[(kernel_index, tb)] = (now, _edge_from_ctx(ctx))

    def note_start(self, kernel_index, tb, now, ctx):
        ready = self._ready.pop((kernel_index, tb), None)
        if ready is None:
            ready = (now, _edge_from_ctx(ctx))
        ready_ns, ready_edge = ready
        if now - ready_ns <= _EPS:
            release = ready_edge
        else:
            release = _edge_from_ctx(ctx, waited=True)
        self.tb_starts[(kernel_index, tb)] = TBStart(
            ready_push_ns=ready_ns,
            ready_edge=ready_edge,
            start_ns=now,
            release_edge=release,
        )

    def finalize(self, engine):
        self.call_enqueued_ns = list(engine.call_enqueued_ns)
        self.call_done_ns = list(engine.call_done_ns)

    # -- summaries ------------------------------------------------------
    def release_edge_counts(self):
        """How many thread blocks each edge kind released (whole run)."""
        counts = {}
        for start in self.tb_starts.values():
            kind = start.release_edge.kind
            counts[kind] = counts.get(kind, 0) + 1
        return counts


# ----------------------------------------------------------------------
# the backward walk
# ----------------------------------------------------------------------
class _Walker:
    """Backward walk over the last-arrival blame graph.

    Nodes are tuples: ``("call", p)``, ``("host_issue", p)``,
    ``("kernel_launch", ki)``, ``("kernel_complete", ki)``,
    ``("tb", ki, tb)``.  The cursor starts at the makespan and only
    moves toward zero; every handler emits the segments that cover the
    interval it consumed, so the emitted segments tile ``[0, makespan]``.
    """

    def __init__(self, stats, plan, prov):
        self.stats = stats
        self.plan = plan
        self.prov = prov
        self.segments = []
        self.visited = set()
        self.kr_by_index = {kr.index: kr for kr in stats.kernel_records}
        self.tb_by_key = {
            (tb.kernel_index, tb.tb_id): tb for tb in stats.tb_records
        }
        self.last_tb = {}
        for rec in stats.tb_records:
            cur = self.last_tb.get(rec.kernel_index)
            if cur is None or (rec.finish_ns, rec.tb_id) > (
                cur.finish_ns, cur.tb_id
            ):
                self.last_tb[rec.kernel_index] = rec
        self.api_call_ns = (
            prov.options.api_call_ns if prov.options is not None else 0.0
        )
        self.strict_order = (
            prov.options.strict_order if prov.options is not None else True
        )
        self._anchors = self._build_anchors()
        self._anchor_times = [a[0] for a in self._anchors]

    # -- helpers --------------------------------------------------------
    def _build_anchors(self):
        """Every known event time, for defensive gap recovery."""
        anchors = []
        for p in range(len(self.prov.call_done_ns)):
            anchors.append((self.prov.call_enqueued_ns[p], 0, ("host_issue", p)))
            anchors.append((self.prov.call_done_ns[p], 2, ("call", p)))
        for kr in self.stats.kernel_records:
            anchors.append((kr.resident_ns, 1, ("kernel_launch", kr.index)))
            anchors.append((kr.completed_ns, 1, ("kernel_complete", kr.index)))
        for rec in self.stats.tb_records:
            anchors.append(
                (rec.finish_ns, 3, ("tb", rec.kernel_index, rec.tb_id))
            )
        anchors.sort(key=lambda a: (a[0], a[1]))
        return anchors

    def _emit(self, t0, t1, kind, via, **info):
        t1 = min(t1, self.cursor)
        t0 = max(0.0, min(t0, t1))
        if t1 - t0 > 0:
            seg = {"t0_ns": t0, "t1_ns": t1, "kind": kind, "via": via}
            seg.update(info)
            self.segments.append(seg)
        self.cursor = t0

    def _node_time(self, node):
        kind = node[0]
        if kind == "call":
            return self.prov.call_done_ns[node[1]]
        if kind == "host_issue":
            return self.prov.call_enqueued_ns[node[1]]
        if kind == "kernel_launch":
            return self.kr_by_index[node[1]].resident_ns
        if kind == "kernel_complete":
            return self.kr_by_index[node[1]].completed_ns
        if kind == "tb":
            rec = self.tb_by_key.get((node[1], node[2]))
            return rec.finish_ns if rec is not None else None
        return None

    def _anchor_before(self, t):
        """Largest known event strictly before ``t`` not yet visited."""
        i = bisect.bisect_left(self._anchor_times, t - _EPS)
        while i > 0:
            i -= 1
            time, _prio, node = self._anchors[i]
            if node not in self.visited:
                return time, node
        return None, None

    def _fallback(self):
        """Recover via the nearest earlier anchor (emits an ``other``
        segment for the unexplained gap); ends the walk at zero."""
        time, node = self._anchor_before(self.cursor)
        if node is None:
            self._emit(0.0, self.cursor, "other", "unattributed")
            return None
        self._emit(time, self.cursor, "other", "gap before {}".format(node[0]))
        return node

    def _hop(self, node):
        """Move to ``node``, bridging any time gap defensively."""
        if node is None or node in self.visited:
            return self._fallback()
        t = self._node_time(node)
        if t is None or t > self.cursor + _EPS:
            return self._fallback()
        if t < self.cursor - _EPS:
            self._emit(t, self.cursor, "other", "gap before {}".format(node[0]))
        return node

    # -- node handlers --------------------------------------------------
    def _call_of_kernel(self, position):
        ki = self.plan.kernel_at_position.get(position)
        return ki

    def _handle_call(self, p):
        done = self.prov.call_done_ns[p]
        if done < self.cursor - _EPS:
            self._emit(done, self.cursor, "other", "gap before call {}".format(p))
        self.cursor = min(self.cursor, done)
        call = self.plan.order[p]
        if isinstance(call, KernelLaunchCall):
            # a kernel call's completion IS the kernel's in-order
            # completion point — hand off to the kernel-side walk
            return ("kernel_complete", self._call_of_kernel(p))
        start = self.prov.call_start_ns.get(p, done)
        via = getattr(call, "trace_name", type(call).__name__)
        if isinstance(call, (MemcpyH2D, MemcpyD2H)):
            self._emit(start, self.cursor, "copy", via,
                       node_kind="call", position=p, stream=call.stream_id)
        elif isinstance(call, MallocCall):
            self._emit(start, self.cursor, "host", via,
                       node_kind="call", position=p, stream=call.stream_id)
        else:
            self.cursor = min(self.cursor, start)  # zero-cost barrier/event
        return self._pred_of_call_start(p)

    def _pred_of_call_start(self, p):
        """What gated the start of command ``p``: its own enqueue, a data
        prerequisite, or (strict mode) the same-stream prefix."""
        candidates = [(self.prov.call_enqueued_ns[p], 0, ("host_issue", p))]
        for q in self.plan.deps[p]:
            candidates.append((self.prov.call_done_ns[q], 1, ("call", q)))
        if self.strict_order:
            stream = self.plan.order[p].stream_id
            for q in range(p):
                if self.plan.order[q].stream_id == stream:
                    candidates.append(
                        (self.prov.call_done_ns[q], 1, ("call", q))
                    )
        return self._best_candidate(candidates)

    def _best_candidate(self, candidates):
        best = None
        for time, prio, node in candidates:
            if time > self.cursor + _EPS or node in self.visited:
                continue
            if best is None or (time, prio) > (best[0], best[1]):
                best = (time, prio, node)
        if best is None:
            return self._fallback()
        return self._hop(best[2])

    def _handle_host_issue(self, p):
        enq = self.prov.call_enqueued_ns[p]
        self.cursor = min(self.cursor, enq)
        issue = max(0.0, enq - self.api_call_ns)
        call = self.plan.order[p]
        self._emit(issue, self.cursor, "host",
                   "issue {}".format(getattr(call, "trace_name",
                                             type(call).__name__)),
                   node_kind="host_issue", position=p,
                   stream=call.stream_id)
        if p == 0 or self.cursor <= _EPS:
            return None
        # the host issues sequentially: the previous issue finished at
        # enqueued[p-1]; a host-blocking call that completed exactly at
        # our issue time explains a longer wait, so it wins ties
        candidates = [
            (self.prov.call_enqueued_ns[p - 1], 0, ("host_issue", p - 1))
        ]
        for q in range(p):
            candidates.append((self.prov.call_done_ns[q], 1, ("call", q)))
        return self._best_candidate(candidates)

    def _handle_kernel_launch(self, ki):
        kr = self.kr_by_index[ki]
        if kr.resident_ns < self.cursor - _EPS:
            self._emit(kr.resident_ns, self.cursor, "other",
                       "gap before k{} launch".format(ki))
        self.cursor = min(self.cursor, kr.resident_ns)
        self._emit(kr.launch_begin_ns, self.cursor, "launch",
                   "k{:02d} {} launch".format(ki, kr.name),
                   node_kind="kernel_launch", kernel=ki)
        trigger = self.prov.kernel_launch_trigger.get(ki)
        if trigger is None:
            return self._fallback() if self.cursor > _EPS else None
        _ns, edge = trigger
        return self._hop(self._node_of_edge(edge))

    def _node_of_edge(self, edge):
        if edge.kind == "dependency" and edge.tb is not None:
            return ("tb", edge.kernel, edge.tb)
        if edge.kind == "occupancy" and edge.tb is not None:
            return ("tb", edge.kernel, edge.tb)
        if edge.kind == "launch":
            return ("kernel_launch", edge.kernel)
        if edge.kind == "barrier":
            return ("kernel_complete", edge.kernel)
        if edge.kind == "input":
            return ("call", edge.position)
        if edge.kind == "host" and edge.position is not None:
            return ("host_issue", edge.position)
        return None

    def _handle_kernel_complete(self, ki):
        kr = self.kr_by_index[ki]
        if kr.completed_ns < self.cursor - _EPS:
            self._emit(kr.completed_ns, self.cursor, "other",
                       "gap before k{} completion".format(ki))
        self.cursor = min(self.cursor, kr.completed_ns)
        if kr.all_tbs_done_ns >= kr.completed_ns - _EPS:
            rec = self.last_tb.get(ki)
            if rec is not None:
                return self._hop(("tb", ki, rec.tb_id))
            return self._fallback() if self.cursor > _EPS else None
        # drained earlier but completed now: the in-order barrier — its
        # completion time equals the predecessor's (same cascade event)
        prev = self.plan.kernels[ki].chain_prev
        if prev is not None:
            return self._hop(("kernel_complete", prev))
        return self._fallback() if self.cursor > _EPS else None

    def _handle_tb(self, ki, tb):
        rec = self.tb_by_key.get((ki, tb))
        if rec is None:
            return self._fallback()
        if rec.finish_ns < self.cursor - _EPS:
            self._emit(rec.finish_ns, self.cursor, "other",
                       "gap before k{}/tb{}".format(ki, tb))
        self.cursor = min(self.cursor, rec.finish_ns)
        kr = self.kr_by_index.get(ki)
        name = kr.name if kr is not None else "k{}".format(ki)
        self._emit(rec.start_ns, self.cursor, "exec",
                   "k{:02d}/{} tb{}".format(ki, name, tb),
                   node_kind="tb", kernel=ki, tb=tb, sm=rec.sm)
        start = self.prov.tb_starts.get((ki, tb))
        if start is None:
            return self._fallback() if self.cursor > _EPS else None
        if start.release_edge.kind == "occupancy":
            self._emit(start.ready_push_ns, self.cursor, "occupancy",
                       "k{:02d}/tb{} waiting for an SM slot (freed by {})"
                       .format(ki, tb, _describe_edge(start.release_edge)),
                       node_kind="tb", kernel=ki, tb=tb, sm=rec.sm,
                       freed_by=start.release_edge.as_dict())
            edge = start.ready_edge
        else:
            edge = start.release_edge
        return self._hop(self._node_of_edge(edge))

    # -- entry ----------------------------------------------------------
    def _terminal(self, makespan):
        """The makespan-determining node: the latest call completion,
        else the latest kernel completion, else the latest TB finish."""
        best = None
        for p, done in enumerate(self.prov.call_done_ns):
            if done >= makespan - _EPS and (best is None or p > best[1]):
                best = (done, p)
        if best is not None:
            return ("call", best[1])
        for kr in self.stats.kernel_records:
            if kr.completed_ns >= makespan - _EPS:
                return ("kernel_complete", kr.index)
        for rec in self.stats.tb_records:
            if rec.finish_ns >= makespan - _EPS:
                return ("tb", rec.kernel_index, rec.tb_id)
        return None

    def walk(self):
        makespan = self.stats.makespan_ns
        self.cursor = makespan
        node = self._terminal(makespan)
        handlers = {
            "call": self._handle_call,
            "host_issue": self._handle_host_issue,
            "kernel_launch": self._handle_kernel_launch,
            "kernel_complete": self._handle_kernel_complete,
            "tb": self._handle_tb,
        }
        max_steps = (
            4 * (len(self.stats.tb_records) + len(self.prov.call_done_ns)
                 + 2 * len(self.stats.kernel_records)) + 64
        )
        steps = 0
        while node is not None and self.cursor > _EPS:
            steps += 1
            if steps > max_steps:
                self._emit(0.0, self.cursor, "other", "walk step limit")
                break
            if node in self.visited:
                node = self._fallback()
                continue
            self.visited.add(node)
            node = handlers[node[0]](*node[1:])
        if self.cursor > _EPS:
            self._emit(0.0, self.cursor, "other", "walk ended early")
        self.segments.reverse()  # chronological order
        return self.segments


def _describe_edge(edge):
    if edge.kernel is not None and edge.tb is not None:
        return "k{}/tb{}".format(edge.kernel, edge.tb)
    if edge.kernel is not None:
        return "k{}".format(edge.kernel)
    if edge.position is not None:
        return "call {}".format(edge.position)
    return edge.kind


def extract_critical_path(stats, plan, prov):
    """Chronological critical-path segments tiling ``[0, makespan]``.

    ``prov`` must be the :class:`ProvenanceRecorder` that observed the
    run that produced ``stats`` on ``plan``.
    """
    return _Walker(stats, plan, prov).walk()


def attribution_from_segments(segments, makespan_ns):
    """Fold segments into the component buckets; the residual from
    float summation is absorbed into ``other`` so the components sum to
    the makespan exactly."""
    attribution = {key: 0.0 for key in COMPONENT_KEYS}
    for seg in segments:
        attribution[seg["kind"]] += seg["t1_ns"] - seg["t0_ns"]
    residual = makespan_ns - sum(attribution.values())
    if abs(residual) > 0:
        attribution["other"] += residual
    return attribution


# ----------------------------------------------------------------------
# what-if analysis
# ----------------------------------------------------------------------
def what_if_bounds(plan, gpu_config, options, achieved_makespan_ns,
                   knobs=None):
    """Optimistic speedup bounds from replaying the recorded DAG.

    Each knob re-runs the *timing* engine on the already-analyzed plan
    (no functional simulation, no re-planning) with one relaxation:

    * ``zero_launch``     — launch overhead set to 0;
    * ``infinite_sms``    — occupancy limits removed
      (:class:`~repro.sim.device.UnboundedDevice`);
    * ``no_dependencies`` — TB-level and kernel-level dependency gating
      dropped (in-order completion chains are preserved);
    * ``ideal``           — all three at once.

    Scheduling is not monotone, so a perturbed replay can in corner
    cases finish *later* than the achieved run; bounds are clamped to
    the achieved makespan and flagged ``clamped`` when that happens.
    """
    from repro.models.base import ExecutionEngine
    from repro.sim.device import UnboundedDevice

    results = {}
    for knob in knobs or WHATIF_KNOBS:
        opts = options
        device = None
        if knob in ("zero_launch", "ideal"):
            opts = replace(opts, launch_overhead_ns=0.0)
        if knob in ("no_dependencies", "ideal"):
            opts = replace(opts, ignore_dependencies=True)
        if knob in ("infinite_sms", "ideal"):
            device = UnboundedDevice(gpu_config)
        engine = ExecutionEngine(plan, gpu_config, opts, device=device)
        bound = engine.run().makespan_ns
        clamped = bound > achieved_makespan_ns
        if clamped:
            bound = achieved_makespan_ns
        results[knob] = {
            "bound_makespan_ns": bound,
            "speedup_bound": (
                achieved_makespan_ns / bound if bound > 0 else 0.0
            ),
            "clamped": clamped,
        }
    return results


# ----------------------------------------------------------------------
# report construction / validation / rendering
# ----------------------------------------------------------------------
def build_report(stats, plan, prov, gpu_config, options=None, whatif=False,
                 whatif_knobs=None, max_path_segments=512):
    """The schema-versioned critpath report for one observed run."""
    segments = extract_critical_path(stats, plan, prov)
    makespan = stats.makespan_ns
    attribution = attribution_from_segments(segments, makespan)
    path_counts = {}
    for seg in segments:
        path_counts[seg["kind"]] = path_counts.get(seg["kind"], 0) + 1
    truncated = len(segments) > max_path_segments
    report = {
        "kind": CRITPATH_KIND,
        "schema_version": CRITPATH_SCHEMA_VERSION,
        "workload": stats.application,
        "model": stats.model,
        "makespan_ns": makespan,
        "attribution_ns": attribution,
        "attribution_fraction": {
            key: (value / makespan if makespan > 0 else 0.0)
            for key, value in attribution.items()
        },
        "release_edges": prov.release_edge_counts(),
        "critical_path": {
            "num_segments": len(segments),
            "path_edge_counts": path_counts,
            "truncated": truncated,
            "segments": segments[-max_path_segments:],
        },
    }
    if whatif:
        if options is None:
            raise ValueError("what-if analysis needs the model's options")
        report["whatif"] = what_if_bounds(
            plan, gpu_config, options, makespan, knobs=whatif_knobs
        )
    return report


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_critpath_report(report):
    """Structural + invariant validation; returns problem strings."""
    errors = []
    if not isinstance(report, dict):
        return ["report: expected a JSON object"]
    if report.get("kind") != CRITPATH_KIND:
        errors.append("kind: expected {!r}".format(CRITPATH_KIND))
    if report.get("schema_version") != CRITPATH_SCHEMA_VERSION:
        errors.append("schema_version: expected {}".format(
            CRITPATH_SCHEMA_VERSION))
    for key in ("workload", "model"):
        if not isinstance(report.get(key), str):
            errors.append("{}: missing or not a string".format(key))
    makespan = report.get("makespan_ns")
    if not _is_number(makespan):
        errors.append("makespan_ns: missing or not a number")
        return errors
    attribution = report.get("attribution_ns")
    if not isinstance(attribution, dict):
        errors.append("attribution_ns: missing or not an object")
        return errors
    for key in COMPONENT_KEYS:
        if not _is_number(attribution.get(key)):
            errors.append("attribution_ns.{}: missing or not a number"
                          .format(key))
    unknown = set(attribution) - set(COMPONENT_KEYS)
    if unknown:
        errors.append("attribution_ns: unknown components {}".format(
            sorted(unknown)))
    total = sum(v for v in attribution.values() if _is_number(v))
    tol = max(1e-3, 1e-9 * abs(makespan))
    if abs(total - makespan) > tol:
        errors.append(
            "attribution_ns: components sum to {} != makespan {}".format(
                total, makespan))
    fractions = report.get("attribution_fraction")
    if not isinstance(fractions, dict):
        errors.append("attribution_fraction: missing or not an object")
    path = report.get("critical_path")
    if not isinstance(path, dict) or not isinstance(
        path.get("segments"), list
    ):
        errors.append("critical_path.segments: missing or not a list")
    else:
        for i, seg in enumerate(path["segments"]):
            if not isinstance(seg, dict) or seg.get("kind") not in \
                    COMPONENT_KEYS or not _is_number(seg.get("t0_ns")) \
                    or not _is_number(seg.get("t1_ns")):
                errors.append(
                    "critical_path.segments[{}]: malformed".format(i))
                break
            if seg["t1_ns"] + 1e-6 < seg["t0_ns"]:
                errors.append(
                    "critical_path.segments[{}]: negative duration".format(i))
    whatif = report.get("whatif")
    if whatif is not None:
        if not isinstance(whatif, dict):
            errors.append("whatif: not an object")
        else:
            for knob, entry in whatif.items():
                where = "whatif.{}".format(knob)
                if not isinstance(entry, dict):
                    errors.append("{}: not an object".format(where))
                    continue
                bound = entry.get("bound_makespan_ns")
                if not _is_number(bound):
                    errors.append("{}.bound_makespan_ns: missing".format(where))
                elif bound > makespan + tol:
                    errors.append(
                        "{}: bound {} exceeds makespan {}".format(
                            where, bound, makespan))
                if not _is_number(entry.get("speedup_bound")):
                    errors.append("{}.speedup_bound: missing".format(where))
    return errors


def _bar(fraction, width=24):
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def format_critpath(report, limit=12):
    """Human-readable tree: attribution, the path tail, what-if bounds."""
    makespan = report["makespan_ns"]
    lines = [
        "critical path: {} x {} — makespan {:.1f}us".format(
            report["workload"], report["model"], makespan / 1e3
        ),
        "  makespan attribution (components sum to the makespan):",
    ]
    fractions = report["attribution_fraction"]
    for key in COMPONENT_KEYS:
        ns = report["attribution_ns"][key]
        frac = fractions[key]
        if ns == 0 and key != "exec":
            continue
        lines.append("    {:10s} {:>12.3f}us  {:6.1%}  {}".format(
            key, ns / 1e3, frac, _bar(frac)))
    edges = report.get("release_edges") or {}
    if edges:
        lines.append("  thread-block release edges (whole run): {}".format(
            ", ".join("{} {}".format(k, edges[k]) for k in sorted(edges))))
    path = report["critical_path"]
    segments = path["segments"]
    lines.append(
        "  path: {} segments{}; the {} closest to the makespan:".format(
            path["num_segments"],
            " (truncated)" if path["truncated"] else "",
            min(limit, len(segments)),
        )
    )
    for seg in segments[-limit:]:
        lines.append(
            "    {:>12.3f}..{:<12.3f}us  {:10s} {}".format(
                seg["t0_ns"] / 1e3, seg["t1_ns"] / 1e3, seg["kind"],
                seg["via"],
            )
        )
    whatif = report.get("whatif")
    if whatif:
        lines.append("  what-if speedup bounds (optimistic; see docs):")
        for knob in WHATIF_KNOBS:
            entry = whatif.get(knob)
            if entry is None:
                continue
            lines.append(
                "    {:16s} -> {:>12.3f}us  ({:.2f}x bound{})".format(
                    knob,
                    entry["bound_makespan_ns"] / 1e3,
                    entry["speedup_bound"],
                    ", clamped" if entry.get("clamped") else "",
                )
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Perfetto flow-event overlay
# ----------------------------------------------------------------------
def emit_critpath_flow(tracer, segments, flow_id="critpath"):
    """Overlay the critical path onto an existing trace as Chrome flow
    events (``ph: s/t/f``): Perfetto draws arrows connecting the
    makespan-determining chain across the host, kernel, and SM rows.

    Returns the number of flow events emitted.
    """
    if not getattr(tracer, "enabled", False):
        return 0
    points = []
    for seg in segments:
        node_kind = seg.get("node_kind")
        if node_kind == "tb":
            pid, tid = PID_SM, seg.get("sm", 0)
        elif node_kind == "kernel_launch":
            pid, tid = PID_DEVICE, seg.get("kernel", 0)
        elif node_kind in ("call", "host_issue"):
            pid, tid = PID_HOST, seg.get("stream", 0)
        else:
            continue
        points.append((seg["t0_ns"] / 1e3, pid, tid, seg))
    for i, (ts_us, pid, tid, seg) in enumerate(points):
        if i == 0:
            phase = "begin"
        elif i == len(points) - 1:
            phase = "end"
        else:
            phase = "step"
        tracer.flow(
            "critical-path", ts_us, flow_id, phase,
            cat="critpath", pid=pid, tid=tid,
            args={"kind": seg["kind"], "via": seg["via"]},
        )
    return len(points)
