"""Prometheus text-exposition rendering (version 0.0.4), shared.

PR 7 grew a hand-rolled exposition writer inside
:mod:`repro.obs.telemetry` for ``repro telemetry --prom``; the serve
daemon needs the same format for its live ``/metrics`` endpoint.  This
module is the one implementation both go through:

* :class:`PromWriter` — the line-level writer.  ``emit`` declares the
  ``# HELP`` / ``# TYPE`` header the first time a metric name appears
  and appends one sample line per call, exactly the layout (and byte
  format) the PR 7 telemetry writer produced.
* :func:`render_registry` — renders a full
  :meth:`repro.obs.MetricsRegistry.snapshot` (counters, gauges, and
  histograms) as an exposition document: counters become
  ``<ns>_<name>_total`` counter series, gauges become gauges, and
  histograms become Prometheus *summary* families (``{quantile="..."}``
  samples plus ``_sum`` / ``_count``).
* :func:`validate_exposition` — a dependency-free format checker (CI
  gates the daemon's ``/metrics`` output with it): every sample line
  must parse, carry a preceding ``# TYPE`` declaration, and use valid
  label syntax; ``HELP``/``TYPE`` may appear at most once per family.

Everything is hand-rolled so the repo stays dependency-free.
"""

import re

#: quantiles exported for histogram summaries (matches the reservoir
#: percentiles bench reports already quote)
SUMMARY_QUANTILES = ((0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99"))

VALID_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)(?: (-?\d+))?$"
)
# one label pair: name="value" with \" \\ \n escapes
_LABEL_PAIR_RE = re.compile(
    r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\\\|\\"|\\n)*)"$'
)


def escape_label_value(value):
    """Escape a raw value for use inside ``label="..."``."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def metric_name(name, namespace=None):
    """Sanitize a dotted instrument name into a metric name.

    ``serve.latency.run`` -> ``repro_serve_latency_run`` (with the
    default ``repro`` namespace).  Any character outside the metric
    alphabet becomes ``_``.
    """
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", str(name))
    if namespace:
        sanitized = "{}_{}".format(namespace, sanitized)
    if not _NAME_RE.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


class PromWriter:
    """Incremental exposition writer with once-per-family headers."""

    def __init__(self):
        self._lines = []
        self._declared = {}  # family name -> type

    def declare(self, name, help_text, metric_type="gauge"):
        """Emit ``# HELP`` / ``# TYPE`` once for a family."""
        if name not in self._declared:
            self._lines.append("# HELP {} {}".format(name, help_text))
            self._lines.append("# TYPE {} {}".format(name, metric_type))
            self._declared[name] = metric_type
        return self

    def sample(self, name, value, labels=""):
        """Append one sample line (no header bookkeeping)."""
        if labels:
            self._lines.append(
                "{}{{{}}} {}".format(name, labels, repr(float(value)))
            )
        else:
            self._lines.append("{} {}".format(name, repr(float(value))))
        return self

    def emit(self, name, help_text, value, labels="", metric_type="gauge"):
        """Declare-if-new then sample — the PR 7 telemetry idiom."""
        self.declare(name, help_text, metric_type)
        return self.sample(name, value, labels=labels)

    def render(self):
        return "\n".join(self._lines) + "\n"


def render_registry(snapshot, namespace="repro", const_labels=""):
    """Render a :meth:`MetricsRegistry.snapshot` as an exposition doc.

    ``const_labels`` (e.g. ``'service="repro-serve"'``) is attached to
    every sample.  Families are emitted in sorted-name order within
    each instrument kind, so identical snapshots render identically.
    """
    writer = PromWriter()
    for name in sorted(snapshot.get("counters") or {}):
        family = metric_name(name, namespace) + "_total"
        writer.emit(
            family,
            "Counter {}.".format(name),
            snapshot["counters"][name],
            labels=const_labels,
            metric_type="counter",
        )
    for name in sorted(snapshot.get("gauges") or {}):
        writer.emit(
            metric_name(name, namespace),
            "Gauge {}.".format(name),
            snapshot["gauges"][name],
            labels=const_labels,
            metric_type="gauge",
        )
    for name in sorted(snapshot.get("histograms") or {}):
        summary = snapshot["histograms"][name] or {}
        family = metric_name(name, namespace)
        writer.declare(
            family, "Histogram {}.".format(name), metric_type="summary"
        )
        for quantile, label in SUMMARY_QUANTILES:
            key = "p{:g}".format(quantile * 100).replace(".", "_")
            # Histogram.summary() spells them p50/p95/p99
            key = {"p50_0": "p50", "p95_0": "p95", "p99_0": "p99"}.get(
                key, key
            )
            value = summary.get(key)
            if value is None:
                continue
            pair = 'quantile="{}"'.format(label)
            labels = (
                const_labels + "," + pair if const_labels else pair
            )
            writer.sample(family, value, labels=labels)
        writer.sample(
            family + "_sum", summary.get("total") or 0.0, labels=const_labels
        )
        writer.sample(
            family + "_count", summary.get("count") or 0, labels=const_labels
        )
    return writer.render()


def _declared_family(sample_name, families):
    """Resolve a sample name to its declared family (or ``None``)."""
    if sample_name in families:
        return sample_name
    for suffix in ("_sum", "_count", "_bucket"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if families.get(base) in ("summary", "histogram"):
                return base
    return None


def _check_labels(raw):
    """Validate the inside of ``{...}``; returns an error or ``None``."""
    if raw == "":
        return "empty label braces"
    depth_guard = raw.split(",")
    # label values may themselves contain commas inside quotes, so walk
    # pairs with a small scanner instead of a naive split
    pairs, current, in_quotes, escaped = [], "", False, False
    for ch in raw:
        if escaped:
            current += ch
            escaped = False
            continue
        if ch == "\\":
            current += ch
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current += ch
            continue
        if ch == "," and not in_quotes:
            pairs.append(current)
            current = ""
            continue
        current += ch
    if in_quotes:
        return "unterminated label value quote"
    pairs.append(current)
    del depth_guard
    for pair in pairs:
        if not _LABEL_PAIR_RE.match(pair):
            return "bad label pair {!r}".format(pair)
    return None


def _check_value(raw):
    try:
        float(raw)
    except ValueError:
        return "unparseable sample value {!r}".format(raw)
    return None


def validate_exposition(text):
    """Check a text-exposition document; returns a list of errors."""
    errors = []
    if not isinstance(text, str) or not text:
        return ["document is empty"]
    if not text.endswith("\n"):
        errors.append("document must end with a newline")
    families = {}   # name -> type
    helped = set()
    sampled = set()  # families that already have samples
    for lineno, line in enumerate(text.splitlines(), start=1):
        if line == "":
            continue  # blank lines are legal separators
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # other comments are legal and ignored
                if line.startswith("# HELP") or line.startswith("# TYPE"):
                    errors.append("line {}: malformed {}".format(
                        lineno, parts[1] if len(parts) > 1 else "comment"
                    ))
                continue
            kind, name = parts[1], parts[2]
            if not _NAME_RE.match(name):
                errors.append(
                    "line {}: bad metric name {!r}".format(lineno, name)
                )
                continue
            if kind == "HELP":
                if name in helped:
                    errors.append(
                        "line {}: duplicate HELP for {}".format(lineno, name)
                    )
                helped.add(name)
            else:
                if len(parts) < 4 or parts[3] not in VALID_TYPES:
                    errors.append(
                        "line {}: bad TYPE for {}".format(lineno, name)
                    )
                    continue
                if name in families:
                    errors.append(
                        "line {}: duplicate TYPE for {}".format(lineno, name)
                    )
                if name in sampled:
                    errors.append(
                        "line {}: TYPE for {} after its samples".format(
                            lineno, name
                        )
                    )
                families[name] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            errors.append("line {}: unparseable sample {!r}".format(
                lineno, line
            ))
            continue
        name, labels, value = match.group(1), match.group(2), match.group(3)
        if labels is not None:
            label_error = _check_labels(labels)
            if label_error:
                errors.append("line {}: {}".format(lineno, label_error))
        value_error = _check_value(value)
        if value_error:
            errors.append("line {}: {}".format(lineno, value_error))
        family = _declared_family(name, families)
        if family is None:
            errors.append(
                "line {}: sample {} has no TYPE declaration".format(
                    lineno, name
                )
            )
        else:
            sampled.add(family)
    return errors
