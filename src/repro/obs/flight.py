"""The unified flight report: one self-contained HTML artifact per run.

``repro report <workload>`` performs a *single* engine run carrying all
three observation-only recorders at once — critical-path provenance,
the journal flight recorder, and the telemetry sampler — then stitches
their outputs into one shareable HTML page: telemetry timelines
(occupancy, queues, DLB/PCB) as inline SVG, per-kernel execution spans,
the critpath attribution bar, the achieved-overlap table, the idle-
bubble blame table, the journal digest, and (optionally) the latest
``bench diff`` deltas.

The page is fully self-contained — inline CSS, inline SVG, zero
external assets — so it can be attached to a CI run or an issue and
rendered anywhere.  It is written through the shared
:func:`repro.obs.report.write_text` serializer like every other
``--out`` artifact.

Import note: like the other recorders, this module must not be
imported from ``repro.obs.__init__`` — it imports the engine.
"""

import html
import json

from repro.obs.telemetry import (
    BUBBLE_BLAME_KINDS,
    TelemetrySampler,
    build_report as build_telemetry_report,
)

#: section order of the rendered page
FLIGHT_SECTIONS = (
    "summary",
    "timelines",
    "kernels",
    "critpath",
    "overlap",
    "bubbles",
    "journal",
    "bench",
)


def build_flight_data(workload, model="consumer3", build_small=False,
                      bench_dir=None):
    """Run once with every recorder attached; return the stitched data.

    Returns a dict with ``stats``, ``telemetry`` (validated report),
    ``critpath`` (validated report), ``journal_header``, ``blame_rows``
    and optionally ``bench_delta``.
    """
    # Imported lazily: the engine imports repro.obs at module load.
    from repro.core.runtime import BlockMaestroRuntime
    from repro.experiments.common import (
        _make_model,
        _model_plan_params,
        canonical_model_name,
    )
    from repro.obs.critpath import ProvenanceRecorder
    from repro.obs.critpath import build_report as build_critpath_report
    from repro.obs.journal import JournalRecorder
    from repro.obs.report import kernel_blame_rows
    from repro.workloads import get_workload

    spec = get_workload(workload)
    app = spec.build_small() if build_small else spec.build()
    model_name = canonical_model_name(model)
    reorder, window = _model_plan_params(model_name)
    plan = BlockMaestroRuntime().plan(app, reorder=reorder, window=window)
    engine_model = _make_model(model_name, None)
    prov = ProvenanceRecorder()
    journal = JournalRecorder()
    sampler = TelemetrySampler()
    stats = engine_model.run(
        plan, provenance=prov, journal=journal, telemetry=sampler
    )
    data = {
        "workload": spec.name,
        "model": model_name,
        "stats": stats,
        "telemetry": build_telemetry_report(stats, sampler),
        "critpath": build_critpath_report(
            stats, plan, prov, engine_model.gpu_config
        ),
        "journal_header": journal.header(),
        "blame_rows": kernel_blame_rows(stats),
        "bench_delta": None,
    }
    if bench_dir is not None:
        data["bench_delta"] = _bench_delta(bench_dir)
    return data


def _bench_delta(bench_dir):
    """Diff the two newest BENCH reports in ``bench_dir`` (best effort)."""
    from repro.bench.diff import diff_reports
    from repro.bench.trend import find_reports, load_reports

    paths = find_reports(bench_dir)
    reports = load_reports(paths)
    if len(reports) < 2:
        return {"note": "need two BENCH reports in {}".format(bench_dir)}
    (old_path, old), (new_path, new) = reports[-2], reports[-1]
    result = diff_reports(old, new)
    describe = lambda deltas: [delta.describe() for delta in deltas]
    return {
        "old": old_path,
        "new": new_path,
        "compared": result.compared,
        "regressions": describe(result.regressions),
        "improvements": describe(result.improvements),
        "drift": describe(result.drift),
    }


# ----------------------------------------------------------------------
# SVG helpers (inline, no external assets)
# ----------------------------------------------------------------------
_W, _H, _PAD = 720, 120, 30


def _scale(values, span):
    top = max(values) if values else 0
    return (span / top) if top > 0 else 0.0


def _step_polyline(t_ns, values, makespan_ns, color, label):
    """One step-line counter track as an SVG group."""
    if not t_ns or makespan_ns <= 0:
        return ""
    sx = (_W - 2 * _PAD) / makespan_ns
    sy = _scale(values, _H - 2 * _PAD)
    points = ["{:.1f},{:.1f}".format(_PAD, _H - _PAD)]
    previous_y = _H - _PAD
    for t, v in zip(t_ns, values):
        x = _PAD + t * sx
        y = _H - _PAD - v * sy
        points.append("{:.1f},{:.1f}".format(x, previous_y))
        points.append("{:.1f},{:.1f}".format(x, y))
        previous_y = y
    points.append("{:.1f},{:.1f}".format(_W - _PAD, previous_y))
    peak = max(values) if values else 0
    return (
        '<svg viewBox="0 0 {w} {h}" class="track">'
        '<text x="{pad}" y="14" class="tlabel">{label} (peak {peak})</text>'
        '<line x1="{pad}" y1="{base}" x2="{xend}" y2="{base}" class="axis"/>'
        '<polyline points="{points}" fill="none" stroke="{color}" '
        'stroke-width="1.5"/></svg>'
    ).format(
        w=_W, h=_H, pad=_PAD, base=_H - _PAD, xend=_W - _PAD,
        label=html.escape(label), peak=peak,
        points=" ".join(points), color=color,
    )


def _kernel_gantt(telemetry):
    """Per-kernel execution spans as horizontal bars."""
    kernels = telemetry["kernels"]
    makespan = telemetry["makespan_ns"]
    if not kernels or makespan <= 0:
        return ""
    row_h = 18
    height = 24 + row_h * len(kernels)
    sx = (_W - 160 - _PAD) / makespan
    rows = []
    for i, row in enumerate(kernels):
        y = 20 + i * row_h
        x0 = 160 + row["first_start_ns"] * sx
        width = max(
            1.0, (row["last_finish_ns"] - row["first_start_ns"]) * sx
        )
        rows.append(
            '<text x="4" y="{ty}" class="tlabel">k{index:02d} {name} '
            '(s{stream}, {tbs} TBs)</text>'
            '<rect x="{x0:.1f}" y="{ry}" width="{w:.1f}" height="12" '
            'class="kbar"/>'.format(
                ty=y + 10, index=row["index"],
                name=html.escape(str(row["name"]))[:18],
                stream=row["stream"], tbs=row["num_tbs"],
                x0=x0, ry=y, w=width,
            )
        )
    return (
        '<svg viewBox="0 0 {w} {h}" class="track" style="height:{h}px">'
        "{rows}</svg>"
    ).format(w=_W, h=height, rows="".join(rows))


# ----------------------------------------------------------------------
# HTML rendering
# ----------------------------------------------------------------------
_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 780px; color: #1a2330; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em;
     border-bottom: 1px solid #d8dee6; padding-bottom: 4px; }
table { border-collapse: collapse; width: 100%; font-size: 0.85em; }
th, td { text-align: left; padding: 3px 8px;
         border-bottom: 1px solid #edf0f4; }
th { color: #5a6472; font-weight: 600; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.cards { display: flex; flex-wrap: wrap; gap: 10px; }
.card { border: 1px solid #d8dee6; border-radius: 6px; padding: 8px 14px; }
.card .v { font-size: 1.25em; font-weight: 600; }
.card .k { font-size: 0.75em; color: #5a6472; }
svg.track { width: 100%; background: #fafbfc; border: 1px solid #edf0f4;
            border-radius: 4px; margin-bottom: 6px; }
.tlabel { font-size: 11px; fill: #5a6472; }
.axis { stroke: #c5ccd6; stroke-width: 1; }
.kbar { fill: #4a90d9; } .attr { height: 18px; display: flex;
  border-radius: 4px; overflow: hidden; margin: 6px 0; }
.attr span { display: block; height: 100%; }
.legend { font-size: 0.8em; color: #5a6472; }
.legend i { display: inline-block; width: 10px; height: 10px;
            margin-right: 4px; border-radius: 2px; }
code { background: #f2f4f7; padding: 1px 5px; border-radius: 3px;
       font-size: 0.85em; }
.ok { color: #1b7f37; } .bad { color: #b42318; }
"""

#: critpath component -> bar color (stable palette)
_COLORS = {
    "exec": "#4a90d9",
    "launch": "#e8a33d",
    "dependency": "#c75146",
    "occupancy": "#8e6cc0",
    "barrier": "#50a773",
    "copy": "#3dbdc8",
    "host": "#98a2b0",
    "other": "#d0d5dd",
}


def _card(label, value):
    return (
        '<div class="card"><div class="v">{}</div>'
        '<div class="k">{}</div></div>'
    ).format(html.escape(str(value)), html.escape(str(label)))


def _attribution_bar(critpath):
    fractions = critpath["attribution_fraction"]
    spans, legend = [], []
    for key, color in _COLORS.items():
        fraction = fractions.get(key, 0.0)
        if fraction <= 0:
            continue
        spans.append(
            '<span style="width:{:.2f}%;background:{}" title="{} {:.1%}">'
            "</span>".format(fraction * 100, color, html.escape(key), fraction)
        )
        legend.append(
            '<i style="background:{}"></i>{} {:.1%}'.format(
                color, html.escape(key), fraction
            )
        )
    return '<div class="attr">{}</div><div class="legend">{}</div>'.format(
        "".join(spans), " &nbsp; ".join(legend)
    )


def _overlap_table(telemetry):
    pairs = sorted(
        telemetry["overlap"]["pairs"],
        key=lambda pair: (-pair["overlap_ns"], pair["a"], pair["b"]),
    )
    if not pairs:
        return "<p>No kernel pairs (single-kernel workload).</p>"
    rows = []
    for pair in pairs:
        rows.append(
            "<tr><td>k{:02d} {}</td><td>k{:02d} {}</td>"
            '<td class="num">{:.3f}us</td><td class="num">{:.1%}</td>'
            '<td class="num">{:.1%}</td></tr>'.format(
                pair["a"], html.escape(str(pair["a_name"])),
                pair["b"], html.escape(str(pair["b_name"])),
                pair["overlap_ns"] / 1e3,
                pair["overlap_fraction"],
                pair["tb_overlap_fraction"],
            )
        )
    return (
        "<table><tr><th>kernel A</th><th>kernel B</th>"
        '<th class="num">overlap</th><th class="num">of min span</th>'
        '<th class="num">TBs dispatched early</th></tr>{}</table>'
    ).format("".join(rows))


def _bubble_table(telemetry):
    bubbles = telemetry["bubbles"]
    rows = []
    for blame in BUBBLE_BLAME_KINDS:
        ns = bubbles["blame_ns"].get(blame, 0.0)
        if ns <= 0:
            continue
        rows.append(
            '<tr><td>{}</td><td class="num">{:.3f}us</td></tr>'.format(
                html.escape(blame), ns / 1e3
            )
        )
    table = (
        "<table><tr><th>blamed release edge</th>"
        '<th class="num">idle time</th></tr>{}</table>'.format("".join(rows))
        if rows
        else "<p>No all-idle bubbles: the device never went idle.</p>"
    )
    return "<p>{} bubble(s), {:.3f}us total.</p>{}".format(
        bubbles["count"], bubbles["total_ns"] / 1e3, table
    )


def _bench_section(delta):
    if delta is None:
        return "<p>No bench directory supplied (use <code>--bench DIR</code>).</p>"
    if "note" in delta:
        return "<p>{}</p>".format(html.escape(delta["note"]))
    bits = [
        "<p>Compared {} cells: <code>{}</code> vs <code>{}</code>.</p>".format(
            delta["compared"],
            html.escape(str(delta["old"])),
            html.escape(str(delta["new"])),
        )
    ]
    for label, css, items in (
        ("regressions", "bad", delta["regressions"]),
        ("drift", "bad", delta["drift"]),
        ("improvements", "ok", delta["improvements"]),
    ):
        if items:
            bits.append(
                '<p class="{}">{} {}:</p><ul>{}</ul>'.format(
                    css, len(items), label,
                    "".join(
                        "<li>{}</li>".format(html.escape(item))
                        for item in items
                    ),
                )
            )
    if not (delta["regressions"] or delta["drift"]):
        bits.append('<p class="ok">No regressions, no simulated drift.</p>')
    return "".join(bits)


def render_flight_html(data):
    """Render :func:`build_flight_data` output as one standalone page."""
    telemetry = data["telemetry"]
    critpath = data["critpath"]
    utilization = telemetry["utilization"]
    series = telemetry["series"]
    header = data["journal_header"]
    cards = "".join(
        [
            _card("makespan", "{:.1f}us".format(telemetry["makespan_ns"] / 1e3)),
            _card("device busy", "{:.1%}".format(utilization["busy_fraction"])),
            _card(
                "mean occupancy",
                "{:.1f} TBs".format(utilization["mean_occupancy_tbs"]),
            ),
            _card(
                "wavefront eff.",
                "{:.2f}".format(utilization["wavefront_efficiency"]),
            ),
            _card(
                "overlap",
                "{:.1f}us".format(telemetry["overlap"]["total_overlap_ns"] / 1e3),
            ),
            _card("journal events", header["num_events"]),
        ]
    )
    makespan = telemetry["makespan_ns"]
    tracks = "".join(
        _step_polyline(series["t_ns"], series[key], makespan, color, label)
        for key, color, label in (
            ("running_tbs", "#4a90d9", "running thread blocks"),
            ("busy_sms", "#50a773", "busy SMs"),
            ("ready_queue", "#e8a33d", "ready-queue depth"),
            ("dlb_entries", "#c75146", "DLB entries"),
            ("pcb_entries", "#8e6cc0", "PCB entries"),
        )
    )
    blame_rows = "".join(
        "<tr><td>k{:02d} {}</td>"
        '<td class="num">{:.1f}</td><td class="num">{:.1f}</td>'
        '<td class="num">{:.1f}</td><td class="num">{:.1f}</td>'
        '<td class="num">{:.1f}</td></tr>'.format(
            row["index"], html.escape(str(row["name"])),
            row["queue_ns"] / 1e3, row["launch_ns"] / 1e3,
            row["stall_ns"] / 1e3, row["exec_ns"] / 1e3,
            row["drain_ns"] / 1e3,
        )
        for row in data["blame_rows"]
    )
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        "<title>repro flight report: {} / {}</title>".format(
            html.escape(data["workload"]), html.escape(data["model"])
        ),
        "<style>{}</style></head><body>".format(_CSS),
        "<h1>Flight report — <code>{}</code> under <code>{}</code></h1>".format(
            html.escape(data["workload"]), html.escape(data["model"])
        ),
        '<div class="cards">{}</div>'.format(cards),
        "<h2>Telemetry timelines</h2>",
        "<p>{} raw samples over {:.1f}us (thinned to {} points).</p>".format(
            telemetry["num_raw_samples"], makespan / 1e3,
            len(series["t_ns"]),
        ),
        tracks,
        "<h2>Kernel execution spans</h2>",
        _kernel_gantt(telemetry),
        "<h2>Critical-path attribution</h2>",
        _attribution_bar(critpath),
        "<h2>Achieved cross-kernel overlap</h2>",
        _overlap_table(telemetry),
        "<h2>Idle bubbles</h2>",
        _bubble_table(telemetry),
        "<h2>Per-kernel blame (us)</h2>",
        "<table><tr><th>kernel</th>"
        '<th class="num">queue</th><th class="num">launch</th>'
        '<th class="num">stall</th><th class="num">exec</th>'
        '<th class="num">drain</th></tr>{}</table>'.format(blame_rows),
        "<h2>Journal</h2>",
        "<p>{} events, digest <code>{}</code>, options "
        "<code>{}</code>.</p>".format(
            header["num_events"],
            html.escape(header["digest"]),
            html.escape(json.dumps(header["options"], sort_keys=True)),
        ),
        "<h2>Bench deltas</h2>",
        _bench_section(data["bench_delta"]),
        "</body></html>",
    ]
    return "".join(parts)


def write_flight_report(workload, model="consumer3", out=None,
                        build_small=False, bench_dir=None):
    """One-call entry: run, stitch, render, write via the shared writer.

    Returns ``(path, data)``; ``out=None`` defaults to
    ``flight-<workload>-<model>.html`` in the working directory.
    """
    from repro.obs.report import write_text

    data = build_flight_data(
        workload, model=model, build_small=build_small, bench_dir=bench_dir
    )
    if out is None:
        out = "flight-{}-{}.html".format(data["workload"], data["model"])
    page = render_flight_html(data)
    write_text(page, out)
    return out, data
