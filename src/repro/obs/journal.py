"""Execution journal: a deterministic flight recorder for the engine.

The discrete-event engine can carry a :class:`JournalRecorder`
(``model.run(plan, journal=...)``).  Recording is observation only: the
engine emits one journal event at every scheduling decision it makes —
host API issue, command enqueue/start/complete, kernel launch begin and
residency, thread-block ready/dispatch/finish with the *release edge*
that caused it, kernel drain, and the in-order completion barrier.
Nothing feeds back into the simulation, so simulated signatures are
byte-identical with journaling on or off (tests and CI machine-check
this, like tracing and provenance before it).

The engine's event loop is single-threaded and deterministic, so the
emission order *is* the simulation order: each event carries a
contiguous ``seq`` and a non-decreasing ``t_ns``.  A journal therefore
has a canonical serialized form — JSONL with sorted keys — and a
content-addressed ``sha256:`` digest over exactly that form.  Two runs
of the same (workload, model, config) on the same code must produce
identical digests regardless of ``PYTHONHASHSEED``, worker processes,
or cache state; when they do not, :mod:`repro.obs.jdiff` localizes the
first diverging event.

File format (``*.journal.jsonl``): line 1 is the header object
(``kind``/``schema_version``/workload/model/options/``num_events``/
``digest``), followed by ``num_events`` event lines in ``seq`` order.

Import note: like :mod:`repro.obs.critpath`, this module must not be
imported from ``repro.obs.__init__`` — the engine imports ``repro.obs``
at module load, and :func:`record_run` imports the engine.
"""

import hashlib
import json

JOURNAL_KIND = "repro-journal"
JOURNAL_SCHEMA_VERSION = 1

#: every event kind the engine emits, in rough lifecycle order
EVENT_KINDS = (
    "host_issue",       # the host issued one API call (+api_call_ns)
    "call_enqueue",     # the call landed in the command queue
    "call_start",       # a non-kernel command began (copy, malloc, ...)
    "call_complete",    # a command completed (kernels: in-order point)
    "kernel_launch",    # launch overhead began on the launch engine
    "kernel_resident",  # launch overhead paid; TBs are dispatchable
    "tb_ready",         # a thread block entered the ready queue
    "tb_dispatch",      # a ready block was placed on an SM
    "tb_finish",        # a block finished and released its SM slot
    "kernel_drain",     # a kernel finished its last thread block
    "kernel_complete",  # the in-order completion barrier opened
)

#: events carrying a release edge (what caused this state change)
EDGE_KINDS = ("kernel_launch", "tb_ready", "tb_dispatch")


def edge_fields(ctx):
    """Map an engine event-context tuple to a JSON-safe release edge.

    The engine annotates every journal-worthy transition with the kind
    of event currently executing (``("tb_finish", ki, tb)``,
    ``("launch", ki)``, ``("completion", ki)``, ``("call", p)``,
    ``("enqueue", p)``, or ``("host",)``) — the *edge* that released it.
    """
    kind, rest = (ctx[0], ctx[1:]) if ctx else ("host", ())
    edge = {"kind": kind}
    if kind == "tb_finish":
        edge["kernel"], edge["tb"] = rest[0], rest[1]
    elif kind in ("launch", "completion"):
        edge["kernel"] = rest[0]
    elif kind in ("call", "enqueue"):
        edge["position"] = rest[0]
    return edge


def options_dict(options):
    """JSON-safe :class:`~repro.models.base.EngineOptions` summary."""
    if options is None:
        return {}
    return {
        "name": options.name,
        "window": options.window,
        "fine_grain": options.fine_grain,
        "policy": options.policy.value,
        "strict_order": options.strict_order,
        "blockmaestro_host": options.blockmaestro_host,
        "launch_overhead_ns": options.launch_overhead_ns,
        "api_call_ns": options.api_call_ns,
        "ready_capacity": options.ready_capacity,
    }


def canonical_line(event):
    """The one serialized form an event hashes and writes as."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def journal_digest(events):
    """Content-addressed digest over the canonical event lines."""
    hasher = hashlib.sha256()
    for event in events:
        hasher.update(canonical_line(event).encode("utf-8"))
        hasher.update(b"\n")
    return "sha256:" + hasher.hexdigest()


class JournalRecorder:
    """Observation-only event capture attached to one engine run.

    The engine calls :meth:`begin` before the first event, :meth:`emit`
    at every scheduling decision, and :meth:`finalize` when the run
    completes.  ``events`` is the deterministically ordered record; on
    an :class:`~repro.models.base.EngineDrainError` the recorder still
    holds everything up to the stall — the *black box* the drain error
    attaches its tail from.
    """

    def __init__(self):
        self.events = []
        self.application = None
        self.model = None
        self.options = None
        self.finalized = False

    # -- engine-facing hooks -------------------------------------------
    def begin(self, engine):
        self.application = engine.plan.application
        self.model = engine.opts.name
        self.options = engine.opts

    def emit(self, kind, t_ns, **fields):
        event = {"seq": len(self.events), "t_ns": t_ns, "kind": kind}
        event.update(fields)
        self.events.append(event)

    def finalize(self, engine):
        self.finalized = True

    # -- summaries ------------------------------------------------------
    def tail(self, n=20):
        """The last ``n`` events (the flight recorder's black-box tail)."""
        return [dict(event) for event in self.events[-n:]]

    def digest(self):
        return journal_digest(self.events)

    def header(self):
        return {
            "kind": JOURNAL_KIND,
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "workload": self.application,
            "model": self.model,
            "options": options_dict(self.options),
            "num_events": len(self.events),
            "digest": self.digest(),
        }


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
def write_journal(recorder, path):
    """Write header + events as JSONL; returns ``path``."""
    from repro.obs.report import atomic_write_text

    lines = [canonical_line(recorder.header())]
    lines.extend(canonical_line(event) for event in recorder.events)
    atomic_write_text("\n".join(lines) + "\n", path)
    return path


def load_journal(path):
    """Read a journal file back as ``(header, events)``.

    Raises :class:`ValueError` when the file is not a journal, the
    event count disagrees with the header, or the recomputed digest
    does not match — a corrupt or hand-edited journal must not silently
    feed the differ.
    """
    with open(path) as handle:
        lines = [line for line in handle.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError("{}: empty file, not a journal".format(path))
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError("{}: malformed header: {}".format(path, exc))
    if not isinstance(header, dict) or header.get("kind") != JOURNAL_KIND:
        raise ValueError(
            "{}: not a {} file".format(path, JOURNAL_KIND)
        )
    try:
        events = [json.loads(line) for line in lines[1:]]
    except json.JSONDecodeError as exc:
        raise ValueError("{}: malformed event line: {}".format(path, exc))
    if header.get("num_events") != len(events):
        raise ValueError(
            "{}: header claims {} events, file holds {}".format(
                path, header.get("num_events"), len(events)
            )
        )
    recomputed = journal_digest(events)
    if header.get("digest") != recomputed:
        raise ValueError(
            "{}: digest mismatch (header {}, recomputed {}) — "
            "journal is corrupt or was edited".format(
                path, header.get("digest"), recomputed
            )
        )
    return header, events


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def _is_int(value):
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


#: per-kind required integer fields (beyond seq/t_ns/kind)
_REQUIRED_FIELDS = {
    "host_issue": ("position",),
    "call_enqueue": ("position",),
    "call_start": ("position",),
    "call_complete": ("position",),
    "kernel_launch": ("kernel",),
    "kernel_resident": ("kernel",),
    "tb_ready": ("kernel", "tb"),
    "tb_dispatch": ("kernel", "tb", "sm"),
    "tb_finish": ("kernel", "tb", "sm"),
    "kernel_drain": ("kernel",),
    "kernel_complete": ("kernel",),
}


def validate_journal(header, events):
    """Structural + invariant validation; returns problem strings."""
    errors = []
    if not isinstance(header, dict):
        return ["header: expected a JSON object"]
    if header.get("kind") != JOURNAL_KIND:
        errors.append("header.kind: expected {!r}".format(JOURNAL_KIND))
    if header.get("schema_version") != JOURNAL_SCHEMA_VERSION:
        errors.append(
            "header.schema_version: expected {}".format(JOURNAL_SCHEMA_VERSION)
        )
    for key in ("workload", "model"):
        if not isinstance(header.get(key), str):
            errors.append("header.{}: missing or not a string".format(key))
    if not isinstance(header.get("options"), dict):
        errors.append("header.options: missing or not an object")
    if header.get("num_events") != len(events):
        errors.append(
            "header.num_events: {} != {} events".format(
                header.get("num_events"), len(events)
            )
        )
    digest = header.get("digest")
    if not isinstance(digest, str) or not digest.startswith("sha256:"):
        errors.append("header.digest: missing or not a sha256: string")
    elif digest != journal_digest(events):
        errors.append("header.digest: does not match the event stream")
    previous_t = 0.0
    for i, event in enumerate(events):
        where = "events[{}]".format(i)
        if not isinstance(event, dict):
            errors.append("{}: not an object".format(where))
            break
        if event.get("seq") != i:
            errors.append(
                "{}: seq {} breaks contiguity".format(where, event.get("seq"))
            )
            break
        t_ns = event.get("t_ns")
        if not _is_number(t_ns):
            errors.append("{}: t_ns missing or not a number".format(where))
            break
        if t_ns + 1e-9 < previous_t:
            errors.append(
                "{}: t_ns {} goes backwards (previous {})".format(
                    where, t_ns, previous_t
                )
            )
            break
        previous_t = t_ns
        kind = event.get("kind")
        if kind not in EVENT_KINDS:
            errors.append("{}: unknown kind {!r}".format(where, kind))
            break
        missing = [
            key for key in _REQUIRED_FIELDS[kind]
            if not _is_int(event.get(key))
        ]
        if missing:
            errors.append(
                "{}: {} missing integer fields {}".format(where, kind, missing)
            )
            break
        if kind in EDGE_KINDS and not isinstance(event.get("edge"), dict):
            errors.append("{}: {} missing its edge".format(where, kind))
            break
    return errors


# ----------------------------------------------------------------------
# recording a run
# ----------------------------------------------------------------------
def record_run(workload, model="consumer3", build_small=False):
    """Build, plan, and simulate one registry workload with a journal.

    Returns ``(recorder, stats)``.  This is the one code path behind
    ``repro journal``, the forensics re-recorder, and the determinism
    tests, so every journal of a given (workload, model) is produced
    identically.
    """
    # Imported lazily: the engine imports repro.obs at module load, so a
    # module-level import here would be a cycle.
    from repro.core.runtime import BlockMaestroRuntime
    from repro.experiments.common import (
        _make_model,
        _model_plan_params,
        canonical_model_name,
    )
    from repro.workloads import get_workload

    spec = get_workload(workload)
    app = spec.build_small() if build_small else spec.build()
    model_name = canonical_model_name(model)
    reorder, window = _model_plan_params(model_name)
    plan = BlockMaestroRuntime().plan(app, reorder=reorder, window=window)
    engine_model = _make_model(model_name, None)
    recorder = JournalRecorder()
    stats = engine_model.run(plan, journal=recorder)
    return recorder, stats
