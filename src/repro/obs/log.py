"""Structured logging + live progress heartbeats for long runs.

Every subsystem that used to ``print(..., file=sys.stderr)`` now goes
through a :class:`Logger` from :func:`get_logger`.  In the default
configuration the output is byte-identical to the old ad-hoc prints
(the bare message on stderr at info level), so nothing downstream —
tests, shell pipelines, CI greps — notices the switch.  Two knobs
change that:

* ``REPRO_LOG`` — ``level`` or ``level:subsys1,subsys2`` (for example
  ``debug`` or ``debug:bench,parallel``).  Levels: ``debug`` < ``info``
  (default) < ``warning`` < ``error`` < ``off``.  A subsystem list
  restricts *debug-level* verbosity to those subsystems; info and above
  always pass the level filter alone.
* ``REPRO_LOG_JSON=1`` (or the CLI's ``--log-json``) — each record
  becomes one JSON object per line (``ts``/``level``/``subsystem``/
  ``msg`` + context fields), machine-parseable for CI and the future
  ``repro serve``.

:func:`set_context` attaches ambient key/value pairs (for example
``worker=<pid>`` inside pool workers) to every subsequent record from
this process — that is the per-worker forwarding story: workers inherit
the parent's stderr, and the context field says who wrote each line.

:class:`Heartbeat` is the live-progress half: long ``bench run`` /
``experiments run-all`` invocations tick it once per completed cell.
On a TTY it redraws a single status line (current cell, ETA, cache hit
rate); on a non-TTY it stays silent so logs remain clean.  Either way
every tick atomically rewrites a machine-readable JSON status file
(``REPRO_STATUS_FILE`` or ``--status-file``) that an external watcher —
eventually ``repro serve`` — can poll.
"""

import itertools
import json
import os
import sys
import time

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}

LOG_ENV = "REPRO_LOG"
LOG_JSON_ENV = "REPRO_LOG_JSON"
STATUS_FILE_ENV = "REPRO_STATUS_FILE"

#: module state; one process-wide configuration (workers fork it)
_state = {
    "level": None,          # numeric threshold, resolved lazily
    "subsystems": None,     # frozenset or None = all
    "json": None,           # bool, resolved lazily
    "stream": None,         # defaults to sys.stderr at emit time
    "context": {},
}


def parse_spec(spec):
    """``"debug:bench,parallel"`` -> (numeric level, subsystem set)."""
    spec = (spec or "").strip()
    if not spec:
        return LEVELS["info"], None
    name, _, subsys = spec.partition(":")
    level = LEVELS.get(name.strip().lower())
    if level is None:
        level = LEVELS["info"]
    names = frozenset(
        part.strip() for part in subsys.split(",") if part.strip()
    )
    return level, (names or None)


def configure(spec=None, json_lines=None, stream=None):
    """Pin the process-wide config (CLI flags beat environment)."""
    if spec is not None:
        level, subsystems = parse_spec(spec)
        _state["level"], _state["subsystems"] = level, subsystems
    if json_lines is not None:
        _state["json"] = bool(json_lines)
    if stream is not None:
        _state["stream"] = stream


def reset():
    """Drop all configuration and context (tests call this)."""
    _state.update(
        level=None, subsystems=None, json=None, stream=None, context={}
    )


def set_context(**fields):
    """Attach ambient fields to every subsequent record (None deletes)."""
    for key, value in fields.items():
        if value is None:
            _state["context"].pop(key, None)
        else:
            _state["context"][key] = value


def _resolved_level():
    if _state["level"] is None:
        level, subsystems = parse_spec(os.environ.get(LOG_ENV))
        _state["level"], _state["subsystems"] = level, subsystems
    return _state["level"]


def _resolved_json():
    if _state["json"] is None:
        _state["json"] = os.environ.get(LOG_JSON_ENV, "") not in ("", "0")
    return _state["json"]


def _stream():
    return _state["stream"] if _state["stream"] is not None else sys.stderr


class Logger:
    """Leveled, per-subsystem record emitter (see module docstring)."""

    def __init__(self, subsystem):
        self.subsystem = subsystem

    def enabled(self, level_name):
        threshold = _resolved_level()
        level = LEVELS[level_name]
        if level < threshold:
            return False
        subsystems = _state["subsystems"]
        if (
            level_name == "debug"
            and subsystems is not None
            and self.subsystem not in subsystems
        ):
            return False
        return True

    def log(self, level_name, msg, **fields):
        if not self.enabled(level_name):
            return
        stream = _stream()
        if _resolved_json():
            record = {
                "ts": round(time.time(), 3),
                "level": level_name,
                "subsystem": self.subsystem,
                "msg": msg,
            }
            record.update(_state["context"])
            record.update(fields)
            stream.write(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
        else:
            # bare message: byte-identical to the historical stderr print
            stream.write(msg + "\n")
        stream.flush()

    def debug(self, msg, **fields):
        self.log("debug", msg, **fields)

    def info(self, msg, **fields):
        self.log("info", msg, **fields)

    def warning(self, msg, **fields):
        self.log("warning", msg, **fields)

    def error(self, msg, **fields):
        self.log("error", msg, **fields)


def get_logger(subsystem):
    return Logger(subsystem)


# ----------------------------------------------------------------------
# heartbeat / status file
# ----------------------------------------------------------------------
STATUS_KIND = "repro-status"
STATUS_SCHEMA_VERSION = 1

#: per-process sequence for tmp-file names: concurrent writers (e.g.
#: the serve daemon's heartbeat vs a request handler thread) must not
#: share a tmp path, or one can rename the other's half-written file
_status_tmp_seq = itertools.count()


def write_status_snapshot(payload, path):
    """Atomically rewrite a status snapshot at ``path``.

    tmp + ``os.replace``: a concurrent poller either sees the previous
    complete snapshot or the new one, never a partial file.  This is
    the exact contract the serve daemon's ``/statusz`` endpoint and the
    ``--status-file`` flags share (and tests gate under concurrency).
    """
    tmp = "{}.tmp.{}.{}".format(
        path, os.getpid(), next(_status_tmp_seq)
    )
    with open(tmp, "w") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def validate_status_snapshot(payload):
    """Schema-check a ``repro-status`` snapshot; returns error strings."""
    errors = []
    if not isinstance(payload, dict):
        return ["snapshot is not an object"]
    if payload.get("kind") != STATUS_KIND:
        errors.append("kind: expected {!r}".format(STATUS_KIND))
    if payload.get("schema_version") != STATUS_SCHEMA_VERSION:
        errors.append(
            "schema_version: expected {}".format(STATUS_SCHEMA_VERSION)
        )
    if not isinstance(payload.get("phase"), str):
        errors.append("phase: expected a string")
    for key in ("completed", "total"):
        value = payload.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            errors.append("{}: expected a non-negative integer".format(key))
    current = payload.get("current")
    if current is not None and not isinstance(current, str):
        errors.append("current: expected a string or null")
    elapsed = payload.get("elapsed_s")
    if not isinstance(elapsed, (int, float)) or isinstance(elapsed, bool) \
            or elapsed < 0:
        errors.append("elapsed_s: expected a non-negative number")
    eta = payload.get("eta_s")
    if eta is not None and (
        not isinstance(eta, (int, float)) or isinstance(eta, bool) or eta < 0
    ):
        errors.append("eta_s: expected a non-negative number or null")
    if not isinstance(payload.get("done"), bool):
        errors.append("done: expected a boolean")
    pid = payload.get("pid")
    if not isinstance(pid, int) or isinstance(pid, bool) or pid <= 0:
        errors.append("pid: expected a positive integer")
    return errors


class Heartbeat:
    """Live progress for a multi-cell run: TTY line + JSON status file.

    ``total`` is the number of cells; :meth:`tick` is called once per
    completed cell with a human label for the *next* work (or the one
    just finished) plus optional counters.  ETA is linear extrapolation
    from elapsed/completed — crude but monotone, and honest about being
    absent until the first cell lands.
    """

    def __init__(self, total, phase="bench", status_path=None, stream=None,
                 clock=time.monotonic):
        self.total = int(total)
        self.phase = phase
        self.status_path = (
            status_path
            if status_path is not None
            else (os.environ.get(STATUS_FILE_ENV) or None)
        )
        self._stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._start = clock()
        self.completed = 0
        self.current = None
        self.extra = {}
        self._tty = bool(getattr(self._stream, "isatty", lambda: False)())
        self._live = False  # a live line is currently on screen

    # -- progress ------------------------------------------------------
    def tick(self, current=None, completed=None, **extra):
        if completed is not None:
            self.completed = int(completed)
        if current is not None:
            self.current = current
        self.extra.update(extra)
        self._write_status()
        self._draw()

    def advance(self, current=None, **extra):
        self.tick(current=current, completed=self.completed + 1, **extra)

    def finish(self):
        """Clear the live line and write the terminal status snapshot."""
        self.completed = self.total
        self.current = None
        self._write_status(done=True)
        if self._live:
            self._stream.write("\r\x1b[K")
            self._stream.flush()
            self._live = False

    # -- internals -----------------------------------------------------
    def elapsed_s(self):
        return self._clock() - self._start

    def eta_s(self):
        if self.completed <= 0 or self.completed >= self.total:
            return None
        per_cell = self.elapsed_s() / self.completed
        return per_cell * (self.total - self.completed)

    def snapshot(self, done=False):
        payload = {
            "kind": STATUS_KIND,
            "schema_version": STATUS_SCHEMA_VERSION,
            "phase": self.phase,
            "completed": self.completed,
            "total": self.total,
            "current": self.current,
            "elapsed_s": round(self.elapsed_s(), 3),
            "eta_s": (
                round(self.eta_s(), 3) if self.eta_s() is not None else None
            ),
            "done": bool(done or self.completed >= self.total),
            "pid": os.getpid(),
        }
        payload.update(self.extra)
        return payload

    def _write_status(self, done=False):
        if not self.status_path:
            return
        # atomic replace: a poller never sees a half-written file
        write_status_snapshot(self.snapshot(done=done), self.status_path)

    def _draw(self):
        if not self._tty:
            return
        bits = ["{}: {}/{}".format(self.phase, self.completed, self.total)]
        if self.current:
            bits.append(str(self.current))
        eta = self.eta_s()
        if eta is not None:
            bits.append("eta {:.0f}s".format(eta))
        hit_rate = self.extra.get("cache_hit_rate")
        if hit_rate is not None:
            bits.append("cache {:.0%}".format(hit_rate))
        self._stream.write("\r\x1b[K" + "  ".join(bits))
        self._stream.flush()
        self._live = True
