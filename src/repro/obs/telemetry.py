"""Hardware telemetry: time-series sampling + overlap/utilization analysis.

:class:`TelemetrySampler` is an observation-only recorder attached to
one engine run (``model.run(plan, telemetry=...)``).  It rides the same
injection seam as the critical-path provenance recorder and the journal
flight recorder — every ``_journal_emit`` event also reaches
:meth:`TelemetrySampler.observe` — and, like them, never feeds back
into scheduling: simulated signatures are byte-identical with sampling
on or off (tests and CI machine-check this).

From the event stream the sampler maintains O(1) incremental counters
and appends one sample per simulated timestamp at which device state
changed:

* ``running_tbs`` — thread blocks currently executing (SM occupancy);
* ``busy_sms`` — SMs holding at least one resident block;
* ``ready_queue`` — blocks ready but not yet placed on an SM;
* ``dlb_entries`` / ``pcb_entries`` — Dependency List Buffer / Parent
  Counter Buffer occupancy under the paper's hardware model (a parent
  TB's list entries are live from its dispatch to its finish; a child
  kernel's counters are allocated at residency and retire as blocks
  become ready);
* ``resident_tbs`` — per-kernel running-block counts (the overlap view).

On top of the raw series, :func:`build_report` derives the metrics the
paper's evaluation is about:

* **achieved overlap** per kernel pair — simulated time during which
  both kernels had blocks executing, plus the fraction of the later
  kernel's block dispatches that happened before the earlier kernel
  drained (under a serial launch both are exactly zero, so these are
  the Fig. 1 effect as numbers);
* **idle bubbles** — maximal spans with zero running blocks, each
  blamed by the release-edge kind of the dispatch that ended it (the
  same edge taxonomy critpath classifies); busy spans and bubbles tile
  [0, makespan] by construction;
* **utilization** — time-weighted mean/p95 occupancy, wavefront
  efficiency, busy fractions.

The report is schema-versioned (``repro-telemetry-report``) with a
dependency-free validator, renders as text (:func:`format_telemetry`),
as Perfetto counter tracks merged into ``repro trace`` output
(:func:`emit_telemetry_counters`), and as a Prometheus text exposition
(:func:`write_prometheus`) — the metrics surface a future ``repro
serve`` will mount.

Import note: like :mod:`repro.obs.critpath` and
:mod:`repro.obs.journal`, this module must not be imported from
``repro.obs.__init__`` — the engine imports ``repro.obs`` at module
load, and :func:`record_telemetry` imports the engine.
"""

import math

TELEMETRY_KIND = "repro-telemetry-report"
TELEMETRY_SCHEMA_VERSION = 1

#: the raw time-series columns, in report order
SERIES_KEYS = (
    "t_ns",
    "running_tbs",
    "busy_sms",
    "ready_queue",
    "dlb_entries",
    "pcb_entries",
)

#: release-edge kind (see repro.obs.journal.edge_fields) -> bubble blame
EDGE_BLAME = {
    "tb_finish": "dependency",
    "launch": "launch",
    "completion": "barrier",
    "call": "copy",
    "enqueue": "host",
    "host": "host",
}

#: every blame category a bubble may carry
BUBBLE_BLAME_KINDS = tuple(sorted(set(EDGE_BLAME.values()))) + ("other",)

#: required numeric keys of the utilization summary
UTILIZATION_KEYS = (
    "mean_occupancy_tbs",
    "p95_occupancy_tbs",
    "peak_occupancy_tbs",
    "mean_busy_sms",
    "p95_busy_sms",
    "wavefront_efficiency",
    "busy_fraction",
    "sm_busy_fraction",
    "partial_idle_ns",
)

#: tolerance for the internal-consistency gates (ns)
_EPS = 1e-3


class TelemetrySampler:
    """Observation-only occupancy/queue sampler for one engine run.

    The engine calls :meth:`begin` before the first event,
    :meth:`observe` at every scheduling decision (the same stream the
    journal records), and :meth:`finalize` when the run completes.
    ``samples`` is the deterministically ordered raw series; derived
    metrics live in :func:`build_report`.
    """

    def __init__(self):
        self.application = None
        self.model = None
        self.options = None
        self.num_sms = 0
        self.kernels = []  # (index, name, stream, num_tbs)
        #: one row per distinct event timestamp:
        #: [t_ns, running, busy_sms, ready, dlb, pcb, (per-kernel...)]
        self.samples = []
        self.bubbles = []  # (start_ns, end_ns, blame)
        self.makespan_ns = 0.0
        self.busy_ns = 0.0
        self.concurrency_integral = 0.0
        self.finalized = False
        # incremental state
        self._running = 0
        self._ready = 0
        self._dlb = 0
        self._pcb = 0
        self._sm_tbs = {}
        self._busy_sms = 0
        self._per_kernel = []
        self._idle_start = 0.0
        # static cost tables (filled in begin)
        self._dlb_cost = {}
        self._pcb_child = {}
        self._pcb_on_resident = {}

    # -- engine-facing hooks -------------------------------------------
    def begin(self, engine):
        from repro.core.hardware import HardwareConfig

        self.application = engine.plan.application
        self.model = engine.opts.name
        self.options = engine.opts
        self.num_sms = engine.config.num_sms
        plans = [ks.plan for ks in engine.kernels]
        self.kernels = [
            (kp.kernel_index, kp.name, kp.stream, kp.num_tbs) for kp in plans
        ]
        self._per_kernel = [0] * len(plans)
        fine = engine.opts.fine_grain and not engine.opts.ignore_dependencies
        if not fine:
            return
        per_entry = HardwareConfig().children_per_entry
        by_index = {kp.kernel_index: kp for kp in plans}
        for kp in plans:
            child = by_index.get(kp.chain_next)
            graph = child.graph if child is not None else None
            if (
                graph is not None
                and not graph.is_fully_connected
                and not graph.is_independent
            ):
                costs = {}
                for tb, children in enumerate(graph.children_of):
                    if children:
                        costs[tb] = math.ceil(len(children) / per_entry)
                if costs:
                    self._dlb_cost[kp.kernel_index] = costs
            own = kp.graph
            if (
                own is not None
                and not own.is_fully_connected
                and not own.is_independent
            ):
                counted = sum(1 for c in own.parent_counts if c > 0)
                if counted:
                    self._pcb_on_resident[kp.kernel_index] = counted
                    self._pcb_child[kp.kernel_index] = own.parent_counts

    def observe(self, kind, t_ns, **fields):
        """Fold one engine event into the counters and take a sample."""
        if kind == "tb_ready":
            self._ready += 1
            counts = self._pcb_child.get(fields["kernel"])
            if counts is not None and counts[fields["tb"]] > 0:
                self._pcb -= 1
        elif kind == "tb_dispatch":
            self._ready -= 1
            if self._running == 0 and t_ns > self._idle_start:
                edge = fields.get("edge") or {}
                self.bubbles.append(
                    (
                        self._idle_start,
                        t_ns,
                        EDGE_BLAME.get(edge.get("kind"), "other"),
                    )
                )
            self._running += 1
            self._per_kernel[fields["kernel"]] += 1
            sm = fields["sm"]
            held = self._sm_tbs.get(sm, 0)
            if held == 0:
                self._busy_sms += 1
            self._sm_tbs[sm] = held + 1
            cost = self._dlb_cost.get(fields["kernel"])
            if cost is not None:
                self._dlb += cost.get(fields["tb"], 0)
        elif kind == "tb_finish":
            self._running -= 1
            self._per_kernel[fields["kernel"]] -= 1
            sm = fields["sm"]
            held = self._sm_tbs.get(sm, 1) - 1
            self._sm_tbs[sm] = held
            if held == 0:
                self._busy_sms -= 1
            cost = self._dlb_cost.get(fields["kernel"])
            if cost is not None:
                self._dlb -= cost.get(fields["tb"], 0)
            if self._running == 0:
                self._idle_start = t_ns
        elif kind == "kernel_resident":
            gained = self._pcb_on_resident.get(fields["kernel"], 0)
            if not gained:
                return
            self._pcb += gained
        else:
            return  # host/queue bookkeeping: no device-state change
        row = [
            t_ns,
            self._running,
            self._busy_sms,
            self._ready,
            self._dlb,
            self._pcb,
            tuple(self._per_kernel),
        ]
        if self.samples and self.samples[-1][0] == t_ns:
            self.samples[-1] = row  # coalesce same-instant transitions
        else:
            self.samples.append(row)

    def finalize(self, engine):
        self.makespan_ns = engine.events.now
        self.busy_ns = engine.device.busy_ns
        self.concurrency_integral = engine.device.concurrency_integral
        if self._running == 0 and self.makespan_ns > self._idle_start:
            # the drain/teardown tail has no dispatch to blame
            self.bubbles.append((self._idle_start, self.makespan_ns, "other"))
        self.finalized = True


# ----------------------------------------------------------------------
# series math
# ----------------------------------------------------------------------
def _segments(samples, makespan_ns, column):
    """Yield ``(value, dt)`` step segments covering [0, makespan]."""
    out = []
    previous_t, previous_v = 0.0, 0
    for row in samples:
        t = row[0]
        if t > previous_t:
            out.append((previous_v, t - previous_t))
        previous_t, previous_v = t, row[column]
    if makespan_ns > previous_t:
        out.append((previous_v, makespan_ns - previous_t))
    return out


def _weighted_mean(segments):
    total = sum(dt for _, dt in segments)
    if total <= 0:
        return 0.0
    return sum(v * dt for v, dt in segments) / total


def _weighted_percentile(segments, q):
    """Time-weighted percentile of a step series (0 <= q <= 1)."""
    total = sum(dt for _, dt in segments)
    if total <= 0:
        return 0.0
    target = q * total
    cumulative = 0.0
    for value, dt in sorted(segments):
        cumulative += dt
        if cumulative >= target:
            return float(value)
    return float(segments[-1][0]) if segments else 0.0


def _merge_intervals(intervals):
    """Union of (start, end) intervals as a sorted, disjoint list."""
    merged = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return [(start, end) for start, end in merged]


def _intersection_ns(a, b):
    """Total overlap of two sorted disjoint interval lists."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total


def _downsample(samples, max_samples):
    """Evenly thin the series, always keeping the first/last samples."""
    n = len(samples)
    if n <= max_samples or max_samples < 2:
        return list(samples)
    picked = []
    last_index = -1
    for i in range(max_samples):
        index = round(i * (n - 1) / (max_samples - 1))
        if index != last_index:
            picked.append(samples[index])
            last_index = index
    return picked


# ----------------------------------------------------------------------
# derived-metrics report
# ----------------------------------------------------------------------
def _kernel_rows(stats, sampler):
    """Per-kernel execution spans from the run's TB records."""
    intervals = {index: [] for index, _, _, _ in sampler.kernels}
    for tb in stats.tb_records:
        intervals.setdefault(tb.kernel_index, []).append(
            (tb.start_ns, tb.finish_ns)
        )
    rows, merged = [], {}
    for index, name, stream, num_tbs in sampler.kernels:
        union = _merge_intervals(intervals.get(index, []))
        merged[index] = union
        rows.append(
            {
                "index": index,
                "name": name,
                "stream": stream,
                "num_tbs": num_tbs,
                "first_start_ns": union[0][0] if union else 0.0,
                "last_finish_ns": union[-1][1] if union else 0.0,
                "span_ns": sum(end - start for start, end in union),
            }
        )
    return rows, merged


def _overlap_section(stats, sampler, kernel_rows, merged):
    """Per-kernel-pair achieved overlap (the paper's Fig. 1 effect)."""
    starts = {}
    for tb in stats.tb_records:
        starts.setdefault(tb.kernel_index, []).append(tb.start_ns)
    by_index = {row["index"]: row for row in kernel_rows}
    indices = sorted(by_index)
    pairs = []
    for pos, a in enumerate(indices):
        for b in indices[pos + 1:]:
            overlap_ns = _intersection_ns(merged[a], merged[b])
            if overlap_ns <= 0.0 and b != a + 1:
                continue  # only adjacent pairs are reported when serial
            span_a = by_index[a]["span_ns"]
            span_b = by_index[b]["span_ns"]
            floor = min(span_a, span_b)
            # fraction of the later kernel's dispatches issued before
            # the earlier kernel drained — zero under a serial launch
            drain_a = by_index[a]["last_finish_ns"]
            b_starts = starts.get(b, [])
            early = sum(1 for s in b_starts if s < drain_a)
            pairs.append(
                {
                    "a": a,
                    "b": b,
                    "a_name": by_index[a]["name"],
                    "b_name": by_index[b]["name"],
                    "overlap_ns": overlap_ns,
                    "overlap_fraction": (
                        overlap_ns / floor if floor > 0 else 0.0
                    ),
                    "tb_overlap_fraction": (
                        early / len(b_starts) if b_starts else 0.0
                    ),
                }
            )
    fractions = [pair["overlap_fraction"] for pair in pairs]
    return {
        "pairs": pairs,
        "total_overlap_ns": sum(pair["overlap_ns"] for pair in pairs),
        "mean_overlap_fraction": (
            sum(fractions) / len(fractions) if fractions else 0.0
        ),
    }


def _bubble_section(sampler):
    spans = [
        {"start_ns": start, "end_ns": end, "blame": blame}
        for start, end, blame in sampler.bubbles
    ]
    blame_ns = {kind: 0.0 for kind in BUBBLE_BLAME_KINDS}
    for span in spans:
        blame_ns[span["blame"]] += span["end_ns"] - span["start_ns"]
    return {
        "spans": spans,
        "count": len(spans),
        "total_ns": sum(s["end_ns"] - s["start_ns"] for s in spans),
        "blame_ns": blame_ns,
    }


def build_report(stats, sampler, max_samples=512):
    """Assemble the schema-versioned telemetry report for one run."""
    if not sampler.finalized:
        raise ValueError("sampler was not finalized by an engine run")
    makespan = sampler.makespan_ns
    samples = sampler.samples
    running = _segments(samples, makespan, 1)
    busy_sms = _segments(samples, makespan, 2)
    busy_from_series = sum(dt for v, dt in running if v > 0)
    partial_idle = sum(
        dt
        for (tbs, dt), (sms, _) in zip(running, busy_sms)
        if tbs > 0 and sms < sampler.num_sms
    )
    peak = max((row[1] for row in samples), default=0)
    utilization = {
        "mean_occupancy_tbs": _weighted_mean(running),
        "p95_occupancy_tbs": _weighted_percentile(running, 0.95),
        "peak_occupancy_tbs": float(peak),
        "mean_busy_sms": _weighted_mean(busy_sms),
        "p95_busy_sms": _weighted_percentile(busy_sms, 0.95),
        "wavefront_efficiency": (
            sampler.concurrency_integral / (sampler.busy_ns * peak)
            if sampler.busy_ns > 0 and peak > 0
            else 0.0
        ),
        "busy_fraction": busy_from_series / makespan if makespan > 0 else 0.0,
        "sm_busy_fraction": (
            _weighted_mean(busy_sms) / sampler.num_sms
            if sampler.num_sms > 0
            else 0.0
        ),
        "partial_idle_ns": partial_idle,
    }
    kernel_rows, merged = _kernel_rows(stats, sampler)
    bubbles = _bubble_section(sampler)
    thinned = _downsample(samples, max_samples)
    series = {
        "t_ns": [row[0] for row in thinned],
        "running_tbs": [row[1] for row in thinned],
        "busy_sms": [row[2] for row in thinned],
        "ready_queue": [row[3] for row in thinned],
        "dlb_entries": [row[4] for row in thinned],
        "pcb_entries": [row[5] for row in thinned],
        "resident_tbs": {
            str(index): [row[6][slot] for row in thinned]
            for slot, (index, _, _, _) in enumerate(sampler.kernels)
        },
    }
    return {
        "kind": TELEMETRY_KIND,
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "workload": sampler.application,
        "model": sampler.model,
        "makespan_ns": makespan,
        "busy_ns": sampler.busy_ns,
        "num_sms": sampler.num_sms,
        "num_raw_samples": len(samples),
        "series": series,
        "kernels": kernel_rows,
        "overlap": _overlap_section(stats, sampler, kernel_rows, merged),
        "bubbles": bubbles,
        "utilization": utilization,
        "consistency": {
            "busy_ns_error": abs(busy_from_series - sampler.busy_ns),
            "tiling_error_ns": abs(
                bubbles["total_ns"] + busy_from_series - makespan
            ),
        },
    }


def bench_summary(report):
    """Flat numeric summary embedded in BENCH reports' ``telemetry``
    section — ``bench diff`` treats every value as zero-tolerance
    simulated drift."""
    utilization = report["utilization"]
    overlap = report["overlap"]
    return {
        "mean_occupancy_tbs": utilization["mean_occupancy_tbs"],
        "p95_occupancy_tbs": utilization["p95_occupancy_tbs"],
        "wavefront_efficiency": utilization["wavefront_efficiency"],
        "busy_fraction": utilization["busy_fraction"],
        "total_overlap_ns": overlap["total_overlap_ns"],
        "mean_overlap_fraction": overlap["mean_overlap_fraction"],
        "idle_bubble_ns": report["bubbles"]["total_ns"],
        "idle_bubble_count": report["bubbles"]["count"],
        "pair_overlap": {
            "k{}->k{}".format(pair["a"], pair["b"]): pair["overlap_fraction"]
            for pair in overlap["pairs"]
        },
    }


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def _is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_telemetry_report(report):
    """Structural + invariant validation; returns problem strings."""
    errors = []
    if not isinstance(report, dict):
        return ["report: expected a JSON object"]
    if report.get("kind") != TELEMETRY_KIND:
        errors.append("kind: expected {!r}".format(TELEMETRY_KIND))
    if report.get("schema_version") != TELEMETRY_SCHEMA_VERSION:
        errors.append(
            "schema_version: expected {}".format(TELEMETRY_SCHEMA_VERSION)
        )
    for key in ("workload", "model"):
        if not isinstance(report.get(key), str):
            errors.append("{}: missing or not a string".format(key))
    makespan = report.get("makespan_ns")
    if not _is_number(makespan) or makespan < 0:
        errors.append("makespan_ns: missing or negative")
        makespan = 0.0
    series = report.get("series")
    if not isinstance(series, dict):
        errors.append("series: missing or not an object")
    else:
        lengths = set()
        for key in SERIES_KEYS:
            column = series.get(key)
            if not isinstance(column, list):
                errors.append("series.{}: missing or not a list".format(key))
                continue
            lengths.add(len(column))
            if any(not _is_number(v) for v in column):
                errors.append("series.{}: non-numeric sample".format(key))
        if len(lengths) > 1:
            errors.append("series: columns have unequal lengths")
        t_ns = series.get("t_ns") or []
        if any(b < a for a, b in zip(t_ns, t_ns[1:])):
            errors.append("series.t_ns: not sorted")
        resident = series.get("resident_tbs")
        if not isinstance(resident, dict):
            errors.append("series.resident_tbs: missing or not an object")
        else:
            for key, column in resident.items():
                if not isinstance(column, list) or (
                    lengths and len(column) not in lengths
                ):
                    errors.append(
                        "series.resident_tbs[{}]: wrong length".format(key)
                    )
    kernels = report.get("kernels")
    spans = {}
    if not isinstance(kernels, list):
        errors.append("kernels: missing or not a list")
    else:
        for i, row in enumerate(kernels):
            if not isinstance(row, dict) or not _is_number(
                row.get("span_ns")
            ):
                errors.append("kernels[{}]: missing span_ns".format(i))
            else:
                spans[row.get("index")] = row["span_ns"]
    overlap = report.get("overlap")
    if not isinstance(overlap, dict) or not isinstance(
        overlap.get("pairs"), list
    ):
        errors.append("overlap.pairs: missing or not a list")
    else:
        for i, pair in enumerate(overlap["pairs"]):
            where = "overlap.pairs[{}]".format(i)
            if not isinstance(pair, dict):
                errors.append("{}: not an object".format(where))
                continue
            for key in (
                "overlap_ns", "overlap_fraction", "tb_overlap_fraction"
            ):
                if not _is_number(pair.get(key)):
                    errors.append("{}.{}: missing".format(where, key))
            floor = min(
                spans.get(pair.get("a"), float("inf")),
                spans.get(pair.get("b"), float("inf")),
            )
            if (
                _is_number(pair.get("overlap_ns"))
                and floor != float("inf")
                and pair["overlap_ns"] > floor + _EPS
            ):
                errors.append(
                    "{}: overlap_ns {} exceeds min kernel span {}".format(
                        where, pair["overlap_ns"], floor
                    )
                )
            for key in ("overlap_fraction", "tb_overlap_fraction"):
                value = pair.get(key)
                if _is_number(value) and not -1e-9 <= value <= 1 + 1e-9:
                    errors.append(
                        "{}.{}: {} outside [0, 1]".format(where, key, value)
                    )
    bubbles = report.get("bubbles")
    if not isinstance(bubbles, dict) or not isinstance(
        bubbles.get("spans"), list
    ):
        errors.append("bubbles.spans: missing or not a list")
    else:
        previous_end = -float("inf")
        total = 0.0
        for i, span in enumerate(bubbles["spans"]):
            where = "bubbles.spans[{}]".format(i)
            if not isinstance(span, dict) or not (
                _is_number(span.get("start_ns"))
                and _is_number(span.get("end_ns"))
            ):
                errors.append("{}: malformed".format(where))
                continue
            if span.get("blame") not in BUBBLE_BLAME_KINDS:
                errors.append(
                    "{}: unknown blame {!r}".format(where, span.get("blame"))
                )
            if span["start_ns"] < previous_end - _EPS:
                errors.append("{}: overlaps the previous span".format(where))
            if span["end_ns"] > makespan + _EPS:
                errors.append("{}: extends past the makespan".format(where))
            previous_end = span["end_ns"]
            total += span["end_ns"] - span["start_ns"]
        if _is_number(bubbles.get("total_ns")) and abs(
            bubbles["total_ns"] - total
        ) > _EPS:
            errors.append("bubbles.total_ns: does not match its spans")
    utilization = report.get("utilization")
    if not isinstance(utilization, dict):
        errors.append("utilization: missing or not an object")
    else:
        for key in UTILIZATION_KEYS:
            if not _is_number(utilization.get(key)):
                errors.append("utilization.{}: missing".format(key))
    consistency = report.get("consistency")
    if not isinstance(consistency, dict):
        errors.append("consistency: missing or not an object")
    else:
        for key in ("busy_ns_error", "tiling_error_ns"):
            value = consistency.get(key)
            if not _is_number(value):
                errors.append("consistency.{}: missing".format(key))
            elif value > max(_EPS, 1e-9 * makespan):
                errors.append(
                    "consistency.{}: {} exceeds tolerance".format(key, value)
                )
    return errors


# ----------------------------------------------------------------------
# text / Perfetto / Prometheus renderings
# ----------------------------------------------------------------------
def _bar(fraction, width=24):
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def format_telemetry(report, limit=10):
    """Human-readable rendering of one telemetry report."""
    utilization = report["utilization"]
    lines = [
        "-- telemetry ({}: {}, makespan {:.1f}us) --".format(
            report["model"], report["workload"], report["makespan_ns"] / 1e3
        ),
        "  occupancy: mean {:.2f} TBs, p95 {:.0f}, peak {:.0f}; "
        "wavefront efficiency {:.2f}".format(
            utilization["mean_occupancy_tbs"],
            utilization["p95_occupancy_tbs"],
            utilization["peak_occupancy_tbs"],
            utilization["wavefront_efficiency"],
        ),
        "  device busy {:.1%} of makespan; mean busy SMs {:.2f}/{} "
        "({:.1%})".format(
            utilization["busy_fraction"],
            utilization["mean_busy_sms"],
            report["num_sms"],
            utilization["sm_busy_fraction"],
        ),
    ]
    pairs = sorted(
        report["overlap"]["pairs"],
        key=lambda pair: (-pair["overlap_ns"], pair["a"], pair["b"]),
    )
    lines.append(
        "  achieved overlap ({} pairs, {:.1f}us total):".format(
            len(pairs), report["overlap"]["total_overlap_ns"] / 1e3
        )
    )
    for pair in pairs[:limit]:
        lines.append(
            "    [{}] {:6.1%}  k{:02d} {} || k{:02d} {}  "
            "({:.1f}us, {:.0%} of TBs early)".format(
                _bar(pair["overlap_fraction"]),
                pair["overlap_fraction"],
                pair["a"],
                pair["a_name"],
                pair["b"],
                pair["b_name"],
                pair["overlap_ns"] / 1e3,
                pair["tb_overlap_fraction"],
            )
        )
    if len(pairs) > limit:
        lines.append("    ... {} more pairs".format(len(pairs) - limit))
    bubbles = report["bubbles"]
    lines.append(
        "  idle bubbles: {} spans, {:.1f}us total".format(
            bubbles["count"], bubbles["total_ns"] / 1e3
        )
    )
    for blame in BUBBLE_BLAME_KINDS:
        ns = bubbles["blame_ns"].get(blame, 0.0)
        if ns > 0:
            lines.append(
                "    {:12s} {:10.3f}us".format(blame, ns / 1e3)
            )
    return "\n".join(lines)


def emit_telemetry_counters(tracer, report):
    """Merge the sampled series into a trace as Perfetto counter tracks.

    Three ``ph:"C"`` tracks on the simulated-time device row:
    occupancy (running TBs + busy SMs), scheduler queues (ready queue
    depth), and dependency-hardware occupancy (DLB/PCB entries).
    """
    from repro.obs.tracer import PID_DEVICE

    series = report["series"]
    for i, t_ns in enumerate(series["t_ns"]):
        ts_us = t_ns / 1e3
        tracer.counter(
            "telemetry.occupancy",
            {
                "running_tbs": series["running_tbs"][i],
                "busy_sms": series["busy_sms"][i],
            },
            ts_us=ts_us,
            cat="telemetry",
            pid=PID_DEVICE,
        )
        tracer.counter(
            "telemetry.queues",
            {"ready_queue": series["ready_queue"][i]},
            ts_us=ts_us,
            cat="telemetry",
            pid=PID_DEVICE,
        )
        tracer.counter(
            "telemetry.dependency_hw",
            {
                "dlb_entries": series["dlb_entries"][i],
                "pcb_entries": series["pcb_entries"][i],
            },
            ts_us=ts_us,
            cat="telemetry",
            pid=PID_DEVICE,
        )


def _prom_escape(value):
    # kept as an alias: the escaping now lives in repro.obs.prom, the
    # exposition module shared with the serve daemon's /metrics endpoint
    from repro.obs.prom import escape_label_value

    return escape_label_value(value)


def write_prometheus(report):
    """Render the report as a Prometheus text exposition (version 0.0.4).

    This is the machine-readable metrics surface the ``repro serve``
    daemon mounts at ``/metrics``; the line-level writer is the shared
    :class:`repro.obs.prom.PromWriter` (hand-rolled so the repo stays
    dependency-free), and this function's output is byte-identical to
    the pre-extraction telemetry writer.
    """
    from repro.obs.prom import PromWriter

    base = 'workload="{}",model="{}"'.format(
        _prom_escape(report["workload"]), _prom_escape(report["model"])
    )
    utilization = report["utilization"]
    overlap = report["overlap"]
    bubbles = report["bubbles"]
    writer = PromWriter()

    def emit(name, help_text, value, extra_labels=""):
        labels = base + ("," + extra_labels if extra_labels else "")
        writer.emit(name, help_text, value, labels=labels)

    emit("repro_makespan_ns", "Simulated makespan.", report["makespan_ns"])
    emit(
        "repro_busy_fraction",
        "Fraction of the makespan with at least one running TB.",
        utilization["busy_fraction"],
    )
    emit(
        "repro_mean_occupancy_tbs",
        "Time-weighted mean running thread blocks.",
        utilization["mean_occupancy_tbs"],
    )
    emit(
        "repro_p95_occupancy_tbs",
        "Time-weighted p95 running thread blocks.",
        utilization["p95_occupancy_tbs"],
    )
    emit(
        "repro_wavefront_efficiency",
        "Concurrency integral over busy time x peak concurrency.",
        utilization["wavefront_efficiency"],
    )
    emit(
        "repro_sm_busy_fraction",
        "Mean busy SMs over total SMs.",
        utilization["sm_busy_fraction"],
    )
    emit(
        "repro_overlap_total_ns",
        "Total cross-kernel overlap time.",
        overlap["total_overlap_ns"],
    )
    emit(
        "repro_overlap_mean_fraction",
        "Mean per-pair achieved overlap fraction.",
        overlap["mean_overlap_fraction"],
    )
    for pair in overlap["pairs"]:
        emit(
            "repro_pair_overlap_fraction",
            "Achieved overlap fraction per kernel pair.",
            pair["overlap_fraction"],
            extra_labels='pair="k{}-k{}"'.format(pair["a"], pair["b"]),
        )
    emit(
        "repro_idle_bubble_ns_total",
        "Total all-idle bubble time.",
        bubbles["total_ns"],
    )
    emit(
        "repro_idle_bubble_count",
        "Number of all-idle bubbles.",
        bubbles["count"],
    )
    for blame in BUBBLE_BLAME_KINDS:
        emit(
            "repro_idle_bubble_blame_ns",
            "All-idle bubble time by release-edge blame.",
            bubbles["blame_ns"].get(blame, 0.0),
            extra_labels='blame="{}"'.format(blame),
        )
    return writer.render()


# ----------------------------------------------------------------------
# recording a run
# ----------------------------------------------------------------------
def record_telemetry(workload, model="consumer3", build_small=False):
    """Build, plan, and simulate one registry workload with telemetry.

    Returns ``(sampler, stats)`` — the one code path behind ``repro
    telemetry``, the flight report, and the bench integration, so every
    report of a given (workload, model) is produced identically.
    """
    # Imported lazily: the engine imports repro.obs at module load, so a
    # module-level import here would be a cycle.
    from repro.core.runtime import BlockMaestroRuntime
    from repro.experiments.common import (
        _make_model,
        _model_plan_params,
        canonical_model_name,
    )
    from repro.workloads import get_workload

    spec = get_workload(workload)
    app = spec.build_small() if build_small else spec.build()
    model_name = canonical_model_name(model)
    reorder, window = _model_plan_params(model_name)
    plan = BlockMaestroRuntime().plan(app, reorder=reorder, window=window)
    engine_model = _make_model(model_name, None)
    sampler = TelemetrySampler()
    stats = engine_model.run(plan, telemetry=sampler)
    return sampler, stats
