"""Observability: event tracing, metrics, and report serialization.

The package has three parts:

* :mod:`repro.obs.tracer` — span/instant/counter event capture in
  Chrome trace-event JSON (open the output in Perfetto or
  ``chrome://tracing``);
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  running-stat histograms with a snapshot/export API;
* :mod:`repro.obs.report` — the shared JSON serializer for
  :class:`~repro.sim.stats.RunStats`, the ``blame`` attribution tables,
  and per-experiment report artifacts.

Every instrumented component takes optional ``tracer=`` / ``metrics=``
arguments.  When omitted they resolve — via :func:`resolve_tracer` /
:func:`resolve_metrics` — to the ambient instances (no-op by default),
so instrumentation has zero cost and zero behavioural effect unless a
caller opts in, either explicitly or with :func:`observed`::

    with observed(Tracer(), MetricsRegistry()) as (tracer, metrics):
        plan = BlockMaestroRuntime().plan(app)   # traced implicitly

Tracing is observation only: enabling it must never change simulated
results (tests assert makespan equality with tracing on and off).
"""

from contextlib import contextmanager

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    NULL_METRICS,
    percentile,
)
from repro.obs.tracer import (
    NullTracer,
    NULL_TRACER,
    PID_DEVICE,
    PID_HOST,
    PID_RUNTIME,
    PID_SM,
    Tracer,
)

_ambient_tracer = NULL_TRACER
_ambient_metrics = NULL_METRICS


def resolve_tracer(tracer):
    """``tracer`` if given, else the ambient (default: no-op) tracer."""
    return _ambient_tracer if tracer is None else tracer


def resolve_metrics(metrics):
    """``metrics`` if given, else the ambient (default: no-op) registry."""
    return _ambient_metrics if metrics is None else metrics


def set_ambient(tracer=None, metrics=None):
    """Install ambient instances; ``None`` resets to the no-op twins."""
    global _ambient_tracer, _ambient_metrics
    _ambient_tracer = NULL_TRACER if tracer is None else tracer
    _ambient_metrics = NULL_METRICS if metrics is None else metrics


@contextmanager
def observed(tracer=None, metrics=None):
    """Scope with the given tracer/metrics as the ambient default."""
    tracer = Tracer() if tracer is None else tracer
    metrics = MetricsRegistry() if metrics is None else metrics
    previous = (_ambient_tracer, _ambient_metrics)
    set_ambient(tracer, metrics)
    try:
        yield tracer, metrics
    finally:
        set_ambient(*previous)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "NullTracer",
    "NULL_TRACER",
    "PID_DEVICE",
    "PID_HOST",
    "PID_RUNTIME",
    "PID_SM",
    "Tracer",
    "observed",
    "percentile",
    "resolve_metrics",
    "resolve_tracer",
    "set_ambient",
]
