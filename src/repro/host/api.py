"""The CUDA-like API call vocabulary.

Each call knows which buffers it reads and writes; that is all the
command-queue reordering pass (paper Fig. 5) needs to preserve true
dependencies while hoisting kernel launches together.

For kernel launches, parameter directions (which pointer arguments the
kernel loads from / stores to) are derived statically from the kernel
body with :func:`kernel_param_directions` — a use of the same backward
slice as Algorithm 1, but stopping at ``ld.param`` to attribute each
global access to the parameter its base pointer came from.
"""

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional, Tuple, Union

from repro.analysis.dataflow import NonStaticAccess, backward_slice
from repro.host.buffers import Buffer
from repro.ptx.isa import Opcode
from repro.ptx.module import Kernel


@dataclass(frozen=True)
class ParamDirections:
    """Read/write pointer-parameter sets of a kernel.

    ``exact`` is False when attribution failed for some access (indirect
    addressing, unresolved slices); in that case both sets conservatively
    contain every pointer parameter.
    """

    reads: frozenset
    writes: frozenset
    exact: bool = True


@lru_cache(maxsize=1024)
def kernel_param_directions(kernel: Kernel) -> ParamDirections:
    """Attribute each global access to the pointer parameter(s) feeding
    its address; conservative on failure."""
    pointer_names = frozenset(p.name for p in kernel.pointer_params)
    reads, writes = set(), set()
    exact = True
    for index, inst in kernel.global_accesses():
        try:
            result = backward_slice(kernel, index)
        except NonStaticAccess:
            exact = False
            break
        touched = set()
        for j in result.instructions:
            candidate = kernel.instructions[j]
            if candidate.opcode is Opcode.LD_PARAM:
                addr = candidate.address_operand()
                if addr.base.name in pointer_names:
                    touched.add(addr.base.name)
        if not touched or not result.fully_resolved:
            exact = False
            break
        if inst.is_global_load:
            reads |= touched
        if inst.is_global_store:
            writes |= touched
    if not exact:
        return ParamDirections(pointer_names, pointer_names, exact=False)
    return ParamDirections(frozenset(reads), frozenset(writes), exact=True)


# ----------------------------------------------------------------------
# API calls
# ----------------------------------------------------------------------
@dataclass
class APICall:
    """Base class; ``call_id`` is assigned by the owning trace.

    ``stream_id`` selects the CUDA stream (command queue) the call is
    issued to; the default stream is 0.  Within a stream, baseline
    semantics process commands strictly in order; different streams are
    independent queues (paper Section II-A).
    """

    call_id: int = field(default=-1, init=False)
    stream_id: int = field(default=0, kw_only=True)

    #: short, stable event name used for trace output (tracer spans are
    #: grouped and blamed by this name; ``trace_args`` carries detail)
    trace_kind = "api"

    @property
    def trace_name(self):
        return self.trace_kind

    def trace_args(self):
        """Argument payload attached to this call's trace events."""
        return {
            "call_id": self.call_id,
            "stream": self.stream_id,
            "call": str(self),
        }

    def buffers_read(self) -> Tuple[Buffer, ...]:
        return ()

    def buffers_written(self) -> Tuple[Buffer, ...]:
        return ()

    def buffers_defined(self) -> Tuple[Buffer, ...]:
        """Buffers brought into existence by this call (malloc)."""
        return ()

    @property
    def is_kernel(self):
        return False

    @property
    def blocks_host_baseline(self):
        """Does this call block the host under default CUDA semantics?"""
        return True

    @property
    def blocks_host_blockmaestro(self):
        """Does it still block the host once BlockMaestro shifts implicit
        synchronization into hardware?  Only host-RAW hazards remain
        (device-to-host copies)."""
        return False


@dataclass
class MallocCall(APICall):
    """``cudaMalloc``: host-blocking, executes off the command queue."""

    buffer: Buffer = None
    trace_kind = "malloc"

    def buffers_defined(self):
        return (self.buffer,)

    def __str__(self):
        return "malloc({})".format(self.buffer)


@dataclass
class ManagedMallocCall(MallocCall):
    """``cudaMallocManaged``: Unified Memory allocation.

    The paper (Section III-B, "Limitations and other considerations"):
    managed buffers are allocated through a known API, so the analysis
    monitors the same address range and in-kernel accesses look exactly
    like ordinary global memory — dependency extraction is unchanged.
    The host may touch managed memory directly, so the call itself stays
    host-blocking in both semantics (page-migration setup).
    """

    trace_kind = "mallocManaged"

    @property
    def blocks_host_blockmaestro(self):
        return True

    def __str__(self):
        return "mallocManaged({})".format(self.buffer)


@dataclass
class MemcpyH2D(APICall):
    """Host-to-device copy: a device-visible *write* of the buffer."""

    trace_kind = "memcpyH2D"
    buffer: Buffer = None
    size: Optional[int] = None

    @property
    def bytes(self):
        return self.size if self.size is not None else self.buffer.size

    def buffers_written(self):
        return (self.buffer,)

    def __str__(self):
        return "memcpyH2D({}, {}B)".format(self.buffer, self.bytes)


@dataclass
class MemcpyD2H(APICall):
    """Device-to-host copy: reads the buffer; always host-blocking (the
    host consumes the data — the one implicit synchronization
    BlockMaestro must preserve)."""

    trace_kind = "memcpyD2H"
    buffer: Buffer = None
    size: Optional[int] = None

    @property
    def bytes(self):
        return self.size if self.size is not None else self.buffer.size

    def buffers_read(self):
        return (self.buffer,)

    @property
    def blocks_host_blockmaestro(self):
        return True

    def __str__(self):
        return "memcpyD2H({}, {}B)".format(self.buffer, self.bytes)


@dataclass
class DeviceSynchronize(APICall):
    """``cudaDeviceSynchronize``: baseline host barrier; BlockMaestro
    bypasses it (correctness is enforced in hardware)."""

    trace_kind = "deviceSync"

    def __str__(self):
        return "deviceSynchronize()"


@dataclass
class StreamSynchronize(APICall):
    """``cudaStreamSynchronize``: a barrier for one stream's commands.

    BlockMaestro handles it "in a similar manner to
    cudaDeviceSynchronize" (Section III-C): the host is not blocked and
    downstream commands are gated by their true data dependencies only.
    """

    trace_kind = "streamSync"

    def __str__(self):
        return "streamSynchronize(s{})".format(self.stream_id)


@dataclass
class EventRecord(APICall):
    """``cudaEventRecord``: marks a point in its stream.

    The event is "recorded" once every command issued to the stream
    before it has completed.  Non-blocking on the host.
    """

    trace_kind = "eventRecord"
    event_id: int = 0

    @property
    def blocks_host_baseline(self):
        return False

    def __str__(self):
        return "eventRecord(e{}, s{})".format(self.event_id, self.stream_id)


@dataclass
class StreamWaitEvent(APICall):
    """``cudaStreamWaitEvent``: later commands of this stream wait until
    the named event is recorded — the cross-stream ordering primitive.

    Under BlockMaestro these waits are advisory, like the synchronize
    barriers: the cross-stream *data* dependencies the event protects
    are discovered by the launch-time analysis and enforced in hardware,
    so the explicit wait adds no extra serialization.
    """

    trace_kind = "streamWaitEvent"
    event_id: int = 0

    @property
    def blocks_host_baseline(self):
        return False

    def __str__(self):
        return "streamWaitEvent(e{}, s{})".format(self.event_id, self.stream_id)


@dataclass
class KernelLaunchCall(APICall):
    """A kernel launch: asynchronous on the host.

    ``args`` maps parameter names to :class:`Buffer` objects (pointer
    params) or integers (scalars).  ``intensity`` scales the cost model's
    per-TB duration; ``tb_duration_fn`` optionally overrides the duration
    of individual thread blocks (``fn(tb_id) -> ns``), and
    ``tb_duration_scale_fn`` multiplies the cost-model duration per block
    (``fn(tb_id) -> factor``) for workloads with intrinsic load
    imbalance.

    ``dependency_override`` bypasses the static analysis for this
    launch's graph against its same-stream predecessor: either a
    :class:`~repro.core.dependency_graph.BipartiteGraph` with matching
    dimensions or a callable ``(parent_summary, child_summary) ->
    BipartiteGraph``.  This is the escape hatch for dependencies the
    launch-time analysis cannot see (input-dependent task graphs — the
    paper's future work) and the hook used to property-test the
    scheduler on arbitrary graphs.  The override must itself be a sound
    over-approximation of the true data dependencies; the runtime only
    checks its shape.
    """

    kernel: Kernel = None
    grid: Tuple[int, int, int] = (1, 1, 1)
    block: Tuple[int, int, int] = (1, 1, 1)
    args: Dict[str, Union[Buffer, int]] = field(default_factory=dict)
    intensity: float = 1.0
    tb_duration_fn: Optional[object] = None
    tb_duration_scale_fn: Optional[object] = None
    dependency_override: Optional[object] = None
    tag: str = ""

    @property
    def is_kernel(self):
        return True

    @property
    def trace_name(self):
        return "launch:{}".format(self.tag or self.kernel.name)

    def trace_args(self):
        args = super().trace_args()
        args.update(
            {"grid": list(self.grid), "block": list(self.block), "tbs": self.num_tbs}
        )
        return args

    @property
    def blocks_host_baseline(self):
        return False  # kernel launches are asynchronous by default

    @property
    def num_tbs(self):
        gx, gy, gz = self.grid
        return gx * gy * gz

    @property
    def threads_per_tb(self):
        tx, ty, tz = self.block
        return tx * ty * tz

    def arg_values(self):
        """Lower args to integers (buffer base addresses) for analysis."""
        values = {}
        for name, value in self.args.items():
            values[name] = value.base if isinstance(value, Buffer) else int(value)
        return values

    def pointer_buffers(self):
        return {
            name: value
            for name, value in self.args.items()
            if isinstance(value, Buffer)
        }

    def buffers_read(self):
        directions = kernel_param_directions(self.kernel)
        return tuple(
            buf
            for name, buf in sorted(self.pointer_buffers().items())
            if name in directions.reads
        )

    def buffers_written(self):
        directions = kernel_param_directions(self.kernel)
        return tuple(
            buf
            for name, buf in sorted(self.pointer_buffers().items())
            if name in directions.writes
        )

    def __str__(self):
        label = self.tag or self.kernel.name
        return "launch {}<<<{}, {}>>>".format(label, self.grid, self.block)
