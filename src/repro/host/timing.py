"""Host/device timing constants.

The paper's methodology (Section IV-A) fixes the host-side kernel launch
overhead at 5 microseconds, citing the EDGE measurements [27], with a
2 microsecond API-call component; the CUDA Dynamic Parallelism model of
Figure 14 uses 3 microseconds (the 5 us host launch minus the 2 us API
call).  All times here are nanoseconds.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class HostTimingModel:
    """Costs of host-side API interactions."""

    #: Host time to issue any API call into the command queue.
    api_call_ns: float = 2_000.0
    #: Device-side portion of a kernel launch (after the API call);
    #: api_call_ns + kernel_launch_device_ns = the paper's 5 us.
    kernel_launch_device_ns: float = 3_000.0
    #: Device-side launch cost for CUDA Dynamic Parallelism (Fig. 14).
    cdp_launch_ns: float = 3_000.0
    #: Host-blocking duration of cudaMalloc.
    malloc_ns: float = 3_000.0
    #: Fixed latency of any memcpy (driver + DMA setup).
    memcpy_latency_ns: float = 8_000.0
    #: Effective bandwidth for memcpy payloads.  Deliberately high: the
    #: paper's GPGPU-Sim methodology does not simulate PCIe transfers —
    #: kernels are replayed with data resident — so transfers here keep
    #: their *semantics* (blocking behaviour, dependencies, reordering
    #: opportunities) but are latency- rather than bandwidth-dominated,
    #: keeping the evaluation window comparable to the paper's.
    memcpy_gbps: float = 1_000.0

    @property
    def kernel_launch_total_ns(self):
        """End-to-end launch overhead on the critical path (5 us)."""
        return self.api_call_ns + self.kernel_launch_device_ns

    def memcpy_ns(self, num_bytes):
        return self.memcpy_latency_ns + num_bytes / self.memcpy_gbps
