"""Host-side substrate: GPU buffers, CUDA-like API traces and timing.

GPU applications interact with the device through a serialized command
queue of API calls (Section II-A of the paper).  This package models
that host side: a global-memory allocator handing out :class:`Buffer`
objects, the API call vocabulary (malloc / memcpy / kernel launch /
synchronize), ordered :class:`APITrace` objects produced by the
workload generators, and the host/device timing constants.
"""

from repro.host.buffers import Allocator, Buffer
from repro.host.api import (
    APICall,
    DeviceSynchronize,
    KernelLaunchCall,
    MallocCall,
    MemcpyD2H,
    MemcpyH2D,
    kernel_param_directions,
)
from repro.host.trace import APITrace, TraceError
from repro.host.timing import HostTimingModel

__all__ = [
    "Allocator",
    "Buffer",
    "APICall",
    "DeviceSynchronize",
    "KernelLaunchCall",
    "MallocCall",
    "MemcpyD2H",
    "MemcpyH2D",
    "kernel_param_directions",
    "APITrace",
    "TraceError",
    "HostTimingModel",
]
