"""Ordered API traces and their dependency structure."""

from dataclasses import dataclass, field
from typing import List

from repro.host.api import (
    APICall,
    DeviceSynchronize,
    EventRecord,
    KernelLaunchCall,
    MallocCall,
    StreamSynchronize,
    StreamWaitEvent,
)


class TraceError(Exception):
    """A structurally invalid API trace."""


@dataclass
class APITrace:
    """The serialized sequence of API calls an application issues.

    This corresponds to the command-queue content of the paper's
    Figure 5: program order as the host would emit it.  Execution models
    may reorder it (preserving true dependencies) before simulation.
    """

    calls: List[APICall] = field(default_factory=list)

    def append(self, call):
        call.call_id = len(self.calls)
        self.calls.append(call)
        return call

    def __iter__(self):
        return iter(self.calls)

    def __len__(self):
        return len(self.calls)

    def __getitem__(self, index):
        return self.calls[index]

    @property
    def kernel_calls(self):
        return [c for c in self.calls if c.is_kernel]

    @property
    def num_kernels(self):
        return sum(1 for c in self.calls if c.is_kernel)

    def validate(self):
        """Check that every buffer is malloc'd before first use and that
        kernel launches bind every declared parameter."""
        defined = set()
        for call in self.calls:
            for buf in call.buffers_defined():
                defined.add(buf.buffer_id)
            used = list(call.buffers_read()) + list(call.buffers_written())
            if isinstance(call, KernelLaunchCall):
                used.extend(call.pointer_buffers().values())
                declared = set(call.kernel.param_names)
                bound = set(call.args)
                missing = declared - bound
                if missing:
                    raise TraceError(
                        "kernel {} launched without arguments {}".format(
                            call.kernel.name, sorted(missing)
                        )
                    )
            for buf in used:
                if buf.buffer_id not in defined:
                    raise TraceError(
                        "call {} uses {} before allocation".format(call, buf)
                    )
        return self

    def true_dependencies(self):
        """Per call, the indices of earlier calls it truly depends on.

        See :func:`compute_true_dependencies`.
        """
        return compute_true_dependencies(self.calls)


def compute_true_dependencies(calls):
    """Per call, indices of earlier calls it truly depends on.

    Dependencies preserved (paper Section III-C, "identify the true
    data dependencies between APIs ... and reorder"):

    * RAW — the call reads a buffer an earlier call wrote;
    * WAR — the call writes a buffer an earlier call read;
    * WAW — the call writes a buffer an earlier call wrote;
    * allocation — any use of a buffer depends on its malloc;
    * synchronize — a DeviceSynchronize depends on all earlier calls
      and all later calls depend on it (it is a full barrier in program
      semantics; BlockMaestro *bypasses* the barrier at run time, but
      reordering never moves calls across it in a dependency-violating
      way).  A StreamSynchronize is the same barrier restricted to its
      stream's calls.
    """
    deps = [set() for _ in calls]
    last_writer = {}
    last_readers = {}
    malloc_of = {}
    last_sync = None
    last_stream_sync = {}
    event_record = {}
    pending_wait = {}  # stream -> latest StreamWaitEvent position
    for i, call in enumerate(calls):
        if isinstance(call, MallocCall):
            malloc_of[call.buffer.buffer_id] = i
        if last_sync is not None:
            deps[i].add(last_sync)
        stream_barrier = last_stream_sync.get(call.stream_id)
        if stream_barrier is not None:
            deps[i].add(stream_barrier)
        wait_barrier = pending_wait.get(call.stream_id)
        if wait_barrier is not None and wait_barrier != i:
            deps[i].add(wait_barrier)
        reads = call.buffers_read()
        writes = call.buffers_written()
        for buf in list(reads) + list(writes):
            if buf.buffer_id in malloc_of:
                deps[i].add(malloc_of[buf.buffer_id])
        for buf in reads:
            w = last_writer.get(buf.buffer_id)
            if w is not None:
                deps[i].add(w)
        for buf in writes:
            w = last_writer.get(buf.buffer_id)
            if w is not None:
                deps[i].add(w)
            for r in last_readers.get(buf.buffer_id, ()):
                deps[i].add(r)
        for buf in reads:
            last_readers.setdefault(buf.buffer_id, []).append(i)
        for buf in writes:
            last_writer[buf.buffer_id] = i
            last_readers[buf.buffer_id] = []
        if isinstance(call, DeviceSynchronize):
            deps[i].update(range(i))
            last_sync = i
        elif isinstance(call, StreamSynchronize):
            deps[i].update(
                j for j in range(i) if calls[j].stream_id == call.stream_id
            )
            last_stream_sync[call.stream_id] = i
        elif isinstance(call, EventRecord):
            # recorded once the stream's earlier commands complete
            deps[i].update(
                j for j in range(i) if calls[j].stream_id == call.stream_id
            )
            event_record[call.event_id] = i
        elif isinstance(call, StreamWaitEvent):
            recorded_at = event_record.get(call.event_id)
            if recorded_at is not None:
                deps[i].add(recorded_at)
            pending_wait[call.stream_id] = i
        deps[i].discard(i)
    return [sorted(d) for d in deps]
