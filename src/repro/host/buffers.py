"""Device global-memory buffers and a bump allocator.

Buffers live in a single flat byte-address space, mirroring how the
analysis identifies inter-kernel dependencies: every region of global
memory used by a kernel is allocated through an API call (``cudaMalloc``
in the paper), so the base pointer passed at launch time identifies the
region.  The allocator leaves guard gaps between buffers so that an
over-approximated footprint from one buffer can never silently alias
the next one.
"""

import bisect
from dataclasses import dataclass

from repro.analysis.intervals import Interval

#: Buffers are aligned to this many bytes (matches cudaMalloc's 256B).
ALIGNMENT = 256
#: Unmapped guard bytes between consecutive allocations.  Kept large so
#: halo reads past a buffer edge (stencil kernels read a few elements
#: before/after their logical range) land in unmapped space instead of a
#: neighbouring buffer, which would fabricate dependencies.
GUARD_GAP = 4096


@dataclass(frozen=True)
class Buffer:
    """One device allocation: ``[base, base + size)`` bytes."""

    buffer_id: int
    name: str
    size: int
    base: int

    @property
    def end(self):
        return self.base + self.size

    def interval(self):
        return Interval(self.base, self.end)

    def contains(self, address):
        return self.base <= address < self.end

    def __str__(self):
        return "{}#{}[{}B @0x{:x}]".format(self.name, self.buffer_id, self.size, self.base)


class Allocator:
    """Bump allocator over the flat device address space."""

    def __init__(self, start_address=1 << 20):
        self._next = start_address
        self._buffers = []
        self._bases = []

    def allocate(self, size, name="buf"):
        """Allocate ``size`` bytes; returns a :class:`Buffer`."""
        if size <= 0:
            raise ValueError("allocation size must be positive, got %d" % size)
        base = self._next
        buffer = Buffer(
            buffer_id=len(self._buffers), name=name, size=int(size), base=base
        )
        aligned_size = (size + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT
        self._next = base + aligned_size + GUARD_GAP
        self._buffers.append(buffer)
        self._bases.append(base)
        return buffer

    @property
    def buffers(self):
        return tuple(self._buffers)

    def buffer_at(self, address):
        """The buffer containing ``address``, or ``None``."""
        idx = bisect.bisect_right(self._bases, address) - 1
        if idx >= 0 and self._buffers[idx].contains(address):
            return self._buffers[idx]
        return None

    def buffers_overlapping(self, interval):
        """All buffers intersecting the byte interval."""
        out = []
        idx = max(0, bisect.bisect_right(self._bases, interval.lo) - 1)
        for buffer in self._buffers[idx:]:
            if buffer.base >= interval.hi:
                break
            if buffer.interval().overlaps(interval):
                out.append(buffer)
        return out
