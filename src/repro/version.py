"""Package + report-schema version surface (``repro --version``).

Every schema-versioned artifact family the toolkit emits is collected
here so one flag (and the serve daemon's ``/version`` endpoint) answers
"which schemas does this build speak":

* ``bench``     — ``repro-bench-report`` (``repro.bench.schema``)
* ``critpath``  — ``repro-critpath-report`` (``repro.obs.critpath``)
* ``fuzz``      — ``repro-fuzz-report`` (``repro.fuzz.runner``)
* ``fuzz_case`` — ``repro-fuzz-case`` (``repro.fuzz.shrink``)
* ``journal``   — ``repro-journal`` (``repro.obs.journal``)
* ``serve``     — the serve daemon's request/response envelope
* ``serve_bench`` — ``repro-serve-bench-report`` (``repro.bench.serve``)
* ``status``    — ``repro-status`` snapshots (``repro.obs.log``)
* ``telemetry`` — ``repro-telemetry-report`` (``repro.obs.telemetry``)

The ``serve`` entry is the client/daemon handshake token: a client
whose ``serve`` schema differs from the daemon's refuses the session
with a clear error instead of mis-parsing responses.
"""

#: fallback when the package metadata is unavailable (e.g. running from
#: a source checkout via PYTHONPATH); keep in sync with pyproject.toml
__version__ = "1.0.0"


def package_version():
    """The installed distribution version, else the source fallback."""
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - Python < 3.8
        return __version__
    try:
        return version("repro")
    except PackageNotFoundError:
        return __version__


def schema_versions():
    """Every report-schema version this build emits, by family name."""
    from repro.bench.schema import SCHEMA_VERSION as bench_version
    from repro.bench.serve import SERVE_BENCH_SCHEMA_VERSION
    from repro.fuzz.runner import FUZZ_REPORT_SCHEMA_VERSION
    from repro.fuzz.shrink import CASE_SCHEMA_VERSION
    from repro.obs.critpath import CRITPATH_SCHEMA_VERSION
    from repro.obs.journal import JOURNAL_SCHEMA_VERSION
    from repro.obs.log import STATUS_SCHEMA_VERSION
    from repro.obs.telemetry import TELEMETRY_SCHEMA_VERSION
    from repro.serve import SERVE_SCHEMA_VERSION

    return {
        "bench": bench_version,
        "critpath": CRITPATH_SCHEMA_VERSION,
        "fuzz": FUZZ_REPORT_SCHEMA_VERSION,
        "fuzz_case": CASE_SCHEMA_VERSION,
        "journal": JOURNAL_SCHEMA_VERSION,
        "serve": SERVE_SCHEMA_VERSION,
        "serve_bench": SERVE_BENCH_SCHEMA_VERSION,
        "status": STATUS_SCHEMA_VERSION,
        "telemetry": TELEMETRY_SCHEMA_VERSION,
    }


def version_lines():
    """The ``repro --version`` text: package line + one schema line."""
    schemas = schema_versions()
    return [
        "repro {}".format(package_version()),
        "schemas: " + " ".join(
            "{}={}".format(name, schemas[name]) for name in sorted(schemas)
        ),
    ]
