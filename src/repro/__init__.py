"""BlockMaestro (ISCA 2021) — a complete Python reproduction.

Programmer-transparent task-based execution for GPUs: kernel
pre-launching, command-queue reordering, launch-time extraction of
thread-block-level dependency graphs, and hardware dependency
resolution — plus every substrate the paper's evaluation needs (a
mini-PTX frontend, a thread-block-granularity GPU simulator, a
CUDA-like host model, the Table II benchmark suite, and the
CDP/Wireframe comparison models).

Quick tour::

    from repro import AppBuilder, BlockMaestroRuntime
    from repro.models import SerializedBaseline, BlockMaestroModel

    builder = AppBuilder("app")
    x = builder.alloc("X", 1 << 20)
    y = builder.alloc("Y", 1 << 20)
    builder.h2d(x)
    builder.launch(PTX_SOURCE, grid=128, block=256, args={"IN0": x, "OUT": y})
    app = builder.build()

    runtime = BlockMaestroRuntime()
    plan = runtime.plan(app, reorder=True, window=2)
    stats = BlockMaestroModel(window=2).run(plan)

See README.md for the full walkthrough, DESIGN.md for the paper-to-
module map and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.analysis.analyzer import LaunchConfig, analyze_kernel
from repro.core.dependency_graph import BipartiteGraph, build_bipartite_graph
from repro.core.patterns import DependencyPattern, classify_pattern
from repro.core.policy import SchedulingPolicy
from repro.core.runtime import BlockMaestroRuntime, RuntimePlan
from repro.ptx.parser import parse_kernel, parse_module
from repro.sim.config import GPUConfig
from repro.sim.stats import RunStats
from repro.workloads.base import AppBuilder, Application

__version__ = "1.0.0"

__all__ = [
    "AppBuilder",
    "Application",
    "BipartiteGraph",
    "BlockMaestroRuntime",
    "DependencyPattern",
    "GPUConfig",
    "LaunchConfig",
    "RunStats",
    "RuntimePlan",
    "SchedulingPolicy",
    "analyze_kernel",
    "build_bipartite_graph",
    "classify_pattern",
    "parse_kernel",
    "parse_module",
    "__version__",
]
