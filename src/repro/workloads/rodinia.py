"""Rodinia-derived workloads: GAUSSIAN, HS (Hotspot), LUD, NW, PATH.

These are the iterative / wavefront applications of the paper's Table
II, with matching kernel-launch counts:

* GAUSSIAN — 255 elimination steps x (Fan1, Fan2) = 510 kernels;
* HS — 10 ping-pong 2-D stencil steps;
* LUD — 15 x (diagonal, perimeter, internal) + final diagonal = 46;
* NW — 255 anti-diagonal kernels over a 128x128 block grid;
* PATH — 5 ping-pong 1-D stencil rows.
"""

from repro.workloads import ptxgen
from repro.workloads.base import AppBuilder
from repro.workloads.ptxgen import Emitter

_ELEM = 4


def build_gaussian(n=256, stride=512, intensity=3.0):
    """Gaussian elimination: per pivot ``t`` a small Fan1 kernel computes
    the column of multipliers and a row-per-block Fan2 kernel updates
    the trailing submatrix.

    Fan1 -> Fan2 is 1-to-n (each row block reads its multiplier from the
    single Fan1 block); Fan2 -> next Fan1 has in-degree equal to the
    number of remaining rows, which exceeds the 6-bit parent counter for
    early pivots and collapses to fully connected — the mechanism behind
    GAUSSIAN's near-zero encoded storage in Table III.

    The matrix is stored with a padded ``stride`` so Fan1's fixed
    256-thread block can overshoot the logical ``n`` rows without
    touching neighbouring buffers.
    """
    if stride < n + 256:
        raise ValueError("stride must cover Fan1 block overshoot")
    b = AppBuilder("gaussian")
    a = b.alloc("A", stride * stride * _ELEM)
    m = b.alloc("M", stride * _ELEM)
    b.h2d(a)
    fan1 = ptxgen.gaussian_fan1("gauss_fan1")
    fan2 = ptxgen.gaussian_fan2("gauss_fan2")
    for t in range(n - 1):
        b.launch(
            fan1,
            grid=1,
            block=256,
            args={"A": a, "M": m, "N": stride, "T": t},
            intensity=intensity,
            tag="fan1",
        )
        rows = n - 1 - t
        b.launch(
            fan2,
            grid=(1, rows),
            block=256,
            args={"A": a, "M": m, "N": stride, "T": t},
            intensity=intensity,
            tag="fan2",
        )
    b.d2h(a)
    return b.build(
        table2_kernels=2 * (n - 1), table2_patterns=(4, 5), matrix=n
    )


def build_hotspot(iterations=10, row_elems=256, rows_of_blocks=256, intensity=1.0):
    """Hotspot: iterative 2-D thermal stencil, ping-ponging two
    temperature grids and reading a static power map.  The ``i +- width``
    halo reads shared between adjacent row blocks give the overlapped
    pattern (6)."""
    b = AppBuilder("hs")
    elems = rows_of_blocks * 256
    t_in = b.alloc("TEMP0", elems * _ELEM)
    t_out = b.alloc("TEMP1", elems * _ELEM)
    power = b.alloc("POWER", elems * _ELEM)
    b.h2d(t_in)
    b.h2d(power)
    kernel = ptxgen.stencil2d("hotspot_step", width=row_elems, alu=4)
    src, dst = t_in, t_out
    for _ in range(iterations):
        b.launch(
            kernel,
            grid=rows_of_blocks,
            block=256,
            args={"IN": src, "POWER": power, "OUT": dst},
            intensity=intensity,
            tag="hotspot",
        )
        src, dst = dst, src
    b.d2h(src)
    return b.build(
        table2_kernels=iterations, table2_patterns=(6,), iterations=iterations
    )


# ----------------------------------------------------------------------
# LUD tile kernels
# ----------------------------------------------------------------------
def _lud_diagonal(tile_elems):
    """Factor the diagonal tile in place (single block)."""
    e = Emitter("lud_diagonal", [("A", "u64"), ("NB", "u32"), ("T", "u32")])
    a_reg, nb_reg, t_reg = e.load_params("A", "NB", "T")
    # tile (T, T) base element offset: (T*NB + T) * tile_elems
    tid_idx = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(tid_idx, t_reg, nb_reg, t_reg))
    base = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(base, tid_idx, tile_elems))
    t = e.reg()
    e.emit("mov.u32 {}, %tid.x;".format(t))
    idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(idx, base, t))
    val = e.load_f32(a_reg, idx)
    upd = e.alu_chain(val, 6)
    e.store_f32(a_reg, idx, upd)
    return e.render()


def _lud_perimeter(tile_elems):
    """Update row tile (T, T+1+bx) and column tile (T+1+bx, T) from the
    diagonal tile; one block per row/column pair."""
    e = Emitter("lud_perimeter", [("A", "u64"), ("NB", "u32"), ("T", "u32")])
    a_reg, nb_reg, t_reg = e.load_params("A", "NB", "T")
    bx = e.reg()
    e.emit("mov.u32 {}, %ctaid.x;".format(bx))
    j = e.reg()
    e.emit("add.u32 {}, {}, 1;".format(j, bx))
    col = e.reg()
    e.emit("add.u32 {}, {}, {};".format(col, j, t_reg))
    t = e.reg()
    e.emit("mov.u32 {}, %tid.x;".format(t))
    # diagonal tile read
    diag_tile = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(diag_tile, t_reg, nb_reg, t_reg))
    diag_base = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(diag_base, diag_tile, tile_elems))
    diag_idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(diag_idx, diag_base, t))
    diag_val = e.load_f32(a_reg, diag_idx)
    # row tile (T, col)
    row_tile = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(row_tile, t_reg, nb_reg, col))
    row_base = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(row_base, row_tile, tile_elems))
    row_idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(row_idx, row_base, t))
    row_val = e.load_f32(a_reg, row_idx)
    new_row = e.combine([row_val, diag_val])
    new_row = e.alu_chain(new_row, 3)
    e.store_f32(a_reg, row_idx, new_row)
    # column tile (col, T)
    col_tile = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(col_tile, col, nb_reg, t_reg))
    col_base = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(col_base, col_tile, tile_elems))
    col_idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(col_idx, col_base, t))
    col_val = e.load_f32(a_reg, col_idx)
    new_col = e.combine([col_val, diag_val])
    new_col = e.alu_chain(new_col, 3)
    e.store_f32(a_reg, col_idx, new_col)
    return e.render()


def _lud_internal(tile_elems):
    """Update interior tile (T+1+by, T+1+bx) from its perimeter row and
    column tiles; 2-D grid over the trailing submatrix."""
    e = Emitter("lud_internal", [("A", "u64"), ("NB", "u32"), ("T", "u32")])
    a_reg, nb_reg, t_reg = e.load_params("A", "NB", "T")
    bx = e.reg()
    e.emit("mov.u32 {}, %ctaid.x;".format(bx))
    by = e.reg()
    e.emit("mov.u32 {}, %ctaid.y;".format(by))
    col = e.reg()
    e.emit("add.u32 {}, {}, {};".format(col, bx, t_reg))
    col1 = e.reg()
    e.emit("add.u32 {}, {}, 1;".format(col1, col))
    row = e.reg()
    e.emit("add.u32 {}, {}, {};".format(row, by, t_reg))
    row1 = e.reg()
    e.emit("add.u32 {}, {}, 1;".format(row1, row))
    t = e.reg()
    e.emit("mov.u32 {}, %tid.x;".format(t))
    # perimeter row tile (T, col1)
    prow_tile = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(prow_tile, t_reg, nb_reg, col1))
    prow_base = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(prow_base, prow_tile, tile_elems))
    prow_idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(prow_idx, prow_base, t))
    prow_val = e.load_f32(a_reg, prow_idx)
    # perimeter column tile (row1, T)
    pcol_tile = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(pcol_tile, row1, nb_reg, t_reg))
    pcol_base = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(pcol_base, pcol_tile, tile_elems))
    pcol_idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(pcol_idx, pcol_base, t))
    pcol_val = e.load_f32(a_reg, pcol_idx)
    # own tile (row1, col1): read-modify-write
    own_tile = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(own_tile, row1, nb_reg, col1))
    own_base = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(own_base, own_tile, tile_elems))
    own_idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(own_idx, own_base, t))
    own_val = e.load_f32(a_reg, own_idx)
    acc = e.combine([own_val, prow_val, pcol_val])
    acc = e.alu_chain(acc, 2)
    e.store_f32(a_reg, own_idx, acc)
    return e.render()


def build_lud(tiles=16, tile_elems=256, intensity=2.0):
    """Blocked LU decomposition: per block step a 1-block diagonal
    factorization, a strip of perimeter blocks and a shrinking square of
    interior blocks — 46 kernels for a 16x16 tile grid.

    The tiny diagonal kernel followed by progressively larger kernels is
    the paper's showcase for fine-grain run-ahead (only 1-to-1/1-to-n/
    n-to-1-style dependencies, no full barriers needed).
    """
    b = AppBuilder("lud")
    a = b.alloc("A", tiles * tiles * tile_elems * _ELEM)
    b.h2d(a)
    diag = _lud_diagonal(tile_elems)
    perimeter = _lud_perimeter(tile_elems)
    internal = _lud_internal(tile_elems)
    for t in range(tiles - 1):
        b.launch(
            diag,
            grid=1,
            block=tile_elems,
            args={"A": a, "NB": tiles, "T": t},
            intensity=intensity,
            tag="lud_diag",
        )
        rem = tiles - 1 - t
        b.launch(
            perimeter,
            grid=rem,
            block=tile_elems,
            args={"A": a, "NB": tiles, "T": t},
            intensity=intensity,
            tag="lud_perim",
        )
        b.launch(
            internal,
            grid=(rem, rem),
            block=tile_elems,
            args={"A": a, "NB": tiles, "T": t},
            intensity=intensity,
            tag="lud_inter",
        )
    b.launch(
        diag,
        grid=1,
        block=tile_elems,
        args={"A": a, "NB": tiles, "T": tiles - 1},
        intensity=intensity,
        tag="lud_diag",
    )
    b.d2h(a)
    return b.build(
        table2_kernels=3 * (tiles - 1) + 1,
        table2_patterns=(3, 4, 5),
        tiles=tiles,
    )


def build_nw(block_diagonals=128, block_threads=256, intensity=2.0):
    """Needleman-Wunsch: one kernel per anti-diagonal of the block grid
    (2*128 - 1 = 255 kernels), each block reading its top and left
    neighbour blocks from the previous diagonal.

    Diagonal results rotate through three buffers (a block only needs
    its immediate predecessor diagonal).
    """
    b = AppBuilder("nw")
    max_blocks = block_diagonals
    bufs = [
        b.alloc("DIAG{}".format(i), max_blocks * block_threads * _ELEM)
        for i in range(3)
    ]
    wall = b.alloc("SEQ", 2 * max_blocks * block_threads * _ELEM)
    b.h2d(bufs[0])
    b.h2d(wall)
    init = ptxgen.elementwise("nw_init", num_inputs=1, alu=1)
    kernel = ptxgen.wavefront_block("nw_diag", parents=2, alu=3)
    total = 2 * block_diagonals - 1
    # diagonal 0 is computed by an init kernel from the input sequences
    b.launch(
        init,
        grid=1,
        block=block_threads,
        args={"IN0": wall, "OUT": bufs[0]},
        intensity=intensity,
        tag="nw_d0",
    )
    for d in range(1, total):
        size = min(d + 1, block_diagonals, total - d)
        growing = d < block_diagonals
        b.launch(
            kernel,
            grid=size,
            block=block_threads,
            args={
                "PREV": bufs[(d - 1) % 3],
                "CUR": bufs[d % 3],
                "SHIFT": 0 if growing else 1,
            },
            intensity=intensity,
            tag="nw_d{}".format(d),
        )
    b.d2h(bufs[(total - 1) % 3])
    return b.build(
        table2_kernels=total,
        table2_patterns=(4, 5),
        block_diagonals=block_diagonals,
    )


def build_pathfinder(iterations=5, cols_of_blocks=256, intensity=1.0):
    """PathFinder: dynamic-programming over grid rows; each step is a
    radius-1 1-D stencil against the previous row plus the static wall
    costs — the overlapped pattern (6)."""
    b = AppBuilder("path")
    elems = cols_of_blocks * 256
    src = b.alloc("ROW0", elems * _ELEM)
    dst = b.alloc("ROW1", elems * _ELEM)
    wall = b.alloc("WALL", elems * _ELEM)
    b.h2d(src)
    b.h2d(wall)
    kernel = ptxgen.stencil1d("path_step", radius=1, alu=2, extra_input="WALL")
    a, bb = src, dst
    for _ in range(iterations):
        b.launch(
            kernel,
            grid=cols_of_blocks,
            block=256,
            args={"IN": a, "WALL": wall, "OUT": bb},
            intensity=intensity,
            tag="path",
        )
        a, bb = bb, a
    b.d2h(a)
    return b.build(
        table2_kernels=iterations, table2_patterns=(6,), iterations=iterations
    )


def build_backprop(in_blocks=64, hidden=16, intensity=1.0):
    """Back Propagation: one forward-layer reduction per hidden unit
    (each hidden neuron sums its input column — pattern 5, n-to-1),
    then a weight-adjust pass scaling each unit's weight column by its
    error delta (pattern 4, scalar broadcast).  The per-unit reduce ->
    scale pairs are what BlockMaestro's TB-level dependency resolution
    overlaps; the serialized baseline pays a full kernel boundary per
    unit."""
    b = AppBuilder("backprop")
    elems = in_blocks * 256
    per_unit = elems // hidden
    inp = b.alloc("INPUT", elems * _ELEM)
    weights = b.alloc("WEIGHTS", elems * _ELEM)
    partial = b.alloc("HIDDEN", hidden * _ELEM)
    delta = b.alloc("DELTA", hidden * _ELEM)
    b.h2d(inp)
    b.h2d(weights)
    forward = ptxgen.reduce_columns("bpnn_layerforward")
    adjust = ptxgen.broadcast_scale("bpnn_adjust_weights")
    for h in range(hidden):
        b.launch(
            forward,
            grid=1,
            block=1,
            args={
                "IN": inp,
                "OUT": partial,
                "STRIDE": 1,
                "COUNT": per_unit,
                "OFF": h * per_unit,
                "OUTOFF": h,
            },
            intensity=intensity,
            tag="bpnn_layerforward",
        )
    b.d2h(partial)
    b.h2d(delta)  # host computes the output error deltas
    blocks_per_unit = max(1, in_blocks // hidden)
    for h in range(hidden):
        b.launch(
            adjust,
            grid=blocks_per_unit,
            block=256,
            args={
                "IN": weights,
                "SCALARS": delta,
                "OUT": weights,
                "SIDX": h,
                "OFF": h * blocks_per_unit * 256,
            },
            intensity=intensity,
            tag="bpnn_adjust_weights",
        )
    b.d2h(weights)
    return b.build(
        table2_kernels=2, table2_patterns=(4, 5), hidden_units=hidden
    )
