"""Multi-stream applications (paper Section III-C).

The same computation — ``pipelines`` independent chains of dependent
kernels — expressed two ways:

* **single-stream**: everything interleaved into the default stream, the
  way unported legacy code is written.  The baseline serializes all of
  it; BlockMaestro's analysis discovers that interleaved chains are
  mutually independent and overlaps them automatically (the paper's
  remark on BICG/MVT: "BlockMaestro can gain the benefit of executing
  independent concurrent kernels across streams automatically").
* **multi-stream**: one CUDA stream per chain, the hand-optimized
  version a programmer would write.  Even the baseline overlaps the
  chains (streams are independent queues); BlockMaestro additionally
  pre-launches and fine-grain-overlaps *within* each stream.
"""

from repro.workloads import ptxgen
from repro.workloads.base import AppBuilder

_THREADS = 256
_ELEM = 4


def build_pipelines(
    pipelines=3,
    stages=4,
    tbs=64,
    use_streams=False,
    intensity=4.0,
    with_stream_sync=False,
):
    """``pipelines`` independent producer->consumer chains.

    With ``use_streams`` each chain gets its own stream; otherwise all
    launches interleave in the default stream (chain 0 stage 0, chain 1
    stage 0, ..., chain 0 stage 1, ...), the worst case for a serialized
    queue.  ``with_stream_sync`` appends a ``cudaStreamSynchronize`` per
    stream before the result copies, as stream code typically does.
    """
    name = "pipelines-{}x{}-{}".format(
        pipelines, stages, "streams" if use_streams else "single"
    )
    b = AppBuilder(name)
    kernel = ptxgen.elementwise("pipe_stage", num_inputs=1, alu=3)
    elems = tbs * _THREADS
    chains = []
    for p in range(pipelines):
        stream = p + 1 if use_streams else 0
        src = b.alloc("IN{}".format(p), elems * _ELEM)
        b.h2d(src, stream=stream)
        chains.append({"stream": stream, "current": src, "index": p})
    for stage in range(stages):
        for chain in chains:
            out = b.alloc(
                "C{}S{}".format(chain["index"], stage), elems * _ELEM
            )
            b.launch(
                kernel,
                grid=tbs,
                block=_THREADS,
                args={"IN0": chain["current"], "OUT": out},
                intensity=intensity,
                tag="c{}s{}".format(chain["index"], stage),
                stream=chain["stream"],
            )
            chain["current"] = out
    for chain in chains:
        if use_streams and with_stream_sync:
            b.stream_sync(chain["stream"])
        b.d2h(chain["current"], stream=chain["stream"])
    return b.build(
        pipelines=pipelines, stages=stages, use_streams=use_streams
    )
