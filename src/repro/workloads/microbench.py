"""Interconnectivity microbenchmark (paper Fig. 12).

Two equal-size kernels derived from VectorAdd.  The producer writes its
output in flat per-block slices (a 1-to-1 layout); the consumer reads
the producer's output in *groups* of ``degree`` block-slices, realizing
the n-group fully connected pattern whose group size is the paper's
"dependency degree" knob.  ``degree == 1`` is the plain 1-to-1
VectorAdd pair.
"""

from repro.workloads import ptxgen
from repro.workloads.base import AppBuilder

_ELEM = 4
_THREADS = 256


def build_vecadd_pair(num_tbs=512, degree=1, intensity=8.0):
    """Producer/consumer VectorAdd pair with dependency degree ``degree``.

    ``num_tbs`` is the per-kernel thread-block count (the paper sweeps
    128..2048); ``degree`` blocks of the producer feed each group of
    ``degree`` consumer blocks (1 <= degree <= num_tbs).  Both kernels
    perform the same amount of work — only the consumer's read
    *footprint* widens with the degree, exactly like the paper's
    artificially-introduced n-group dependencies.
    """
    if num_tbs % max(degree, 1):
        raise ValueError("degree must divide num_tbs")
    b = AppBuilder("vecadd-deg{}-n{}".format(degree, num_tbs))
    elems = num_tbs * _THREADS
    x = b.alloc("X", elems * _ELEM)
    tmp = b.alloc("TMP", elems * _ELEM)
    out = b.alloc("OUTBUF", elems * _ELEM)
    b.h2d(x)
    producer = ptxgen.elementwise("vadd_produce", num_inputs=1, alu=2)
    consumer = ptxgen.group_sample(
        "vadd_consume_deg{}".format(degree),
        group_span_elems=degree * _THREADS,
        stride_elems=degree,
        alu=2,
    )
    b.launch(
        producer,
        grid=num_tbs,
        block=_THREADS,
        args={"IN0": x, "OUT": tmp},
        intensity=intensity,
        tag="producer",
    )
    b.launch(
        consumer,
        grid=(degree, num_tbs // degree),
        block=_THREADS,
        args={"IN": tmp, "OUT": out},
        intensity=intensity,
        tag="consumer",
    )
    b.d2h(out)
    return b.build(degree=degree, num_tbs=num_tbs)
