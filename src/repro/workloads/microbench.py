"""Interconnectivity microbenchmark (paper Fig. 12).

Two equal-size kernels derived from VectorAdd.  The producer writes its
output in flat per-block slices (a 1-to-1 layout); the consumer reads
the producer's output in *groups* of ``degree`` block-slices, realizing
the n-group fully connected pattern whose group size is the paper's
"dependency degree" knob.  ``degree == 1`` is the plain 1-to-1
VectorAdd pair.

This module also hosts the ``analysis-fastpath`` microbench workloads
(:func:`fastpath_specs`): large-grid producer/consumer pairs, one per
Table-I pattern family, sized so the dependency-graph construction —
not parsing or simulation — dominates a cold pass.  They exist to
measure the :mod:`repro.analysis.fastpath` tiers against the scalar
reference builder and are deliberately *hidden*: resolvable by name
through :func:`repro.workloads.get_workload`, but absent from
``all_workloads()`` / ``--filter`` so the paper's Table-II suites stay
exactly the paper's.

The ``fast-engine`` microbench workloads (:func:`engine_specs`) are the
simulation-phase mirror image: long kernel chains whose dependency
analysis is closed-form cheap but whose thread-block population makes
the scalar event loop the dominant cost — the measurement bed for the
:mod:`repro.models.fastengine` tiers (``repro bench engine``).  They
are hidden for the same reason.
"""

from repro.workloads import ptxgen
from repro.workloads.base import AppBuilder

_ELEM = 4
_THREADS = 256


def build_vecadd_pair(num_tbs=512, degree=1, intensity=8.0):
    """Producer/consumer VectorAdd pair with dependency degree ``degree``.

    ``num_tbs`` is the per-kernel thread-block count (the paper sweeps
    128..2048); ``degree`` blocks of the producer feed each group of
    ``degree`` consumer blocks (1 <= degree <= num_tbs).  Both kernels
    perform the same amount of work — only the consumer's read
    *footprint* widens with the degree, exactly like the paper's
    artificially-introduced n-group dependencies.
    """
    if num_tbs % max(degree, 1):
        raise ValueError("degree must divide num_tbs")
    b = AppBuilder("vecadd-deg{}-n{}".format(degree, num_tbs))
    elems = num_tbs * _THREADS
    x = b.alloc("X", elems * _ELEM)
    tmp = b.alloc("TMP", elems * _ELEM)
    out = b.alloc("OUTBUF", elems * _ELEM)
    b.h2d(x)
    producer = ptxgen.elementwise("vadd_produce", num_inputs=1, alu=2)
    consumer = ptxgen.group_sample(
        "vadd_consume_deg{}".format(degree),
        group_span_elems=degree * _THREADS,
        stride_elems=degree,
        alu=2,
    )
    b.launch(
        producer,
        grid=num_tbs,
        block=_THREADS,
        args={"IN0": x, "OUT": tmp},
        intensity=intensity,
        tag="producer",
    )
    b.launch(
        consumer,
        grid=(degree, num_tbs // degree),
        block=_THREADS,
        args={"IN": tmp, "OUT": out},
        intensity=intensity,
        tag="consumer",
    )
    b.d2h(out)
    return b.build(degree=degree, num_tbs=num_tbs)


# ----------------------------------------------------------------------
# analysis-fastpath microbench workloads (hidden registry extras)
# ----------------------------------------------------------------------
def _chain_pair(name, producer, consumer, num_tbs, consumer_grid=None,
                consumer_args=None, intensity=4.0, **meta):
    """Producer writes TMP in flat blocks; consumer reads it."""
    b = AppBuilder(name)
    elems = num_tbs * _THREADS
    x = b.alloc("X", elems * _ELEM)
    tmp = b.alloc("TMP", elems * _ELEM)
    out = b.alloc("OUTBUF", elems * _ELEM)
    b.h2d(x)
    b.launch(
        producer,
        grid=num_tbs,
        block=_THREADS,
        args={"IN0": x, "OUT": tmp},
        intensity=intensity,
        tag="producer",
    )
    args = {"IN": tmp, "OUT": out}
    args.update(consumer_args or {})
    b.launch(
        consumer,
        grid=consumer_grid if consumer_grid is not None else num_tbs,
        block=_THREADS,
        args=args,
        intensity=intensity,
        tag="consumer",
    )
    b.d2h(out)
    return b.build(num_tbs=num_tbs, **meta)


def build_fastpath_1to1(num_tbs=32768, intensity=4.0):
    """Flat map over flat map: Table I's 1-to-1 pattern at scale.

    The closed-form tier proves both footprints slide at the block
    stride and emits the diagonal analytically.
    """
    return _fastpath_map(
        num_tbs, consumer_name="fp_map_1to1", intensity=intensity
    )


def _fastpath_map(num_tbs, consumer_name, radius=None, intensity=4.0):
    b = AppBuilder("{}-n{}".format(consumer_name.replace("_", "-"), num_tbs))
    elems = num_tbs * _THREADS
    x = b.alloc("X", elems * _ELEM)
    # halo padding keeps stencil reads in range without guard code
    pad = (radius or 0) * _ELEM
    tmp = b.alloc("TMP", elems * _ELEM + 2 * pad)
    out = b.alloc("OUTBUF", elems * _ELEM)
    b.h2d(x)
    producer = ptxgen.elementwise("fp_produce", num_inputs=1, alu=2)
    b.launch(
        producer, grid=num_tbs, block=_THREADS,
        args={"IN0": x, "OUT": tmp}, intensity=intensity, tag="producer",
    )
    if radius:
        consumer = ptxgen.stencil1d(consumer_name, radius=radius, alu=2)
        args = {"IN": tmp, "OUT": out}
    else:
        consumer = ptxgen.elementwise(consumer_name, num_inputs=1, alu=2)
        args = {"IN0": tmp, "OUT": out}
    b.launch(
        consumer, grid=num_tbs, block=_THREADS,
        args=args, intensity=intensity, tag="consumer",
    )
    b.d2h(out)
    return b.build(num_tbs=num_tbs)


def build_fastpath_stencil(num_tbs=16384, radius=2, intensity=4.0):
    """Flat producer into a radius-``radius`` stencil: the *overlapped*
    pattern — each consumer block depends on a sliding window of
    producer blocks; the closed-form tier emits the windows in O(N)."""
    return _fastpath_map(
        num_tbs, consumer_name="fp_stencil", radius=radius,
        intensity=intensity,
    )


def build_fastpath_nto1(num_tbs=16384, fan_in=8, intensity=4.0):
    """``fan_in`` producer blocks feed each consumer block (n-to-1).

    The consumer is a 1-D-grid group reader (grid ``(1, G)``): its read
    window slides linearly in the block id, so the closed-form tier
    still applies — unlike the 2-D n-group variant below.
    """
    if num_tbs % fan_in:
        raise ValueError("fan_in must divide num_tbs")
    groups = num_tbs // fan_in
    consumer = ptxgen.group_read(
        "fp_nto1", group_span_elems=fan_in * _THREADS, alu=2
    )
    return _chain_pair(
        "fp-nto1-n{}".format(num_tbs),
        ptxgen.elementwise("fp_produce", num_inputs=1, alu=2),
        consumer,
        num_tbs,
        consumer_grid=(1, groups),
        intensity=intensity,
        fan_in=fan_in,
    )


def build_fastpath_fc(num_tbs=1024, intensity=4.0):
    """Every consumer block reads the whole producer output — Table I's
    fully connected pattern.  The reference builder materializes all
    N*M candidate edges before collapsing; the closed-form tier answers
    in O(1) from the zero-stride shapes."""
    consumer = ptxgen.full_read_map("fp_fc", alu=2)
    return _chain_pair(
        "fp-fc-n{}".format(num_tbs),
        ptxgen.elementwise("fp_produce", num_inputs=1, alu=2),
        consumer,
        num_tbs,
        consumer_args={
            "SPAN": num_tbs * _THREADS,
            "INOFF": 0,
            "OUTOFF": 0,
        },
        intensity=intensity,
    )


def build_fastpath_ngroup(num_tbs=8192, degree=16, intensity=4.0):
    """The Fig. 12 n-group pair on a 2-D grid: the group shift is *not*
    linear in the linearized block id, so the closed-form prover
    declines and this lands in the vectorized tier."""
    return build_vecadd_pair(
        num_tbs=num_tbs, degree=degree, intensity=intensity
    )


# ----------------------------------------------------------------------
# fast-engine microbench workloads (hidden registry extras)
# ----------------------------------------------------------------------
def build_engine_chain(num_kernels=12, num_tbs=4096, intensity=4.0):
    """A long 1-to-1 map chain over ping-pong buffers.

    Dependency analysis collapses every hop to the closed-form Table-I
    diagonal, but the scalar engine still pays ``num_kernels * num_tbs``
    per-block event lifecycles — exactly the cost the fast engine tiers
    remove.
    """
    b = AppBuilder("eng-chain-k{}-n{}".format(num_kernels, num_tbs))
    elems = num_tbs * _THREADS
    x = b.alloc("X", elems * _ELEM)
    bufs = [b.alloc("T{}".format(i), elems * _ELEM) for i in range(2)]
    out = b.alloc("OUTBUF", elems * _ELEM)
    b.h2d(x)
    src = x
    for i in range(num_kernels):
        dst = out if i == num_kernels - 1 else bufs[i % 2]
        kernel = ptxgen.elementwise(
            "eng_map{}".format(i), num_inputs=1, alu=2
        )
        b.launch(
            kernel, grid=num_tbs, block=_THREADS,
            args={"IN0": src, "OUT": dst}, intensity=intensity,
            tag="map{}".format(i),
        )
        src = dst
    b.d2h(out)
    return b.build(num_kernels=num_kernels, num_tbs=num_tbs)


def build_engine_wide(num_tbs=65536, intensity=4.0):
    """One producer/consumer map pair with a very wide grid: the wave
    count per kernel is large, so per-event heap traffic — not launch
    bookkeeping — dominates the scalar simulate phase."""
    return _fastpath_map(
        num_tbs, consumer_name="eng_wide_map", intensity=intensity
    )


def build_engine_fc(num_kernels=6, num_tbs=512, intensity=4.0):
    """A chain of full-buffer readers: every hop is fully connected, so
    fine-grain models gate children on the whole parent kernel and the
    fast tiers cover the entire roster on this workload."""
    b = AppBuilder("eng-fc-k{}-n{}".format(num_kernels, num_tbs))
    elems = num_tbs * _THREADS
    x = b.alloc("X", elems * _ELEM)
    bufs = [b.alloc("T{}".format(i), elems * _ELEM) for i in range(2)]
    out = b.alloc("OUTBUF", elems * _ELEM)
    b.h2d(x)
    first = ptxgen.elementwise("eng_fc_produce", num_inputs=1, alu=2)
    b.launch(
        first, grid=num_tbs, block=_THREADS,
        args={"IN0": x, "OUT": bufs[0]}, intensity=intensity,
        tag="producer",
    )
    src = bufs[0]
    for i in range(1, num_kernels):
        dst = out if i == num_kernels - 1 else bufs[i % 2]
        kernel = ptxgen.full_read_map("eng_fc{}".format(i), alu=2)
        b.launch(
            kernel, grid=num_tbs, block=_THREADS,
            args={
                "IN": src, "OUT": dst,
                "SPAN": elems, "INOFF": 0, "OUTOFF": 0,
            },
            intensity=intensity,
            tag="fc{}".format(i),
        )
        src = dst
    b.d2h(out)
    return b.build(num_kernels=num_kernels, num_tbs=num_tbs)


def engine_specs():
    """Hidden :class:`~repro.workloads.registry.WorkloadSpec` rows for
    the ``fast-engine`` microbench suite (``repro bench engine``):
    simulation-heavy chains where the simulate phase dominates a cold
    pass, so the :mod:`repro.models.fastengine` tiers carry the win."""
    from repro.workloads.registry import WorkloadSpec

    return (
        WorkloadSpec(
            "eng-chain", "engine microbench: long 1-to-1 map chain",
            "fast-engine", 12, (2,), build_engine_chain,
            small_overrides={"num_kernels": 4, "num_tbs": 256},
        ),
        WorkloadSpec(
            "eng-wide", "engine microbench: very wide map pair",
            "fast-engine", 2, (2,), build_engine_wide,
            small_overrides={"num_tbs": 512},
        ),
        WorkloadSpec(
            "eng-fc", "engine microbench: fully connected hop chain",
            "fast-engine", 6, (1,), build_engine_fc,
            small_overrides={"num_kernels": 3, "num_tbs": 64},
        ),
    )


def fastpath_specs():
    """Hidden :class:`~repro.workloads.registry.WorkloadSpec` rows for
    the ``analysis-fastpath`` microbench suite (``repro bench
    fastpath``), one per Table-I pattern family."""
    from repro.workloads.registry import WorkloadSpec

    return (
        WorkloadSpec(
            "fp-1to1", "fastpath microbench: 1-to-1 map chain",
            "analysis-fastpath", 2, (3,), build_fastpath_1to1,
            small_overrides={"num_tbs": 512},
        ),
        WorkloadSpec(
            "fp-stencil", "fastpath microbench: overlapped stencil windows",
            "analysis-fastpath", 2, (6,), build_fastpath_stencil,
            small_overrides={"num_tbs": 512},
        ),
        WorkloadSpec(
            "fp-nto1", "fastpath microbench: n-to-1 group reader",
            "analysis-fastpath", 2, (5,), build_fastpath_nto1,
            small_overrides={"num_tbs": 512},
        ),
        WorkloadSpec(
            "fp-fc", "fastpath microbench: fully connected full-buffer reads",
            "analysis-fastpath", 2, (1,), build_fastpath_fc,
            small_overrides={"num_tbs": 128},
        ),
        WorkloadSpec(
            "fp-ngroup", "fastpath microbench: 2-D n-group (vectorized tier)",
            "analysis-fastpath", 2, (2,), build_fastpath_ngroup,
            small_overrides={"num_tbs": 512, "degree": 8},
        ),
    )
