"""SHOC-derived workload: batched FFT (60 kernels).

Three independent FFT batches, each: one preparation kernel, eighteen
radix-2 Stockham butterfly stages ping-ponging two work buffers
(1-to-1 dependencies between consecutive stages — Table I pattern 3),
and one final strided reduction/normalization (n-to-1, pattern 5).
Batch boundaries are independent (pattern 7).
"""

from repro.workloads import ptxgen
from repro.workloads.base import AppBuilder

_ELEM = 4
_THREADS = 256


def build_fft(batches=3, stages=18, half_elems=16384, intensity=1.0):
    """60 kernels = batches * (1 prep + stages + 1 reduce)."""
    if half_elems % _THREADS:
        raise ValueError("half_elems must be a multiple of %d" % _THREADS)
    b = AppBuilder("fft")
    n = 2 * half_elems
    grid = half_elems // _THREADS  # one thread per butterfly
    work0 = b.alloc("WORK0", n * _ELEM)
    work1 = b.alloc("WORK1", n * _ELEM)
    out = b.alloc("SPECTRA", batches * _THREADS * _ELEM)
    prep = ptxgen.elementwise("fft_prep", num_inputs=1, alu=1)
    stage = ptxgen.fft_stage("fft_stage", alu=2)
    reduce_k = ptxgen.reduce_columns("fft_reduce", alu=1)
    for batch in range(batches):
        signal = b.alloc("SIGNAL{}".format(batch), n * _ELEM)
        b.h2d(signal)
        b.launch(
            prep,
            grid=2 * grid,
            block=_THREADS,
            args={"IN0": signal, "OUT": work0},
            intensity=intensity,
            tag="fft_prep",
        )
        src, dst = work0, work1
        for s in range(stages):
            b.launch(
                stage,
                grid=grid,
                block=_THREADS,
                args={"IN": src, "OUT": dst, "HALF": half_elems},
                intensity=intensity,
                tag="fft_s{}".format(s),
            )
            src, dst = dst, src
        # spectrum summary: one block strides over the whole result
        b.launch(
            reduce_k,
            grid=1,
            block=_THREADS,
            args={
                "IN": src,
                "OUT": out,
                "STRIDE": _THREADS,
                "COUNT": n // _THREADS,
                "OFF": 0,
                "OUTOFF": batch * _THREADS,
            },
            intensity=intensity,
            tag="fft_reduce",
        )
    b.d2h(out)
    return b.build(
        table2_kernels=batches * (stages + 2),
        table2_patterns=(3, 5, 7),
        batches=batches,
        stages=stages,
    )
