"""Workload registry: the paper's Table II benchmark suite by name."""

import fnmatch
from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple


class UnknownWorkloadError(KeyError):
    """A workload name (or ``--filter`` glob) matched nothing.

    Subclasses :class:`KeyError` for backward compatibility; the CLI
    maps it to exit code 2 with a one-line message.
    """

from repro.workloads.polybench import (
    build_3mm,
    build_bicg,
    build_fdtd2d,
    build_gramschm,
    build_mvt,
)
from repro.workloads.rodinia import (
    build_gaussian,
    build_hotspot,
    build_lud,
    build_nw,
    build_pathfinder,
)
from repro.workloads.shoc import build_fft
from repro.workloads.tango import build_alexnet


@dataclass(frozen=True)
class WorkloadSpec:
    """Registry entry: paper metadata plus the builder callable.

    ``small_overrides`` are builder parameters for a scaled-down variant
    used by value-level validation and quick tests (the functional
    simulator executes every thread in Python).
    """

    name: str
    description: str
    suite: str
    paper_kernels: int
    paper_patterns: Tuple[int, ...]
    builder: Callable
    small_overrides: Dict[str, int] = field(default_factory=dict)

    def build(self, **overrides):
        return self.builder(**overrides)

    def build_small(self, **extra):
        params = dict(self.small_overrides)
        params.update(extra)
        return self.builder(**params)

    def as_dict(self):
        """JSON-safe registry row (``repro list --json``, bench reports)."""
        return {
            "name": self.name,
            "description": self.description,
            "suite": self.suite,
            "paper_kernels": self.paper_kernels,
            "paper_patterns": list(self.paper_patterns),
        }


_SPECS = (
    WorkloadSpec(
        "3mm", "3 Matrix Multiplications", "PolyBench", 3, (2, 7), build_3mm,
        small_overrides={"elems": 2048},
    ),
    WorkloadSpec(
        "alexnet", "AlexNet network", "Tango", 22, (1, 3, 4), build_alexnet,
        small_overrides={"scale": 16384},
    ),
    WorkloadSpec(
        "bicg",
        "BiCG Sub Kernel of BiCGStab Linear Solver",
        "PolyBench",
        2,
        (7,),
        build_bicg,
        small_overrides={"blocks": 2, "k": 16},
    ),
    WorkloadSpec(
        "fdtd-2d",
        "2D Finite Difference Time Domain",
        "PolyBench",
        24,
        (5, 7),
        build_fdtd2d,
        small_overrides={"iterations": 2, "row_elems": 64, "rows_of_blocks": 4},
    ),
    WorkloadSpec(
        "fft", "Fast Fourier Transform", "SHOC", 60, (3, 5, 7), build_fft,
        small_overrides={"batches": 1, "stages": 4, "half_elems": 512},
    ),
    WorkloadSpec(
        "gaussian", "Gaussian Elimination", "Rodinia", 510, (4, 5), build_gaussian,
        small_overrides={"n": 8, "stride": 264},
    ),
    WorkloadSpec(
        "gramschm",
        "Gram-Schmidt Decomposition",
        "PolyBench",
        192,
        (1, 4, 5),
        build_gramschm,
        small_overrides={"columns": 4, "col_blocks": 2},
    ),
    WorkloadSpec(
        "hs", "Hotspot", "Rodinia", 10, (6,), build_hotspot,
        small_overrides={"iterations": 3, "row_elems": 64, "rows_of_blocks": 4},
    ),
    WorkloadSpec(
        "lud", "LU Decomposition", "Rodinia", 46, (3, 4, 5), build_lud,
        small_overrides={"tiles": 4, "tile_elems": 16},
    ),
    WorkloadSpec(
        "mvt", "Matrix Vector Product and Transpose", "PolyBench", 2, (7,),
        build_mvt,
        small_overrides={"blocks": 2, "k": 16},
    ),
    WorkloadSpec(
        "nw", "Needleman-Wunsch", "Rodinia", 255, (4, 5), build_nw,
        small_overrides={"block_diagonals": 6, "block_threads": 16},
    ),
    WorkloadSpec(
        "path", "Path Finder", "Rodinia", 5, (6,), build_pathfinder,
        small_overrides={"iterations": 3, "cols_of_blocks": 4},
    ),
)

_BY_NAME = {spec.name: spec for spec in _SPECS}

# Hidden extras (e.g. the analysis-fastpath microbench pairs) resolve
# through get_workload() but stay out of all_workloads()/--filter so the
# paper's Table-II suites remain exactly the paper's.
_EXTRAS = None


def _extra_specs():
    global _EXTRAS
    if _EXTRAS is None:
        # Imported lazily: microbench imports ptxgen/base, which are
        # cheap, but keeping it out of module import also avoids any
        # future cycle through the registry.
        from repro.workloads.microbench import engine_specs, fastpath_specs
        from repro.workloads.rodinia import build_backprop

        _EXTRAS = {spec.name: spec for spec in fastpath_specs()}
        _EXTRAS.update({spec.name: spec for spec in engine_specs()})
        # Rodinia's backprop is the paper's running example (Fig. 1)
        # but not a Table II row, so it resolves by name without
        # joining the default suite.
        backprop = WorkloadSpec(
            "backprop",
            "Back Propagation: per-unit layer-forward reductions + "
            "weight adjustment (paper Fig. 1 running example)",
            "Rodinia", 2, (4, 5), build_backprop,
            small_overrides={"in_blocks": 16, "hidden": 4},
        )
        _EXTRAS[backprop.name] = backprop
    return _EXTRAS


def workload_names():
    """Benchmark names in the paper's Table II order."""
    return [spec.name for spec in _SPECS]


def all_workloads():
    return list(_SPECS)


def get_workload(name) -> WorkloadSpec:
    """Look up a benchmark by name (case-insensitive: ``MVT`` == ``mvt``).

    ``fuzz-<seed>`` names resolve to seeded generator applications
    (:func:`repro.workloads.ptxgen.fuzz_workload_spec`); like the other
    hidden extras they never join ``all_workloads()``/``--filter``.
    """
    key = str(name).lower()
    try:
        return _BY_NAME[key]
    except KeyError:
        pass
    try:
        return _extra_specs()[key]
    except KeyError:
        pass
    if key.startswith("fuzz-") and key[len("fuzz-"):].isdigit():
        from repro.workloads.ptxgen import fuzz_workload_spec

        return fuzz_workload_spec(int(key[len("fuzz-"):]))
    raise UnknownWorkloadError(
        "unknown workload {!r}; available: {}".format(
            name, ", ".join(workload_names())
        )
    ) from None


def matching_workloads(patterns):
    """Specs whose names match any shell-style glob, in Table II order.

    Patterns are case-insensitive (``MVT``, ``f*``, ``?s`` all work).
    Raises :class:`UnknownWorkloadError` when nothing matches, so CLI
    callers fail fast with exit code 2 instead of running an empty
    suite.
    """
    lowered = [str(pattern).lower() for pattern in patterns]
    chosen = [
        spec
        for spec in _SPECS
        if any(fnmatch.fnmatchcase(spec.name, pattern) for pattern in lowered)
    ]
    if not chosen:
        raise UnknownWorkloadError(
            "no workload matches {!r}; available: {}".format(
                " ".join(str(p) for p in patterns), ", ".join(workload_names())
            )
        )
    return chosen
