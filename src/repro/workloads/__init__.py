"""Multi-kernel GPU benchmark applications (paper Table II).

Every workload generator emits a full :class:`Application`: real
mini-PTX kernels (so the launch-time analysis runs on actual
instruction streams), device buffers, and the host API trace the
program would issue.  The suite mirrors the paper's evaluation set:

========  =========================================  ========  ========
name      description                                #kernels  patterns
========  =========================================  ========  ========
3mm       3 chained matrix multiplications           3         (2,7)
alexnet   AlexNet-like CNN inference                 22        (1,3,4)
bicg      BiCG sub-kernels of BiCGStab               2         (7)
fdtd-2d   2-D finite difference time domain          24        (5,7)
fft       radix-2 Stockham FFT stages                60        (3,5,7)
gaussian  Gaussian elimination (Fan1/Fan2)           510       (4,5)
gramschm  Gram-Schmidt decomposition                 192       (1,4,5)
hs        Hotspot thermal stencil                    10        (6)
lud       LU decomposition                           46        (3,4,5)
mvt       matrix-vector product and transpose        2         (7)
nw        Needleman-Wunsch wavefront                 255       (4,5)
path      PathFinder dynamic programming             5         (6)
========  =========================================  ========  ========

plus the VectorAdd interconnectivity microbenchmark (Fig. 12) and six
wavefront applications for the Wireframe/CDP comparison (Fig. 14).
"""

from repro.workloads.base import Application, AppBuilder
from repro.workloads.registry import (
    UnknownWorkloadError,
    WorkloadSpec,
    all_workloads,
    get_workload,
    matching_workloads,
    workload_names,
)

__all__ = [
    "Application",
    "AppBuilder",
    "UnknownWorkloadError",
    "WorkloadSpec",
    "all_workloads",
    "get_workload",
    "matching_workloads",
    "workload_names",
]
