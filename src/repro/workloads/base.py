"""Application container and builder for workload generators."""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.host.api import (
    DeviceSynchronize,
    EventRecord,
    KernelLaunchCall,
    MallocCall,
    ManagedMallocCall,
    MemcpyD2H,
    MemcpyH2D,
    StreamSynchronize,
    StreamWaitEvent,
)
from repro.host.buffers import Allocator, Buffer
from repro.host.trace import APITrace
from repro.ptx.module import Kernel
from repro.ptx.parser import parse_kernel


@dataclass
class Application:
    """A complete multi-kernel GPU application.

    ``trace`` holds the host API calls in program order; ``allocator``
    owns the device buffers; ``kernels`` indexes the distinct kernel
    bodies by name.  ``metadata`` carries workload-specific descriptors
    used by experiments (problem sizes, expected pattern classes...).
    """

    name: str
    trace: APITrace
    allocator: Allocator
    kernels: Dict[str, Kernel] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def num_kernel_launches(self):
        return self.trace.num_kernels

    def describe(self):
        return "{}: {} API calls, {} kernel launches, {} buffers".format(
            self.name,
            len(self.trace),
            self.num_kernel_launches,
            len(self.allocator.buffers),
        )


class AppBuilder:
    """Fluent builder for applications.

    Example::

        b = AppBuilder("saxpy-chain")
        x = b.alloc("X", n * 4)
        y = b.alloc("Y", n * 4)
        b.h2d(x)
        b.h2d(y)
        b.launch(saxpy_kernel, grid=n // 256, block=256,
                 args={"X": x, "Y": y, "N": n})
        b.d2h(y)
        app = b.build()
    """

    def __init__(self, name):
        self.name = name
        self.trace = APITrace()
        self.allocator = Allocator()
        self.kernels: Dict[str, Kernel] = {}
        self.metadata: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def alloc(self, name, size_bytes) -> Buffer:
        """cudaMalloc: allocate and record the API call."""
        buffer = self.allocator.allocate(size_bytes, name=name)
        self.trace.append(MallocCall(buffer=buffer))
        return buffer

    def managed_alloc(self, name, size_bytes) -> Buffer:
        """cudaMallocManaged: Unified Memory allocation.

        Identical to :meth:`alloc` for dependency analysis (the paper's
        point); no explicit H2D copy is needed before kernel use.
        """
        buffer = self.allocator.allocate(size_bytes, name=name)
        self.trace.append(ManagedMallocCall(buffer=buffer))
        return buffer

    def h2d(self, buffer, size=None, stream=0):
        self.trace.append(MemcpyH2D(buffer=buffer, size=size, stream_id=stream))

    def d2h(self, buffer, size=None, stream=0):
        self.trace.append(MemcpyD2H(buffer=buffer, size=size, stream_id=stream))

    def sync(self):
        self.trace.append(DeviceSynchronize())

    def stream_sync(self, stream):
        self.trace.append(StreamSynchronize(stream_id=stream))

    def event_record(self, event, stream=0):
        """cudaEventRecord: mark this point of ``stream``."""
        self.trace.append(EventRecord(event_id=event, stream_id=stream))

    def stream_wait_event(self, event, stream=0):
        """cudaStreamWaitEvent: ``stream`` waits for the event."""
        self.trace.append(StreamWaitEvent(event_id=event, stream_id=stream))

    def register_kernel(self, kernel_or_source) -> Kernel:
        """Register a kernel body (object or mini-PTX source text)."""
        kernel = (
            kernel_or_source
            if isinstance(kernel_or_source, Kernel)
            else parse_kernel(kernel_or_source)
        )
        existing = self.kernels.get(kernel.name)
        if existing is not None:
            return existing
        self.kernels[kernel.name] = kernel
        return kernel

    def launch(
        self,
        kernel,
        grid,
        block,
        args,
        intensity=1.0,
        tb_duration_fn=None,
        tag="",
        stream=0,
    ):
        """Record a kernel launch.

        ``grid``/``block`` may be ints or 1-3 element tuples.  ``args``
        maps every kernel parameter name to a :class:`Buffer` or int;
        ``stream`` selects the CUDA stream (default stream 0).
        """
        kernel = self.register_kernel(kernel)
        call = KernelLaunchCall(
            kernel=kernel,
            grid=_dims(grid),
            block=_dims(block),
            args=dict(args),
            intensity=intensity,
            tb_duration_fn=tb_duration_fn,
            tag=tag,
            stream_id=stream,
        )
        self.trace.append(call)
        return call

    # ------------------------------------------------------------------
    def build(self, **metadata) -> Application:
        self.metadata.update(metadata)
        app = Application(
            name=self.name,
            trace=self.trace,
            allocator=self.allocator,
            kernels=dict(self.kernels),
            metadata=dict(self.metadata),
        )
        app.trace.validate()
        return app


def _dims(value):
    if isinstance(value, int):
        dims = (value,)
    else:
        dims = tuple(int(v) for v in value)
    if not 1 <= len(dims) <= 3 or any(d < 1 for d in dims):
        raise ValueError("bad dimensions %r" % (value,))
    return dims + (1,) * (3 - len(dims))
