"""Parametric mini-PTX kernel generators.

All workload kernels are produced here as real PTX text so the
launch-time analysis pipeline (parser → Algorithm 1 → value-range
analysis) runs on genuine instruction streams.  Each generator returns
source accepted by :func:`repro.ptx.parser.parse_module`.

The generators cover the index-expression shapes that produce the
paper's Table I dependency patterns:

* :func:`elementwise` — per-thread affine map (1-to-1 and shifted reads)
* :func:`stencil1d` / :func:`stencil2d` — neighbourhood reads
  (overlapped pattern)
* :func:`matvec` / :func:`matvec_transposed` — row/column loops
* :func:`group_read` — each block reads a whole group of blocks' data
  (n-group fully connected)
* :func:`reduce_columns` — single-output reductions (n-to-1)
* :func:`broadcast_scale` — scalar fan-out (1-to-n)
* :func:`fft_stage` — two-halves butterfly (1-to-1 across stages)
* :func:`wavefront_block` — anti-diagonal block dependencies
* :func:`gaussian_fan1` / :func:`gaussian_fan2` — Gaussian elimination
* :func:`indirect_gather` — A[B[i]] addressing (forces the non-static
  fallback; used by tests)

On top of the individual generators, :class:`FuzzSpec` composes them
into seeded random multi-kernel applications for the differential
fuzzing harness (:mod:`repro.fuzz`): ``FuzzSpec.from_seed(s)`` is a
pure function of ``s`` (``random.Random`` only — no hash-seed or dict
order dependence), and :func:`build_fuzz_app` materializes it as a
real-PTX application.  :func:`fuzz_workload_spec` wraps that as a
hidden registry entry so ``get_workload("fuzz-<seed>")`` resolves it
without the name joining ``list``/``--filter``.
"""

import functools
import hashlib
import itertools
import random
from dataclasses import dataclass
from typing import Tuple


class Emitter:
    """Tiny helper assembling a kernel body with fresh register names.

    Public: workload modules with bespoke kernels (e.g. LUD's tile
    kernels) build on it directly.
    """

    def __init__(self, name, params):
        self.name = name
        self.params = list(params)  # (name, dtype)
        self.lines = []
        self._ids = itertools.count()

    def reg(self, prefix="r"):
        return "%{}{}".format(prefix, next(self._ids))

    def emit(self, text):
        self.lines.append("    " + text)

    def label(self, label):
        self.lines.append(label + ":")

    def load_params(self, *names):
        regs = []
        declared = dict(self.params)
        for name in names:
            dtype = declared[name]
            reg = self.reg("rd" if dtype == "u64" else "r")
            self.emit("ld.param.{} {}, [{}];".format(dtype, reg, name))
            regs.append(reg)
        return regs

    def flat_index(self):
        """%ri = ctaid.x * ntid.x + tid.x"""
        b = self.reg()
        i = self.reg()
        self.emit("mov.u32 {}, %ctaid.x;".format(b))
        self.emit("mad.lo.u32 {}, {}, %ntid.x, %tid.x;".format(i, b))
        return i

    def address(self, base_reg, index_reg, elem=4, offset_elems=0):
        """base + (index + offset) * elem -> u64 register"""
        idx = index_reg
        if offset_elems:
            shifted = self.reg()
            self.emit(
                "add.u32 {}, {}, {};".format(shifted, index_reg, offset_elems)
            )
            idx = shifted
        wide = self.reg("rd")
        self.emit("mul.wide.u32 {}, {}, {};".format(wide, idx, elem))
        addr = self.reg("rd")
        self.emit("add.u64 {}, {}, {};".format(addr, base_reg, wide))
        return addr

    def load_f32(self, base_reg, index_reg, offset_elems=0):
        addr = self.address(base_reg, index_reg, offset_elems=offset_elems)
        val = self.reg("f")
        self.emit("ld.global.f32 {}, [{}];".format(val, addr))
        return val

    def store_f32(self, base_reg, index_reg, value, offset_elems=0):
        addr = self.address(base_reg, index_reg, offset_elems=offset_elems)
        self.emit("st.global.f32 [{}], {};".format(addr, value))

    def alu_chain(self, seed_reg, count):
        """A dependent chain of float operations (compute intensity)."""
        acc = seed_reg
        for _ in range(count):
            nxt = self.reg("f")
            self.emit("mul.f32 {}, {}, {};".format(nxt, acc, acc))
            acc = nxt
        return acc

    def combine(self, values):
        if not values:
            raise ValueError("no values to combine")
        acc = values[0]
        for value in values[1:]:
            nxt = self.reg("f")
            self.emit("add.f32 {}, {}, {};".format(nxt, acc, value))
            acc = nxt
        return acc

    def render(self):
        params = ", ".join(
            ".param .{} {}".format(dtype, name) for name, dtype in self.params
        )
        body = "\n".join(self.lines)
        return ".visible .entry {} ({})\n{{\n{}\n    ret;\n}}\n".format(
            self.name, params, body
        )


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def elementwise(name, num_inputs=1, shifts=None, alu=2, scale=1, guard=False):
    """Per-thread map: ``OUT[scale*i + shift_k] <- f(IN_k[scale*i + shift_k])``.

    With ``scale == 1`` and zero shifts this yields a 1-to-1 dependency
    pattern against an identically-partitioned producer.
    """
    shifts = list(shifts or [0] * num_inputs)
    if len(shifts) != num_inputs:
        raise ValueError("one shift per input required")
    params = [("IN{}".format(k), "u64") for k in range(num_inputs)]
    params.append(("OUT", "u64"))
    if guard:
        params.append(("N", "u32"))
    e = Emitter(name, params)
    regs = e.load_params(*[p for p, _ in params])
    in_regs, out_reg = regs[:num_inputs], regs[num_inputs]
    i = e.flat_index()
    if guard:
        n_reg = regs[num_inputs + 1]
        p = e.reg("p")
        e.emit("setp.ge.u32 {}, {}, {};".format(p, i, n_reg))
        e.emit("@{} bra DONE;".format(p))
    idx = i
    if scale != 1:
        idx = e.reg()
        e.emit("mul.lo.u32 {}, {}, {};".format(idx, i, scale))
    values = [
        e.load_f32(in_regs[k], idx, offset_elems=shifts[k])
        for k in range(num_inputs)
    ]
    acc = e.combine(values)
    acc = e.alu_chain(acc, alu)
    e.store_f32(out_reg, idx, acc)
    if guard:
        e.label("DONE")
    return e.render()


def stencil1d(name, radius=1, alu=2, extra_input=None):
    """1-D stencil: reads ``IN[i-radius .. i+radius]``, writes ``OUT[i]``.

    Adjacent thread blocks share halo elements, producing the paper's
    *overlapped* pattern (6).  ``extra_input`` adds a second read-only
    array at index ``i`` (e.g. PathFinder's wall matrix).
    """
    params = [("IN", "u64"), ("OUT", "u64")]
    if extra_input:
        params.insert(1, (extra_input, "u64"))
    e = Emitter(name, params)
    regs = e.load_params(*[p for p, _ in params])
    in_reg, out_reg = regs[0], regs[-1]
    i = e.flat_index()
    values = [
        e.load_f32(in_reg, i, offset_elems=off)
        for off in range(-radius, radius + 1)
    ]
    if extra_input:
        values.append(e.load_f32(regs[1], i))
    acc = e.combine(values)
    acc = e.alu_chain(acc, alu)
    e.store_f32(out_reg, i, acc)
    return e.render()


def stencil2d(name, width, alu=4, extra_input="POWER"):
    """2-D 5-point stencil over a row-major ``width``-wide grid.

    Thread blocks cover contiguous flattened ranges; the ``i +- width``
    reads reach into the previous/next block's rows — the Hotspot-style
    overlapped pattern.
    """
    params = [("IN", "u64"), (extra_input, "u64"), ("OUT", "u64")]
    e = Emitter(name, params)
    in_reg, pow_reg, out_reg = e.load_params("IN", extra_input, "OUT")
    i = e.flat_index()
    values = [
        e.load_f32(in_reg, i),
        e.load_f32(in_reg, i, offset_elems=-1),
        e.load_f32(in_reg, i, offset_elems=1),
        e.load_f32(in_reg, i, offset_elems=-width),
        e.load_f32(in_reg, i, offset_elems=width),
        e.load_f32(pow_reg, i),
    ]
    acc = e.combine(values)
    acc = e.alu_chain(acc, alu)
    e.store_f32(out_reg, i, acc)
    return e.render()


def matvec(name, alu=0):
    """Row-dot-product: ``Y[i] = sum_k A[i*K + k] * X[k]``; K is a
    launch parameter, so the loop trip count is resolved at launch time."""
    e = Emitter(name, [("A", "u64"), ("X", "u64"), ("Y", "u64"), ("K", "u32")])
    a_reg, x_reg, y_reg, k_reg = e.load_params("A", "X", "Y", "K")
    i = e.flat_index()
    row = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(row, i, k_reg))
    k = "%k"
    acc = "%facc"
    e.emit("mov.u32 {}, 0;".format(k))
    e.emit("mov.f32 {}, 0.0;".format(acc))
    e.label("LOOP")
    idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(idx, row, k))
    a_val = e.load_f32(a_reg, idx)
    x_val = e.load_f32(x_reg, k)
    prod = e.reg("f")
    e.emit("mul.f32 {}, {}, {};".format(prod, a_val, x_val))
    e.emit("add.f32 {}, {}, {};".format(acc, acc, prod))
    e.emit("add.u32 {}, {}, 1;".format(k, k))
    p = e.reg("p")
    e.emit("setp.lt.u32 {}, {}, {};".format(p, k, k_reg))
    e.emit("@{} bra LOOP;".format(p))
    final = e.alu_chain(acc, alu)
    e.store_f32(y_reg, i, final)
    return e.render()


def matvec_transposed(name, alu=0):
    """Column-dot-product: ``Y[i] = sum_k A[k*N + i] * X[k]``."""
    e = Emitter(
        name,
        [("A", "u64"), ("X", "u64"), ("Y", "u64"), ("K", "u32"), ("N", "u32")],
    )
    a_reg, x_reg, y_reg, k_reg, n_reg = e.load_params("A", "X", "Y", "K", "N")
    i = e.flat_index()
    k = "%k"
    acc = "%facc"
    e.emit("mov.u32 {}, 0;".format(k))
    e.emit("mov.f32 {}, 0.0;".format(acc))
    e.label("LOOP")
    idx = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(idx, k, n_reg, i))
    a_val = e.load_f32(a_reg, idx)
    x_val = e.load_f32(x_reg, k)
    prod = e.reg("f")
    e.emit("mul.f32 {}, {}, {};".format(prod, a_val, x_val))
    e.emit("add.f32 {}, {}, {};".format(acc, acc, prod))
    e.emit("add.u32 {}, {}, 1;".format(k, k))
    p = e.reg("p")
    e.emit("setp.lt.u32 {}, {}, {};".format(p, k, k_reg))
    e.emit("@{} bra LOOP;".format(p))
    final = e.alu_chain(acc, alu)
    e.store_f32(y_reg, i, final)
    return e.render()


def group_read(name, group_span_elems, alu=2, writes_flat=True):
    """Each thread block reads a whole *group* of blocks' output.

    Launched with a 2-D grid ``(blocks_per_group, num_groups)``: block
    ``(bx, by)`` reads the entire ``group_span_elems`` window of group
    ``by`` from ``IN`` and writes its own flat block of ``OUT``.  Against
    a producer that wrote ``IN`` in flat blocks this yields the n-group
    fully connected pattern (Table I row 2) with groups of size
    ``blocks_per_group``, and it is the Fig. 12 interconnectivity
    microbenchmark's dependency-degree knob.
    """
    e = Emitter(name, [("IN", "u64"), ("OUT", "u64")])
    in_reg, out_reg = e.load_params("IN", "OUT")
    # group base: ctaid.y * group_span
    gy = e.reg()
    e.emit("mov.u32 {}, %ctaid.y;".format(gy))
    gbase = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(gbase, gy, group_span_elems))
    # strided read of the whole group window: one element per thread,
    # strided by ntid so the block covers group_span_elems elements
    t = e.reg()
    e.emit("mov.u32 {}, %tid.x;".format(t))
    k = "%k"
    acc = "%facc"
    e.emit("mov.u32 {}, 0;".format(k))
    e.emit("mov.f32 {}, 0.0;".format(acc))
    e.label("LOOP")
    stride_idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(stride_idx, k, t))
    idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(idx, gbase, stride_idx))
    val = e.load_f32(in_reg, idx)
    e.emit("add.f32 {}, {}, {};".format(acc, acc, val))
    e.emit("add.u32 {}, {}, %ntid.x;".format(k, k))
    p = e.reg("p")
    e.emit("setp.lt.u32 {}, {}, {};".format(p, k, group_span_elems))
    e.emit("@{} bra LOOP;".format(p))
    final = e.alu_chain(acc, alu)
    if writes_flat:
        # flat output block: (ctaid.y * nctaid.x + ctaid.x) * ntid + tid
        bx = e.reg()
        e.emit("mov.u32 {}, %ctaid.x;".format(bx))
        flat_b = e.reg()
        e.emit("mad.lo.u32 {}, {}, %nctaid.x, {};".format(flat_b, gy, bx))
        out_i = e.reg()
        e.emit("mad.lo.u32 {}, {}, %ntid.x, %tid.x;".format(out_i, flat_b))
        e.store_f32(out_reg, out_i, final)
    return e.render()


def group_sample(name, group_span_elems, stride_elems, alu=2):
    """Equal-work n-group reader: each thread loads *one* element,
    sampled across its block's whole group window with ``stride_elems``.

    Unlike :func:`group_read`, the amount of work per block is constant
    regardless of the group size — only the *footprint* (and therefore
    the dependency degree) grows.  This matches the paper's Fig. 12
    microbenchmark, which artificially raises the dependency degree
    between two equal-size kernels.
    """
    e = Emitter(name, [("IN", "u64"), ("OUT", "u64")])
    in_reg, out_reg = e.load_params("IN", "OUT")
    gy = e.reg()
    e.emit("mov.u32 {}, %ctaid.y;".format(gy))
    gbase = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(gbase, gy, group_span_elems))
    t = e.reg()
    e.emit("mov.u32 {}, %tid.x;".format(t))
    offset = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(offset, t, stride_elems))
    idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(idx, gbase, offset))
    val = e.load_f32(in_reg, idx)
    acc = e.alu_chain(val, alu)
    bx = e.reg()
    e.emit("mov.u32 {}, %ctaid.x;".format(bx))
    flat_b = e.reg()
    e.emit("mad.lo.u32 {}, {}, %nctaid.x, {};".format(flat_b, gy, bx))
    out_i = e.reg()
    e.emit("mad.lo.u32 {}, {}, %ntid.x, %tid.x;".format(out_i, flat_b))
    e.store_f32(out_reg, out_i, acc)
    return e.render()


def reduce_columns(name, alu=0):
    """Strided reduction: thread ``i`` accumulates
    ``IN[OFF + i + k*STRIDE]`` for ``k`` in ``[0, COUNT)`` and writes
    ``OUT[OUTOFF + i]`` — many producer blocks feeding few consumer
    blocks (n-to-1).  ``OFF``/``OUTOFF`` select e.g. a matrix column."""
    e = Emitter(
        name,
        [
            ("IN", "u64"),
            ("OUT", "u64"),
            ("STRIDE", "u32"),
            ("COUNT", "u32"),
            ("OFF", "u32"),
            ("OUTOFF", "u32"),
        ],
    )
    in_reg, out_reg, stride_reg, count_reg, off_reg, ooff_reg = e.load_params(
        "IN", "OUT", "STRIDE", "COUNT", "OFF", "OUTOFF"
    )
    i = e.flat_index()
    base = e.reg()
    e.emit("add.u32 {}, {}, {};".format(base, i, off_reg))
    k = "%k"
    acc = "%facc"
    e.emit("mov.u32 {}, 0;".format(k))
    e.emit("mov.f32 {}, 0.0;".format(acc))
    e.label("LOOP")
    idx = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(idx, k, stride_reg, base))
    val = e.load_f32(in_reg, idx)
    e.emit("add.f32 {}, {}, {};".format(acc, acc, val))
    e.emit("add.u32 {}, {}, 1;".format(k, k))
    p = e.reg("p")
    e.emit("setp.lt.u32 {}, {}, {};".format(p, k, count_reg))
    e.emit("@{} bra LOOP;".format(p))
    final = e.alu_chain(acc, alu) if alu else acc
    out_i = e.reg()
    e.emit("add.u32 {}, {}, {};".format(out_i, i, ooff_reg))
    e.store_f32(out_reg, out_i, final)
    return e.render()


def broadcast_scale(name, alu=1):
    """``OUT[OFF + i] = IN[OFF + i] * SCALARS[SIDX]`` — every consumer
    block reads one scalar produced by a single block (1-to-n from that
    producer).  ``OFF`` selects e.g. a matrix column."""
    e = Emitter(
        name,
        [
            ("IN", "u64"),
            ("SCALARS", "u64"),
            ("OUT", "u64"),
            ("SIDX", "u32"),
            ("OFF", "u32"),
        ],
    )
    in_reg, s_reg, out_reg, sidx_reg, off_reg = e.load_params(
        "IN", "SCALARS", "OUT", "SIDX", "OFF"
    )
    i = e.flat_index()
    idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(idx, i, off_reg))
    scalar = e.load_f32(s_reg, sidx_reg)
    val = e.load_f32(in_reg, idx)
    prod = e.reg("f")
    e.emit("mul.f32 {}, {}, {};".format(prod, val, scalar))
    acc = e.alu_chain(prod, alu)
    e.store_f32(out_reg, idx, acc)
    return e.render()


def fft_stage(name, alu=3):
    """Radix-2 Stockham butterfly stage.

    Thread ``i`` (``i`` in ``[0, HALF)`` by grid sizing) reads
    ``IN[i]`` and ``IN[i + HALF]`` and writes ``OUT[i]`` and
    ``OUT[i + HALF]``.  With equal grids each stage's block ``b`` touches
    exactly the data block ``b`` of the previous stage wrote: 1-to-1.
    """
    e = Emitter(name, [("IN", "u64"), ("OUT", "u64"), ("HALF", "u32")])
    in_reg, out_reg, half_reg = e.load_params("IN", "OUT", "HALF")
    i = e.flat_index()
    hi = e.reg()
    e.emit("add.u32 {}, {}, {};".format(hi, i, half_reg))
    lo_val = e.load_f32(in_reg, i)
    hi_val = e.load_f32(in_reg, hi)
    sum_val = e.reg("f")
    e.emit("add.f32 {}, {}, {};".format(sum_val, lo_val, hi_val))
    dif_val = e.reg("f")
    e.emit("sub.f32 {}, {}, {};".format(dif_val, lo_val, hi_val))
    sum_val = e.alu_chain(sum_val, alu)
    dif_val = e.alu_chain(dif_val, alu)
    e.store_f32(out_reg, i, sum_val)
    e.store_f32(out_reg, hi, dif_val)
    return e.render()


def wavefront_block(name, parents=2, alu=4):
    """One anti-diagonal wavefront level.

    Block ``b`` writes ``CUR[b]``'s block and reads the ``parents``
    neighbouring blocks ``PREV[b], PREV[b-1](, PREV[b-2])`` — producing
    the sliding-window overlapped dependency of wavefront codes
    (Needleman-Wunsch, SOR, Smith-Waterman...).  ``SHIFT`` aligns block
    indices between levels of different widths.
    """
    e = Emitter(
        name, [("PREV", "u64"), ("CUR", "u64"), ("SHIFT", "u32")]
    )
    prev_reg, cur_reg, shift_reg = e.load_params("PREV", "CUR", "SHIFT")
    i = e.flat_index()
    shifted = e.reg()
    e.emit("add.u32 {}, {}, {};".format(shifted, i, shift_reg))
    values = [e.load_f32(prev_reg, shifted)]
    for p in range(1, parents):
        off = e.reg()
        e.emit("sub.u32 {}, {}, {};".format(off, shifted, "%ntid.x"))
        values.append(e.load_f32(prev_reg, off))
        shifted = off
    acc = e.combine(values)
    acc = e.alu_chain(acc, alu)
    out_i = e.reg()
    e.emit("add.u32 {}, {}, {};".format(out_i, i, shift_reg))
    e.store_f32(cur_reg, out_i, acc)
    return e.render()


def gaussian_fan1(name):
    """Fan1: compute multipliers ``M[i] = A[i*N + T] / A[T*N + T]`` for
    rows ``i`` below the pivot ``T`` (one small 1-D kernel)."""
    e = Emitter(name, [("A", "u64"), ("M", "u64"), ("N", "u32"), ("T", "u32")])
    a_reg, m_reg, n_reg, t_reg = e.load_params("A", "M", "N", "T")
    i = e.flat_index()
    row = e.reg()
    e.emit("add.u32 {}, {}, {};".format(row, i, t_reg))
    ridx = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(ridx, row, n_reg, t_reg))
    pividx = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(pividx, t_reg, n_reg, t_reg))
    elem = e.load_f32(a_reg, ridx)
    piv = e.load_f32(a_reg, pividx)
    ratio = e.reg("f")
    e.emit("div.f32 {}, {}, {};".format(ratio, elem, piv))
    e.store_f32(m_reg, row, ratio)
    return e.render()


def gaussian_fan2(name, alu=1):
    """Fan2: eliminate — ``A[r][c] -= M[r] * A[T][c]`` over the trailing
    submatrix, one row per thread block row."""
    e = Emitter(name, [("A", "u64"), ("M", "u64"), ("N", "u32"), ("T", "u32")])
    a_reg, m_reg, n_reg, t_reg = e.load_params("A", "M", "N", "T")
    # row = ctaid.y + T + 1 ; col = flat x index + T
    ry = e.reg()
    e.emit("mov.u32 {}, %ctaid.y;".format(ry))
    row = e.reg()
    e.emit("add.u32 {}, {}, {};".format(row, ry, t_reg))
    row1 = e.reg()
    e.emit("add.u32 {}, {}, 1;".format(row1, row))
    cx = e.reg()
    e.emit("mov.u32 {}, %ctaid.x;".format(cx))
    col0 = e.reg()
    e.emit("mad.lo.u32 {}, {}, %ntid.x, %tid.x;".format(col0, cx))
    col = e.reg()
    e.emit("add.u32 {}, {}, {};".format(col, col0, t_reg))
    target = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(target, row1, n_reg, col))
    pivrow = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(pivrow, t_reg, n_reg, col))
    mult = e.load_f32(m_reg, row1)
    pivval = e.load_f32(a_reg, pivrow)
    cur = e.load_f32(a_reg, target)
    prod = e.reg("f")
    e.emit("mul.f32 {}, {}, {};".format(prod, mult, pivval))
    upd = e.reg("f")
    e.emit("sub.f32 {}, {}, {};".format(upd, cur, prod))
    upd = e.alu_chain(upd, alu)
    e.store_f32(a_reg, target, upd)
    return e.render()


def full_read_map(name, alu=2):
    """Each thread block reads the *entire* input buffer and writes its
    own flat output block.

    This is the access shape of dense (fully-connected) neural-network
    layers and of convolutions partitioned by output channel: every
    output block depends on every producer block — Table I's fully
    connected pattern.  ``SPAN`` (elements) is a launch parameter;
    ``INOFF``/``OUTOFF`` shift the read window and write block.
    """
    e = Emitter(
        name,
        [
            ("IN", "u64"),
            ("OUT", "u64"),
            ("SPAN", "u32"),
            ("INOFF", "u32"),
            ("OUTOFF", "u32"),
        ],
    )
    in_reg, out_reg, span_reg, inoff_reg, outoff_reg = e.load_params(
        "IN", "OUT", "SPAN", "INOFF", "OUTOFF"
    )
    t = e.reg()
    e.emit("mov.u32 {}, %tid.x;".format(t))
    base = e.reg()
    e.emit("add.u32 {}, {}, {};".format(base, t, inoff_reg))
    k = "%k"
    acc = "%facc"
    e.emit("mov.u32 {}, 0;".format(k))
    e.emit("mov.f32 {}, 0.0;".format(acc))
    e.label("LOOP")
    idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(idx, k, base))
    val = e.load_f32(in_reg, idx)
    e.emit("add.f32 {}, {}, {};".format(acc, acc, val))
    e.emit("add.u32 {}, {}, %ntid.x;".format(k, k))
    p = e.reg("p")
    e.emit("setp.lt.u32 {}, {}, {};".format(p, k, span_reg))
    e.emit("@{} bra LOOP;".format(p))
    final = e.alu_chain(acc, alu)
    flat = e.flat_index()
    out_i = e.reg()
    e.emit("add.u32 {}, {}, {};".format(out_i, flat, outoff_reg))
    e.store_f32(out_reg, out_i, final)
    return e.render()


def matmul_colblock(name, group_span_elems, alu=1):
    """Column-block matrix multiply (column-major storage).

    Launched on a 2-D grid ``(blocks_per_group, num_groups)``.  Block
    ``(bx, by)`` reads the whole column *group* ``by`` of ``INGROUP``
    (the tiling reuse window — n-group fully connected against the
    producer of ``INGROUP``), loops over the full ``INFULL`` matrix
    (``SPAN`` elements), and writes its own flat column block of ``OUT``.
    """
    e = Emitter(
        name,
        [("INGROUP", "u64"), ("INFULL", "u64"), ("OUT", "u64"), ("SPAN", "u32")],
    )
    g_reg, f_reg, out_reg, span_reg = e.load_params(
        "INGROUP", "INFULL", "OUT", "SPAN"
    )
    gy = e.reg()
    e.emit("mov.u32 {}, %ctaid.y;".format(gy))
    gbase = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(gbase, gy, group_span_elems))
    t = e.reg()
    e.emit("mov.u32 {}, %tid.x;".format(t))
    k = "%k"
    acc = "%facc"
    e.emit("mov.u32 {}, 0;".format(k))
    e.emit("mov.f32 {}, 0.0;".format(acc))
    e.label("GLOOP")
    gidx0 = e.reg()
    e.emit("add.u32 {}, {}, {};".format(gidx0, k, t))
    gidx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(gidx, gbase, gidx0))
    gval = e.load_f32(g_reg, gidx)
    e.emit("add.f32 {}, {}, {};".format(acc, acc, gval))
    e.emit("add.u32 {}, {}, %ntid.x;".format(k, k))
    p = e.reg("p")
    e.emit("setp.lt.u32 {}, {}, {};".format(p, k, group_span_elems))
    e.emit("@{} bra GLOOP;".format(p))
    j = "%j"
    e.emit("mov.u32 {}, 0;".format(j))
    e.label("FLOOP")
    fidx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(fidx, j, t))
    fval = e.load_f32(f_reg, fidx)
    e.emit("add.f32 {}, {}, {};".format(acc, acc, fval))
    e.emit("add.u32 {}, {}, %ntid.x;".format(j, j))
    q = e.reg("p")
    e.emit("setp.lt.u32 {}, {}, {};".format(q, j, span_reg))
    e.emit("@{} bra FLOOP;".format(q))
    final = e.alu_chain(acc, alu)
    bx = e.reg()
    e.emit("mov.u32 {}, %ctaid.x;".format(bx))
    flat_b = e.reg()
    e.emit("mad.lo.u32 {}, {}, %nctaid.x, {};".format(flat_b, gy, bx))
    out_i = e.reg()
    e.emit("mad.lo.u32 {}, {}, %ntid.x, %tid.x;".format(out_i, flat_b))
    e.store_f32(out_reg, out_i, final)
    return e.render()


def indirect_gather(name):
    """``OUT[i] = DATA[IDX[i]]`` — the canonical non-static access that
    Algorithm 1 must flag (the paper's A[B[i]] limitation)."""
    e = Emitter(name, [("DATA", "u64"), ("IDX", "u64"), ("OUT", "u64")])
    d_reg, i_reg, o_reg = e.load_params("DATA", "IDX", "OUT")
    i = e.flat_index()
    addr = e.address(i_reg, i)
    j = e.reg()
    e.emit("ld.global.u32 {}, [{}];".format(j, addr))
    val = e.load_f32(d_reg, j)
    e.store_f32(o_reg, i, val)
    return e.render()


# ----------------------------------------------------------------------
# seeded fuzz-application generator (repro.fuzz)
# ----------------------------------------------------------------------

#: generator families the fuzzer draws from, with draw weights.  The mix
#: is biased toward the affine shapes (tier-1 closed form) with regular
#: visits to the 2-D group shape (tier 2) and the indirect shape
#: (Algorithm-1 fallback), so every fastpath tier is exercised.
FUZZ_GENERATORS = (
    ("elementwise", 4),
    ("stencil", 2),
    ("group", 2),
    ("matvec", 1),
    ("reduce", 1),
    ("indirect", 1),
)

_FUZZ_MIN_KERNELS = 2
_FUZZ_MAX_KERNELS = 6
_FUZZ_BLOCKS = (32, 64)
_FUZZ_GRIDS = (2, 3, 4, 6, 8, 12, 16)
_FUZZ_GROUP_WIDTHS = (2, 4)
_FUZZ_GROUP_COUNTS = (2, 3, 4)


@dataclass(frozen=True)
class FuzzKernel:
    """One drawn kernel launch: generator family, shape, buffer wiring.

    ``inputs``/``output`` are indices into the spec's shared buffer
    pool — aliasing between kernels (consuming an earlier output,
    overwriting a live buffer) is where the interesting dependency
    graphs come from.  ``params`` are the generator knobs as sorted
    ``(name, value)`` pairs so the dataclass stays hashable and
    order-independent.
    """

    gen: str
    grid: Tuple[int, int, int]
    block: int
    inputs: Tuple[int, ...]
    output: int
    params: Tuple[Tuple[str, int], ...] = ()

    @property
    def num_tbs(self):
        return self.grid[0] * self.grid[1] * self.grid[2]

    def param(self, name, default=0):
        return dict(self.params).get(name, default)

    def as_dict(self):
        return {
            "gen": self.gen,
            "grid": list(self.grid),
            "block": self.block,
            "inputs": list(self.inputs),
            "output": self.output,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            gen=str(data["gen"]),
            grid=tuple(int(v) for v in data["grid"]),
            block=int(data["block"]),
            inputs=tuple(int(v) for v in data["inputs"]),
            output=int(data["output"]),
            params=tuple(sorted(
                (str(k), int(v)) for k, v in dict(data["params"]).items()
            )),
        )


@dataclass(frozen=True)
class FuzzSpec:
    """A deterministic multi-kernel fuzz application.

    ``from_seed`` draws everything from one ``random.Random(seed)``
    stream, so the same seed regenerates byte-identical PTX on any
    ``PYTHONHASHSEED`` and in any worker process (property-tested).
    ``elems`` is the shared per-buffer element count, sized to cover
    every kernel's footprint.  Shrunk variants (``repro.fuzz.shrink``)
    are no longer regenerable from the seed — they round-trip through
    ``to_dict``/``from_dict`` in ``repro-fuzz-case`` files instead.
    """

    seed: int
    kernels: Tuple[FuzzKernel, ...]
    num_buffers: int
    elems: int

    @classmethod
    def from_seed(cls, seed):
        seed = int(seed)
        rng = random.Random(seed)
        num_kernels = rng.randint(_FUZZ_MIN_KERNELS, _FUZZ_MAX_KERNELS)
        kernels = []
        num_buffers = 1  # buffer 0 is the h2d-initialized input
        last_output = 0
        for _ in range(num_kernels):
            gen = _weighted_choice(rng, FUZZ_GENERATORS)
            block = rng.choice(_FUZZ_BLOCKS)
            if gen == "group":
                grid = (rng.choice(_FUZZ_GROUP_WIDTHS),
                        rng.choice(_FUZZ_GROUP_COUNTS), 1)
            else:
                grid = (rng.choice(_FUZZ_GRIDS), 1, 1)
            num_inputs = {
                "elementwise": 2 if rng.random() < 0.35 else 1,
                "stencil": 1, "matvec": 2, "reduce": 1,
                "group": 1, "indirect": 2,
            }[gen]
            inputs = []
            for j in range(num_inputs):
                if j == 0 and rng.random() < 0.65:
                    inputs.append(last_output)  # chain onto the producer
                else:
                    inputs.append(rng.randrange(num_buffers))
            if rng.random() < 0.75:
                output = num_buffers
                num_buffers += 1
            else:
                output = rng.randrange(num_buffers)  # alias a live buffer
            params = _draw_params(rng, gen, grid, block, inputs)
            kernels.append(FuzzKernel(
                gen=gen, grid=grid, block=block, inputs=tuple(inputs),
                output=output, params=tuple(sorted(params.items())),
            ))
            last_output = output
        kernels = tuple(kernels)
        return cls(
            seed=seed,
            kernels=kernels,
            num_buffers=num_buffers,
            elems=_required_elems(kernels),
        )

    def to_dict(self):
        return {
            "seed": self.seed,
            "num_buffers": self.num_buffers,
            "elems": self.elems,
            "kernels": [k.as_dict() for k in self.kernels],
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            seed=int(data["seed"]),
            kernels=tuple(
                FuzzKernel.from_dict(k) for k in data["kernels"]
            ),
            num_buffers=int(data["num_buffers"]),
            elems=int(data["elems"]),
        )


def _weighted_choice(rng, table):
    total = sum(weight for _, weight in table)
    point = rng.random() * total
    for name, weight in table:
        point -= weight
        if point < 0:
            return name
    return table[-1][0]


def _draw_params(rng, gen, grid, block, inputs):
    if gen == "elementwise":
        params = {"alu": rng.randint(1, 3)}
        for j in range(len(inputs)):
            params["shift{}".format(j)] = rng.choice((-2, -1, 0, 0, 1, 2))
        return params
    if gen == "stencil":
        return {"radius": rng.choice((1, 2)), "alu": rng.randint(1, 3)}
    if gen == "matvec":
        return {"k": rng.choice((4, 8))}
    if gen == "reduce":
        return {
            "stride": block * rng.choice((1, 2)),
            "count": rng.randint(2, 4),
            "off": rng.choice((0, block)),
        }
    if gen == "group":
        return {"alu": rng.randint(1, 2)}
    if gen == "indirect":
        return {}
    raise ValueError("unknown fuzz generator %r" % gen)


def _required_elems(kernels):
    """Shared buffer size covering every kernel's access footprint."""
    needed = 256
    for k in kernels:
        flat = k.num_tbs * k.block
        if k.gen == "elementwise":
            span = flat + 4
        elif k.gen == "stencil":
            span = flat + 2 * k.param("radius", 1)
        elif k.gen == "matvec":
            span = flat * k.param("k", 4)
        elif k.gen == "reduce":
            span = (k.param("off") + flat
                    + (k.param("count", 2) - 1) * k.param("stride", k.block) + 1)
        else:  # group / indirect read at most the flat index space
            span = flat
        needed = max(needed, span)
    return needed + 16


def fuzz_kernel_source(index, kernel):
    """The PTX text for one drawn kernel (name is index-unique because
    ``AppBuilder.register_kernel`` dedupes by kernel name)."""
    name = "fz{}_{}".format(index, kernel.gen)
    if kernel.gen == "elementwise":
        shifts = [kernel.param("shift{}".format(j))
                  for j in range(len(kernel.inputs))]
        return elementwise(name, num_inputs=len(kernel.inputs),
                           shifts=shifts, alu=kernel.param("alu", 1))
    if kernel.gen == "stencil":
        return stencil1d(name, radius=kernel.param("radius", 1),
                         alu=kernel.param("alu", 1))
    if kernel.gen == "matvec":
        return matvec(name)
    if kernel.gen == "reduce":
        return reduce_columns(name)
    if kernel.gen == "group":
        return group_read(name, group_span_elems=kernel.grid[0] * kernel.block,
                          alu=kernel.param("alu", 1))
    if kernel.gen == "indirect":
        return indirect_gather(name)
    raise ValueError("unknown fuzz generator %r" % kernel.gen)


def _fuzz_args(kernel, buffers):
    bufs = [buffers[i] for i in kernel.inputs]
    out = buffers[kernel.output]
    if kernel.gen == "elementwise":
        args = {"IN{}".format(j): buf for j, buf in enumerate(bufs)}
        args["OUT"] = out
        return args
    if kernel.gen == "stencil":
        return {"IN": bufs[0], "OUT": out}
    if kernel.gen == "matvec":
        return {"A": bufs[0], "X": bufs[1], "Y": out,
                "K": kernel.param("k", 4)}
    if kernel.gen == "reduce":
        return {"IN": bufs[0], "OUT": out,
                "STRIDE": kernel.param("stride", kernel.block),
                "COUNT": kernel.param("count", 2),
                "OFF": kernel.param("off"), "OUTOFF": 0}
    if kernel.gen == "group":
        return {"IN": bufs[0], "OUT": out}
    if kernel.gen == "indirect":
        return {"DATA": bufs[0], "IDX": bufs[1], "OUT": out}
    raise ValueError("unknown fuzz generator %r" % kernel.gen)


def fuzz_module_source(spec):
    """All kernels of a spec as one parse_module-compatible PTX text."""
    return "\n".join(
        fuzz_kernel_source(i, k) for i, k in enumerate(spec.kernels)
    )


def fuzz_module_digest(seed):
    """sha256 over the regenerated PTX of ``FuzzSpec.from_seed(seed)``.

    Module-level and picklable on purpose: the determinism property
    tests fan this out over worker processes and subprocesses with
    different ``PYTHONHASHSEED`` values and compare digests.
    """
    source = fuzz_module_source(FuzzSpec.from_seed(seed))
    return "sha256:" + hashlib.sha256(source.encode("utf-8")).hexdigest()


def build_fuzz_app(spec):
    """Materialize a :class:`FuzzSpec` as a real application."""
    # Imported here: base pulls in the host/ptx layers, which the plain
    # kernel generators above must stay independent of.
    from repro.workloads.base import AppBuilder

    builder = AppBuilder("fuzz-{}".format(spec.seed))
    buffers = [
        builder.alloc("B{}".format(i), spec.elems * 4)
        for i in range(spec.num_buffers)
    ]
    builder.h2d(buffers[0])
    for i, kernel in enumerate(spec.kernels):
        builder.launch(
            fuzz_kernel_source(i, kernel),
            grid=kernel.grid,
            block=kernel.block,
            args=_fuzz_args(kernel, buffers),
            intensity=2.0,
            tag="fz{}".format(i),
        )
    builder.d2h(buffers[spec.kernels[-1].output])
    return builder.build(
        fuzz_seed=spec.seed, fuzz_kernels=len(spec.kernels)
    )


@functools.lru_cache(maxsize=256)
def fuzz_workload_spec(seed):
    """The hidden registry row behind ``get_workload("fuzz-<seed>")``.

    Mirrors the analysis-fastpath microbench seam: resolvable by name
    (so bench/CLI plumbing works unchanged) while staying out of
    ``all_workloads()``/``matching_workloads()`` and therefore out of
    ``list``/``--filter``.
    """
    from repro.workloads.registry import WorkloadSpec

    spec = FuzzSpec.from_seed(seed)

    def build(**_overrides):
        return build_fuzz_app(spec)

    return WorkloadSpec(
        name="fuzz-{}".format(spec.seed),
        description="seeded fuzz application ({} kernels, {} buffers)".format(
            len(spec.kernels), spec.num_buffers
        ),
        suite="fuzz",
        paper_kernels=len(spec.kernels),
        paper_patterns=(),
        builder=build,
    )
