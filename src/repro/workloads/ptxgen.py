"""Parametric mini-PTX kernel generators.

All workload kernels are produced here as real PTX text so the
launch-time analysis pipeline (parser → Algorithm 1 → value-range
analysis) runs on genuine instruction streams.  Each generator returns
source accepted by :func:`repro.ptx.parser.parse_module`.

The generators cover the index-expression shapes that produce the
paper's Table I dependency patterns:

* :func:`elementwise` — per-thread affine map (1-to-1 and shifted reads)
* :func:`stencil1d` / :func:`stencil2d` — neighbourhood reads
  (overlapped pattern)
* :func:`matvec` / :func:`matvec_transposed` — row/column loops
* :func:`group_read` — each block reads a whole group of blocks' data
  (n-group fully connected)
* :func:`reduce_columns` — single-output reductions (n-to-1)
* :func:`broadcast_scale` — scalar fan-out (1-to-n)
* :func:`fft_stage` — two-halves butterfly (1-to-1 across stages)
* :func:`wavefront_block` — anti-diagonal block dependencies
* :func:`gaussian_fan1` / :func:`gaussian_fan2` — Gaussian elimination
* :func:`indirect_gather` — A[B[i]] addressing (forces the non-static
  fallback; used by tests)
"""

import itertools


class Emitter:
    """Tiny helper assembling a kernel body with fresh register names.

    Public: workload modules with bespoke kernels (e.g. LUD's tile
    kernels) build on it directly.
    """

    def __init__(self, name, params):
        self.name = name
        self.params = list(params)  # (name, dtype)
        self.lines = []
        self._ids = itertools.count()

    def reg(self, prefix="r"):
        return "%{}{}".format(prefix, next(self._ids))

    def emit(self, text):
        self.lines.append("    " + text)

    def label(self, label):
        self.lines.append(label + ":")

    def load_params(self, *names):
        regs = []
        declared = dict(self.params)
        for name in names:
            dtype = declared[name]
            reg = self.reg("rd" if dtype == "u64" else "r")
            self.emit("ld.param.{} {}, [{}];".format(dtype, reg, name))
            regs.append(reg)
        return regs

    def flat_index(self):
        """%ri = ctaid.x * ntid.x + tid.x"""
        b = self.reg()
        i = self.reg()
        self.emit("mov.u32 {}, %ctaid.x;".format(b))
        self.emit("mad.lo.u32 {}, {}, %ntid.x, %tid.x;".format(i, b))
        return i

    def address(self, base_reg, index_reg, elem=4, offset_elems=0):
        """base + (index + offset) * elem -> u64 register"""
        idx = index_reg
        if offset_elems:
            shifted = self.reg()
            self.emit(
                "add.u32 {}, {}, {};".format(shifted, index_reg, offset_elems)
            )
            idx = shifted
        wide = self.reg("rd")
        self.emit("mul.wide.u32 {}, {}, {};".format(wide, idx, elem))
        addr = self.reg("rd")
        self.emit("add.u64 {}, {}, {};".format(addr, base_reg, wide))
        return addr

    def load_f32(self, base_reg, index_reg, offset_elems=0):
        addr = self.address(base_reg, index_reg, offset_elems=offset_elems)
        val = self.reg("f")
        self.emit("ld.global.f32 {}, [{}];".format(val, addr))
        return val

    def store_f32(self, base_reg, index_reg, value, offset_elems=0):
        addr = self.address(base_reg, index_reg, offset_elems=offset_elems)
        self.emit("st.global.f32 [{}], {};".format(addr, value))

    def alu_chain(self, seed_reg, count):
        """A dependent chain of float operations (compute intensity)."""
        acc = seed_reg
        for _ in range(count):
            nxt = self.reg("f")
            self.emit("mul.f32 {}, {}, {};".format(nxt, acc, acc))
            acc = nxt
        return acc

    def combine(self, values):
        if not values:
            raise ValueError("no values to combine")
        acc = values[0]
        for value in values[1:]:
            nxt = self.reg("f")
            self.emit("add.f32 {}, {}, {};".format(nxt, acc, value))
            acc = nxt
        return acc

    def render(self):
        params = ", ".join(
            ".param .{} {}".format(dtype, name) for name, dtype in self.params
        )
        body = "\n".join(self.lines)
        return ".visible .entry {} ({})\n{{\n{}\n    ret;\n}}\n".format(
            self.name, params, body
        )


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def elementwise(name, num_inputs=1, shifts=None, alu=2, scale=1, guard=False):
    """Per-thread map: ``OUT[scale*i + shift_k] <- f(IN_k[scale*i + shift_k])``.

    With ``scale == 1`` and zero shifts this yields a 1-to-1 dependency
    pattern against an identically-partitioned producer.
    """
    shifts = list(shifts or [0] * num_inputs)
    if len(shifts) != num_inputs:
        raise ValueError("one shift per input required")
    params = [("IN{}".format(k), "u64") for k in range(num_inputs)]
    params.append(("OUT", "u64"))
    if guard:
        params.append(("N", "u32"))
    e = Emitter(name, params)
    regs = e.load_params(*[p for p, _ in params])
    in_regs, out_reg = regs[:num_inputs], regs[num_inputs]
    i = e.flat_index()
    if guard:
        n_reg = regs[num_inputs + 1]
        p = e.reg("p")
        e.emit("setp.ge.u32 {}, {}, {};".format(p, i, n_reg))
        e.emit("@{} bra DONE;".format(p))
    idx = i
    if scale != 1:
        idx = e.reg()
        e.emit("mul.lo.u32 {}, {}, {};".format(idx, i, scale))
    values = [
        e.load_f32(in_regs[k], idx, offset_elems=shifts[k])
        for k in range(num_inputs)
    ]
    acc = e.combine(values)
    acc = e.alu_chain(acc, alu)
    e.store_f32(out_reg, idx, acc)
    if guard:
        e.label("DONE")
    return e.render()


def stencil1d(name, radius=1, alu=2, extra_input=None):
    """1-D stencil: reads ``IN[i-radius .. i+radius]``, writes ``OUT[i]``.

    Adjacent thread blocks share halo elements, producing the paper's
    *overlapped* pattern (6).  ``extra_input`` adds a second read-only
    array at index ``i`` (e.g. PathFinder's wall matrix).
    """
    params = [("IN", "u64"), ("OUT", "u64")]
    if extra_input:
        params.insert(1, (extra_input, "u64"))
    e = Emitter(name, params)
    regs = e.load_params(*[p for p, _ in params])
    in_reg, out_reg = regs[0], regs[-1]
    i = e.flat_index()
    values = [
        e.load_f32(in_reg, i, offset_elems=off)
        for off in range(-radius, radius + 1)
    ]
    if extra_input:
        values.append(e.load_f32(regs[1], i))
    acc = e.combine(values)
    acc = e.alu_chain(acc, alu)
    e.store_f32(out_reg, i, acc)
    return e.render()


def stencil2d(name, width, alu=4, extra_input="POWER"):
    """2-D 5-point stencil over a row-major ``width``-wide grid.

    Thread blocks cover contiguous flattened ranges; the ``i +- width``
    reads reach into the previous/next block's rows — the Hotspot-style
    overlapped pattern.
    """
    params = [("IN", "u64"), (extra_input, "u64"), ("OUT", "u64")]
    e = Emitter(name, params)
    in_reg, pow_reg, out_reg = e.load_params("IN", extra_input, "OUT")
    i = e.flat_index()
    values = [
        e.load_f32(in_reg, i),
        e.load_f32(in_reg, i, offset_elems=-1),
        e.load_f32(in_reg, i, offset_elems=1),
        e.load_f32(in_reg, i, offset_elems=-width),
        e.load_f32(in_reg, i, offset_elems=width),
        e.load_f32(pow_reg, i),
    ]
    acc = e.combine(values)
    acc = e.alu_chain(acc, alu)
    e.store_f32(out_reg, i, acc)
    return e.render()


def matvec(name, alu=0):
    """Row-dot-product: ``Y[i] = sum_k A[i*K + k] * X[k]``; K is a
    launch parameter, so the loop trip count is resolved at launch time."""
    e = Emitter(name, [("A", "u64"), ("X", "u64"), ("Y", "u64"), ("K", "u32")])
    a_reg, x_reg, y_reg, k_reg = e.load_params("A", "X", "Y", "K")
    i = e.flat_index()
    row = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(row, i, k_reg))
    k = "%k"
    acc = "%facc"
    e.emit("mov.u32 {}, 0;".format(k))
    e.emit("mov.f32 {}, 0.0;".format(acc))
    e.label("LOOP")
    idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(idx, row, k))
    a_val = e.load_f32(a_reg, idx)
    x_val = e.load_f32(x_reg, k)
    prod = e.reg("f")
    e.emit("mul.f32 {}, {}, {};".format(prod, a_val, x_val))
    e.emit("add.f32 {}, {}, {};".format(acc, acc, prod))
    e.emit("add.u32 {}, {}, 1;".format(k, k))
    p = e.reg("p")
    e.emit("setp.lt.u32 {}, {}, {};".format(p, k, k_reg))
    e.emit("@{} bra LOOP;".format(p))
    final = e.alu_chain(acc, alu)
    e.store_f32(y_reg, i, final)
    return e.render()


def matvec_transposed(name, alu=0):
    """Column-dot-product: ``Y[i] = sum_k A[k*N + i] * X[k]``."""
    e = Emitter(
        name,
        [("A", "u64"), ("X", "u64"), ("Y", "u64"), ("K", "u32"), ("N", "u32")],
    )
    a_reg, x_reg, y_reg, k_reg, n_reg = e.load_params("A", "X", "Y", "K", "N")
    i = e.flat_index()
    k = "%k"
    acc = "%facc"
    e.emit("mov.u32 {}, 0;".format(k))
    e.emit("mov.f32 {}, 0.0;".format(acc))
    e.label("LOOP")
    idx = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(idx, k, n_reg, i))
    a_val = e.load_f32(a_reg, idx)
    x_val = e.load_f32(x_reg, k)
    prod = e.reg("f")
    e.emit("mul.f32 {}, {}, {};".format(prod, a_val, x_val))
    e.emit("add.f32 {}, {}, {};".format(acc, acc, prod))
    e.emit("add.u32 {}, {}, 1;".format(k, k))
    p = e.reg("p")
    e.emit("setp.lt.u32 {}, {}, {};".format(p, k, k_reg))
    e.emit("@{} bra LOOP;".format(p))
    final = e.alu_chain(acc, alu)
    e.store_f32(y_reg, i, final)
    return e.render()


def group_read(name, group_span_elems, alu=2, writes_flat=True):
    """Each thread block reads a whole *group* of blocks' output.

    Launched with a 2-D grid ``(blocks_per_group, num_groups)``: block
    ``(bx, by)`` reads the entire ``group_span_elems`` window of group
    ``by`` from ``IN`` and writes its own flat block of ``OUT``.  Against
    a producer that wrote ``IN`` in flat blocks this yields the n-group
    fully connected pattern (Table I row 2) with groups of size
    ``blocks_per_group``, and it is the Fig. 12 interconnectivity
    microbenchmark's dependency-degree knob.
    """
    e = Emitter(name, [("IN", "u64"), ("OUT", "u64")])
    in_reg, out_reg = e.load_params("IN", "OUT")
    # group base: ctaid.y * group_span
    gy = e.reg()
    e.emit("mov.u32 {}, %ctaid.y;".format(gy))
    gbase = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(gbase, gy, group_span_elems))
    # strided read of the whole group window: one element per thread,
    # strided by ntid so the block covers group_span_elems elements
    t = e.reg()
    e.emit("mov.u32 {}, %tid.x;".format(t))
    k = "%k"
    acc = "%facc"
    e.emit("mov.u32 {}, 0;".format(k))
    e.emit("mov.f32 {}, 0.0;".format(acc))
    e.label("LOOP")
    stride_idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(stride_idx, k, t))
    idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(idx, gbase, stride_idx))
    val = e.load_f32(in_reg, idx)
    e.emit("add.f32 {}, {}, {};".format(acc, acc, val))
    e.emit("add.u32 {}, {}, %ntid.x;".format(k, k))
    p = e.reg("p")
    e.emit("setp.lt.u32 {}, {}, {};".format(p, k, group_span_elems))
    e.emit("@{} bra LOOP;".format(p))
    final = e.alu_chain(acc, alu)
    if writes_flat:
        # flat output block: (ctaid.y * nctaid.x + ctaid.x) * ntid + tid
        bx = e.reg()
        e.emit("mov.u32 {}, %ctaid.x;".format(bx))
        flat_b = e.reg()
        e.emit("mad.lo.u32 {}, {}, %nctaid.x, {};".format(flat_b, gy, bx))
        out_i = e.reg()
        e.emit("mad.lo.u32 {}, {}, %ntid.x, %tid.x;".format(out_i, flat_b))
        e.store_f32(out_reg, out_i, final)
    return e.render()


def group_sample(name, group_span_elems, stride_elems, alu=2):
    """Equal-work n-group reader: each thread loads *one* element,
    sampled across its block's whole group window with ``stride_elems``.

    Unlike :func:`group_read`, the amount of work per block is constant
    regardless of the group size — only the *footprint* (and therefore
    the dependency degree) grows.  This matches the paper's Fig. 12
    microbenchmark, which artificially raises the dependency degree
    between two equal-size kernels.
    """
    e = Emitter(name, [("IN", "u64"), ("OUT", "u64")])
    in_reg, out_reg = e.load_params("IN", "OUT")
    gy = e.reg()
    e.emit("mov.u32 {}, %ctaid.y;".format(gy))
    gbase = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(gbase, gy, group_span_elems))
    t = e.reg()
    e.emit("mov.u32 {}, %tid.x;".format(t))
    offset = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(offset, t, stride_elems))
    idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(idx, gbase, offset))
    val = e.load_f32(in_reg, idx)
    acc = e.alu_chain(val, alu)
    bx = e.reg()
    e.emit("mov.u32 {}, %ctaid.x;".format(bx))
    flat_b = e.reg()
    e.emit("mad.lo.u32 {}, {}, %nctaid.x, {};".format(flat_b, gy, bx))
    out_i = e.reg()
    e.emit("mad.lo.u32 {}, {}, %ntid.x, %tid.x;".format(out_i, flat_b))
    e.store_f32(out_reg, out_i, acc)
    return e.render()


def reduce_columns(name, alu=0):
    """Strided reduction: thread ``i`` accumulates
    ``IN[OFF + i + k*STRIDE]`` for ``k`` in ``[0, COUNT)`` and writes
    ``OUT[OUTOFF + i]`` — many producer blocks feeding few consumer
    blocks (n-to-1).  ``OFF``/``OUTOFF`` select e.g. a matrix column."""
    e = Emitter(
        name,
        [
            ("IN", "u64"),
            ("OUT", "u64"),
            ("STRIDE", "u32"),
            ("COUNT", "u32"),
            ("OFF", "u32"),
            ("OUTOFF", "u32"),
        ],
    )
    in_reg, out_reg, stride_reg, count_reg, off_reg, ooff_reg = e.load_params(
        "IN", "OUT", "STRIDE", "COUNT", "OFF", "OUTOFF"
    )
    i = e.flat_index()
    base = e.reg()
    e.emit("add.u32 {}, {}, {};".format(base, i, off_reg))
    k = "%k"
    acc = "%facc"
    e.emit("mov.u32 {}, 0;".format(k))
    e.emit("mov.f32 {}, 0.0;".format(acc))
    e.label("LOOP")
    idx = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(idx, k, stride_reg, base))
    val = e.load_f32(in_reg, idx)
    e.emit("add.f32 {}, {}, {};".format(acc, acc, val))
    e.emit("add.u32 {}, {}, 1;".format(k, k))
    p = e.reg("p")
    e.emit("setp.lt.u32 {}, {}, {};".format(p, k, count_reg))
    e.emit("@{} bra LOOP;".format(p))
    final = e.alu_chain(acc, alu) if alu else acc
    out_i = e.reg()
    e.emit("add.u32 {}, {}, {};".format(out_i, i, ooff_reg))
    e.store_f32(out_reg, out_i, final)
    return e.render()


def broadcast_scale(name, alu=1):
    """``OUT[OFF + i] = IN[OFF + i] * SCALARS[SIDX]`` — every consumer
    block reads one scalar produced by a single block (1-to-n from that
    producer).  ``OFF`` selects e.g. a matrix column."""
    e = Emitter(
        name,
        [
            ("IN", "u64"),
            ("SCALARS", "u64"),
            ("OUT", "u64"),
            ("SIDX", "u32"),
            ("OFF", "u32"),
        ],
    )
    in_reg, s_reg, out_reg, sidx_reg, off_reg = e.load_params(
        "IN", "SCALARS", "OUT", "SIDX", "OFF"
    )
    i = e.flat_index()
    idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(idx, i, off_reg))
    scalar = e.load_f32(s_reg, sidx_reg)
    val = e.load_f32(in_reg, idx)
    prod = e.reg("f")
    e.emit("mul.f32 {}, {}, {};".format(prod, val, scalar))
    acc = e.alu_chain(prod, alu)
    e.store_f32(out_reg, idx, acc)
    return e.render()


def fft_stage(name, alu=3):
    """Radix-2 Stockham butterfly stage.

    Thread ``i`` (``i`` in ``[0, HALF)`` by grid sizing) reads
    ``IN[i]`` and ``IN[i + HALF]`` and writes ``OUT[i]`` and
    ``OUT[i + HALF]``.  With equal grids each stage's block ``b`` touches
    exactly the data block ``b`` of the previous stage wrote: 1-to-1.
    """
    e = Emitter(name, [("IN", "u64"), ("OUT", "u64"), ("HALF", "u32")])
    in_reg, out_reg, half_reg = e.load_params("IN", "OUT", "HALF")
    i = e.flat_index()
    hi = e.reg()
    e.emit("add.u32 {}, {}, {};".format(hi, i, half_reg))
    lo_val = e.load_f32(in_reg, i)
    hi_val = e.load_f32(in_reg, hi)
    sum_val = e.reg("f")
    e.emit("add.f32 {}, {}, {};".format(sum_val, lo_val, hi_val))
    dif_val = e.reg("f")
    e.emit("sub.f32 {}, {}, {};".format(dif_val, lo_val, hi_val))
    sum_val = e.alu_chain(sum_val, alu)
    dif_val = e.alu_chain(dif_val, alu)
    e.store_f32(out_reg, i, sum_val)
    e.store_f32(out_reg, hi, dif_val)
    return e.render()


def wavefront_block(name, parents=2, alu=4):
    """One anti-diagonal wavefront level.

    Block ``b`` writes ``CUR[b]``'s block and reads the ``parents``
    neighbouring blocks ``PREV[b], PREV[b-1](, PREV[b-2])`` — producing
    the sliding-window overlapped dependency of wavefront codes
    (Needleman-Wunsch, SOR, Smith-Waterman...).  ``SHIFT`` aligns block
    indices between levels of different widths.
    """
    e = Emitter(
        name, [("PREV", "u64"), ("CUR", "u64"), ("SHIFT", "u32")]
    )
    prev_reg, cur_reg, shift_reg = e.load_params("PREV", "CUR", "SHIFT")
    i = e.flat_index()
    shifted = e.reg()
    e.emit("add.u32 {}, {}, {};".format(shifted, i, shift_reg))
    values = [e.load_f32(prev_reg, shifted)]
    for p in range(1, parents):
        off = e.reg()
        e.emit("sub.u32 {}, {}, {};".format(off, shifted, "%ntid.x"))
        values.append(e.load_f32(prev_reg, off))
        shifted = off
    acc = e.combine(values)
    acc = e.alu_chain(acc, alu)
    out_i = e.reg()
    e.emit("add.u32 {}, {}, {};".format(out_i, i, shift_reg))
    e.store_f32(cur_reg, out_i, acc)
    return e.render()


def gaussian_fan1(name):
    """Fan1: compute multipliers ``M[i] = A[i*N + T] / A[T*N + T]`` for
    rows ``i`` below the pivot ``T`` (one small 1-D kernel)."""
    e = Emitter(name, [("A", "u64"), ("M", "u64"), ("N", "u32"), ("T", "u32")])
    a_reg, m_reg, n_reg, t_reg = e.load_params("A", "M", "N", "T")
    i = e.flat_index()
    row = e.reg()
    e.emit("add.u32 {}, {}, {};".format(row, i, t_reg))
    ridx = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(ridx, row, n_reg, t_reg))
    pividx = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(pividx, t_reg, n_reg, t_reg))
    elem = e.load_f32(a_reg, ridx)
    piv = e.load_f32(a_reg, pividx)
    ratio = e.reg("f")
    e.emit("div.f32 {}, {}, {};".format(ratio, elem, piv))
    e.store_f32(m_reg, row, ratio)
    return e.render()


def gaussian_fan2(name, alu=1):
    """Fan2: eliminate — ``A[r][c] -= M[r] * A[T][c]`` over the trailing
    submatrix, one row per thread block row."""
    e = Emitter(name, [("A", "u64"), ("M", "u64"), ("N", "u32"), ("T", "u32")])
    a_reg, m_reg, n_reg, t_reg = e.load_params("A", "M", "N", "T")
    # row = ctaid.y + T + 1 ; col = flat x index + T
    ry = e.reg()
    e.emit("mov.u32 {}, %ctaid.y;".format(ry))
    row = e.reg()
    e.emit("add.u32 {}, {}, {};".format(row, ry, t_reg))
    row1 = e.reg()
    e.emit("add.u32 {}, {}, 1;".format(row1, row))
    cx = e.reg()
    e.emit("mov.u32 {}, %ctaid.x;".format(cx))
    col0 = e.reg()
    e.emit("mad.lo.u32 {}, {}, %ntid.x, %tid.x;".format(col0, cx))
    col = e.reg()
    e.emit("add.u32 {}, {}, {};".format(col, col0, t_reg))
    target = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(target, row1, n_reg, col))
    pivrow = e.reg()
    e.emit("mad.lo.u32 {}, {}, {}, {};".format(pivrow, t_reg, n_reg, col))
    mult = e.load_f32(m_reg, row1)
    pivval = e.load_f32(a_reg, pivrow)
    cur = e.load_f32(a_reg, target)
    prod = e.reg("f")
    e.emit("mul.f32 {}, {}, {};".format(prod, mult, pivval))
    upd = e.reg("f")
    e.emit("sub.f32 {}, {}, {};".format(upd, cur, prod))
    upd = e.alu_chain(upd, alu)
    e.store_f32(a_reg, target, upd)
    return e.render()


def full_read_map(name, alu=2):
    """Each thread block reads the *entire* input buffer and writes its
    own flat output block.

    This is the access shape of dense (fully-connected) neural-network
    layers and of convolutions partitioned by output channel: every
    output block depends on every producer block — Table I's fully
    connected pattern.  ``SPAN`` (elements) is a launch parameter;
    ``INOFF``/``OUTOFF`` shift the read window and write block.
    """
    e = Emitter(
        name,
        [
            ("IN", "u64"),
            ("OUT", "u64"),
            ("SPAN", "u32"),
            ("INOFF", "u32"),
            ("OUTOFF", "u32"),
        ],
    )
    in_reg, out_reg, span_reg, inoff_reg, outoff_reg = e.load_params(
        "IN", "OUT", "SPAN", "INOFF", "OUTOFF"
    )
    t = e.reg()
    e.emit("mov.u32 {}, %tid.x;".format(t))
    base = e.reg()
    e.emit("add.u32 {}, {}, {};".format(base, t, inoff_reg))
    k = "%k"
    acc = "%facc"
    e.emit("mov.u32 {}, 0;".format(k))
    e.emit("mov.f32 {}, 0.0;".format(acc))
    e.label("LOOP")
    idx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(idx, k, base))
    val = e.load_f32(in_reg, idx)
    e.emit("add.f32 {}, {}, {};".format(acc, acc, val))
    e.emit("add.u32 {}, {}, %ntid.x;".format(k, k))
    p = e.reg("p")
    e.emit("setp.lt.u32 {}, {}, {};".format(p, k, span_reg))
    e.emit("@{} bra LOOP;".format(p))
    final = e.alu_chain(acc, alu)
    flat = e.flat_index()
    out_i = e.reg()
    e.emit("add.u32 {}, {}, {};".format(out_i, flat, outoff_reg))
    e.store_f32(out_reg, out_i, final)
    return e.render()


def matmul_colblock(name, group_span_elems, alu=1):
    """Column-block matrix multiply (column-major storage).

    Launched on a 2-D grid ``(blocks_per_group, num_groups)``.  Block
    ``(bx, by)`` reads the whole column *group* ``by`` of ``INGROUP``
    (the tiling reuse window — n-group fully connected against the
    producer of ``INGROUP``), loops over the full ``INFULL`` matrix
    (``SPAN`` elements), and writes its own flat column block of ``OUT``.
    """
    e = Emitter(
        name,
        [("INGROUP", "u64"), ("INFULL", "u64"), ("OUT", "u64"), ("SPAN", "u32")],
    )
    g_reg, f_reg, out_reg, span_reg = e.load_params(
        "INGROUP", "INFULL", "OUT", "SPAN"
    )
    gy = e.reg()
    e.emit("mov.u32 {}, %ctaid.y;".format(gy))
    gbase = e.reg()
    e.emit("mul.lo.u32 {}, {}, {};".format(gbase, gy, group_span_elems))
    t = e.reg()
    e.emit("mov.u32 {}, %tid.x;".format(t))
    k = "%k"
    acc = "%facc"
    e.emit("mov.u32 {}, 0;".format(k))
    e.emit("mov.f32 {}, 0.0;".format(acc))
    e.label("GLOOP")
    gidx0 = e.reg()
    e.emit("add.u32 {}, {}, {};".format(gidx0, k, t))
    gidx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(gidx, gbase, gidx0))
    gval = e.load_f32(g_reg, gidx)
    e.emit("add.f32 {}, {}, {};".format(acc, acc, gval))
    e.emit("add.u32 {}, {}, %ntid.x;".format(k, k))
    p = e.reg("p")
    e.emit("setp.lt.u32 {}, {}, {};".format(p, k, group_span_elems))
    e.emit("@{} bra GLOOP;".format(p))
    j = "%j"
    e.emit("mov.u32 {}, 0;".format(j))
    e.label("FLOOP")
    fidx = e.reg()
    e.emit("add.u32 {}, {}, {};".format(fidx, j, t))
    fval = e.load_f32(f_reg, fidx)
    e.emit("add.f32 {}, {}, {};".format(acc, acc, fval))
    e.emit("add.u32 {}, {}, %ntid.x;".format(j, j))
    q = e.reg("p")
    e.emit("setp.lt.u32 {}, {}, {};".format(q, j, span_reg))
    e.emit("@{} bra FLOOP;".format(q))
    final = e.alu_chain(acc, alu)
    bx = e.reg()
    e.emit("mov.u32 {}, %ctaid.x;".format(bx))
    flat_b = e.reg()
    e.emit("mad.lo.u32 {}, {}, %nctaid.x, {};".format(flat_b, gy, bx))
    out_i = e.reg()
    e.emit("mad.lo.u32 {}, {}, %ntid.x, %tid.x;".format(out_i, flat_b))
    e.store_f32(out_reg, out_i, final)
    return e.render()


def indirect_gather(name):
    """``OUT[i] = DATA[IDX[i]]`` — the canonical non-static access that
    Algorithm 1 must flag (the paper's A[B[i]] limitation)."""
    e = Emitter(name, [("DATA", "u64"), ("IDX", "u64"), ("OUT", "u64")])
    d_reg, i_reg, o_reg = e.load_params("DATA", "IDX", "OUT")
    i = e.flat_index()
    addr = e.address(i_reg, i)
    j = e.reg()
    e.emit("ld.global.u32 {}, [{}];".format(j, addr))
    val = e.load_f32(d_reg, j)
    e.store_f32(o_reg, i, val)
    return e.render()
