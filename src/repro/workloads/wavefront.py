"""Wavefront applications for the Fig. 14 comparison.

Following the paper ("we have used the benchmarks in [Wireframe]: six
applications with wavefront dependency pattern of 4K tasks"), each
application is a 64x64 task grid processed by anti-diagonals: 127
levels whose width grows from 1 to 64 and shrinks back, 4096 tasks in
total.  Each level is one kernel; a task reads its top/left (and
optionally top-left) neighbours from the previous level.

The six applications differ in arithmetic intensity, dependency arity
and per-task duration skew — the dimensions along which wavefront codes
actually vary (dynamic-programming string codes are light and uniform,
stencil relaxations are heavy, signal alignment is skewed).
"""

from repro.workloads import ptxgen
from repro.workloads.base import AppBuilder

_ELEM = 4

#: (name, parent arity, intensity, straggler factor, straggler fraction)
WAVEFRONT_APPS = (
    ("sor", 2, 2.0, 6.0, 0.12),
    ("sw", 3, 3.0, 5.0, 0.15),
    ("lcs", 2, 1.5, 8.0, 0.10),
    ("heat2d", 2, 4.0, 4.0, 0.20),
    ("dtw", 3, 3.0, 7.0, 0.12),
    ("sat", 2, 2.0, 6.0, 0.15),
)


def build_wavefront(
    name,
    side=64,
    parents=2,
    intensity=1.0,
    straggler_factor=0.0,
    straggler_fraction=0.0,
    block_threads=64,
):
    """One wavefront application: ``2*side - 1`` level kernels.

    ``straggler_factor``/``straggler_fraction`` give a deterministic
    heavy-tailed per-task duration distribution: a ``fraction`` of the
    blocks in each level run ``factor`` times longer.  Wavefront codes
    (alignment scoring, red-black relaxation on irregular data) have
    exactly this shape, and it is what run-ahead schedules exploit:
    level-serialized execution pays every level's straggler, while
    run-ahead overlaps stragglers with the following levels.
    """
    b = AppBuilder(name)
    bufs = [
        b.alloc("LEVEL{}".format(i), side * block_threads * _ELEM)
        for i in range(3)
    ]
    b.h2d(bufs[0])
    kernel = ptxgen.wavefront_block(
        "{}_level".format(name), parents=parents, alu=4
    )
    total = 2 * side - 1
    for d in range(1, total):
        size = min(d + 1, side, total - d)
        growing = d < side
        call = b.launch(
            kernel,
            grid=size,
            block=block_threads,
            args={
                "PREV": bufs[(d - 1) % 3],
                "CUR": bufs[d % 3],
                "SHIFT": 0 if growing else parents - 1,
            },
            intensity=intensity,
            tag="{}_d{}".format(name, d),
        )
        if straggler_factor and straggler_fraction:
            call.tb_duration_scale_fn = _straggler_scale(
                d, straggler_factor, straggler_fraction
            )
    b.d2h(bufs[(total - 1) % 3])
    return b.build(
        wavefront_side=side,
        parents=parents,
        tasks=side * side,
        levels=total - 1,
    )


def _straggler_scale(level, factor, fraction):
    """Deterministic heavy-tail: a ``fraction`` of blocks (chosen by an
    integer hash of ``(level, tb_id)``) run ``factor`` times longer."""

    def fn(tb_id):
        h = (level * 0x9E3779B1 + tb_id * 0x7FEB352D + 0x1B873593) & 0xFFFFFFFF
        h ^= h >> 15
        h = (h * 0x2C1B3C6D) & 0xFFFFFFFF
        h ^= h >> 12
        if (h / float(1 << 32)) < fraction:
            return factor
        return 1.0

    return fn


def build_all_wavefronts(side=64):
    """All six Fig. 14 applications."""
    return [
        build_wavefront(
            name,
            side=side,
            parents=p,
            intensity=i,
            straggler_factor=f,
            straggler_fraction=q,
        )
        for name, p, i, f, q in WAVEFRONT_APPS
    ]
