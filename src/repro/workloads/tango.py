"""Tango-derived workload: AlexNet inference (22 kernels).

Layer kernels are access-shape models of the real network:

* **conv / fc layers** read the *entire* input activation buffer (every
  output tile depends on all input channels) — the fully connected
  dependency pattern (1) the paper highlights for AlexNet;
* **relu / softmax** are 1-to-1 elementwise maps (pattern 3);
* **norm** layers use a finer block partition than their producer, so
  each block has one exclusive parent (1-to-n, pattern 4);
* **pool** layers downsample 2:1, reading two producer blocks each
  (n-to-1).

Weight/bias buffers are inputs staged by host-to-device copies; they
have no producing kernel and therefore add no dependency edges.
"""

from repro.workloads import ptxgen
from repro.workloads.base import AppBuilder

_ELEM = 4


def build_alexnet(scale=262144, intensity_conv=1.0, intensity_other=20.0):
    """22-kernel AlexNet-like pipeline.

    ``scale`` is the element count of the input activation; deeper
    layers shrink as in the real network.  Layer list (22):
    conv1 relu1 pool1 norm1  conv2 relu2 pool2 norm2  conv3 relu3
    conv4 relu4  conv5 relu5 pool5  fc6 relu6 drop6  fc7 relu7
    fc8 softmax
    """
    b = AppBuilder("alexnet")
    conv = ptxgen.full_read_map("anet_conv", alu=4)
    ew = ptxgen.elementwise("anet_relu", num_inputs=1, alu=1)
    pool = ptxgen.elementwise("anet_pool", num_inputs=1, alu=1, scale=2)
    buffers = {}

    def buf(name, elems):
        buffers[name] = b.alloc(name, elems * _ELEM)
        return buffers[name]

    x_in = buf("INPUT", scale)
    b.h2d(x_in)
    weights = buf("WEIGHTS", scale)
    b.h2d(weights)

    current = x_in
    current_elems = scale
    launches = []

    def conv_layer(tag, out_elems):
        nonlocal current, current_elems
        out = buf(tag, out_elems)
        b.launch(
            conv,
            grid=out_elems // 256,
            block=256,
            args={
                "IN": current,
                "OUT": out,
                "SPAN": current_elems,
                "INOFF": 0,
                "OUTOFF": 0,
            },
            intensity=intensity_conv,
            tag=tag,
        )
        launches.append(tag)
        current, current_elems = out, out_elems

    def elementwise_layer(tag, block=256):
        nonlocal current
        out = buf(tag, current_elems)
        b.launch(
            ew,
            grid=current_elems // block,
            block=block,
            args={"IN0": current, "OUT": out},
            intensity=intensity_other,
            tag=tag,
        )
        launches.append(tag)
        current = out

    def pool_layer(tag):
        nonlocal current, current_elems
        out_elems = current_elems // 2
        out = buf(tag, current_elems)  # sized to input: scale-2 indexing
        b.launch(
            pool,
            grid=out_elems // 256,
            block=256,
            args={"IN0": current, "OUT": out},
            intensity=intensity_other,
            tag=tag,
        )
        launches.append(tag)
        current, current_elems = out, out_elems

    conv_layer("conv1", scale // 2)          # 1
    elementwise_layer("relu1")               # 2
    pool_layer("pool1")                      # 3
    elementwise_layer("norm1", block=128)    # 4 (finer blocks: 1-to-n)
    conv_layer("conv2", scale // 4)          # 5
    elementwise_layer("relu2")               # 6
    pool_layer("pool2")                      # 7
    elementwise_layer("norm2", block=128)    # 8
    conv_layer("conv3", scale // 8)          # 9
    elementwise_layer("relu3")               # 10
    conv_layer("conv4", scale // 8)          # 11
    elementwise_layer("relu4")               # 12
    conv_layer("conv5", scale // 16)         # 13
    elementwise_layer("relu5")               # 14
    pool_layer("pool5")                      # 15
    conv_layer("fc6", 1024)                  # 16
    elementwise_layer("relu6")               # 17
    elementwise_layer("drop6")               # 18
    conv_layer("fc7", 1024)                  # 19
    elementwise_layer("relu7")               # 20
    conv_layer("fc8", 256)                   # 21
    elementwise_layer("softmax")             # 22
    b.d2h(current)
    return b.build(
        table2_kernels=len(launches), table2_patterns=(1, 3, 4), scale=scale
    )
