"""PolyBench-derived workloads: 3MM, BICG, MVT, FDTD-2D, GRAMSCHM.

Each builder reproduces the kernel-launch structure (the kernel counts
of the paper's Table II) and the inter-kernel access shapes of the
PolyBench GPU codes, expressed in mini-PTX.  Problem sizes are scaled to
simulator-friendly footprints; only relative kernel durations matter
for the reproduced experiments (see DESIGN.md).
"""

from repro.workloads import ptxgen
from repro.workloads.base import AppBuilder

_THREADS = 256
_ELEM = 4


def build_3mm(elems=16384, group=4, intensity=3.0):
    """3 Matrix Multiplications: E=A*B, F=C*D, G=E*F (3 kernels).

    Matrices are column-major with ``elems`` elements each; every
    multiply writes its output in flat column blocks of one thread
    block's width.  E and F derive from disjoint inputs (independent —
    pattern 7); G reads F in column *groups* of ``group`` blocks (the
    tiling reuse window), making K2->K3 n-group fully connected
    (pattern 2).  G also reads E in full — a grandparent dependency
    covered by in-order completion.
    """
    blocks = elems // _THREADS
    if blocks % group:
        raise ValueError("elems/%d must be a multiple of group" % _THREADS)
    b = AppBuilder("3mm")
    mat = {name: b.alloc(name, elems * _ELEM) for name in "ABCDEF"}
    g_out = b.alloc("G", elems * _ELEM)
    for name in "ABCD":
        b.h2d(mat[name])
    mm = ptxgen.matmul_colblock(
        "mm3_colblock", group_span_elems=_THREADS * group
    )
    grid = (group, blocks // group)
    b.launch(
        mm,
        grid=grid,
        block=_THREADS,
        args={"INGROUP": mat["A"], "INFULL": mat["B"], "OUT": mat["E"], "SPAN": elems},
        intensity=intensity,
        tag="mm_E",
    )
    b.launch(
        mm,
        grid=grid,
        block=_THREADS,
        args={"INGROUP": mat["C"], "INFULL": mat["D"], "OUT": mat["F"], "SPAN": elems},
        intensity=intensity,
        tag="mm_F",
    )
    b.launch(
        mm,
        grid=grid,
        block=_THREADS,
        args={"INGROUP": mat["F"], "INFULL": mat["E"], "OUT": g_out, "SPAN": elems},
        intensity=intensity,
        tag="mm_G",
    )
    b.d2h(g_out)
    return b.build(table2_kernels=3, table2_patterns=(2, 7), group=group)


def build_bicg(blocks=16, k=512, intensity=1.0):
    """BiCG sub-kernels: q = A p and s = A^T r — two independent
    matrix-vector products (pattern 7)."""
    n = blocks * _THREADS
    b = AppBuilder("bicg")
    a = b.alloc("A", n * k * _ELEM)
    p = b.alloc("P", k * _ELEM)
    r = b.alloc("R", n * _ELEM)
    q = b.alloc("Q", n * _ELEM)
    s = b.alloc("S", n * _ELEM)
    for buf in (a, p, r):
        b.h2d(buf)
    mv = ptxgen.matvec("bicg_mv")
    mvt = ptxgen.matvec_transposed("bicg_mvt")
    b.launch(
        mv,
        grid=blocks,
        block=_THREADS,
        args={"A": a, "X": p, "Y": q, "K": k},
        intensity=intensity,
        tag="bicg_q",
    )
    b.launch(
        mvt,
        grid=blocks,
        block=_THREADS,
        args={"A": a, "X": r, "Y": s, "K": k, "N": n},
        intensity=intensity,
        tag="bicg_s",
    )
    b.d2h(q)
    b.d2h(s)
    return b.build(table2_kernels=2, table2_patterns=(7,), rows=n)


def build_mvt(blocks=16, k=512, intensity=1.0):
    """MVT: x1 = A y1 and x2 = A^T y2 — independent (pattern 7)."""
    n = blocks * _THREADS
    b = AppBuilder("mvt")
    a = b.alloc("A", n * k * _ELEM)
    y1 = b.alloc("Y1", k * _ELEM)
    y2 = b.alloc("Y2", k * _ELEM)
    x1 = b.alloc("X1", n * _ELEM)
    x2 = b.alloc("X2", n * _ELEM)
    for buf in (a, y1, y2):
        b.h2d(buf)
    mv = ptxgen.matvec("mvt_mv")
    mvt = ptxgen.matvec_transposed("mvt_mvt")
    b.launch(
        mv,
        grid=blocks,
        block=_THREADS,
        args={"A": a, "X": y1, "Y": x1, "K": k},
        intensity=intensity,
        tag="mvt_x1",
    )
    b.launch(
        mvt,
        grid=blocks,
        block=_THREADS,
        args={"A": a, "X": y2, "Y": x2, "K": k, "N": n},
        intensity=intensity,
        tag="mvt_x2",
    )
    b.d2h(x1)
    b.d2h(x2)
    return b.build(table2_kernels=2, table2_patterns=(7,), rows=n)


def build_fdtd2d(iterations=8, row_elems=256, rows_of_blocks=64, intensity=10.0):
    """2-D FDTD: per time step update ey, ex (mutually independent),
    then hz from both — 24 kernels for 8 iterations.

    ey and ex read hz (previous step, grandparent-distance); hz reads ex
    (consecutive pair — halo-overlapped) and ey (grandparent).  The
    independent ey/ex pair supplies Table II's pattern 7; the hz update
    supplies the producer/consumer row dependencies.
    """
    b = AppBuilder("fdtd-2d")
    elems = rows_of_blocks * _THREADS
    ey = b.alloc("EY", elems * _ELEM)
    ex = b.alloc("EX", elems * _ELEM)
    hz = b.alloc("HZ", elems * _ELEM)
    for buf in (ey, ex, hz):
        b.h2d(buf)
    k_ey = ptxgen.elementwise("fdtd_ey", num_inputs=2, shifts=[0, -1], alu=2)
    k_ex = ptxgen.elementwise(
        "fdtd_ex", num_inputs=2, shifts=[0, -row_elems], alu=2
    )
    k_hz = ptxgen.stencil2d("fdtd_hz", width=row_elems, alu=2, extra_input="EYF")
    for _ in range(iterations):
        b.launch(
            k_ey,
            grid=rows_of_blocks,
            block=_THREADS,
            args={"IN0": hz, "IN1": hz, "OUT": ey},
            intensity=intensity,
            tag="fdtd_ey",
        )
        b.launch(
            k_ex,
            grid=rows_of_blocks,
            block=_THREADS,
            args={"IN0": hz, "IN1": hz, "OUT": ex},
            intensity=intensity,
            tag="fdtd_ex",
        )
        b.launch(
            k_hz,
            grid=rows_of_blocks,
            block=_THREADS,
            args={"IN": ex, "EYF": ey, "OUT": hz},
            intensity=intensity,
            tag="fdtd_hz",
        )
    b.d2h(hz)
    return b.build(
        table2_kernels=3 * iterations,
        table2_patterns=(5, 7),
        iterations=iterations,
    )


def build_gramschm(columns=64, col_blocks=4, intensity=1.0):
    """Gram-Schmidt decomposition: per column k — a norm reduction
    (R[k] <- ||A_k||), a scalar-broadcast scale (Q_k <- A_k / R[k]) and
    a projection update of the trailing columns.  192 kernels for 64
    columns; patterns 1 (whole-column reads become fully connected),
    4 (scalar broadcast) and 5 (column reduction).
    """
    b = AppBuilder("gramschm")
    col_elems = col_blocks * _THREADS
    total = columns * col_elems
    a = b.alloc("Amat", total * _ELEM)
    q = b.alloc("Qmat", total * _ELEM)
    r = b.alloc("Rvec", columns * _ELEM)
    b.h2d(a)
    norm = ptxgen.reduce_columns("gs_norm")
    scale = ptxgen.broadcast_scale("gs_scale")
    update = ptxgen.full_read_map("gs_update", alu=1)
    for k in range(columns):
        col_off = k * col_elems
        b.launch(
            norm,
            grid=1,
            block=1,
            args={
                "IN": a,
                "OUT": r,
                "STRIDE": 1,
                "COUNT": col_elems,
                "OFF": col_off,
                "OUTOFF": k,
            },
            intensity=intensity,
            tag="gs_norm",
        )
        b.launch(
            scale,
            grid=col_blocks,
            block=_THREADS,
            args={"IN": a, "SCALARS": r, "OUT": q, "SIDX": k, "OFF": col_off},
            intensity=intensity,
            tag="gs_scale",
        )
        # project Q_k out of the trailing columns (at least one block)
        trailing_blocks = max(1, (columns - 1 - k) * col_blocks // columns + 1)
        b.launch(
            update,
            grid=trailing_blocks,
            block=_THREADS,
            args={
                "IN": q,
                "OUT": a,
                "SPAN": col_elems,
                "INOFF": col_off,
                "OUTOFF": min(col_off + col_elems, total - trailing_blocks * _THREADS),
            },
            intensity=intensity,
            tag="gs_update",
        )
    b.d2h(q)
    return b.build(
        table2_kernels=3 * columns, table2_patterns=(1, 4, 5), columns=columns
    )
