"""Persistent, content-addressed cache for launch-time analysis.

BlockMaestro's launch-time work is *deterministic per input*: the
value-range analysis depends only on the kernel's PTX text, the concrete
launch configuration (grid/block dims and argument values), and the
analyzer's own knobs; the kernel-pair dependency graph and its Table-I
pattern encoding depend only on the two summaries plus the hazard set
and the hardware degree threshold.  That makes both safe to memoize
across processes and across runs — the paper itself performs them off
the critical path during the PTX→SASS JIT (Sections III–IV).

:class:`AnalysisCache` stores two artifact kinds on disk:

* ``summary`` — a :class:`~repro.analysis.analyzer.KernelSummary`
  (lowered per-TB access sets + dynamic instruction mix), keyed by
  ``sha256(schema, PTX text, grid, block, args, analyzer config)``;
* ``graph``   — an :class:`~repro.core.encoding.EncodedGraph`
  (bipartite kernel-pair graph + pattern encoding), keyed by the two
  member summary keys plus the graph-construction config.

Layout: ``<dir>/v<SCHEMA>/<kind>/<key[:2]>/<key>.pkl``, default
directory ``~/.cache/repro`` (overridable via ``--cache-dir`` or the
``REPRO_CACHE_DIR`` environment variable).  Content addressing means a
stale entry is *unreachable*, never wrong: any change to the PTX, the
launch, or the config produces a new key.  The schema version is bumped
whenever the pickled classes change shape, which orphans (and on
contact, deletes) old-version trees.  Writes are atomic
(tmp + ``os.replace``) so concurrent ``--jobs`` workers can share one
directory.

Observability: hits, misses, stores, and invalidations are counted on
the :class:`~repro.obs.MetricsRegistry` the cache is bound to
(``cache.summary.hits``, ``cache.graph.misses``,
``cache.invalidations``, ...), and ``repro bench run`` folds the
counters into the BENCH report's ``cache`` section.
"""

import hashlib
import os
import pickle
import tempfile

from repro.obs import resolve_metrics

#: bump when KernelSummary / EncodedGraph pickle shapes change
CACHE_SCHEMA_VERSION = 1

#: environment override for the default cache directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_HITS = "cache.{}.hits"
_MISSES = "cache.{}.misses"
_STORES = "cache.{}.stores"


def default_cache_dir():
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def resolve_cache_dir(cache_dir=None, enabled=True):
    """Fold a CLI ``--cache-dir`` value into a concrete directory or None."""
    if not enabled:
        return None
    if cache_dir:
        return cache_dir
    return default_cache_dir()


class AnalysisCache:
    """On-disk memo for kernel summaries and encoded pair graphs."""

    def __init__(self, directory=None, metrics=None):
        self.directory = directory or default_cache_dir()
        self.metrics = resolve_metrics(metrics)
        self._root = os.path.join(
            self.directory, "v{}".format(CACHE_SCHEMA_VERSION)
        )
        #: kernel-text hash memo, keyed by kernel object identity — a
        #: kernel is parsed once per application and reused across
        #: launches, so rendering/hashing its PTX once is enough
        self._kernel_hashes = {}

    # -- keys ----------------------------------------------------------
    def kernel_text_hash(self, kernel):
        # The memo pins the kernel object so its id() cannot be recycled
        # onto a different kernel while the entry is alive.
        entry = self._kernel_hashes.get(id(kernel))
        if entry is not None and entry[0] is kernel:
            return entry[1]
        digest = hashlib.sha256(kernel.to_text().encode("utf-8")).hexdigest()
        self._kernel_hashes[id(kernel)] = (kernel, digest)
        return digest

    def summary_key(self, kernel, launch, max_intervals, run_algorithm1=True):
        """Content address of one analysis result.

        Covers everything :func:`~repro.analysis.analyzer.analyze_kernel`
        reads: the kernel body (as canonical PTX text), the concrete
        grid/block dims and argument values, and the analyzer config.
        """
        parts = (
            "schema={}".format(CACHE_SCHEMA_VERSION),
            "ptx={}".format(self.kernel_text_hash(kernel)),
            "grid={!r}".format(tuple(launch.grid)),
            "block={!r}".format(tuple(launch.block)),
            "args={!r}".format(tuple(launch.args)),
            "max_intervals={}".format(int(max_intervals)),
            "algorithm1={}".format(bool(run_algorithm1)),
        )
        return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()

    def graph_key(self, parent_key, child_key, hazards, degree_threshold):
        """Content address of one encoded kernel-pair graph."""
        parts = (
            "schema={}".format(CACHE_SCHEMA_VERSION),
            "parent={}".format(parent_key),
            "child={}".format(child_key),
            "hazards={!r}".format(tuple(hazards)),
            "degree_threshold={}".format(int(degree_threshold)),
        )
        return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()

    # -- storage -------------------------------------------------------
    def _path(self, kind, key):
        return os.path.join(self._root, kind, key[:2], key + ".pkl")

    def get(self, kind, key):
        """Load one artifact; ``None`` (and a miss tick) when absent.

        A file that exists but cannot be unpickled — torn write from a
        killed process, artifact of an older code revision — counts as
        an *invalidation*: it is deleted and treated as a miss, so the
        cache self-heals instead of poisoning runs.
        """
        path = self._path(kind, key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.metrics.inc(_MISSES.format(kind))
            return None
        except Exception:  # corrupt / incompatible entry
            self.metrics.inc("cache.invalidations")
            self.metrics.inc(_MISSES.format(kind))
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.metrics.inc(_HITS.format(kind))
        return value

    def put(self, kind, key, value):
        """Store one artifact atomically; best-effort (cache is advisory)."""
        path = self._path(kind, key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # read-only / full disk: caching degrades to a no-op
            return False
        self.metrics.inc(_STORES.format(kind))
        return True

    # -- typed convenience wrappers ------------------------------------
    def get_summary(self, key):
        return self.get("summary", key)

    def put_summary(self, key, summary):
        return self.put("summary", key, summary)

    def get_graph(self, key):
        return self.get("graph", key)

    def put_graph(self, key, encoded):
        return self.put("graph", key, encoded)

    # -- maintenance ---------------------------------------------------
    def entry_count(self):
        """Number of artifacts currently stored (current schema only)."""
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self._root):
            count += sum(1 for name in filenames if name.endswith(".pkl"))
        return count

    def counters(self):
        """This registry's ``cache.*`` counters as a plain dict."""
        snapshot = self.metrics.snapshot()["counters"]
        return {
            name: value
            for name, value in snapshot.items()
            if name.startswith("cache.")
        }
