"""Affine expressions over launch-time symbols.

At kernel-launch time the grid dimensions, block dimensions and all
kernel arguments are concrete (this is exactly why the paper performs
the analysis during JIT compilation rather than offline — Section
III-B).  The only quantities that remain symbolic are the thread index
within a block (``%tid``), the block index within the grid (``%ctaid``)
and loop iteration counters.  An :class:`AffineExpr` is an integer
linear combination of those symbols plus a constant::

    expr = const + sum(coeff[s] * s for s in terms)

Every symbol has a known iteration range (``tid.x`` in ``[0, ntid.x)``,
loop counter ``k`` in ``[0, trip_k)``), so an affine address expression
can be lowered exactly to a strided footprint per thread block.
"""

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, order=True)
class Sym:
    """A symbolic dimension: ``kind`` is ``tid``/``ctaid``/``loop``.

    For ``tid``/``ctaid`` the ``name`` is the dimension letter; for
    loops it is a unique loop identifier assigned by the analyzer.
    """

    kind: str
    name: str

    def __str__(self):
        if self.kind == "loop":
            return "k{}".format(self.name)
        return "%{}.{}".format(self.kind, self.name)


def TID(dim):
    return Sym("tid", dim)


def CTAID(dim):
    return Sym("ctaid", dim)


def LOOP(loop_id):
    return Sym("loop", str(loop_id))


class AffineExpr:
    """An immutable integer-affine expression over :class:`Sym` terms."""

    __slots__ = ("const", "terms")

    def __init__(self, const=0, terms=None):
        self.const = int(const)
        clean = {}
        if terms:
            for sym, coeff in terms.items():
                coeff = int(coeff)
                if coeff != 0:
                    clean[sym] = coeff
        self.terms = clean

    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, value):
        return cls(value)

    @classmethod
    def symbol(cls, sym, coeff=1):
        return cls(0, {sym: coeff})

    @property
    def is_constant(self):
        return not self.terms

    def constant_value(self):
        """Return the integer value of a constant expression.

        Raises :class:`ValueError` when symbolic terms remain.
        """
        if self.terms:
            raise ValueError("expression is not constant: %s" % self)
        return self.const

    def coefficient(self, sym):
        return self.terms.get(sym, 0)

    def symbols(self):
        return frozenset(self.terms)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = _coerce(other)
        if other is None:
            return NotImplemented
        terms = dict(self.terms)
        for sym, coeff in other.terms.items():
            terms[sym] = terms.get(sym, 0) + coeff
        return AffineExpr(self.const + other.const, terms)

    __radd__ = __add__

    def __neg__(self):
        return AffineExpr(-self.const, {s: -c for s, c in self.terms.items()})

    def __sub__(self, other):
        other = _coerce(other)
        if other is None:
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other):
        other = _coerce(other)
        if other is None:
            return NotImplemented
        return other + (-self)

    def scale(self, factor):
        factor = int(factor)
        return AffineExpr(
            self.const * factor, {s: c * factor for s, c in self.terms.items()}
        )

    def __mul__(self, other):
        """Multiplication is only affine when one side is constant."""
        other = _coerce(other)
        if other is None:
            return NotImplemented
        if other.is_constant:
            return self.scale(other.const)
        if self.is_constant:
            return other.scale(self.const)
        raise NonAffineOperation("product of two symbolic expressions")

    __rmul__ = __mul__

    def substitute(self, bindings):
        """Replace symbols with integers or other affine expressions.

        ``bindings`` maps :class:`Sym` to ``int`` or :class:`AffineExpr`.
        Unbound symbols are kept.
        """
        result = AffineExpr(self.const)
        for sym, coeff in self.terms.items():
            if sym in bindings:
                replacement = _coerce(bindings[sym])
                result = result + replacement.scale(coeff)
            else:
                result = result + AffineExpr.symbol(sym, coeff)
        return result

    def evaluate(self, bindings):
        """Fully evaluate with integer bindings for every symbol."""
        value = self.const
        for sym, coeff in self.terms.items():
            value += coeff * int(bindings[sym])
        return value

    def value_range(self, ranges):
        """Inclusive ``(lo, hi)`` bounds given per-symbol inclusive ranges.

        ``ranges`` maps each symbol to ``(lo, hi)`` inclusive.  Raises
        :class:`KeyError` if a symbol has no range.
        """
        lo = hi = self.const
        for sym, coeff in self.terms.items():
            slo, shi = ranges[sym]
            if coeff >= 0:
                lo += coeff * slo
                hi += coeff * shi
            else:
                lo += coeff * shi
                hi += coeff * slo
        return lo, hi

    # ------------------------------------------------------------------
    def __eq__(self, other):
        other = _coerce(other)
        if other is None:
            return NotImplemented
        return self.const == other.const and self.terms == other.terms

    def __hash__(self):
        return hash((self.const, frozenset(self.terms.items())))

    def __repr__(self):
        if self.is_constant:
            return str(self.const)
        parts = []
        for sym in sorted(self.terms):
            coeff = self.terms[sym]
            if coeff == 1:
                parts.append(str(sym))
            else:
                parts.append("{}*{}".format(coeff, sym))
        if self.const:
            parts.append(str(self.const))
        return " + ".join(parts)


class NonAffineOperation(Exception):
    """Raised when an operation leaves the affine domain (e.g. the
    product of two symbolic expressions); callers fall back to the
    interval domain."""


def _coerce(value) -> Optional[AffineExpr]:
    if isinstance(value, AffineExpr):
        return value
    if isinstance(value, int):
        return AffineExpr(value)
    return None
