"""Dense byte-interval sets used for thread-block read/write sets.

An :class:`IntervalSet` is a normalized (sorted, disjoint, coalesced)
collection of half-open ``[lo, hi)`` integer intervals.  Read and write
sets are ultimately lowered to these before intersection, so overlap
tests between thread blocks reduce to sorted-list sweeps.
"""

import bisect
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open byte range ``[lo, hi)``; empty when ``hi <= lo``."""

    lo: int
    hi: int

    @property
    def empty(self):
        return self.hi <= self.lo

    def __len__(self):
        return max(0, self.hi - self.lo)

    def overlaps(self, other):
        return self.lo < other.hi and other.lo < self.hi

    def intersect(self, other):
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def contains(self, value):
        return self.lo <= value < self.hi

    def covers(self, other):
        """True if this interval fully contains ``other``."""
        return self.lo <= other.lo and other.hi <= self.hi

    def __str__(self):
        return "[{}, {})".format(self.lo, self.hi)


class IntervalSet:
    """A normalized set of disjoint intervals with set-algebra operations.

    Construction normalizes the input: empty intervals are dropped,
    overlapping and adjacent intervals are merged, and the result is
    sorted by ``lo``.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals=()):
        items = sorted(
            (iv for iv in intervals if not iv.empty), key=lambda iv: (iv.lo, iv.hi)
        )
        merged = []
        for iv in items:
            if merged and iv.lo <= merged[-1].hi:
                last = merged[-1]
                if iv.hi > last.hi:
                    merged[-1] = Interval(last.lo, iv.hi)
            else:
                merged.append(iv)
        self._intervals = tuple(merged)

    @classmethod
    def from_pairs(cls, pairs):
        return cls(Interval(lo, hi) for lo, hi in pairs)

    @classmethod
    def single(cls, lo, hi):
        return cls((Interval(lo, hi),))

    @classmethod
    def empty_set(cls):
        return _EMPTY

    @property
    def intervals(self):
        return self._intervals

    @property
    def empty(self):
        return not self._intervals

    def total_bytes(self):
        return sum(len(iv) for iv in self._intervals)

    def bounds(self):
        """The bounding interval, or ``None`` when empty."""
        if not self._intervals:
            return None
        return Interval(self._intervals[0].lo, self._intervals[-1].hi)

    def __len__(self):
        return len(self._intervals)

    def __iter__(self):
        return iter(self._intervals)

    def __eq__(self, other):
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self):
        return hash(self._intervals)

    def __repr__(self):
        return "IntervalSet({})".format(
            ", ".join(str(iv) for iv in self._intervals)
        )

    def contains(self, value):
        return self.overlaps_interval(Interval(value, value + 1))

    def union(self, other):
        return IntervalSet(self._intervals + other._intervals)

    def intersect(self, other):
        """Set intersection via a two-pointer sweep (both are sorted)."""
        out = []
        a, b = self._intervals, other._intervals
        i = j = 0
        while i < len(a) and j < len(b):
            cut = a[i].intersect(b[j])
            if not cut.empty:
                out.append(cut)
            if a[i].hi <= b[j].hi:
                i += 1
            else:
                j += 1
        return IntervalSet(out)

    def overlaps(self, other):
        """Fast overlap predicate (no intersection materialized)."""
        a, b = self._intervals, other._intervals
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i].overlaps(b[j]):
                return True
            if a[i].hi <= b[j].hi:
                i += 1
            else:
                j += 1
        return False

    def overlaps_interval(self, interval):
        """Overlap test against one interval using bisection.

        Intervals are disjoint and sorted, so the only candidate is the
        first stored interval whose ``hi`` exceeds ``interval.lo``.
        """
        if interval.empty or not self._intervals:
            return False
        his = [iv.hi for iv in self._intervals]
        idx = bisect.bisect_right(his, interval.lo)
        if idx == len(self._intervals):
            return False
        return self._intervals[idx].lo < interval.hi


_EMPTY = IntervalSet(())


def strided_intervals(base, stride, count, width, max_intervals):
    """Lower a strided access ``{base + stride*k : 0 <= k < count}`` of
    ``width`` bytes per element to a list of dense intervals.

    When the stride equals the access width the footprint is a single
    dense interval.  Otherwise the access expands to ``count`` intervals;
    if that exceeds ``max_intervals`` the *bounding* interval is returned
    instead — an over-approximation, which is safe for dependency
    detection (it can only add edges, never miss one).

    Returns ``(intervals, exact)``.
    """
    if count <= 0:
        return [], True
    if stride < 0:
        base = base + stride * (count - 1)
        stride = -stride
    if count == 1 or stride == 0:
        return [Interval(base, base + width)], True
    if stride <= width:
        return [Interval(base, base + stride * (count - 1) + width)], True
    if count <= max_intervals:
        return (
            [Interval(base + stride * k, base + stride * k + width) for k in range(count)],
            True,
        )
    return [Interval(base, base + stride * (count - 1) + width)], False
