"""Kernel-launch-time static analysis (paper Section III-B).

Implements BlockMaestro's value-range analysis: a backward def-use walk
from every global memory instruction (Algorithm 1) to detect non-static
(indirect) addressing, plus a forward abstract interpretation over an
affine domain that — given the concrete launch configuration and kernel
arguments available at launch time — produces the byte-exact read and
write sets of every thread block.
"""

from repro.analysis.intervals import Interval, IntervalSet
from repro.analysis.affine import AffineExpr, Sym, TID, CTAID, LOOP
from repro.analysis.values import SInterval, Unknown, UNKNOWN_ARITH, UNKNOWN_MEMORY
from repro.analysis.dataflow import (
    BasicBlock,
    ControlFlowGraph,
    NonStaticAccess,
    backward_slice,
    build_cfg,
)
from repro.analysis.access import AccessRecord, TBAccessSets
from repro.analysis.analyzer import (
    AnalysisError,
    KernelSummary,
    LaunchConfig,
    analyze_kernel,
)
from repro.analysis.fastpath import (
    FASTPATH_ENV,
    FASTPATH_MODES,
    build_graph_fast,
    resolve_fastpath_mode,
)

__all__ = [
    "Interval",
    "IntervalSet",
    "AffineExpr",
    "Sym",
    "TID",
    "CTAID",
    "LOOP",
    "SInterval",
    "Unknown",
    "UNKNOWN_ARITH",
    "UNKNOWN_MEMORY",
    "BasicBlock",
    "ControlFlowGraph",
    "NonStaticAccess",
    "backward_slice",
    "build_cfg",
    "AccessRecord",
    "TBAccessSets",
    "AnalysisError",
    "KernelSummary",
    "LaunchConfig",
    "analyze_kernel",
    "FASTPATH_ENV",
    "FASTPATH_MODES",
    "build_graph_fast",
    "resolve_fastpath_mode",
]
