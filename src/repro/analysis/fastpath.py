"""Two-tier fast path for bipartite dependency-graph construction.

:func:`repro.core.dependency_graph.build_bipartite_graph` — the scalar
reference — lowers per-thread-block footprints one block at a time in
pure Python and probes each child block against a sorted parent interval
index.  That is exact but O(N·M-ish) interpreter work on large grids.
This module computes the *same* graph two cheaper ways and falls back to
the reference (kept as the oracle) whenever it cannot:

**Tier 1 — closed form** (:func:`_closed_form_graph`).  Every
:class:`~repro.analysis.access.AccessRecord` lowers to a fixed interval
*shape* translated per block by ``block_base`` (see
:meth:`AccessRecord.expansion`).  When all relevant records of a kernel
share one translation that is *linear in the linearized TB id* ``t``
(``shift(t) = k·t``), the whole per-TB footprint is a single shape
sliding at rate ``k``.  Overlap between parent block ``p`` and child
block ``c`` then depends only on the scalar ``d = k_c·c − k_p·p``:
precompute the set ``D`` of displacements at which the two shapes
intersect, and the Table-I graphs drop out analytically — O(1) for
independent / fully-connected (``k_p = k_c = 0``), O(N) contiguous
child-ranges per parent for 1-to-1 / 1-to-n / n-to-1 / bounded-overlap
windows — without materializing a single per-TB ``IntervalSet``.

**Tier 2 — vectorized** (:func:`_vectorized_graph`).  When the prover
declines (e.g. 2-D-grid group patterns whose shift is not linear in
``t``), lower *all* blocks at once as numpy ``(lo, hi, tb)`` arrays
(batched affine evaluation of ``block_base`` replacing the per-TB
``_lower`` loop) and compute the join with a sort + ``np.searchsorted``
prefix-max sweep — the exact vector analogue of the reference's
``_ParentIntervalIndex`` walk.

Both tiers replicate the reference's semantics precisely: the
kernel-level disjointness prefilter, the union-of-hazard-kinds probe
sets, the ``max_explicit_edges`` collapse to fully connected, and the
``explicit()`` canonicalization rules.  Differential tests
(``tests/integration/test_differential_fastpath.py``) and a hypothesis
property test hold them to bit-identical graphs; because the graphs are
identical, :class:`repro.analysis.cache.AnalysisCache` entries written
by either path interoperate with no key or schema change.

Tier selection is reported through the ``analysis.fastpath.*`` metrics
counters (see :func:`repro.core.runtime.BlockMaestroRuntime`) and the
BENCH report's ``fastpath`` section.
"""

import os
from typing import Optional, Tuple

from repro.analysis.intervals import IntervalSet
from repro.core.dependency_graph import (
    DEFAULT_MAX_EXPLICIT_EDGES,
    BipartiteGraph,
    build_bipartite_graph,
)

try:  # numpy powers tier 2; everything degrades gracefully without it
    import numpy as np
except ImportError:  # pragma: no cover - the CI image always has numpy
    np = None

#: Valid fast-path modes (``resolve_fastpath_mode`` normalizes aliases).
FASTPATH_MODES = ("auto", "closed_form", "vectorized", "reference")

#: Environment override consulted when no explicit mode is configured —
#: this is how bench worker processes flip the fast path off to capture
#: reference timings.
FASTPATH_ENV = "REPRO_FASTPATH"

#: Tier-1 gives up when the parent×child shape product would make the
#: displacement-domain construction itself quadratic-ish; tier 2 still
#: handles those exactly.
_MAX_DOMAIN_PAIRS = 4096

#: Tier-2 candidate pairs are enumerated in bounded chunks so peak
#: memory stays flat on adversarial overlap structures.
_JOIN_CHUNK = 1 << 22

#: Up to this many parent×child cells, tier 2 dedups edges with a flat
#: boolean bitmap (one byte per cell — cheap, and ``flatnonzero`` hands
#: back sorted keys); beyond it, chunked ``np.unique`` keeps memory flat.
_BITMAP_LIMIT = 1 << 26


def resolve_fastpath_mode(value=None):
    """Normalize a fast-path mode, consulting ``REPRO_FASTPATH``.

    ``None`` reads the environment (default ``auto``); ``off``/
    ``scalar``/``oracle`` alias ``reference``; ``on`` aliases ``auto``.
    """
    if value is None:
        value = os.environ.get(FASTPATH_ENV) or "auto"
    mode = str(value).strip().lower().replace("-", "_")
    if mode in ("off", "scalar", "oracle"):
        mode = "reference"
    elif mode == "on":
        mode = "auto"
    if mode not in FASTPATH_MODES:
        raise ValueError(
            "unknown fastpath mode %r (expected one of %s)"
            % (value, ", ".join(FASTPATH_MODES))
        )
    return mode


def build_graph_fast(
    parent_summary,
    child_summary,
    hazards=("raw",),
    max_explicit_edges=DEFAULT_MAX_EXPLICIT_EDGES,
    mode="auto",
):
    """Build the pair graph via the cheapest applicable tier.

    Returns ``(graph, tier)`` where ``tier`` is one of ``closed_form``,
    ``vectorized`` or ``reference``; the graph is always ``==`` the one
    :func:`build_bipartite_graph` would produce for the same inputs.
    """
    mode = resolve_fastpath_mode(mode)
    if mode == "reference":
        graph = build_bipartite_graph(
            parent_summary, child_summary, hazards, max_explicit_edges
        )
        return graph, "reference"

    pairs = _hazard_pairs(hazards)
    num_parents = parent_summary.num_tbs
    num_children = child_summary.num_tbs
    if parent_summary.fallback or child_summary.fallback:
        # Algorithm-1 bail-out: same conservative verdict as the oracle.
        graph = BipartiteGraph.fully_connected(num_parents, num_children)
        return graph, "reference"

    if not _prefilter_relevant(parent_summary, child_summary, pairs):
        graph = BipartiteGraph.independent(num_parents, num_children)
        return graph, ("vectorized" if mode == "vectorized" else "closed_form")

    if mode in ("auto", "closed_form"):
        graph = _closed_form_graph(
            parent_summary, child_summary, pairs, max_explicit_edges
        )
        if graph is not None:
            return graph, "closed_form"
    if mode in ("auto", "vectorized") and np is not None:
        graph = _vectorized_graph(
            parent_summary, child_summary, pairs, max_explicit_edges
        )
        if graph is not None:
            return graph, "vectorized"
    graph = build_bipartite_graph(
        parent_summary, child_summary, hazards, max_explicit_edges
    )
    return graph, "reference"


# ----------------------------------------------------------------------
# shared semantics (kept textually parallel to the reference builder)
# ----------------------------------------------------------------------
def _hazard_pairs(hazards):
    pairs = []
    if "raw" in hazards:
        pairs.append(("write", "read"))
    if "waw" in hazards:
        pairs.append(("write", "write"))
    if "war" in hazards:
        pairs.append(("read", "write"))
    if not pairs:
        raise ValueError("at least one hazard class required")
    return pairs


def _prefilter_relevant(parent_summary, child_summary, pairs):
    """Kernel-level disjointness prefilter, identical to the oracle's.

    This is load-bearing for identity, not just speed: the sweep probes
    the *union* of the hazard kinds, so on e.g. ``raw+war`` it would
    also connect read-read overlaps — the reference only ever reaches
    the sweep when some hazard pair's kernel bounding sets intersect.
    """
    for parent_kind, child_kind in pairs:
        parent_set = (
            parent_summary.kernel_writes()
            if parent_kind == "write"
            else parent_summary.kernel_reads()
        )
        child_set = (
            child_summary.kernel_reads()
            if child_kind == "read"
            else child_summary.kernel_writes()
        )
        if parent_set.overlaps(child_set):
            return True
    return False


# ----------------------------------------------------------------------
# tier 1: closed form
# ----------------------------------------------------------------------
def _linear_stride(coeffs, grid):
    """``k`` such that ``block_base`` shifts by ``k·t`` over the
    x-major linearized TB id, or ``None`` when no such ``k`` exists.

    With ``t = bx + gx·(by + gy·bz)``, the shift ``cx·bx + cy·by +
    cz·bz`` equals ``k·t`` on the whole grid iff the coefficients match
    along every axis of extent > 1 (axes of extent 1 contribute
    nothing).  A 2-D group pattern (``cx = 0``, ``cy != 0``) has no such
    ``k`` and lands in tier 2.
    """
    cx, cy, cz = coeffs
    gx, gy, gz = grid
    if gx > 1:
        k = cx
    elif gy > 1:
        k = cy
    elif gz > 1:
        k = cz
    else:
        return 0  # a single block: any shift is trivially linear
    if gy > 1 and cy != k * gx:
        return None
    if gz > 1 and cz != k * gx * gy:
        return None
    return k


def _linear_profile(summary, kinds):
    """``(shape, k)`` when every relevant record slides linearly.

    ``shape`` is the merged footprint of block ``(0, 0, 0)`` as
    ``(lo, hi)`` tuples; block ``t``'s footprint is exactly ``shape``
    translated by ``k·t``.  ``None`` when the records disagree on ``k``
    or some record's shift is not linear in ``t``.
    """
    access = summary.access_sets
    records = [r for r in access.records if r.kind in kinds]
    if not records:
        return (), 0
    stride = None
    for record in records:
        k = _linear_stride(record.ctaid_coeffs, access.grid)
        if k is None:
            return None
        if stride is None:
            stride = k
        elif k != stride:
            return None
    intervals = []
    for record in records:
        ivs, _ = record.footprint(0, 0, 0, access.max_intervals)
        intervals.extend(ivs)
    shape = IntervalSet(intervals)
    return tuple((iv.lo, iv.hi) for iv in shape), stride


def _merge_closed(windows):
    """Merge closed integer intervals ``(lo, hi)``; touching ones fuse."""
    windows.sort()
    merged = []
    for lo, hi in windows:
        if merged and lo <= merged[-1][1] + 1:
            if hi > merged[-1][1]:
                merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return merged


def _overlap_domain(parent_shape, child_shape):
    """Displacements ``d`` at which ``child_shape + d`` intersects
    ``parent_shape``, as merged closed integer intervals.

    Half-open ``[a.lo, a.hi)`` meets ``[b.lo + d, b.hi + d)`` iff
    ``a.lo − b.hi < d < a.hi − b.lo``; over integers that is the closed
    window ``[a.lo − b.hi + 1, a.hi − b.lo − 1]`` (never empty for
    non-empty intervals).
    """
    windows = []
    for alo, ahi in parent_shape:
        for blo, bhi in child_shape:
            windows.append((alo - bhi + 1, ahi - blo - 1))
    return _merge_closed(windows)


def _domain_contains(domain, d):
    for dlo, dhi in domain:
        if dlo <= d <= dhi:
            return True
    return False


def _ceil_div(a, b):
    return -((-a) // b)


def _closed_form_graph(parent_summary, child_summary, pairs, max_explicit_edges):
    """Tier 1: the analytic Table-I graph, or ``None`` to decline."""
    parent_kinds = {pk for pk, _ in pairs}
    child_kinds = {ck for _, ck in pairs}
    parent_profile = _linear_profile(parent_summary, parent_kinds)
    child_profile = _linear_profile(child_summary, child_kinds)
    if parent_profile is None or child_profile is None:
        return None
    parent_shape, kp = parent_profile
    child_shape, kc = child_profile
    num_parents = parent_summary.num_tbs
    num_children = child_summary.num_tbs
    if not parent_shape or not child_shape:
        return BipartiteGraph.independent(num_parents, num_children)
    if len(parent_shape) * len(child_shape) > _MAX_DOMAIN_PAIRS:
        return None
    domain = _overlap_domain(parent_shape, child_shape)

    if kp == 0 and kc == 0:
        # every block covers the same bytes on both sides: O(1) verdict
        if _domain_contains(domain, 0):
            return BipartiteGraph.fully_connected(num_parents, num_children)
        return BipartiteGraph.independent(num_parents, num_children)

    # edge(p, c)  iff  kc·c − kp·p ∈ domain: per parent, each domain
    # window projects to one contiguous child range
    ranges_of = []
    total = 0
    shared = None  # kp == 0 makes the ranges parent-independent
    for p in range(num_parents):
        if shared is not None:
            ranges_of.append(shared)
            total += sum(hi - lo + 1 for lo, hi in shared)
            continue
        windows = []
        for dlo, dhi in domain:
            lo2, hi2 = dlo + kp * p, dhi + kp * p
            if kc == 0:
                # d is fixed at −kp·p: all children or none
                if lo2 <= 0 <= hi2:
                    windows.append((0, num_children - 1))
                continue
            if kc > 0:
                clo, chi = _ceil_div(lo2, kc), hi2 // kc
            else:
                clo, chi = _ceil_div(hi2, kc), lo2 // kc
            clo, chi = max(clo, 0), min(chi, num_children - 1)
            if clo <= chi:
                windows.append((clo, chi))
        merged = tuple(_merge_closed(windows))
        if kp == 0:
            shared = merged
        ranges_of.append(merged)
        total += sum(hi - lo + 1 for lo, hi in merged)

    if total == 0:
        return BipartiteGraph.independent(num_parents, num_children)
    if total > max_explicit_edges or total == num_parents * num_children:
        return BipartiteGraph.fully_connected(num_parents, num_children)

    # materialize adjacency; identical range-lists share one tuple
    memo = {}
    children_of = []
    in_degree_diff = [0] * (num_children + 1)
    for ranges in ranges_of:
        children = memo.get(ranges)
        if children is None:
            children = []
            for lo, hi in ranges:
                children.extend(range(lo, hi + 1))
            children = tuple(children)
            memo[ranges] = children
        children_of.append(children)
        for lo, hi in ranges:
            in_degree_diff[lo] += 1
            in_degree_diff[hi + 1] -= 1
    counts = []
    running = 0
    for c in range(num_children):
        running += in_degree_diff[c]
        counts.append(running)
    return BipartiteGraph.explicit_prebuilt(
        num_parents, num_children, tuple(children_of), tuple(counts), total
    )


# ----------------------------------------------------------------------
# tier 2: vectorized lowering + join
# ----------------------------------------------------------------------
_INT64_GUARD = 1 << 62


def _fits_int64(record, grid):
    # bound every *partial* sum, not just the corner addresses — int64
    # overflow wraps silently inside numpy elementwise arithmetic
    gx, gy, gz = grid
    cx, cy, cz = record.ctaid_coeffs
    reach = (
        abs(record.base)
        + abs(cx) * (gx - 1)
        + abs(cy) * (gy - 1)
        + abs(cz) * (gz - 1)
        + record.span_bytes()
    )
    return reach < _INT64_GUARD


def _lowered_arrays(summary, kinds):
    """Batched :meth:`TBAccessSets._lower` over the whole grid.

    Returns ``(lo, hi, tb)`` int64 arrays covering every interval of
    every block for the requested kinds, or ``None`` when some address
    could overflow int64 (the scalar oracle, on python ints, handles
    those).
    """
    access = summary.access_sets
    gx, gy, gz = access.grid
    t = np.arange(access.num_tbs, dtype=np.int64)
    bx = t % gx
    by = (t // gx) % gy
    bz = t // (gx * gy)
    los, his, tbs = [], [], []
    for record in access.records:
        if record.kind not in kinds:
            continue
        if not _fits_int64(record, access.grid):
            return None
        cx, cy, cz = record.ctaid_coeffs
        bases = record.base + cx * bx + cy * by + cz * bz
        offsets, run, _exact = record.expansion(access.max_intervals)
        if len(offsets) == 1:
            lo = bases + offsets[0]
            los.append(lo)
            his.append(lo + run)
            tbs.append(t)
            continue
        offs = np.asarray(offsets, dtype=np.int64)
        lo = (bases[:, None] + offs[None, :]).reshape(-1)
        los.append(lo)
        his.append(lo + run)
        tbs.append(np.repeat(t, offs.size))
    if not los:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    return (
        np.concatenate(los),
        np.concatenate(his),
        np.concatenate(tbs),
    )


def _segment_local_arange(reps):
    """``concatenate([arange(r) for r in reps])`` without the loop."""
    out = np.arange(int(reps.sum()), dtype=np.int64)
    seg_starts = np.cumsum(reps) - reps
    return out - np.repeat(seg_starts, reps)


def _vectorized_graph(parent_summary, child_summary, pairs, max_explicit_edges):
    """Tier 2: numpy join, or ``None`` to decline (no numpy/overflow)."""
    num_parents = parent_summary.num_tbs
    num_children = child_summary.num_tbs
    if num_parents * num_children >= _INT64_GUARD:
        return None
    parent_kinds = {pk for pk, _ in pairs}
    child_kinds = {ck for _, ck in pairs}
    parent_arrays = _lowered_arrays(parent_summary, parent_kinds)
    child_arrays = _lowered_arrays(child_summary, child_kinds)
    if parent_arrays is None or child_arrays is None:
        return None
    plo, phi, ptb = parent_arrays
    clo, chi, ctb = child_arrays
    if plo.size == 0 or clo.size == 0:
        return BipartiteGraph.independent(num_parents, num_children)

    order = np.argsort(plo, kind="stable")
    plo, phi, ptb = plo[order], phi[order], ptb[order]
    prefix_max_hi = np.maximum.accumulate(phi)

    # candidate window per probe: the same entries the reference's
    # prefix-max walk visits — [first j with prefmax > probe.lo,
    # first j with lo >= probe.hi)
    ends = np.searchsorted(plo, chi, side="left")
    starts = np.searchsorted(prefix_max_hi, clo, side="right")
    counts = np.maximum(ends - starts, 0)

    probe_ids = np.nonzero(counts)[0]
    bitmap = None
    if num_parents * num_children <= _BITMAP_LIMIT:
        bitmap = np.zeros(num_parents * num_children, dtype=bool)
    keys = np.empty(0, dtype=np.int64)
    if probe_ids.size:
        cumulative = np.cumsum(counts[probe_ids])
        chunk_start = 0
        while chunk_start < probe_ids.size:
            consumed = cumulative[chunk_start - 1] if chunk_start else 0
            chunk_end = int(
                np.searchsorted(cumulative, consumed + _JOIN_CHUNK, side="right")
            )
            chunk_end = max(chunk_end, chunk_start + 1)
            probes = probe_ids[chunk_start:chunk_end]
            reps = counts[probes]
            entry = np.repeat(starts[probes], reps) + _segment_local_arange(reps)
            hit = phi[entry] > np.repeat(clo[probes], reps)
            pair_keys = (
                ptb[entry][hit] * num_children + np.repeat(ctb[probes], reps)[hit]
            )
            if pair_keys.size:
                if bitmap is not None:
                    bitmap[pair_keys] = True
                else:
                    keys = np.unique(np.concatenate((keys, np.unique(pair_keys))))
                    if keys.size > max_explicit_edges:
                        return BipartiteGraph.fully_connected(
                            num_parents, num_children
                        )
            chunk_start = chunk_end
    if bitmap is not None:
        keys = np.flatnonzero(bitmap).astype(np.int64, copy=False)
        if keys.size > max_explicit_edges:
            return BipartiteGraph.fully_connected(num_parents, num_children)

    total = int(keys.size)
    if total == 0:
        return BipartiteGraph.independent(num_parents, num_children)
    if total == num_parents * num_children:
        return BipartiteGraph.fully_connected(num_parents, num_children)
    parent_of_edge = keys // num_children
    child_of_edge = keys % num_children
    bounds = np.searchsorted(
        parent_of_edge, np.arange(num_parents + 1, dtype=np.int64)
    )
    # .tolist() yields python ints so graphs compare/pickle exactly
    # like reference-built ones
    children_of = tuple(
        tuple(child_of_edge[bounds[p] : bounds[p + 1]].tolist())
        for p in range(num_parents)
    )
    counts_arr = np.bincount(child_of_edge, minlength=num_children)
    return BipartiteGraph.explicit_prebuilt(
        num_parents, num_children, children_of, tuple(counts_arr.tolist()), total
    )
