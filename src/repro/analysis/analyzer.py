"""Kernel-launch-time value-range analysis (paper Section III-B.2).

Entry point: :func:`analyze_kernel`.  Given a kernel and its concrete
launch configuration (grid/block dimensions and argument values — all
known at launch time, which is why the paper performs this during the
PTX→SASS JIT), the analyzer:

1. runs Algorithm 1's backward def-use walk from every global memory
   instruction to detect *non-static* addressing (indices loaded from
   memory, e.g. ``A[B[i]]``), which triggers the paper's conservative
   whole-kernel fallback;
2. abstractly interprets the kernel forward over the affine/interval
   value domain, producing an :class:`~repro.analysis.access.AccessRecord`
   per global load/store.  Loops are handled by discovering induction
   registers, computing trip counts by concrete corner simulation, and
   binding inductions to fresh loop symbols with known ranges;
3. packages the result as a :class:`KernelSummary` exposing per-thread-
   block read/write interval sets.

All approximations are *over*-approximations of the true access sets, so
dependency edges derived from them can only be extra, never missing —
pre-launched kernels therefore never start a thread block early.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.access import (
    AccessRecord,
    DEFAULT_MAX_INTERVALS,
    TBAccessSets,
)
from repro.analysis.affine import AffineExpr, CTAID, LOOP, Sym, TID
from repro.analysis.dataflow import (
    IrreducibleControlFlow,
    NonStaticAccess,
    backward_slice,
    find_loops,
)
from repro.analysis.values import (
    SInterval,
    UNKNOWN_ARITH,
    UNKNOWN_MEMORY,
    Unknown,
    ValueAlgebra,
    is_unknown,
    taint_of,
)
from repro.ptx.isa import (
    Immediate,
    Label,
    MemOperand,
    Opcode,
    ParamRef,
    Register,
    SpecialRegister,
)

#: Hard cap on simulated loop iterations during trip-count discovery.
TRIP_COUNT_CAP = 1 << 22
#: Hard cap on simulated instructions during trip-count discovery.
STEP_CAP = 1 << 24


class AnalysisError(Exception):
    """Unrecoverable misuse of the analyzer (not an analysis fallback)."""


class _Fallback(Exception):
    """Internal: abort analysis with a conservative fallback ``reason``."""

    def __init__(self, reason, detail=""):
        self.reason = reason
        self.detail = detail
        super().__init__("{}: {}".format(reason, detail) if detail else reason)


@dataclass(frozen=True)
class LaunchConfig:
    """Concrete kernel launch parameters.

    ``args`` maps parameter names to integers: scalar argument values,
    or base byte addresses for pointer arguments.
    """

    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    args: Tuple[Tuple[str, int], ...] = ()

    def __post_init__(self):
        for dims, label in ((self.grid, "grid"), (self.block, "block")):
            if len(dims) != 3 or any(d < 1 for d in dims):
                raise AnalysisError("bad %s dimensions %r" % (label, dims))

    @classmethod
    def create(cls, grid, block, args=None):
        """Build from possibly 1D/2D dims and a dict of argument values."""
        grid = tuple(grid) if not isinstance(grid, int) else (grid,)
        block = tuple(block) if not isinstance(block, int) else (block,)
        grid = grid + (1,) * (3 - len(grid))
        block = block + (1,) * (3 - len(block))
        items = tuple(sorted((args or {}).items()))
        return cls(grid=grid, block=block, args=items)

    @property
    def args_dict(self):
        return dict(self.args)

    @property
    def num_tbs(self):
        gx, gy, gz = self.grid
        return gx * gy * gz

    @property
    def threads_per_tb(self):
        tx, ty, tz = self.block
        return tx * ty * tz


@dataclass
class KernelSummary:
    """Result of launch-time analysis for one kernel launch.

    When ``fallback`` is not ``None`` the per-TB sets are unavailable and
    the runtime must treat the kernel as fully dependent on its
    predecessor (the paper's conservative path).
    """

    kernel_name: str
    launch: LaunchConfig
    records: Tuple[AccessRecord, ...] = ()
    fallback: Optional[str] = None
    fallback_detail: str = ""
    dynamic_mix: Dict[str, float] = field(default_factory=dict)
    access_sets: Optional[TBAccessSets] = None

    @property
    def num_tbs(self):
        return self.launch.num_tbs

    @property
    def exact(self):
        return self.fallback is None

    def tb_reads(self, tb_id):
        if self.access_sets is None:
            raise AnalysisError(
                "kernel %s fell back (%s); per-TB sets unavailable"
                % (self.kernel_name, self.fallback)
            )
        return self.access_sets.reads(tb_id)

    def tb_writes(self, tb_id):
        if self.access_sets is None:
            raise AnalysisError(
                "kernel %s fell back (%s); per-TB sets unavailable"
                % (self.kernel_name, self.fallback)
            )
        return self.access_sets.writes(tb_id)

    def kernel_reads(self):
        if self.access_sets is None:
            raise AnalysisError("per-kernel sets unavailable under fallback")
        return self.access_sets.kernel_reads()

    def kernel_writes(self):
        if self.access_sets is None:
            raise AnalysisError("per-kernel sets unavailable under fallback")
        return self.access_sets.kernel_writes()

    def coalescing_factor(self, warp_size=32, line_bytes=128):
        """Average memory transactions per warp per global access.

        1.0 = perfectly coalesced (a warp's accesses fit the minimum
        number of cache lines); up to ``warp_size`` when each thread
        touches its own line.  Derived from each record's inter-thread
        stride; records with unknown layout count as coalesced (the
        conservative choice for a *relative* timing model is neutrality,
        not pessimism).  Under fallback there are no records: 1.0.
        """
        factors = []
        for record in self.records:
            stride = record.thread_stride
            if stride is None:
                stride = record.width
            stride = abs(stride)
            if stride == 0:
                factors.append(1.0)  # broadcast: one line
                continue
            footprint = (warp_size - 1) * stride + record.width
            min_lines = max(
                1, -(-(warp_size * record.width) // line_bytes)
            )  # ceil
            lines = max(1, -(-footprint // line_bytes))
            factors.append(min(float(warp_size), lines / min_lines))
        if not factors:
            return 1.0
        return sum(factors) / len(factors)


def analyze_kernel(
    kernel,
    launch,
    max_intervals=DEFAULT_MAX_INTERVALS,
    run_algorithm1=True,
):
    """Analyze one kernel launch; never raises for analysis limitations —
    those surface as ``summary.fallback``."""
    if run_algorithm1:
        for index, _inst in kernel.global_accesses():
            try:
                result = backward_slice(kernel, index)
            except NonStaticAccess as exc:
                return KernelSummary(
                    kernel_name=kernel.name,
                    launch=launch,
                    fallback="non_static",
                    fallback_detail=str(exc),
                    dynamic_mix=_static_mix(kernel),
                )
            if not result.fully_resolved:
                return KernelSummary(
                    kernel_name=kernel.name,
                    launch=launch,
                    fallback="unresolved",
                    fallback_detail="registers %s undefined at kernel entry"
                    % (result.unresolved,),
                    dynamic_mix=_static_mix(kernel),
                )
    interp = _Interpreter(kernel, launch, max_intervals)
    try:
        records, dynamic_mix = interp.run()
    except _Fallback as exc:
        return KernelSummary(
            kernel_name=kernel.name,
            launch=launch,
            fallback=exc.reason,
            fallback_detail=exc.detail,
            dynamic_mix=_static_mix(kernel),
        )
    sets = TBAccessSets(
        grid=launch.grid, records=tuple(records), max_intervals=max_intervals
    )
    return KernelSummary(
        kernel_name=kernel.name,
        launch=launch,
        records=tuple(records),
        dynamic_mix=dynamic_mix,
        access_sets=sets,
    )


def _static_mix(kernel):
    return {k: float(v) for k, v in kernel.instruction_mix().items()}


# ----------------------------------------------------------------------
# forward abstract interpreter
# ----------------------------------------------------------------------
class _Interpreter:
    def __init__(self, kernel, launch, max_intervals):
        self.kernel = kernel
        self.launch = launch
        self.max_intervals = max_intervals
        tx, ty, tz = launch.block
        ranges = {
            TID("x"): (0, tx - 1),
            TID("y"): (0, ty - 1),
            TID("z"): (0, tz - 1),
        }
        self.algebra = ValueAlgebra(ranges)
        self.args = launch.args_dict
        try:
            self.loops = find_loops(kernel)
        except IrreducibleControlFlow as exc:
            raise _Fallback("irreducible", str(exc))
        self.loop_by_header = {}
        for loop in self.loops:
            self.loop_by_header[loop.header] = loop
        self.state: Dict[Register, object] = {}
        self.records = []
        self.recording = False
        self.multiplier = 1.0
        self.dyn_mix = {
            "alu": 0.0,
            "mem_global": 0.0,
            "mem_shared": 0.0,
            "mem_param": 0.0,
            "control": 0.0,
            "barrier": 0.0,
        }
        self._loop_ids = iter(range(1 << 30))

    # ------------------------------------------------------------------
    def run(self):
        self.recording = True
        self._exec_range(0, len(self.kernel.instructions))
        self.dyn_mix["total"] = sum(self.dyn_mix.values())
        return self.records, dict(self.dyn_mix)

    # ------------------------------------------------------------------
    def _exec_range(self, start, end):
        i = start
        while i < end:
            loop = self.loop_by_header.get(i)
            if loop is not None and loop.latch < end:
                self._exec_loop(loop)
                i = loop.latch + 1
                continue
            inst = self.kernel.instructions[i]
            if inst.is_terminator:
                if inst.guard is None:
                    return "ret"
                i += 1
                continue
            if inst.is_branch:
                # Forward branches are ignored: both paths execute
                # abstractly, over-approximating the access sets.
                self._count(inst)
                i += 1
                continue
            self._transfer(inst)
            i += 1
        return None

    # ------------------------------------------------------------------
    # loop handling
    # ------------------------------------------------------------------
    def _exec_loop(self, loop):
        state0 = dict(self.state)
        # discovery pass: find induction registers (no recording)
        saved_recording, self.recording = self.recording, False
        self._exec_range(loop.header, loop.latch)
        state1 = dict(self.state)
        self.recording = saved_recording
        self.state = dict(state0)

        changed = set(state0) | set(state1)
        inductions = {}
        widened = {}
        for reg in changed:
            v0 = state0.get(reg, UNKNOWN_ARITH)
            v1 = state1.get(reg, UNKNOWN_ARITH)
            if _values_equal(v0, v1):
                continue
            if isinstance(v0, AffineExpr) and isinstance(v1, AffineExpr):
                delta = v1 - v0
                if delta.is_constant and delta.const != 0:
                    inductions[reg] = delta.const
                    continue
            widened[reg] = _widen_value(v1)

        trip = self._trip_count(loop, state0)
        if trip is None:
            raise _Fallback(
                "loop_bounds",
                "cannot bound loop at instructions %d-%d" % (loop.header, loop.latch),
            )
        if trip == 0:
            # body never executes: state unchanged, nothing recorded
            self.state = dict(state0)
            return

        attempts = len(inductions) + 1
        for _attempt in range(attempts):
            loop_sym = LOOP(next(self._loop_ids))
            self.algebra.symbol_ranges[loop_sym] = (0, trip - 1)
            self.state = dict(state0)
            for reg, step in inductions.items():
                self.state[reg] = state0.get(
                    reg, AffineExpr(0)
                ) + AffineExpr.symbol(loop_sym, step)
            for reg, value in widened.items():
                self.state[reg] = value
            checkpoint = len(self.records)
            mix_checkpoint = dict(self.dyn_mix)
            saved_multiplier = self.multiplier
            self.multiplier *= trip
            self._exec_range(loop.header, loop.latch)
            self.multiplier = saved_multiplier
            bad = self._verify_inductions(loop_sym, state0, inductions)
            if bad is None:
                break
            # not a clean induction after all: widen and retry — rolling
            # back both the recorded accesses and the dynamic counts
            del self.records[checkpoint:]
            self.dyn_mix = mix_checkpoint
            inductions.pop(bad)
            widened[bad] = _widen_value(state1.get(bad, UNKNOWN_ARITH))
        else:
            raise _Fallback("loop_bounds", "induction discovery did not converge")

        # exit state: inductions take their post-loop value
        for reg, step in inductions.items():
            self.state[reg] = state0.get(reg, AffineExpr(0)) + AffineExpr(step * trip)
        for reg, value in widened.items():
            self.state[reg] = value

    def _verify_inductions(self, loop_sym, state0, inductions):
        """After the symbolic body pass, each induction register must have
        advanced by exactly its step.  Return an offending register, or
        ``None`` when all verify."""
        for reg, step in inductions.items():
            expected = (
                state0.get(reg, AffineExpr(0))
                + AffineExpr.symbol(loop_sym, step)
                + AffineExpr(step)
            )
            actual = self.state.get(reg, UNKNOWN_ARITH)
            if not (isinstance(actual, AffineExpr) and actual == expected):
                return reg
        return None

    # ------------------------------------------------------------------
    def _trip_count(self, loop, state0):
        """Maximum trip count over corner bindings of the live symbols.

        Concretely simulates the loop (including nested control flow)
        for each corner of the symbol ranges; returns ``None`` when the
        loop cannot be bounded (unknown values in the exit condition or
        iteration cap exceeded).
        """
        symbols = set()
        for value in state0.values():
            if isinstance(value, AffineExpr):
                symbols.update(value.symbols())
        symbols = sorted(symbols)[:4]
        corners = [{}]
        for sym in symbols:
            lo, hi = self.algebra.symbol_ranges.get(sym, (0, 0))
            new = []
            for corner in corners:
                for bound in {lo, hi}:
                    extended = dict(corner)
                    extended[sym] = bound
                    new.append(extended)
            corners = new
        best = 0
        for corner in corners:
            trips = self._simulate_loop(loop, state0, corner)
            if trips is None:
                return None
            best = max(best, trips)
        return best

    def _simulate_loop(self, loop, state0, binding):
        concrete = {}
        for reg, value in state0.items():
            concrete[reg] = _concretize(value, binding)
        sim = _ConcreteSimulator(self.kernel, self.launch, binding, concrete)
        return sim.run_loop(loop)

    # ------------------------------------------------------------------
    # transfer functions
    # ------------------------------------------------------------------
    def _count(self, inst):
        if not self.recording:
            return
        if inst.is_global_access:
            key = "mem_global"
        elif inst.opcode in (Opcode.LD_SHARED, Opcode.ST_SHARED):
            key = "mem_shared"
        elif inst.opcode is Opcode.LD_PARAM:
            key = "mem_param"
        elif inst.is_branch or inst.is_terminator:
            key = "control"
        elif inst.is_barrier:
            key = "barrier"
        else:
            key = "alu"
        self.dyn_mix[key] += self.multiplier

    def _operand_value(self, op):
        if isinstance(op, Register):
            return self.state.get(op, UNKNOWN_ARITH)
        if isinstance(op, SpecialRegister):
            return self._special_value(op)
        if isinstance(op, Immediate):
            if isinstance(op.value, int):
                return AffineExpr(op.value)
            return UNKNOWN_ARITH
        if isinstance(op, (Label, ParamRef)):
            raise AnalysisError("operand %r has no runtime value" % (op,))
        if isinstance(op, MemOperand):
            raise AnalysisError("memory operand in value position")
        raise AnalysisError("unknown operand %r" % (op,))

    def _special_value(self, sreg):
        gx, gy, gz = self.launch.grid
        tx, ty, tz = self.launch.block
        if sreg.family == "tid":
            return AffineExpr.symbol(TID(sreg.dim))
        if sreg.family == "ctaid":
            return AffineExpr.symbol(CTAID(sreg.dim))
        if sreg.family == "ntid":
            return AffineExpr({"x": tx, "y": ty, "z": tz}[sreg.dim])
        if sreg.family == "nctaid":
            return AffineExpr({"x": gx, "y": gy, "z": gz}[sreg.dim])
        if sreg.family == "laneid":
            return SInterval(0, 31)
        if sreg.family == "warpid":
            warps = max(1, (self.launch.threads_per_tb + 31) // 32)
            return SInterval(0, warps - 1)
        raise AnalysisError("unhandled special register %s" % sreg)

    def _set(self, inst, value):
        """Write the destination register; guarded writes merge."""
        regs = inst.written_registers()
        if not regs:
            return
        reg = regs[0]
        if inst.guard is not None:
            value = self.algebra.join(self.state.get(reg, UNKNOWN_ARITH), value)
        self.state[reg] = value

    def _transfer(self, inst):
        self._count(inst)
        op = inst.opcode
        alg = self.algebra
        if op is Opcode.LD_PARAM:
            self._set(inst, self._param_value(inst))
            return
        if op is Opcode.LD_GLOBAL:
            self._record_access(inst, "read")
            self._set(inst, UNKNOWN_MEMORY)
            return
        if op is Opcode.ST_GLOBAL:
            self._record_access(inst, "write")
            return
        if op is Opcode.ATOM_ADD:
            self._record_access(inst, "read")
            self._record_access(inst, "write")
            self._set(inst, UNKNOWN_MEMORY)
            return
        if op is Opcode.LD_SHARED:
            self._set(inst, UNKNOWN_MEMORY)
            return
        if op in (Opcode.ST_SHARED, Opcode.BAR_SYNC):
            return
        if _is_float_type(inst.dtype) and op not in (Opcode.MOV, Opcode.SELP):
            self._set(inst, UNKNOWN_ARITH)
            return
        srcs = [self._operand_value(s) for s in inst.srcs]
        if op is Opcode.MOV:
            self._set(inst, srcs[0])
        elif op is Opcode.ADD:
            self._set(inst, alg.add(srcs[0], srcs[1]))
        elif op is Opcode.SUB:
            self._set(inst, alg.sub(srcs[0], srcs[1]))
        elif op in (Opcode.MUL_LO, Opcode.MUL_WIDE, Opcode.MUL):
            self._set(inst, alg.mul(srcs[0], srcs[1]))
        elif op in (Opcode.MAD_LO, Opcode.MAD_WIDE, Opcode.MAD, Opcode.FMA):
            self._set(inst, alg.mad(srcs[0], srcs[1], srcs[2]))
        elif op is Opcode.DIV:
            self._set(inst, alg.div(srcs[0], srcs[1]))
        elif op is Opcode.REM:
            self._set(inst, alg.rem(srcs[0], srcs[1]))
        elif op is Opcode.NEG:
            self._set(inst, alg.neg(srcs[0]))
        elif op is Opcode.ABS:
            self._set(inst, alg.max_(srcs[0], alg.neg(srcs[0])))
        elif op is Opcode.MIN:
            self._set(inst, alg.min_(srcs[0], srcs[1]))
        elif op is Opcode.MAX:
            self._set(inst, alg.max_(srcs[0], srcs[1]))
        elif op is Opcode.SHL:
            self._set(inst, alg.shl(srcs[0], srcs[1]))
        elif op is Opcode.SHR:
            self._set(inst, alg.shr(srcs[0], srcs[1]))
        elif op is Opcode.AND:
            self._set(inst, alg.and_(srcs[0], srcs[1]))
        elif op is Opcode.OR:
            self._set(inst, alg.or_(srcs[0], srcs[1]))
        elif op is Opcode.XOR:
            self._set(inst, alg.xor(srcs[0], srcs[1]))
        elif op is Opcode.NOT:
            self._set(inst, alg.sub(AffineExpr(-1), srcs[0]))
        elif op in (Opcode.CVT, Opcode.CVTA):
            value = srcs[0]
            if _is_float_type(inst.dtype) or _is_float_type(inst.src_dtype):
                value = taint_of(value) if is_unknown(value) else UNKNOWN_ARITH
            self._set(inst, value)
        elif op is Opcode.SETP:
            self._set(inst, UNKNOWN_ARITH)
        elif op is Opcode.SELP:
            self._set(inst, alg.join(srcs[0], srcs[1]))
        elif op in (Opcode.SQRT, Opcode.RSQRT, Opcode.EX2, Opcode.LG2, Opcode.RCP):
            self._set(inst, UNKNOWN_ARITH)
        else:
            raise _Fallback("unsupported", "opcode %s" % op)

    def _param_value(self, inst):
        addr = inst.address_operand()
        name = addr.base.name
        if name not in self.args:
            raise _Fallback("missing_arg", "no value bound for parameter %r" % name)
        return AffineExpr(int(self.args[name]) + addr.offset)

    # ------------------------------------------------------------------
    def _record_access(self, inst, kind):
        if not self.recording:
            return
        addr_op = inst.address_operand()
        base_value = self.state.get(addr_op.base, UNKNOWN_ARITH) if isinstance(
            addr_op.base, Register
        ) else UNKNOWN_ARITH
        address = self.algebra.add(base_value, AffineExpr(addr_op.offset))
        width = inst.access_width or 4
        if isinstance(address, AffineExpr):
            record = self._record_from_affine(inst, kind, address, width)
        elif isinstance(address, SInterval):
            count = (address.hi - address.lo) // address.stride + 1
            record = AccessRecord.normalized(
                kind,
                inst.line if inst.line is not None else -1,
                width,
                address.lo,
                (0, 0, 0),
                [(address.stride, count)],
                thread_stride=None,  # inter-thread layout unknown
            )
        else:
            reason = address.reason if isinstance(address, Unknown) else "arith"
            raise _Fallback(
                "non_static" if reason == "memory" else "unknown_address",
                "address of %s is %s" % (inst, address),
            )
        self.records.append(record)

    def _record_from_affine(self, inst, kind, address, width):
        base = address.const
        ctaid = [0, 0, 0]
        dims = []
        for sym, coeff in address.terms.items():
            if sym.kind == "ctaid":
                ctaid["xyz".index(sym.name)] += coeff
                continue
            lo, hi = self.algebra.symbol_ranges.get(sym, (None, None))
            if lo is None:
                raise _Fallback(
                    "unknown_address", "symbol %s has no range in %s" % (sym, inst)
                )
            base += coeff * lo
            dims.append((coeff, hi - lo + 1))
        return AccessRecord.normalized(
            kind,
            inst.line if inst.line is not None else -1,
            width,
            base,
            tuple(ctaid),
            dims,
            thread_stride=address.coefficient(TID("x")),
        )


def _is_float_type(dtype):
    return dtype is not None and dtype.startswith("f")


def _values_equal(a, b):
    if isinstance(a, AffineExpr) and isinstance(b, AffineExpr):
        return a == b
    if isinstance(a, SInterval) and isinstance(b, SInterval):
        return a == b
    if isinstance(a, Unknown) and isinstance(b, Unknown):
        return a.reason == b.reason
    return False


def _widen_value(v1):
    """Value for a loop-variant non-induction register: unknown, keeping
    the memory taint so Algorithm 1's bail-out survives widening."""
    if isinstance(v1, Unknown):
        return taint_of(v1)
    return Unknown("widen")


def _concretize(value, binding):
    if isinstance(value, AffineExpr):
        try:
            return value.evaluate(binding)
        except KeyError:
            return None
    if isinstance(value, SInterval):
        return value.lo if value.is_singleton else None
    return None


# ----------------------------------------------------------------------
# concrete scalar simulator (trip-count discovery)
# ----------------------------------------------------------------------
class _ConcreteSimulator:
    """Executes a loop concretely with integer register values.

    Unknown values are ``None`` and propagate; if control flow ever
    depends on ``None`` the simulation aborts (returns ``None``),
    triggering the analysis fallback.
    """

    def __init__(self, kernel, launch, binding, concrete_state):
        self.kernel = kernel
        self.launch = launch
        self.binding = binding
        self.state = dict(concrete_state)

    def run_loop(self, loop):
        instructions = self.kernel.instructions
        i = loop.header
        trips = 1
        steps = 0
        while True:
            steps += 1
            if steps > STEP_CAP or trips > TRIP_COUNT_CAP:
                return None
            inst = instructions[i]
            if i == loop.latch:
                taken = self._branch_taken(inst)
                if taken is None:
                    return None
                if not taken:
                    return trips
                trips += 1
                i = loop.header
                continue
            if inst.is_branch:
                taken = self._branch_taken(inst)
                if taken is None:
                    return None
                if taken:
                    target = None
                    for src in inst.srcs:
                        if isinstance(src, Label):
                            target = self.kernel.labels[src.name]
                    i = target
                else:
                    i += 1
                continue
            if inst.is_terminator:
                if inst.guard is None:
                    return trips
                guard = self.state.get(inst.guard)
                if guard is None:
                    return None
                if bool(guard) != inst.guard_negated:
                    return trips
                i += 1
                continue
            self._step(inst)
            i += 1

    def _branch_taken(self, inst):
        if inst.guard is None:
            return True
        guard = self.state.get(inst.guard)
        if guard is None:
            return None
        taken = bool(guard)
        return not taken if inst.guard_negated else taken

    def _value(self, op):
        if isinstance(op, Register):
            return self.state.get(op)
        if isinstance(op, Immediate):
            return op.value if isinstance(op.value, int) else None
        if isinstance(op, SpecialRegister):
            return self._special(op)
        return None

    def _special(self, sreg):
        gx, gy, gz = self.launch.grid
        tx, ty, tz = self.launch.block
        if sreg.family == "ntid":
            return {"x": tx, "y": ty, "z": tz}[sreg.dim]
        if sreg.family == "nctaid":
            return {"x": gx, "y": gy, "z": gz}[sreg.dim]
        sym = Sym(sreg.family, sreg.dim or "")
        return self.binding.get(sym)

    def _step(self, inst):
        if inst.guard is not None:
            guard = self.state.get(inst.guard)
            if guard is None:
                self._clobber(inst)
                return
            if bool(guard) == inst.guard_negated:
                return
        op = inst.opcode
        if op in (Opcode.ST_GLOBAL, Opcode.ST_SHARED, Opcode.BAR_SYNC):
            return
        if op in (Opcode.LD_GLOBAL, Opcode.LD_SHARED, Opcode.ATOM_ADD):
            self._clobber(inst)
            return
        if op is Opcode.LD_PARAM:
            addr = inst.address_operand()
            value = self.launch.args_dict.get(addr.base.name)
            self._write(inst, None if value is None else value + addr.offset)
            return
        if _is_float_type(inst.dtype) and op is not Opcode.MOV:
            self._clobber(inst)
            return
        srcs = [self._value(s) for s in inst.srcs]
        if op is Opcode.SETP:
            self._write(inst, _compare(inst.compare, srcs[0], srcs[1]))
            return
        if any(s is None for s in srcs):
            self._clobber(inst)
            return
        self._write(inst, _concrete_op(op, srcs, inst))

    def _write(self, inst, value):
        regs = inst.written_registers()
        if regs:
            self.state[regs[0]] = value

    def _clobber(self, inst):
        self._write(inst, None)


def _compare(cmp, a, b):
    if a is None or b is None:
        return None
    return {
        "eq": a == b,
        "ne": a != b,
        "lt": a < b,
        "le": a <= b,
        "gt": a > b,
        "ge": a >= b,
        "lo": a < b,
        "ls": a <= b,
        "hi": a > b,
        "hs": a >= b,
    }[cmp]


def _concrete_op(op, srcs, inst):
    if op is Opcode.MOV:
        return srcs[0] if isinstance(srcs[0], int) else None
    if op is Opcode.ADD:
        return srcs[0] + srcs[1]
    if op is Opcode.SUB:
        return srcs[0] - srcs[1]
    if op in (Opcode.MUL_LO, Opcode.MUL_WIDE, Opcode.MUL):
        return srcs[0] * srcs[1]
    if op in (Opcode.MAD_LO, Opcode.MAD_WIDE, Opcode.MAD):
        return srcs[0] * srcs[1] + srcs[2]
    if op is Opcode.DIV:
        return srcs[0] // srcs[1] if srcs[1] else None
    if op is Opcode.REM:
        return srcs[0] % srcs[1] if srcs[1] else None
    if op is Opcode.NEG:
        return -srcs[0]
    if op is Opcode.ABS:
        return abs(srcs[0])
    if op is Opcode.MIN:
        return min(srcs)
    if op is Opcode.MAX:
        return max(srcs)
    if op is Opcode.SHL:
        return srcs[0] << srcs[1] if 0 <= srcs[1] < 64 else None
    if op is Opcode.SHR:
        return srcs[0] >> srcs[1] if 0 <= srcs[1] < 64 else None
    if op is Opcode.AND:
        return srcs[0] & srcs[1]
    if op is Opcode.OR:
        return srcs[0] | srcs[1]
    if op is Opcode.XOR:
        return srcs[0] ^ srcs[1]
    if op is Opcode.NOT:
        return ~srcs[0]
    if op in (Opcode.CVT, Opcode.CVTA):
        return srcs[0]
    if op is Opcode.SELP:
        return None
    return None
