"""Abstract value domain for the launch-time interpreter.

A register holds one of:

* :class:`~repro.analysis.affine.AffineExpr` — exact integer-affine
  function of ``tid``/``ctaid``/loop symbols (the common case for
  address computations in SIMT kernels);
* :class:`SInterval` — a sound strided range, used when an operation
  leaves the affine domain but bounds are still known (shifts, masks,
  divisions);
* :class:`Unknown` — no information.  The ``reason`` distinguishes
  values loaded from global memory (``memory`` — using one in an address
  reproduces Algorithm 1's "possible non-static dependency" bail-out),
  ordinary untracked arithmetic such as floating point (``arith``), and
  loop widening (``widen``).

:class:`ValueAlgebra` implements the transfer functions.  It carries the
per-symbol iteration ranges so affine values can be demoted to sound
intervals whenever a non-affine operation needs bounds.
"""

import math
from dataclasses import dataclass

from repro.analysis.affine import AffineExpr, NonAffineOperation


@dataclass(frozen=True)
class SInterval:
    """Inclusive strided integer range ``{lo, lo+stride, ..., <= hi}``."""

    lo: int
    hi: int
    stride: int = 1

    def __post_init__(self):
        if self.hi < self.lo:
            raise ValueError("empty SInterval [{}, {}]".format(self.lo, self.hi))
        if self.stride < 1:
            raise ValueError("stride must be >= 1")

    @property
    def is_singleton(self):
        return self.lo == self.hi

    def __str__(self):
        return "[{}..{}/{}]".format(self.lo, self.hi, self.stride)


@dataclass(frozen=True)
class Unknown:
    """Bottomless top element; ``reason`` in {memory, arith, widen}."""

    reason: str = "arith"

    def __str__(self):
        return "?{}".format(self.reason)


UNKNOWN_ARITH = Unknown("arith")
UNKNOWN_MEMORY = Unknown("memory")
UNKNOWN_WIDEN = Unknown("widen")

_SHIFT_CAP = 64


def is_unknown(value):
    return isinstance(value, Unknown)


def taint_of(*values):
    """Combine Unknown reasons with 'memory' dominating (it triggers the
    conservative whole-kernel dependency of Algorithm 1)."""
    reason = None
    for value in values:
        if isinstance(value, Unknown):
            if value.reason == "memory":
                return UNKNOWN_MEMORY
            reason = value.reason
    return Unknown(reason) if reason else UNKNOWN_ARITH


class ValueAlgebra:
    """Transfer functions over the abstract value domain.

    ``symbol_ranges`` maps :class:`~repro.analysis.affine.Sym` to
    inclusive ``(lo, hi)`` pairs and is consulted whenever an affine
    value must be demoted to an interval.
    """

    def __init__(self, symbol_ranges=None):
        self.symbol_ranges = dict(symbol_ranges or {})

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_interval(self, value):
        """Demote any abstract value to an :class:`SInterval` or Unknown."""
        if isinstance(value, SInterval):
            return value
        if isinstance(value, AffineExpr):
            if value.is_constant:
                return SInterval(value.const, value.const)
            try:
                lo, hi = value.value_range(self.symbol_ranges)
            except KeyError:
                return UNKNOWN_ARITH
            stride = 0
            for coeff in value.terms.values():
                stride = math.gcd(stride, abs(coeff))
            return SInterval(lo, hi, max(1, stride))
        return taint_of(value)

    def constant_of(self, value):
        """Integer value if the abstract value is a known constant."""
        if isinstance(value, AffineExpr) and value.is_constant:
            return value.const
        if isinstance(value, SInterval) and value.is_singleton:
            return value.lo
        return None

    # ------------------------------------------------------------------
    # arithmetic transfer functions
    # ------------------------------------------------------------------
    def add(self, a, b):
        if is_unknown(a) or is_unknown(b):
            return taint_of(a, b)
        if isinstance(a, AffineExpr) and isinstance(b, AffineExpr):
            return a + b
        ia, ib = self.to_interval(a), self.to_interval(b)
        if is_unknown(ia) or is_unknown(ib):
            return taint_of(ia, ib)
        return SInterval(
            ia.lo + ib.lo, ia.hi + ib.hi, math.gcd(ia.stride, ib.stride)
        )

    def sub(self, a, b):
        if is_unknown(a) or is_unknown(b):
            return taint_of(a, b)
        if isinstance(a, AffineExpr) and isinstance(b, AffineExpr):
            return a - b
        ia, ib = self.to_interval(a), self.to_interval(b)
        if is_unknown(ia) or is_unknown(ib):
            return taint_of(ia, ib)
        return SInterval(
            ia.lo - ib.hi, ia.hi - ib.lo, math.gcd(ia.stride, ib.stride)
        )

    def neg(self, a):
        return self.sub(AffineExpr(0), a)

    def mul(self, a, b):
        if is_unknown(a) or is_unknown(b):
            return taint_of(a, b)
        if isinstance(a, AffineExpr) and isinstance(b, AffineExpr):
            try:
                return a * b
            except NonAffineOperation:
                pass
        ia, ib = self.to_interval(a), self.to_interval(b)
        if is_unknown(ia) or is_unknown(ib):
            return taint_of(ia, ib)
        corners = [
            ia.lo * ib.lo, ia.lo * ib.hi, ia.hi * ib.lo, ia.hi * ib.hi
        ]
        stride = 1
        if ia.is_singleton:
            stride = max(1, abs(ia.lo) * ib.stride)
        elif ib.is_singleton:
            stride = max(1, abs(ib.lo) * ia.stride)
        return SInterval(min(corners), max(corners), stride)

    def mad(self, a, b, c):
        return self.add(self.mul(a, b), c)

    def shl(self, a, b):
        amount = self.constant_of(b)
        if amount is not None and 0 <= amount <= _SHIFT_CAP:
            return self.mul(a, AffineExpr(1 << amount))
        return taint_of(a, b)

    def shr(self, a, b):
        amount = self.constant_of(b)
        if amount is None or not (0 <= amount <= _SHIFT_CAP):
            return taint_of(a, b)
        ia = self.to_interval(a)
        if is_unknown(ia):
            return taint_of(ia)
        if ia.lo < 0:
            return UNKNOWN_ARITH
        stride = ia.stride >> amount if ia.stride % (1 << amount) == 0 else 1
        return SInterval(ia.lo >> amount, ia.hi >> amount, max(1, stride))

    def div(self, a, b):
        divisor = self.constant_of(b)
        if divisor is None or divisor == 0:
            return taint_of(a, b)
        ia = self.to_interval(a)
        if is_unknown(ia):
            return taint_of(ia)
        if ia.lo < 0 or divisor < 0:
            return UNKNOWN_ARITH
        return SInterval(ia.lo // divisor, ia.hi // divisor, 1)

    def rem(self, a, b):
        divisor = self.constant_of(b)
        if divisor is None or divisor <= 0:
            return taint_of(a, b)
        ia = self.to_interval(a)
        if is_unknown(ia):
            return taint_of(ia)
        if ia.lo >= 0 and ia.hi < divisor:
            # the range already fits under the modulus: identity
            if isinstance(a, AffineExpr):
                return a
            return ia
        return SInterval(0, divisor - 1, 1)

    def and_(self, a, b):
        mask = self.constant_of(b)
        if mask is None:
            mask = self.constant_of(a)
            a = b
        if mask is None or mask < 0:
            return taint_of(a, b)
        ia = self.to_interval(a)
        if is_unknown(ia):
            return taint_of(ia)
        if ia.lo >= 0 and (mask & (mask + 1)) == 0:
            # power-of-two-minus-one mask: a true modulus
            if ia.hi <= mask:
                return a if isinstance(a, AffineExpr) else ia
            return SInterval(0, mask, 1)
        if ia.lo >= 0:
            return SInterval(0, min(ia.hi, mask), 1)
        return UNKNOWN_ARITH

    def or_(self, a, b):
        zero = self.constant_of(b)
        if zero == 0:
            return a
        zero = self.constant_of(a)
        if zero == 0:
            return b
        ia, ib = self.to_interval(a), self.to_interval(b)
        if is_unknown(ia) or is_unknown(ib):
            return taint_of(ia, ib)
        if ia.lo >= 0 and ib.lo >= 0:
            hi_bits = max(ia.hi, ib.hi).bit_length()
            return SInterval(max(ia.lo, ib.lo), (1 << hi_bits) - 1, 1)
        return UNKNOWN_ARITH

    def xor(self, a, b):
        ia, ib = self.to_interval(a), self.to_interval(b)
        if is_unknown(ia) or is_unknown(ib):
            return taint_of(ia, ib)
        if ia.lo >= 0 and ib.lo >= 0:
            hi_bits = max(ia.hi, ib.hi).bit_length()
            return SInterval(0, (1 << hi_bits) - 1, 1)
        return UNKNOWN_ARITH

    def min_(self, a, b):
        ca, cb = self.constant_of(a), self.constant_of(b)
        if ca is not None and cb is not None:
            return AffineExpr(min(ca, cb))
        ia, ib = self.to_interval(a), self.to_interval(b)
        if is_unknown(ia) or is_unknown(ib):
            return taint_of(ia, ib)
        return SInterval(min(ia.lo, ib.lo), min(ia.hi, ib.hi), 1)

    def max_(self, a, b):
        ca, cb = self.constant_of(a), self.constant_of(b)
        if ca is not None and cb is not None:
            return AffineExpr(max(ca, cb))
        ia, ib = self.to_interval(a), self.to_interval(b)
        if is_unknown(ia) or is_unknown(ib):
            return taint_of(ia, ib)
        return SInterval(max(ia.lo, ib.lo), max(ia.hi, ib.hi), 1)

    def join(self, a, b):
        """Lattice join at control-flow merges."""
        if isinstance(a, AffineExpr) and isinstance(b, AffineExpr) and a == b:
            return a
        if is_unknown(a) or is_unknown(b):
            return taint_of(a, b)
        ia, ib = self.to_interval(a), self.to_interval(b)
        if is_unknown(ia) or is_unknown(ib):
            return taint_of(ia, ib)
        return SInterval(
            min(ia.lo, ib.lo),
            max(ia.hi, ib.hi),
            max(1, math.gcd(ia.stride, ib.stride)),
        )
