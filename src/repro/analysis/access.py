"""Per-thread-block access footprints.

The forward interpreter summarizes every global load/store as an
:class:`AccessRecord`: a constant byte base, per-``ctaid`` coefficients
(the only per-thread-block varying part), and a list of strided
dimensions contributed by ``tid`` and loop symbols.  Lowering a record
for one thread block therefore costs only the evaluation of the base —
the strided dimensions are shared by all blocks of the kernel.

:class:`TBAccessSets` caches the lowered :class:`IntervalSet` per thread
block and exposes the read/write set queries used when building
bipartite dependency graphs.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.intervals import Interval, IntervalSet

#: Expansion budget: a strided access lowering to more than this many
#: dense intervals is replaced by its bounding interval (a safe
#: over-approximation for dependency detection).
DEFAULT_MAX_INTERVALS = 64


@dataclass(frozen=True)
class AccessRecord:
    """Summary of one static global memory instruction.

    Attributes:
        kind: ``"read"`` or ``"write"``.
        inst_index: index of the instruction in the kernel body.
        width: bytes accessed per executed instance.
        base: constant byte address component (params and launch
            constants folded in).
        ctaid_coeffs: byte stride per grid dimension ``(x, y, z)``.
        dims: per remaining symbol, ``(stride, count)`` — normalized to
            non-negative strides, sorted by descending stride.
        thread_stride: byte distance between the addresses of two
            threads adjacent in ``tid.x`` (the ``tid.x`` coefficient of
            the address expression).  Drives the memory-coalescing
            model: consecutive threads touching consecutive words
            coalesce into one transaction per warp; larger strides
            spread a warp across multiple cache lines.  ``None`` when
            unknown (interval-fallback records).
    """

    kind: str
    inst_index: int
    width: int
    base: int
    ctaid_coeffs: Tuple[int, int, int] = (0, 0, 0)
    dims: Tuple[Tuple[int, int], ...] = ()
    thread_stride: Optional[int] = None

    def __post_init__(self):
        if self.kind not in ("read", "write"):
            raise ValueError("kind must be read or write: %r" % self.kind)
        if self.width <= 0:
            raise ValueError("width must be positive")
        for stride, count in self.dims:
            if stride < 0 or count <= 0:
                raise ValueError("dims must be normalized: %r" % (self.dims,))

    @classmethod
    def normalized(
        cls, kind, inst_index, width, base, ctaid_coeffs, raw_dims,
        thread_stride=None,
    ):
        """Create a record from possibly negative-stride dimensions.

        Negative strides are folded into the base (the footprint of
        ``{base + s*k}`` for ``s < 0`` equals that of
        ``{base + s*(count-1) + |s|*k}``); zero-stride or single-count
        dimensions are dropped.
        """
        dims = []
        for stride, count in raw_dims:
            if count <= 0:
                count = 1
            if stride < 0:
                base += stride * (count - 1)
                stride = -stride
            if stride == 0 or count == 1:
                continue
            dims.append((stride, count))
        dims.sort(key=lambda d: -d[0])
        return cls(
            kind=kind,
            inst_index=inst_index,
            width=width,
            base=base,
            ctaid_coeffs=tuple(ctaid_coeffs),
            dims=tuple(dims),
            thread_stride=thread_stride,
        )

    # ------------------------------------------------------------------
    def block_base(self, bx, by=0, bz=0):
        cx, cy, cz = self.ctaid_coeffs
        return self.base + cx * bx + cy * by + cz * bz

    def span_bytes(self):
        """Footprint extent: distance from base to one-past-last byte."""
        extent = self.width
        for stride, count in self.dims:
            extent += stride * (count - 1)
        return extent

    def expansion(self, max_intervals=DEFAULT_MAX_INTERVALS):
        """The thread-block-invariant part of :meth:`footprint`.

        Returns ``(offsets, run, exact)``: the footprint of any block
        ``b`` is ``{[base(b) + off, base(b) + off + run) for off in
        offsets}``, where ``base(b)`` is :meth:`block_base` — only the
        translation varies with the block, never the interval shape.
        The fast-path graph builders rely on this invariance; keep
        :meth:`footprint` defined in terms of this method so both agree
        bit for bit.  ``exact=False`` means the expansion exceeded
        ``max_intervals`` and a single bounding run is returned.
        """
        # innermost-first: smallest strides coalesce into dense runs
        run = self.width
        remaining = []
        for stride, count in sorted(self.dims, key=lambda d: d[0]):
            if stride <= run:
                run = stride * (count - 1) + run
            else:
                remaining.append((stride, count))
        total = 1
        for _, count in remaining:
            total *= count
        if total > max_intervals:
            return (0,), self.span_bytes(), False
        offsets = [0]
        for stride, count in remaining:
            offsets = [off + stride * k for off in offsets for k in range(count)]
        return tuple(offsets), run, True

    def footprint(self, bx, by=0, bz=0, max_intervals=DEFAULT_MAX_INTERVALS):
        """Lower this record for one thread block.

        Returns ``(intervals, exact)``.  Dimensions whose stride does not
        exceed the dense extent of the inner dimensions coalesce into a
        single dense run; otherwise the expansion multiplies.  When the
        expansion would exceed ``max_intervals``, the bounding interval
        is returned with ``exact=False``.
        """
        base = self.block_base(bx, by, bz)
        offsets, run, exact = self.expansion(max_intervals)
        return [Interval(base + off, base + off + run) for off in offsets], exact


@dataclass
class TBAccessSets:
    """Lazily lowered per-thread-block read/write interval sets.

    ``grid`` is the ``(gx, gy, gz)`` grid dimension; thread block IDs
    are linearized x-major (``tb = bx + gx*(by + gy*bz)``), matching the
    hardware dispatch order assumed throughout the simulator.
    """

    grid: Tuple[int, int, int]
    records: Tuple[AccessRecord, ...]
    max_intervals: int = DEFAULT_MAX_INTERVALS
    _cache: Dict[Tuple[str, int], IntervalSet] = field(default_factory=dict)

    @property
    def num_tbs(self):
        gx, gy, gz = self.grid
        return gx * gy * gz

    def coords(self, tb_id):
        gx, gy, gz = self.grid
        if not 0 <= tb_id < self.num_tbs:
            raise IndexError("thread block %d out of range" % tb_id)
        bx = tb_id % gx
        by = (tb_id // gx) % gy
        bz = tb_id // (gx * gy)
        return bx, by, bz

    def _lower(self, kind, tb_id):
        key = (kind, tb_id)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        bx, by, bz = self.coords(tb_id)
        intervals = []
        for record in self.records:
            if record.kind != kind:
                continue
            ivs, _ = record.footprint(bx, by, bz, self.max_intervals)
            intervals.extend(ivs)
        result = IntervalSet(intervals)
        self._cache[key] = result
        return result

    def reads(self, tb_id):
        return self._lower("read", tb_id)

    def writes(self, tb_id):
        return self._lower("write", tb_id)

    def kernel_reads(self):
        """Union of read footprints across the whole grid (cheap: uses
        the per-record bounding box over ``ctaid``)."""
        return self._kernel_set("read")

    def kernel_writes(self):
        return self._kernel_set("write")

    def _kernel_set(self, kind):
        gx, gy, gz = self.grid
        intervals = []
        for record in self.records:
            if record.kind != kind:
                continue
            bases = [
                record.block_base(bx, by, bz)
                for bx in (0, gx - 1)
                for by in (0, gy - 1)
                for bz in (0, gz - 1)
            ]
            lo, hi = min(bases), max(bases) + record.span_bytes()
            intervals.append(Interval(lo, hi))
        return IntervalSet(intervals)
