"""Control-flow and def-use analyses over mini-PTX kernels.

Two facilities live here:

* :func:`backward_slice` — a faithful implementation of the paper's
  Algorithm 1: starting from a global load/store, walk backwards through
  the instruction stream tracking the origin of the address operand.
  Encountering a global load in the slice means the address is data
  dependent on memory (e.g. ``A[B[i]]``), which the paper handles by
  conservatively making the whole kernel dependent on its predecessor;
  we surface that as :class:`NonStaticAccess`.

* :func:`build_cfg` / :func:`find_loops` — basic-block construction and
  structured-loop discovery used by the forward value-range interpreter
  to reason about loop trip counts.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.ptx.isa import Label, Opcode, Register


class NonStaticAccess(Exception):
    """An address derives from a global load (Algorithm 1, lines 7-9)."""

    def __init__(self, access_index, load_index):
        self.access_index = access_index
        self.load_index = load_index
        super().__init__(
            "address of instruction {} depends on global load at {}".format(
                access_index, load_index
            )
        )


@dataclass
class SliceResult:
    """Outcome of a backward slice from one memory instruction."""

    access_index: int
    instructions: Tuple[int, ...]
    unresolved: Tuple[Register, ...] = ()

    @property
    def fully_resolved(self):
        return not self.unresolved


def backward_slice(kernel, access_index):
    """Algorithm 1 (lines 2-18): trace the origins of a memory address.

    Returns a :class:`SliceResult` whose ``instructions`` are the indices
    (ascending) of instructions contributing to the address computation.
    Raises :class:`NonStaticAccess` if the address transitively derives
    from a value loaded from global memory.

    ``unresolved`` registers are those still live at the top of the
    kernel — they would be kernel-state bugs in real code; callers treat
    them as analysis failures.
    """
    inst = kernel.instructions[access_index]
    addr = inst.address_operand()
    if addr is None:
        raise ValueError("instruction %d is not a memory access" % access_index)
    pending = set()
    if isinstance(addr.base, Register):
        pending.add(addr.base)
    slice_indices = []
    j = access_index - 1
    while pending and j >= 0:
        candidate = kernel.instructions[j]
        written = set(candidate.written_registers())
        hit = written & pending
        if hit:
            if candidate.is_global_load:
                raise NonStaticAccess(access_index, j)
            pending -= hit
            slice_indices.append(j)
            if candidate.opcode is not Opcode.LD_PARAM:
                for reg in candidate.read_registers():
                    pending.add(reg)
        j -= 1
    return SliceResult(
        access_index=access_index,
        instructions=tuple(reversed(slice_indices)),
        unresolved=tuple(sorted(pending, key=lambda r: r.name)),
    )


# ----------------------------------------------------------------------
# control flow graph
# ----------------------------------------------------------------------
@dataclass
class BasicBlock:
    """A maximal straight-line instruction range ``[start, end)``."""

    index: int
    start: int
    end: int
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    def __contains__(self, inst_index):
        return self.start <= inst_index < self.end


@dataclass
class ControlFlowGraph:
    blocks: List[BasicBlock]

    def block_of(self, inst_index):
        for block in self.blocks:
            if inst_index in block:
                return block
        raise IndexError("no block contains instruction %d" % inst_index)


def _branch_target_index(kernel, inst):
    for op in inst.srcs:
        if isinstance(op, Label):
            return kernel.labels[op.name]
    raise ValueError("branch without label: %s" % inst)


def build_cfg(kernel):
    """Build basic blocks and edges for a kernel."""
    n = len(kernel.instructions)
    leaders = {0, n}
    for i, inst in enumerate(kernel.instructions):
        if inst.is_branch:
            leaders.add(_branch_target_index(kernel, inst))
            leaders.add(i + 1)
        elif inst.is_terminator:
            leaders.add(i + 1)
    ordered = sorted(x for x in leaders if 0 <= x <= n)
    blocks = []
    starts = {}
    for bi in range(len(ordered) - 1):
        start, end = ordered[bi], ordered[bi + 1]
        if start == end:
            continue
        block = BasicBlock(index=len(blocks), start=start, end=end)
        starts[start] = block.index
        blocks.append(block)
    for block in blocks:
        last = kernel.instructions[block.end - 1]
        if last.is_terminator:
            continue
        if last.is_branch:
            target = _branch_target_index(kernel, last)
            if target < len(kernel.instructions):
                block.successors.append(starts[target])
            if last.guard is not None and block.end < len(kernel.instructions):
                block.successors.append(starts[block.end])
        elif block.end < len(kernel.instructions):
            block.successors.append(starts[block.end])
    for block in blocks:
        for succ in block.successors:
            blocks[succ].predecessors.append(block.index)
    return ControlFlowGraph(blocks)


@dataclass
class Loop:
    """A structured loop: contiguous body ``[header, latch]``.

    ``header`` is the instruction index branched back to; ``latch`` is
    the index of the backedge branch itself.  ``depth`` is the nesting
    level (0 = outermost).  The forward interpreter only supports this
    structured shape; anything else triggers the conservative
    whole-kernel fallback.
    """

    header: int
    latch: int
    depth: int = 0
    parent: Optional[int] = None  # index into the loop list

    def __contains__(self, inst_index):
        return self.header <= inst_index <= self.latch

    @property
    def body_range(self):
        return (self.header, self.latch + 1)


class IrreducibleControlFlow(Exception):
    """Loop structure the restricted interpreter cannot handle."""


def find_loops(kernel):
    """Discover structured loops as backward branches.

    Returns loops sorted by header, with nesting validated: loop bodies
    must be properly nested contiguous ranges (the shape produced by
    structured ``for``/``while`` compilation and by our kernel
    generators).  Raises :class:`IrreducibleControlFlow` otherwise.
    """
    loops = []
    for i, inst in enumerate(kernel.instructions):
        if not inst.is_branch:
            continue
        target = _branch_target_index(kernel, inst)
        if target <= i:
            loops.append(Loop(header=target, latch=i))
    loops.sort(key=lambda lp: (lp.header, -lp.latch))
    for a_idx, a in enumerate(loops):
        for b in loops[a_idx + 1 :]:
            disjoint = b.header > a.latch or b.latch < a.header
            nested = a.header <= b.header and b.latch <= a.latch
            if not disjoint and not nested:
                raise IrreducibleControlFlow(
                    "loops [{}-{}] and [{}-{}] overlap".format(
                        a.header, a.latch, b.header, b.latch
                    )
                )
            if a.header == b.header and a is not b:
                raise IrreducibleControlFlow(
                    "multiple backedges to header %d" % a.header
                )
    # assign nesting depth and parents
    for i, loop in enumerate(loops):
        for j, outer in enumerate(loops):
            if outer is loop:
                continue
            if outer.header <= loop.header and loop.latch <= outer.latch:
                loop.depth += 1
                if loop.parent is None or loops[loop.parent].header < outer.header:
                    loop.parent = j
    return loops
