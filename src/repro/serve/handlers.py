"""Endpoint computations for the serve daemon.

Each ``<endpoint>_result(state, params)`` function is a *blocking*
callable: the server dispatches it through the coalescer into the event
loop's thread executor.  All of them run the exact same code paths the
one-shot CLI commands run — ``/v1/run`` is
:meth:`ExperimentContext.run_model`, ``/v1/critpath`` is the
``repro critpath`` pipeline, and so on — so a daemon response is
byte-identical to the in-process CLI result for the same parameters
(the integration suite's differential gate).

Parameter handling happens *before* key derivation:
:func:`normalize_params` applies defaults, canonicalizes model aliases
(``blockmaestro`` -> ``consumer3``), validates names and types, and
rejects unknown fields — so two spellings of the same request share one
content-addressed key, and an invalid request fails fast with a
:class:`ServeRequestError` instead of poisoning the cache.
"""

from repro.experiments.common import (
    MODEL_ALIASES,
    STANDARD_MODELS,
    UnknownModelError,
    canonical_model_name,
)
from repro.workloads import UnknownWorkloadError, all_workloads, get_workload

MODEL_NAMES = [m[0] for m in STANDARD_MODELS]


class ServeRequestError(ValueError):
    """A client-side request problem, mapped to an HTTP status."""

    def __init__(self, message, status=400):
        super().__init__(message)
        self.status = status


#: endpoint -> {param: (type-check, default)}; ``REQUIRED`` = no default
REQUIRED = object()

_BOOL = ("boolean", lambda v: isinstance(v, bool))
_STR = ("string", lambda v: isinstance(v, str))
_INT = ("integer", lambda v: isinstance(v, int) and not isinstance(v, bool))
_STR_LIST = (
    "list of strings",
    lambda v: isinstance(v, list) and all(isinstance(x, str) for x in v),
)

PARAM_SPECS = {
    "run": {
        "workload": (_STR, REQUIRED),
        "model": (_STR, "consumer3"),
        "engine": (_STR, None),
        "journal": (_BOOL, False),
        "tb_records": (_BOOL, False),
    },
    "compare": {
        "workload": (_STR, REQUIRED),
    },
    "critpath": {
        "workload": (_STR, REQUIRED),
        "model": (_STR, "consumer3"),
        "whatif": (_BOOL, False),
    },
    "telemetry": {
        "workload": (_STR, REQUIRED),
        "model": (_STR, "consumer3"),
    },
    "bench": {
        "quick": (_BOOL, True),
        "models": (_STR_LIST, None),
        "filter": (_STR_LIST, None),
        "repeats": (_INT, None),
        "warmup": (_INT, None),
    },
}


def _validate_model(name):
    resolved = canonical_model_name(name)
    if resolved not in MODEL_NAMES:
        roster = ", ".join(MODEL_NAMES + sorted(MODEL_ALIASES))
        raise ServeRequestError(
            "unknown model {!r}; available: {}".format(name, roster),
            status=404,
        )
    return resolved


def _validate_workload(name):
    try:
        get_workload(name)
    except UnknownWorkloadError as exc:
        message = exc.args[0] if exc.args else str(exc)
        raise ServeRequestError(message, status=404) from None
    return str(name).lower()


def _validate_engine(value):
    from repro.models.fastengine import resolve_engine_mode

    try:
        return resolve_engine_mode(value)
    except ValueError as exc:
        raise ServeRequestError(str(exc), status=400) from None


def normalize_params(endpoint, body):
    """Defaults + canonicalization + validation for one endpoint."""
    spec = PARAM_SPECS.get(endpoint)
    if spec is None:
        raise ServeRequestError(
            "unknown endpoint {!r}".format(endpoint), status=404
        )
    if body is None:
        body = {}
    if not isinstance(body, dict):
        raise ServeRequestError("request body must be a JSON object")
    unknown = sorted(set(body) - set(spec))
    if unknown:
        raise ServeRequestError(
            "unknown parameter{} for {}: {}".format(
                "" if len(unknown) == 1 else "s", endpoint,
                ", ".join(unknown),
            )
        )
    params = {}
    for name, ((type_name, check), default) in sorted(spec.items()):
        if name in body and body[name] is not None:
            value = body[name]
            if not check(value):
                raise ServeRequestError(
                    "parameter {!r} must be a {}".format(name, type_name)
                )
        elif default is REQUIRED:
            raise ServeRequestError(
                "missing required parameter {!r}".format(name)
            )
        else:
            value = default
        params[name] = value
    if "workload" in params:
        params["workload"] = _validate_workload(params["workload"])
    if "model" in params:
        params["model"] = _validate_model(params["model"])
    if params.get("engine") is not None:
        params["engine"] = _validate_engine(params["engine"])
    if "models" in params and params["models"] is not None:
        try:
            params["models"] = [
                name if name == "all" else _validate_model(name)
                for name in params["models"]
            ]
        except UnknownModelError as exc:
            raise ServeRequestError(
                exc.args[0] if exc.args else str(exc), status=404
            ) from None
    return params


# ----------------------------------------------------------------------
# endpoint computations (blocking; dispatched via the coalescer)
# ----------------------------------------------------------------------
def run_result(state, params):
    """``/v1/run`` — exactly the in-process ``repro run`` path."""
    from repro.obs.report import run_stats_dict

    with state.sim_lock:
        state.metrics.inc("serve.sim.run")
        if params.get("engine"):
            stats = state.run_with_engine(
                params["workload"], params["model"], params["engine"]
            )
        else:
            app = state.app_for(params["workload"])
            stats = state.context.run_model(app, params["model"])
        result = run_stats_dict(
            stats, include_tb_records=params["tb_records"]
        )
        result["workload"] = params["workload"]
        result["signature"] = stats.simulated_signature()
        if params["journal"]:
            from repro.obs import journal as jr

            recorder, _stats = jr.record_run(
                params["workload"], params["model"]
            )
            result["journal"] = {
                "digest": recorder.digest(),
                "num_events": len(recorder.events),
            }
    return result


def compare_result(state, params):
    """``/v1/compare`` — the serial ``repro compare --json`` payload."""
    from repro.obs.report import run_stats_dict

    with state.sim_lock:
        state.metrics.inc("serve.sim.compare")
        app = state.app_for(params["workload"])
        runs = [
            state.context.run_model(app, name) for name in MODEL_NAMES
        ]
        baseline = runs[0]
        result = {
            "workload": params["workload"],
            "baseline": baseline.model,
            "runs": [
                dict(
                    run_stats_dict(stats),
                    speedup=stats.speedup_over(baseline),
                )
                for stats in runs
            ],
            "signatures": {
                stats.model: stats.simulated_signature() for stats in runs
            },
        }
    return result


def critpath_result(state, params):
    """``/v1/critpath`` — the schema-validated critpath report."""
    from repro.core.runtime import BlockMaestroRuntime
    from repro.experiments.common import _make_model, _model_plan_params
    from repro.obs import critpath as cp

    with state.sim_lock:
        state.metrics.inc("serve.sim.critpath")
        prov = cp.ProvenanceRecorder()
        spec = get_workload(params["workload"])
        app = spec.build()
        reorder, window = _model_plan_params(params["model"])
        runtime = BlockMaestroRuntime(cache=state.analysis_cache)
        plan = runtime.plan(app, reorder=reorder, window=window)
        model = _make_model(params["model"], runtime.config)
        stats = model.run(plan, provenance=prov)
        report = cp.build_report(
            stats, plan, prov, model.gpu_config,
            options=model.options(), whatif=params["whatif"],
        )
    errors = cp.validate_critpath_report(report)
    if errors:  # a profiler bug, not a user error — fail loudly
        raise AssertionError(
            "generated critpath report is invalid: {}".format(errors[:3])
        )
    return report


def telemetry_result(state, params):
    """``/v1/telemetry`` — the schema-validated telemetry report."""
    from repro.obs import telemetry as tm

    with state.sim_lock:
        state.metrics.inc("serve.sim.telemetry")
        sampler, stats = tm.record_telemetry(
            params["workload"], params["model"]
        )
        report = tm.build_report(stats, sampler)
    errors = tm.validate_telemetry_report(report)
    if errors:  # a sampler bug, not a user error — fail loudly
        raise AssertionError(
            "generated telemetry report is invalid: {}".format(errors[:3])
        )
    return report


def bench_result(state, params):
    """``/v1/bench`` — a full bench-report payload (no file written)."""
    from repro import bench

    with state.sim_lock:
        state.metrics.inc("serve.sim.bench")
        config = bench.resolve_config(
            quick=params["quick"],
            models=params["models"],
            filter_globs=params["filter"],
            repeats=params["repeats"],
            warmup=params["warmup"],
            jobs=state.bench_jobs,
            cache_dir=state.cache_dir,
        )
        payload = bench.run_suite(
            config, log=lambda *_args, **_kw: None,
            executor=state.suite_executor(),
        )
    errors = bench.validate_report(payload)
    if errors:  # a schema bug, not a user error — fail loudly
        raise AssertionError(
            "generated bench report is invalid: {}".format(errors[:3])
        )
    return payload


def workloads_result(_state, _params):
    """``/workloads`` — the registry, as ``repro list --json`` specs."""
    return [spec.as_dict() for spec in all_workloads()]


HANDLERS = {
    "run": run_result,
    "compare": compare_result,
    "critpath": critpath_result,
    "telemetry": telemetry_result,
    "bench": bench_result,
}
