"""Simulation-as-a-service: the ``repro serve`` daemon and its client.

Every CLI invocation pays interpreter + parse + analyze cold start.
``repro serve`` is the long-running alternative: one asyncio HTTP/JSON
process that holds the workload registry, a warm in-process
:class:`~repro.experiments.common.ExperimentContext` (apps, plans, and
run results memoized across requests), a persistent
:class:`~repro.analysis.cache.AnalysisCache`, and a
:class:`~repro.parallel.SuiteExecutor` pool for bench requests —
exposing ``run`` / ``compare`` / ``critpath`` / ``telemetry`` /
``bench`` as endpoints.

Request handling is *content-addressed* (PR 3's sha256 scheme): every
simulation request canonicalizes to a :func:`request_key`; concurrent
identical requests coalesce into exactly one simulation (the
:class:`~repro.serve.coalescer.Coalescer`), and completed responses are
served from an in-memory :class:`~repro.serve.coalescer.ResponseCache`.

The observability plane around the daemon:

* ``GET /metrics``   — live Prometheus exposition of the server's
  :class:`~repro.obs.MetricsRegistry` (per-endpoint request counters +
  latency histograms, coalescing, cache, uptime) via
  :mod:`repro.obs.prom`;
* ``GET /healthz``   — liveness probe;
* ``GET /statusz``   — a ``repro-status`` snapshot (the PR 6
  ``--status-file`` schema, served live);
* ``GET /events``    — Server-Sent Events stream of heartbeat +
  request/simulation lifecycle events for live tailing;
* structured JSON access logs through :mod:`repro.obs.log` with a
  per-request ``request_id`` that is also propagated into the server's
  tracer spans (``--trace-out``).

See ``docs/serving.md`` for the endpoint reference and
``repro bench serve`` for the load-test bench.
"""

#: client/daemon handshake token: bump on any incompatible change to
#: the request/response envelope or an endpoint's result shape
SERVE_SCHEMA_VERSION = 1

#: envelope ``kind`` on every JSON response body
SERVE_KIND = "repro-serve-response"

#: default TCP port (the client's default target)
DEFAULT_PORT = 8642

#: environment override for the client's default daemon URL
SERVE_URL_ENV = "REPRO_SERVE_URL"

from repro.serve.coalescer import (  # noqa: E402
    Coalescer,
    ResponseCache,
    request_key,
)
from repro.serve.client import (  # noqa: E402
    ClientError,
    SchemaMismatchError,
    ServeClient,
    default_url,
)
from repro.serve.server import ReproServer, ServeDaemon  # noqa: E402

__all__ = [
    "SERVE_SCHEMA_VERSION",
    "SERVE_KIND",
    "DEFAULT_PORT",
    "SERVE_URL_ENV",
    "Coalescer",
    "ResponseCache",
    "request_key",
    "ClientError",
    "SchemaMismatchError",
    "ServeClient",
    "default_url",
    "ReproServer",
    "ServeDaemon",
]
