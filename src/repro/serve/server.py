"""The ``repro serve`` daemon: asyncio HTTP/JSON with live observability.

One process, one event loop, zero dependencies: requests are parsed
straight off asyncio streams (HTTP/1.1, ``Connection: close``),
simulation work runs in the loop's thread executor behind the
:class:`~repro.serve.coalescer.Coalescer`, and everything the daemon
does is observable while it runs:

* every request increments per-endpoint counters and latency
  histograms on a live :class:`~repro.obs.MetricsRegistry`, scraped at
  ``GET /metrics`` as a Prometheus exposition
  (:mod:`repro.obs.prom`);
* ``GET /healthz`` / ``GET /statusz`` are the probe surface —
  ``statusz`` serves the same schema-versioned ``repro-status``
  snapshot the PR 6 ``--status-file`` flag writes (and ``--status-file``
  on the daemon itself keeps writing it atomically for file pollers);
* ``GET /events`` streams heartbeat + request/simulation lifecycle
  events as Server-Sent Events;
* every request gets a ``request_id`` that appears in the structured
  access log (:mod:`repro.obs.log`, subsystem ``serve``) and in the
  server's tracer spans (``--trace-out``).

Warm state lives for the life of the process: the workload registry,
an :class:`~repro.experiments.common.ExperimentContext` whose app /
plan / run memos make repeated requests near-free, an optional
persistent :class:`~repro.analysis.cache.AnalysisCache`, a bounded
:class:`~repro.serve.coalescer.ResponseCache`, and a
:class:`~repro.parallel.SuiteExecutor` pool for ``/v1/bench``.
"""

import asyncio
import json
import os
import secrets
import socket
import threading
import time

from repro.obs import MetricsRegistry, NULL_TRACER, Tracer
from repro.obs.log import (
    STATUS_KIND,
    STATUS_SCHEMA_VERSION,
    get_logger,
    write_status_snapshot,
)
from repro.serve.coalescer import Coalescer, ResponseCache, request_key
from repro.serve.handlers import (
    HANDLERS,
    ServeRequestError,
    normalize_params,
    workloads_result,
)

#: request limits — a local analysis service, not a hardened proxy
MAX_REQUEST_LINE = 8192
MAX_HEADERS = 64
MAX_BODY_BYTES = 1 << 20
READ_TIMEOUT_S = 60.0

SCHEMA_HEADER = "x-repro-serve-schema"

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class ServeStartupError(RuntimeError):
    """Bind/resolve failure at startup; the CLI maps it to exit 2."""


def preflight_host(host, port):
    """Resolve the bind address early for a clear one-line failure."""
    try:
        socket.getaddrinfo(str(host), int(port), type=socket.SOCK_STREAM)
    except socket.gaierror as exc:
        raise ServeStartupError(
            "cannot resolve --host {!r}: {}".format(host, exc)
        ) from None


class _EventBus:
    """Fan-out of server events to any number of SSE subscribers."""

    def __init__(self, metrics, capacity=256):
        self.metrics = metrics
        self.capacity = capacity
        self._queues = set()
        self._seq = 0

    @property
    def subscribers(self):
        return len(self._queues)

    def subscribe(self):
        queue = asyncio.Queue(maxsize=self.capacity)
        self._queues.add(queue)
        self.metrics.inc("serve.events.subscribes")
        return queue

    def unsubscribe(self, queue):
        self._queues.discard(queue)

    def publish(self, kind, **fields):
        self._seq += 1
        event = {"seq": self._seq, "kind": kind, "ts": round(time.time(), 3)}
        event.update(fields)
        self.metrics.inc("serve.events.published")
        for queue in list(self._queues):
            try:
                queue.put_nowait(event)
            except asyncio.QueueFull:
                self.metrics.inc("serve.events.dropped")
        return event


class ReproServer:
    """Daemon state + request handling; see the module docstring."""

    def __init__(self, host="127.0.0.1", port=0, cache_dir=None,
                 response_cache_size=1024, heartbeat_s=2.0,
                 status_file=None, trace_out=None, bench_jobs=1):
        self.host = host
        self.port = int(port)
        self.heartbeat_s = float(heartbeat_s)
        self.status_file = status_file or None
        self.trace_out = trace_out or None
        self.bench_jobs = max(1, int(bench_jobs))

        self.metrics = MetricsRegistry()
        self.tracer = Tracer() if self.trace_out else NULL_TRACER
        self.log = get_logger("serve")
        self.coalescer = Coalescer(metrics=self.metrics)
        self.cache = ResponseCache(
            capacity=response_cache_size, metrics=self.metrics
        )
        self.events = _EventBus(self.metrics)
        self.sim_lock = threading.Lock()
        self.cache_dir = cache_dir

        from repro.experiments.common import ExperimentContext

        self.context = ExperimentContext()
        self._apps = {}
        self._suite_executor = None
        self.analysis_cache = None
        if cache_dir:
            from repro.analysis.cache import AnalysisCache

            self.analysis_cache = AnalysisCache(
                directory=cache_dir, metrics=self.metrics
            )

        self._started_monotonic = None
        self._started_wall = None
        self._requests_received = 0
        self._requests_finished = 0
        self._inflight = 0
        self._current = None
        self._stop_event = None
        self._server = None
        self._loop = None

    # ------------------------------------------------------------------
    # warm state accessors (called from executor threads under sim_lock)
    # ------------------------------------------------------------------
    def app_for(self, name):
        """Build-once application lookup (registry + hidden names)."""
        from repro.workloads import get_workload

        app = self._apps.get(name)
        if app is None:
            if len(self._apps) >= 512:
                # unbounded hidden names (fuzz-<seed>) must not grow the
                # memo forever; reset the warm context wholesale
                from repro.experiments.common import ExperimentContext

                self.context = ExperimentContext()
                self._apps.clear()
                self.metrics.inc("serve.context.resets")
            app = get_workload(name).build()
            self.context.register_app(app)
            self._apps[name] = app
        return app

    def run_with_engine(self, workload, model, engine):
        """An engine-pinned run: fresh context, env restored after."""
        from repro.experiments.common import ExperimentContext
        from repro.models.fastengine import ENGINE_ENV
        from repro.workloads import get_workload

        previous = os.environ.get(ENGINE_ENV)
        os.environ[ENGINE_ENV] = engine
        try:
            app = get_workload(workload).build()
            context = ExperimentContext()
            context.register_app(app)
            return context.run_model(app, model)
        finally:
            if previous is None:
                os.environ.pop(ENGINE_ENV, None)
            else:
                os.environ[ENGINE_ENV] = previous

    def suite_executor(self):
        """The ``/v1/bench`` worker pool (lazily built, process-wide)."""
        if self.bench_jobs <= 1:
            return None
        if self._suite_executor is None:
            from repro.parallel import SuiteExecutor

            self._suite_executor = SuiteExecutor(jobs=self.bench_jobs)
        return self._suite_executor

    # ------------------------------------------------------------------
    # status / metrics surfaces
    # ------------------------------------------------------------------
    def uptime_s(self):
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    def status_snapshot(self):
        """The live ``repro-status`` snapshot behind ``/statusz``."""
        snapshot = self.metrics.snapshot()
        counters = snapshot["counters"]
        lookups = counters.get("serve.cache.hits", 0.0) + counters.get(
            "serve.cache.misses", 0.0
        )
        payload = {
            "kind": STATUS_KIND,
            "schema_version": STATUS_SCHEMA_VERSION,
            "phase": "serve",
            "completed": self._requests_finished,
            "total": self._requests_received,
            "current": self._current,
            "elapsed_s": round(self.uptime_s(), 3),
            "eta_s": None,
            "done": self._inflight == 0,
            "pid": os.getpid(),
            "inflight": self._inflight,
            "cache_entries": len(self.cache),
            "cache_hit_rate": (
                counters.get("serve.cache.hits", 0.0) / lookups
                if lookups else None
            ),
            "coalesce_leaders": counters.get("serve.coalesce.leaders", 0.0),
            "coalesce_followers": counters.get(
                "serve.coalesce.followers", 0.0
            ),
            "event_subscribers": self.events.subscribers,
            "url": "http://{}:{}".format(self.host, self.port),
        }
        return payload

    def metrics_exposition(self):
        """The live ``/metrics`` document."""
        from repro.obs.prom import render_registry

        self.metrics.set_gauge("serve.uptime_seconds", self.uptime_s())
        self.metrics.set_gauge("serve.inflight_requests", self._inflight)
        self.metrics.set_gauge("serve.cache_entries", len(self.cache))
        self.metrics.set_gauge(
            "serve.event_subscribers", self.events.subscribers
        )
        return render_registry(
            self.metrics.snapshot(),
            namespace="repro",
            const_labels='service="repro-serve"',
        )

    def version_payload(self):
        from repro.serve import SERVE_SCHEMA_VERSION
        from repro.version import package_version, schema_versions

        return {
            "package": package_version(),
            "schemas": schema_versions(),
            "serve_schema_version": SERVE_SCHEMA_VERSION,
            "pid": os.getpid(),
        }

    def _write_status_file(self):
        if self.status_file:
            write_status_snapshot(self.status_snapshot(), self.status_file)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def request_stop(self):
        """Thread-safe graceful-shutdown trigger."""
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)

    async def start(self):
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port
            )
        except socket.gaierror as exc:
            raise ServeStartupError(
                "cannot resolve --host {!r}: {}".format(self.host, exc)
            ) from None
        except OSError as exc:
            raise ServeStartupError(
                "cannot bind {}:{}: {}".format(
                    self.host, self.port, exc.strerror or exc
                )
            ) from None
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()
        self._started_wall = time.time()
        return self

    async def run(self, announce=None, ready=None):
        """Start, announce, heartbeat, serve until stopped."""
        await self.start()
        if announce is not None:
            announce(
                "repro serve: listening on http://{}:{} (pid {})".format(
                    self.host, self.port, os.getpid()
                )
            )
        if ready is not None:
            ready(self)
        try:
            self._loop.add_signal_handler(2, self._stop_event.set)    # INT
            self._loop.add_signal_handler(15, self._stop_event.set)   # TERM
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or unsupported platform
        heartbeat = asyncio.ensure_future(self._heartbeat_task())
        try:
            async with self._server:
                self._write_status_file()
                await self._stop_event.wait()
        finally:
            heartbeat.cancel()
            try:
                await heartbeat
            except asyncio.CancelledError:
                pass
            self._write_status_file()
            if self.trace_out and self.tracer is not NULL_TRACER:
                self.tracer.write(self.trace_out)
            if self._suite_executor is not None:
                close = getattr(self._suite_executor, "close", None)
                if close is not None:
                    close()
        return 0

    async def _heartbeat_task(self):
        while True:
            await asyncio.sleep(self.heartbeat_s)
            self.metrics.inc("serve.heartbeats")
            self.events.publish(
                "heartbeat",
                uptime_s=round(self.uptime_s(), 3),
                completed=self._requests_finished,
                inflight=self._inflight,
                cache_entries=len(self.cache),
            )
            self._write_status_file()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer):
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        except asyncio.TimeoutError:
            pass
        except asyncio.CancelledError:
            # loop shutdown with the connection (e.g. an /events tail)
            # still open; swallow so the streams callback stays quiet
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_head(self, reader):
        request_line = await asyncio.wait_for(
            reader.readline(), READ_TIMEOUT_S
        )
        if not request_line or len(request_line) > MAX_REQUEST_LINE:
            return None, None, None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) < 2:
            return None, None, None
        method, target = parts[0].upper(), parts[1]
        headers = {}
        for _ in range(MAX_HEADERS):
            line = await asyncio.wait_for(reader.readline(), READ_TIMEOUT_S)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, target, headers

    async def _handle_request(self, reader, writer):
        method, target, headers = await self._read_head(reader)
        if method is None:
            return
        path = target.split("?", 1)[0]
        request_id = "r{:06d}-{}".format(
            self._requests_received + 1, secrets.token_hex(3)
        )
        self._requests_received += 1
        self._inflight += 1
        self._current = "{} {}".format(method, path)
        started = time.perf_counter()
        endpoint = self._endpoint_token(method, path)
        status = 500
        source = "-"
        try:
            if path == "/events" and method == "GET":
                status = 200
                self.metrics.inc("serve.requests.events")
                await self._serve_events(writer, request_id)
                return
            body = await self._read_body(reader, headers)
            status, payload, content_type, source = await self._route(
                method, path, headers, body, request_id
            )
            self._send(writer, status, payload, content_type)
        except ServeRequestError as exc:
            status = exc.status
            self._send_error(writer, exc.status, str(exc), request_id)
        except Exception as exc:  # noqa: BLE001 - daemon must not die
            status = 500
            self.metrics.inc("serve.errors.internal")
            self._send_error(
                writer, 500,
                "internal error: {}: {}".format(type(exc).__name__, exc),
                request_id,
            )
        finally:
            elapsed_ms = (time.perf_counter() - started) * 1e3
            self._inflight -= 1
            self._requests_finished += 1
            self._observe_request(
                endpoint, method, path, status, elapsed_ms, request_id,
                source,
            )

    def _observe_request(self, endpoint, method, path, status, elapsed_ms,
                         request_id, source):
        self.metrics.inc("serve.requests.{}".format(endpoint))
        self.metrics.observe(
            "serve.latency_ms.{}".format(endpoint), elapsed_ms
        )
        if status >= 400:
            self.metrics.inc("serve.errors.{}".format(endpoint))
        self.tracer.complete(
            "serve.request:{}".format(path),
            ts_us=(time.time() - (elapsed_ms / 1e3)) * 1e6,
            dur_us=elapsed_ms * 1e3,
            cat="serve",
            args={
                "request_id": request_id,
                "status": status,
                "source": source,
            },
        )
        # the structured access log: one line per request, with the
        # request_id both in the text form and as a JSON field
        self.log.info(
            '{} "{} {}" {} {:.1f}ms rid={} source={}'.format(
                self.host, method, path, status, elapsed_ms, request_id,
                source,
            ),
            request_id=request_id,
            method=method,
            path=path,
            status=status,
            elapsed_ms=round(elapsed_ms, 3),
            source=source,
        )
        if path.startswith("/v1/") and path != "/v1/shutdown":
            self.events.publish(
                "request",
                request_id=request_id,
                path=path,
                status=status,
                elapsed_ms=round(elapsed_ms, 3),
                source=source,
            )

    @staticmethod
    def _endpoint_token(method, path):
        token = path.strip("/").replace("/", "_") or "root"
        if token.startswith("v1_"):
            token = token[len("v1_"):]
        return "{}_{}".format(method.lower(), token)

    async def _read_body(self, reader, headers):
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise ServeRequestError("bad Content-Length header")
        if length > MAX_BODY_BYTES:
            raise ServeRequestError("request body too large", status=413)
        if length <= 0:
            return None
        raw = await asyncio.wait_for(
            reader.readexactly(length), READ_TIMEOUT_S
        )
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ServeRequestError("request body is not valid JSON")

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _route(self, method, path, headers, body, request_id):
        if path in ("/healthz", "/statusz", "/metrics", "/version",
                    "/workloads"):
            if method != "GET":
                raise ServeRequestError("method not allowed", status=405)
            if path == "/healthz":
                return 200, {
                    "status": "ok",
                    "uptime_s": round(self.uptime_s(), 3),
                    "pid": os.getpid(),
                }, "application/json", "-"
            if path == "/statusz":
                return 200, self.status_snapshot(), "application/json", "-"
            if path == "/metrics":
                return (
                    200, self.metrics_exposition(),
                    "text/plain; version=0.0.4", "-",
                )
            if path == "/version":
                return 200, self.version_payload(), "application/json", "-"
            return 200, workloads_result(self, None), "application/json", "-"
        if path == "/v1/shutdown":
            if method != "POST":
                raise ServeRequestError("method not allowed", status=405)
            self._loop.call_later(0.05, self._stop_event.set)
            return 200, {"status": "shutting down"}, "application/json", "-"
        if path.startswith("/v1/"):
            if method != "POST":
                raise ServeRequestError("method not allowed", status=405)
            return await self._route_simulation(
                path, headers, body, request_id
            )
        raise ServeRequestError(
            "unknown path {!r}".format(path), status=404
        )

    def _check_schema_header(self, headers):
        from repro.serve import SERVE_SCHEMA_VERSION

        claimed = headers.get(SCHEMA_HEADER)
        if claimed is None:
            return
        if claimed.strip() != str(SERVE_SCHEMA_VERSION):
            self.metrics.inc("serve.errors.schema_mismatch")
            raise ServeRequestError(
                "serve schema mismatch: daemon speaks v{}, client sent "
                "v{}".format(SERVE_SCHEMA_VERSION, claimed.strip()),
                status=409,
            )

    async def _route_simulation(self, path, headers, body, request_id):
        from repro.serve import SERVE_KIND, SERVE_SCHEMA_VERSION

        self._check_schema_header(headers)
        endpoint = path[len("/v1/"):]
        handler = HANDLERS.get(endpoint)
        if handler is None:
            raise ServeRequestError(
                "unknown endpoint {!r}".format(endpoint), status=404
            )
        params = normalize_params(endpoint, body)
        key = request_key(endpoint, params)
        cached = self.cache.get(key)
        if cached is not None:
            result, source = cached, "cached"
        else:
            self.events.publish(
                "sim.start", request_id=request_id, endpoint=endpoint,
                key=key, params=params,
            )
            result, source = await self.coalescer.fetch(
                key, lambda: handler(self, params)
            )
            if source == "simulated":
                self.cache.put(key, result)
            self.events.publish(
                "sim.done", request_id=request_id, endpoint=endpoint,
                key=key, source=source,
            )
            if isinstance(result, dict) and "journal" in result:
                self.events.publish(
                    "journal", request_id=request_id, endpoint=endpoint,
                    **result["journal"]
                )
        envelope = {
            "kind": SERVE_KIND,
            "schema_version": SERVE_SCHEMA_VERSION,
            "endpoint": endpoint,
            "request_id": request_id,
            "key": key,
            "source": source,
            "params": params,
            "result": result,
        }
        return 200, envelope, "application/json", source

    # ------------------------------------------------------------------
    # response writing
    # ------------------------------------------------------------------
    def _send(self, writer, status, payload, content_type):
        if isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = (
                json.dumps(payload, sort_keys=True) + "\n"
            ).encode("utf-8")
        head = (
            "HTTP/1.1 {} {}\r\n"
            "Content-Type: {}\r\n"
            "Content-Length: {}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).format(
            status, _STATUS_TEXT.get(status, "OK"), content_type, len(body)
        )
        writer.write(head.encode("latin-1") + body)

    def _send_error(self, writer, status, message, request_id):
        self._send(
            writer, status,
            {
                "kind": "repro-serve-error",
                "status": status,
                "error": message,
                "request_id": request_id,
            },
            "application/json",
        )

    async def _serve_events(self, writer, request_id):
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        await writer.drain()
        queue = self.events.subscribe()
        self.log.info(
            "events: subscriber attached rid={}".format(request_id),
            request_id=request_id, path="/events",
        )
        try:
            hello = {
                "seq": 0, "kind": "hello", "request_id": request_id,
                "uptime_s": round(self.uptime_s(), 3),
            }
            writer.write(self._sse_frame(hello))
            await writer.drain()
            while not self._stop_event.is_set():
                try:
                    event = await asyncio.wait_for(queue.get(), 1.0)
                except asyncio.TimeoutError:
                    continue
                writer.write(self._sse_frame(event))
                await writer.drain()
        finally:
            self.events.unsubscribe(queue)

    @staticmethod
    def _sse_frame(event):
        return (
            "id: {}\nevent: {}\ndata: {}\n\n".format(
                event.get("seq", 0),
                event.get("kind", "message"),
                json.dumps(event, sort_keys=True),
            )
        ).encode("utf-8")


class ServeDaemon:
    """Run a :class:`ReproServer` on a background thread (tests, bench).

    ``with ServeDaemon() as daemon:`` binds an ephemeral port, waits
    until the server is accepting, and exposes ``daemon.port`` /
    ``daemon.base_url`` plus the live server object for white-box
    assertions (metrics counters, cache contents).
    """

    def __init__(self, **server_kwargs):
        server_kwargs.setdefault("port", 0)
        self.server = ReproServer(**server_kwargs)
        self._thread = None
        self._ready = threading.Event()
        self._error = None

    @property
    def port(self):
        return self.server.port

    @property
    def base_url(self):
        return "http://{}:{}".format(self.server.host, self.server.port)

    def _thread_main(self):
        try:
            asyncio.run(
                self.server.run(ready=lambda _s: self._ready.set())
            )
        except BaseException as exc:  # noqa: BLE001 - surfaced in start()
            self._error = exc
            self._ready.set()

    def start(self, timeout=10.0):
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("serve daemon did not start in time")
        if self._error is not None:
            raise self._error
        return self

    def stop(self, timeout=10.0):
        if self._thread is None:
            return
        self.server.request_stop()
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, _exc_type, _exc, _tb):
        self.stop()
        return False
