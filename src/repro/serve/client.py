"""Thin HTTP client for the ``repro serve`` daemon.

Stdlib-only (:mod:`http.client`), one connection per request to match
the daemon's ``Connection: close`` discipline.  The client performs a
lazy one-time *schema handshake*: before the first simulation request
it fetches ``GET /version`` and compares the daemon's ``serve`` schema
version against its own; a mismatch raises
:class:`SchemaMismatchError` instead of mis-parsing responses.  Every
subsequent request also carries the ``X-Repro-Serve-Schema`` header so
the daemon can reject stale clients symmetrically (HTTP 409).

Transport failures (daemon not running, connection refused, timeouts)
surface as :class:`ClientError` — a one-line, traceback-free message
the CLI maps to exit 2.
"""

import http.client
import json
import os
import urllib.parse


class ClientError(RuntimeError):
    """Transport or protocol failure talking to the daemon."""


class SchemaMismatchError(ClientError):
    """The daemon speaks a different serve schema version."""


def default_url():
    """The daemon URL: ``$REPRO_SERVE_URL`` or the loopback default."""
    from repro.serve import DEFAULT_PORT, SERVE_URL_ENV

    return os.environ.get(SERVE_URL_ENV) or "http://127.0.0.1:{}".format(
        DEFAULT_PORT
    )


class ServeClient:
    """Talk to one daemon at ``base_url`` (default: :func:`default_url`)."""

    def __init__(self, base_url=None, timeout=120.0):
        parsed = urllib.parse.urlsplit(base_url or default_url())
        if parsed.scheme not in ("http", ""):
            raise ClientError(
                "unsupported URL scheme {!r} (http only)".format(
                    parsed.scheme
                )
            )
        self.host = parsed.hostname or "127.0.0.1"
        from repro.serve import DEFAULT_PORT

        self.port = parsed.port or DEFAULT_PORT
        self.timeout = timeout
        self._handshaken = False

    @property
    def base_url(self):
        return "http://{}:{}".format(self.host, self.port)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(self, method, path, body=None, raw=False):
        from repro.serve import SERVE_SCHEMA_VERSION

        headers = {
            "X-Repro-Serve-Schema": str(SERVE_SCHEMA_VERSION),
            "Accept": "application/json",
        }
        payload = None
        if body is not None:
            payload = json.dumps(body, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
        except (ConnectionError, OSError) as exc:
            raise ClientError(
                "cannot reach repro serve at {}: {}".format(
                    self.base_url, exc
                )
            ) from None
        finally:
            connection.close()
        if raw:
            if response.status != 200:
                raise ClientError(
                    "{} {} failed: HTTP {}".format(
                        method, path, response.status
                    )
                )
            return data.decode("utf-8")
        try:
            decoded = json.loads(data.decode("utf-8")) if data else None
        except (UnicodeDecodeError, ValueError):
            raise ClientError(
                "{} {} returned non-JSON body (HTTP {})".format(
                    method, path, response.status
                )
            ) from None
        if response.status != 200:
            message = None
            if isinstance(decoded, dict):
                message = decoded.get("error")
            if response.status == 409:
                raise SchemaMismatchError(
                    message or "serve schema mismatch"
                )
            raise ClientError(
                message
                or "{} {} failed: HTTP {}".format(
                    method, path, response.status
                )
            )
        return decoded

    def _handshake(self):
        """Verify the daemon's serve schema once per client instance."""
        if self._handshaken:
            return
        from repro.serve import SERVE_SCHEMA_VERSION

        info = self.version()
        remote = info.get("serve_schema_version") or (
            info.get("schemas") or {}
        ).get("serve")
        if remote != SERVE_SCHEMA_VERSION:
            raise SchemaMismatchError(
                "serve schema mismatch: daemon at {} speaks v{}, this "
                "client speaks v{}".format(
                    self.base_url, remote, SERVE_SCHEMA_VERSION
                )
            )
        self._handshaken = True

    def _simulate(self, endpoint, params):
        self._handshake()
        return self._request("POST", "/v1/{}".format(endpoint), body=params)

    # ------------------------------------------------------------------
    # observability surfaces
    # ------------------------------------------------------------------
    def health(self):
        return self._request("GET", "/healthz")

    def statusz(self):
        return self._request("GET", "/statusz")

    def version(self):
        return self._request("GET", "/version")

    def metrics(self):
        """The raw Prometheus exposition text."""
        return self._request("GET", "/metrics", raw=True)

    def workloads(self):
        return self._request("GET", "/workloads")

    def shutdown(self):
        return self._request("POST", "/v1/shutdown")

    # ------------------------------------------------------------------
    # simulation endpoints
    # ------------------------------------------------------------------
    def run(self, workload, model=None, engine=None, journal=False,
            tb_records=False):
        params = {"workload": workload}
        if model is not None:
            params["model"] = model
        if engine is not None:
            params["engine"] = engine
        if journal:
            params["journal"] = True
        if tb_records:
            params["tb_records"] = True
        return self._simulate("run", params)

    def compare(self, workload):
        return self._simulate("compare", {"workload": workload})

    def critpath(self, workload, model=None, whatif=False):
        params = {"workload": workload}
        if model is not None:
            params["model"] = model
        if whatif:
            params["whatif"] = True
        return self._simulate("critpath", params)

    def telemetry(self, workload, model=None):
        params = {"workload": workload}
        if model is not None:
            params["model"] = model
        return self._simulate("telemetry", params)

    def bench(self, quick=True, models=None, filter_globs=None,
              repeats=None, warmup=None):
        params = {"quick": quick}
        if models is not None:
            params["models"] = list(models)
        if filter_globs is not None:
            params["filter"] = list(filter_globs)
        if repeats is not None:
            params["repeats"] = repeats
        if warmup is not None:
            params["warmup"] = warmup
        return self._simulate("bench", params)

    # ------------------------------------------------------------------
    # event stream
    # ------------------------------------------------------------------
    def events(self, max_events=None, timeout=None):
        """Yield parsed SSE events from ``GET /events`` as dicts.

        Stops after ``max_events`` events (``None`` = until the stream
        closes).  ``timeout`` overrides the client timeout for this
        stream (heartbeats arrive every couple of seconds, so a small
        timeout still sees traffic on an idle daemon).
        """
        from repro.serve import SERVE_SCHEMA_VERSION

        connection = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout,
        )
        try:
            connection.request(
                "GET", "/events",
                headers={
                    "X-Repro-Serve-Schema": str(SERVE_SCHEMA_VERSION),
                    "Accept": "text/event-stream",
                },
            )
            response = connection.getresponse()
            if response.status != 200:
                raise ClientError(
                    "GET /events failed: HTTP {}".format(response.status)
                )
            seen = 0
            data_lines = []
            while max_events is None or seen < max_events:
                line = response.readline()
                if not line:
                    break
                text = line.decode("utf-8").rstrip("\n")
                if text.startswith("data:"):
                    data_lines.append(text[len("data:"):].strip())
                elif text == "" and data_lines:
                    try:
                        event = json.loads("\n".join(data_lines))
                    except ValueError:
                        event = {"kind": "raw", "data": data_lines[:]}
                    data_lines = []
                    seen += 1
                    yield event
        except (ConnectionError, OSError) as exc:
            raise ClientError(
                "cannot reach repro serve at {}: {}".format(
                    self.base_url, exc
                )
            ) from None
        finally:
            connection.close()
