"""Content-addressed request keys, response cache, and coalescing.

The daemon treats every simulation request as a pure function of its
canonicalized parameters.  :func:`request_key` is the content address
(PR 3's sha256 scheme, extended with the endpoint name and the serve
schema version so a schema bump can never alias old responses).

Two layers sit on top of the key:

* :class:`ResponseCache` — a bounded LRU of completed response
  payloads.  A warm daemon answers a repeated request without touching
  the simulator at all.
* :class:`Coalescer` — in-flight request folding.  The first request
  for a key becomes the *leader* and runs the (blocking) computation in
  the event loop's executor; any request for the same key that arrives
  while the leader is running becomes a *follower* and awaits the
  leader's future.  N concurrent identical requests therefore perform
  exactly one simulation — the property ``repro bench serve`` and the
  integration suite verify through the ``serve.coalesce.*`` counters.
"""

import asyncio
import hashlib
import json
from collections import OrderedDict

from repro.obs import resolve_metrics


def canonical_params(params):
    """Canonical JSON text for a parameter mapping (sorted, compact)."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def request_key(endpoint, params):
    """Content address of one request: ``sha256:<hex>``.

    Key = sha256 over (serve schema version, endpoint, canonical
    params).  Any difference in any component yields a different key;
    identical requests always yield the same key, across processes and
    replicas — which is what makes responses cacheable and shardable.
    """
    from repro.serve import SERVE_SCHEMA_VERSION

    canon = json.dumps(
        {
            "endpoint": endpoint,
            "params": params,
            "serve_schema": SERVE_SCHEMA_VERSION,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return "sha256:" + hashlib.sha256(canon.encode("utf-8")).hexdigest()


class ResponseCache:
    """Bounded LRU of completed response payloads, keyed by request key."""

    def __init__(self, capacity=1024, metrics=None):
        self.capacity = max(0, int(capacity))
        self.metrics = resolve_metrics(metrics)
        self._entries = OrderedDict()

    def __len__(self):
        return len(self._entries)

    def get(self, key):
        entry = self._entries.get(key)
        if entry is None:
            self.metrics.inc("serve.cache.misses")
            return None
        self._entries.move_to_end(key)
        self.metrics.inc("serve.cache.hits")
        return entry

    def put(self, key, payload):
        if self.capacity <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = payload
        self.metrics.inc("serve.cache.stores")
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.metrics.inc("serve.cache.evictions")

    def clear(self):
        self._entries.clear()


class Coalescer:
    """Fold concurrent identical requests into one computation."""

    def __init__(self, metrics=None):
        self.metrics = resolve_metrics(metrics)
        self._inflight = {}

    @property
    def inflight(self):
        """Number of keys currently being computed."""
        return len(self._inflight)

    async def fetch(self, key, compute, executor=None):
        """Return ``(payload, source)`` for ``key``.

        ``compute`` is a zero-argument blocking callable; it runs in
        ``executor`` (the loop default when ``None``).  ``source`` is
        ``"simulated"`` for the leader and ``"coalesced"`` for
        followers.  A leader failure propagates to every follower.
        """
        loop = asyncio.get_running_loop()
        existing = self._inflight.get(key)
        if existing is not None:
            self.metrics.inc("serve.coalesce.followers")
            # shield: a cancelled follower must not cancel the leader
            payload = await asyncio.shield(existing)
            return payload, "coalesced"
        future = loop.create_future()
        self._inflight[key] = future
        self.metrics.inc("serve.coalesce.leaders")
        try:
            payload = await loop.run_in_executor(executor, compute)
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # mark retrieved so a follower-less failure does not
                # warn "exception was never retrieved"
                future.exception()
            self._inflight.pop(key, None)
            raise
        else:
            if not future.done():
                future.set_result(payload)
            self._inflight.pop(key, None)
            return payload, "simulated"
