"""Mini-PTX intermediate representation.

This package implements a self-contained subset of NVIDIA's PTX virtual
ISA — enough to express the global-memory access behaviour of the
multi-kernel GPU benchmarks evaluated in the BlockMaestro paper.  All
workload kernels in :mod:`repro.workloads` are written in this IR, so the
kernel-launch-time static analysis (:mod:`repro.analysis`) operates on
real instruction streams rather than hand-fed access summaries.

Public surface:

* :class:`~repro.ptx.isa.Instruction`, operand classes and opcode tables.
* :class:`~repro.ptx.module.Kernel` / :class:`~repro.ptx.module.Module`.
* :func:`~repro.ptx.parser.parse_module` — text to :class:`Module`.
* :class:`~repro.ptx.builder.KernelBuilder` — programmatic construction.
"""

from repro.ptx.errors import PTXError, PTXParseError, PTXValidationError
from repro.ptx.isa import (
    Immediate,
    Instruction,
    Label,
    MemOperand,
    Opcode,
    ParamRef,
    Register,
    SpecialRegister,
)
from repro.ptx.module import Kernel, KernelParam, Module
from repro.ptx.parser import parse_kernel, parse_module
from repro.ptx.builder import KernelBuilder

__all__ = [
    "PTXError",
    "PTXParseError",
    "PTXValidationError",
    "Immediate",
    "Instruction",
    "Label",
    "MemOperand",
    "Opcode",
    "ParamRef",
    "Register",
    "SpecialRegister",
    "Kernel",
    "KernelParam",
    "Module",
    "parse_kernel",
    "parse_module",
    "KernelBuilder",
]
