"""Programmatic construction of mini-PTX kernels.

:class:`KernelBuilder` offers a thin fluent layer over the IR for tests
and workload generators that prefer building :class:`Kernel` objects
directly over emitting source text.  It hands out fresh registers,
tracks labels, and provides helpers for the ubiquitous global-thread-
index / address-computation idioms.
"""

import itertools

from repro.ptx.errors import PTXValidationError
from repro.ptx.isa import (
    Immediate,
    Instruction,
    Label,
    MemOperand,
    Opcode,
    ParamRef,
    Register,
    SpecialRegister,
)
from repro.ptx.module import Kernel, KernelParam


class KernelBuilder:
    """Incrementally build a :class:`Kernel`.

    Example::

        b = KernelBuilder("scale")
        a = b.pointer_param("A")
        out = b.pointer_param("B")
        i = b.global_thread_index()
        v = b.load_global_f32(a, index=i, elem_size=4)
        b.store_global_f32(out, v, index=i, elem_size=4)
        kernel = b.build()
    """

    def __init__(self, name):
        self._name = name
        self._params = []
        self._instructions = []
        self._labels = {}
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------
    def pointer_param(self, name):
        """Declare a ``.u64`` pointer parameter and return a register
        holding its loaded value."""
        self._params.append(KernelParam(name, "u64", is_pointer=True))
        reg = self.fresh("rd")
        self.emit(
            Opcode.LD_PARAM,
            dtype="u64",
            dsts=(reg,),
            srcs=(MemOperand(ParamRef(name)),),
        )
        return reg

    def scalar_param(self, name, dtype="u32"):
        """Declare a scalar parameter and return a register with its value."""
        self._params.append(KernelParam(name, dtype))
        reg = self.fresh("r" if dtype.endswith("32") else "rd")
        self.emit(
            Opcode.LD_PARAM,
            dtype=dtype,
            dsts=(reg,),
            srcs=(MemOperand(ParamRef(name)),),
        )
        return reg

    def fresh(self, prefix="r"):
        """Return a new unique virtual register."""
        return Register("{}{}".format(prefix, next(self._counter)))

    def label(self, name):
        """Place a label at the current position."""
        if name in self._labels:
            raise PTXValidationError("duplicate label %r" % name)
        self._labels[name] = len(self._instructions)
        return Label(name)

    # ------------------------------------------------------------------
    # raw emission
    # ------------------------------------------------------------------
    def emit(self, opcode, dtype=None, dsts=(), srcs=(), **kwargs):
        inst = Instruction(
            opcode=opcode, dtype=dtype, dsts=tuple(dsts), srcs=tuple(srcs), **kwargs
        )
        self._instructions.append(inst)
        return inst

    # ------------------------------------------------------------------
    # common idioms
    # ------------------------------------------------------------------
    def special(self, family, dim="x", dtype="u32"):
        """``mov`` a special register into a fresh register."""
        reg = self.fresh()
        self.emit(
            Opcode.MOV, dtype=dtype, dsts=(reg,), srcs=(SpecialRegister(family, dim),)
        )
        return reg

    def global_thread_index(self, dim="x"):
        """Compute ``ctaid * ntid + tid`` — the canonical flat index."""
        ctaid = self.special("ctaid", dim)
        reg = self.fresh()
        self.emit(
            Opcode.MAD_LO,
            dtype="u32",
            dsts=(reg,),
            srcs=(ctaid, SpecialRegister("ntid", dim), SpecialRegister("tid", dim)),
        )
        return reg

    def iadd(self, a, b, dtype="u32"):
        reg = self.fresh("rd" if dtype.endswith("64") else "r")
        self.emit(Opcode.ADD, dtype=dtype, dsts=(reg,), srcs=(_op(a), _op(b)))
        return reg

    def imul(self, a, b, dtype="u32"):
        reg = self.fresh("rd" if dtype.endswith("64") else "r")
        self.emit(Opcode.MUL_LO, dtype=dtype, dsts=(reg,), srcs=(_op(a), _op(b)))
        return reg

    def imad(self, a, b, c, dtype="u32"):
        reg = self.fresh("rd" if dtype.endswith("64") else "r")
        self.emit(
            Opcode.MAD_LO, dtype=dtype, dsts=(reg,), srcs=(_op(a), _op(b), _op(c))
        )
        return reg

    def byte_address(self, base_reg, index, elem_size):
        """Compute ``base + index * elem_size`` as a 64-bit address."""
        wide = self.fresh("rd")
        self.emit(
            Opcode.MUL_WIDE,
            dtype="u32",
            dsts=(wide,),
            srcs=(_op(index), Immediate(elem_size)),
        )
        addr = self.fresh("rd")
        self.emit(Opcode.ADD, dtype="u64", dsts=(addr,), srcs=(base_reg, wide))
        return addr

    def load_global_f32(self, base_reg, index, elem_size=4, offset=0):
        addr = self.byte_address(base_reg, index, elem_size)
        val = self.fresh("f")
        self.emit(
            Opcode.LD_GLOBAL,
            dtype="f32",
            dsts=(val,),
            srcs=(MemOperand(addr, offset),),
        )
        return val

    def store_global_f32(self, base_reg, value, index, elem_size=4, offset=0):
        addr = self.byte_address(base_reg, index, elem_size)
        self.emit(
            Opcode.ST_GLOBAL,
            dtype="f32",
            dsts=(MemOperand(addr, offset),),
            srcs=(value,),
        )

    def fadd(self, a, b):
        reg = self.fresh("f")
        self.emit(Opcode.ADD, dtype="f32", dsts=(reg,), srcs=(_op(a), _op(b)))
        return reg

    def fmul(self, a, b):
        reg = self.fresh("f")
        self.emit(Opcode.MUL, dtype="f32", dsts=(reg,), srcs=(_op(a), _op(b)))
        return reg

    def setp(self, compare, a, b, dtype="u32"):
        pred = self.fresh("p")
        self.emit(
            Opcode.SETP,
            dtype=dtype,
            dsts=(pred,),
            srcs=(_op(a), _op(b)),
            compare=compare,
        )
        return pred

    def branch(self, label_name, guard=None, negated=False):
        self.emit(
            Opcode.BRA,
            srcs=(Label(label_name),),
            guard=guard,
            guard_negated=negated,
        )

    def barrier(self):
        self.emit(Opcode.BAR_SYNC, srcs=(Immediate(0),))

    def ret(self):
        self.emit(Opcode.RET)

    # ------------------------------------------------------------------
    def build(self):
        """Finalize, validate and return the kernel."""
        instructions = list(self._instructions)
        if not instructions or not instructions[-1].is_terminator:
            instructions.append(Instruction(opcode=Opcode.RET))
        kernel = Kernel(
            name=self._name,
            params=list(self._params),
            instructions=instructions,
            labels=dict(self._labels),
        )
        return kernel.validate()


def _op(value):
    """Coerce ints/floats to immediates; pass operands through."""
    if isinstance(value, (int, float)):
        return Immediate(value)
    return value
