"""Exception hierarchy for the mini-PTX frontend."""


class PTXError(Exception):
    """Base class for all PTX-related errors."""


class PTXParseError(PTXError):
    """Raised when PTX source text cannot be parsed.

    Carries the 1-based source line number when available so that
    workload authors can locate the offending instruction.
    """

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = "line {}: {}".format(line, message)
        super().__init__(message)


class PTXValidationError(PTXError):
    """Raised when a structurally valid kernel violates an ISA rule.

    Examples: a store with no source operand, a branch to an undefined
    label, or a reference to an undeclared kernel parameter.
    """
