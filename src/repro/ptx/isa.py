"""Instruction set definition for the mini-PTX IR.

The subset covers everything needed to express affine global-memory
indexing (the input to BlockMaestro's value-range analysis, paper
Section III-B) plus enough arithmetic/control flow to write realistic
kernels: special-register reads, integer/float ALU ops, parameter loads,
global/shared memory accesses, predicated branches and barriers.
"""

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple, Union


class Opcode(str, Enum):
    """Base opcodes of the mini-PTX ISA (type suffixes stripped)."""

    MOV = "mov"
    LD_PARAM = "ld.param"
    LD_GLOBAL = "ld.global"
    ST_GLOBAL = "st.global"
    LD_SHARED = "ld.shared"
    ST_SHARED = "st.shared"
    ADD = "add"
    SUB = "sub"
    MUL_LO = "mul.lo"
    MUL_WIDE = "mul.wide"
    MUL = "mul"
    MAD_LO = "mad.lo"
    MAD_WIDE = "mad.wide"
    MAD = "mad"
    FMA = "fma"
    DIV = "div"
    REM = "rem"
    NEG = "neg"
    ABS = "abs"
    MIN = "min"
    MAX = "max"
    SHL = "shl"
    SHR = "shr"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    CVT = "cvt"
    CVTA = "cvta"
    SETP = "setp"
    SELP = "selp"
    BRA = "bra"
    BAR_SYNC = "bar.sync"
    SQRT = "sqrt"
    RSQRT = "rsqrt"
    EX2 = "ex2"
    LG2 = "lg2"
    RCP = "rcp"
    ATOM_ADD = "atom.global.add"
    RET = "ret"
    EXIT = "exit"

    def __str__(self):
        return self.value


#: Opcodes whose destination is a register written by the instruction.
REGISTER_WRITING_OPCODES = frozenset(
    op
    for op in Opcode
    if op
    not in (
        Opcode.ST_GLOBAL,
        Opcode.ST_SHARED,
        Opcode.BRA,
        Opcode.BAR_SYNC,
        Opcode.RET,
        Opcode.EXIT,
    )
)

#: Opcodes that access global memory through an address operand.
GLOBAL_MEMORY_OPCODES = frozenset(
    (Opcode.LD_GLOBAL, Opcode.ST_GLOBAL, Opcode.ATOM_ADD)
)

#: Opcodes that terminate or redirect control flow.
CONTROL_FLOW_OPCODES = frozenset((Opcode.BRA, Opcode.RET, Opcode.EXIT))

#: Recognised scalar types, mapping to their width in bytes.
TYPE_WIDTHS = {
    "pred": 1,
    "b8": 1,
    "s8": 1,
    "u8": 1,
    "b16": 2,
    "s16": 2,
    "u16": 2,
    "f16": 2,
    "b32": 4,
    "s32": 4,
    "u32": 4,
    "f32": 4,
    "b64": 8,
    "s64": 8,
    "u64": 8,
    "f64": 8,
}

#: Valid comparison predicates for ``setp``.
COMPARISONS = frozenset(
    ("eq", "ne", "lt", "le", "gt", "ge", "lo", "ls", "hi", "hs")
)

#: Special register families and the dimensions they expose.
SPECIAL_REGISTER_FAMILIES = {
    "tid": ("x", "y", "z"),
    "ntid": ("x", "y", "z"),
    "ctaid": ("x", "y", "z"),
    "nctaid": ("x", "y", "z"),
    "laneid": (None,),
    "warpid": (None,),
}


def type_width(dtype):
    """Return the byte width of a PTX scalar type name.

    Raises :class:`KeyError` for unknown type names so that typos in
    kernel sources fail loudly during parsing.
    """
    return TYPE_WIDTHS[dtype]


@dataclass(frozen=True)
class Register:
    """A virtual register such as ``%r4`` or ``%rd12``."""

    name: str

    def __str__(self):
        return "%" + self.name


@dataclass(frozen=True)
class SpecialRegister:
    """A read-only special register such as ``%tid.x`` or ``%ctaid.y``."""

    family: str
    dim: Optional[str] = None

    def __post_init__(self):
        if self.family not in SPECIAL_REGISTER_FAMILIES:
            raise ValueError("unknown special register family: %s" % self.family)
        dims = SPECIAL_REGISTER_FAMILIES[self.family]
        if self.dim not in dims:
            raise ValueError(
                "special register %%%s has no dimension %r" % (self.family, self.dim)
            )

    def __str__(self):
        if self.dim is None:
            return "%" + self.family
        return "%{}.{}".format(self.family, self.dim)


@dataclass(frozen=True)
class Immediate:
    """An integer or floating-point literal operand."""

    value: Union[int, float]

    def __str__(self):
        if isinstance(self.value, float):
            return repr(self.value)
        return str(self.value)


@dataclass(frozen=True)
class ParamRef:
    """A reference to a kernel parameter by name (used in ``ld.param``)."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class Label:
    """A branch target label."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class MemOperand:
    """A memory address operand ``[base+offset]``.

    ``base`` is a :class:`Register` (for global/shared accesses) or a
    :class:`ParamRef` (for ``ld.param``).  ``offset`` is a constant byte
    displacement.
    """

    base: Union[Register, ParamRef]
    offset: int = 0

    def __str__(self):
        if self.offset:
            return "[{}{:+d}]".format(self.base, self.offset)
        return "[{}]".format(self.base)


Operand = Union[Register, SpecialRegister, Immediate, ParamRef, Label, MemOperand]


@dataclass(frozen=True)
class Instruction:
    """One mini-PTX instruction.

    Attributes:
        opcode: base opcode (type suffix removed).
        dtype: result/operand scalar type name, e.g. ``"u32"``.  ``None``
            for opcodes that carry no type (``bra``, ``bar.sync``...).
        dsts: destination operands (registers, or a :class:`MemOperand`
            for stores).
        srcs: source operands.
        guard: optional predicate register guarding execution
            (``@%p bra ...``); ``guard_negated`` flips the sense.
        compare: comparison predicate for ``setp`` (``"lt"``...).
        src_dtype: second type for ``cvt`` (source type).
        line: 1-based line number in the original source, for messages.
    """

    opcode: Opcode
    dtype: Optional[str] = None
    dsts: Tuple[Operand, ...] = field(default=())
    srcs: Tuple[Operand, ...] = field(default=())
    guard: Optional[Register] = None
    guard_negated: bool = False
    compare: Optional[str] = None
    src_dtype: Optional[str] = None
    line: Optional[int] = None

    @property
    def is_global_load(self):
        return self.opcode is Opcode.LD_GLOBAL

    @property
    def is_global_store(self):
        return self.opcode in (Opcode.ST_GLOBAL, Opcode.ATOM_ADD)

    @property
    def is_global_access(self):
        return self.opcode in GLOBAL_MEMORY_OPCODES

    @property
    def is_branch(self):
        return self.opcode is Opcode.BRA

    @property
    def is_terminator(self):
        return self.opcode in (Opcode.RET, Opcode.EXIT)

    @property
    def is_barrier(self):
        return self.opcode is Opcode.BAR_SYNC

    @property
    def writes_register(self):
        return self.opcode in REGISTER_WRITING_OPCODES and bool(self.dsts)

    def written_registers(self):
        """Registers written by this instruction (empty for stores)."""
        if not self.writes_register:
            return ()
        return tuple(d for d in self.dsts if isinstance(d, Register))

    def read_registers(self):
        """All registers read: sources, address bases and the guard."""
        regs = []
        if self.guard is not None:
            regs.append(self.guard)
        operands = list(self.srcs)
        # Stores read their address base from the *destination* slot.
        for dst in self.dsts:
            if isinstance(dst, MemOperand):
                operands.append(dst)
        for op in operands:
            if isinstance(op, Register):
                regs.append(op)
            elif isinstance(op, MemOperand) and isinstance(op.base, Register):
                regs.append(op.base)
        return tuple(regs)

    def address_operand(self):
        """Return the :class:`MemOperand` of a memory instruction.

        For loads the address lives in ``srcs``; for stores in ``dsts``.
        Returns ``None`` for non-memory instructions.
        """
        pool = self.srcs if self.opcode in (
            Opcode.LD_GLOBAL,
            Opcode.LD_SHARED,
            Opcode.LD_PARAM,
        ) else self.dsts
        for op in pool:
            if isinstance(op, MemOperand):
                return op
        return None

    @property
    def access_width(self):
        """Byte width of a memory access, derived from ``dtype``."""
        if self.dtype is None:
            return 0
        return type_width(self.dtype)

    def __str__(self):
        parts = []
        if self.guard is not None:
            parts.append("@{}{} ".format("!" if self.guard_negated else "", self.guard))
        mnemonic = str(self.opcode)
        if self.compare is not None:
            mnemonic += "." + self.compare
        if self.dtype is not None:
            mnemonic += "." + self.dtype
        if self.src_dtype is not None:
            mnemonic += "." + self.src_dtype
        parts.append(mnemonic)
        operands = list(self.dsts) + list(self.srcs)
        if operands:
            parts.append(" " + ", ".join(str(op) for op in operands))
        return "".join(parts) + ";"
