"""Text parser for the mini-PTX IR.

The accepted grammar is a practical subset of real PTX.  A module is a
sequence of kernel definitions::

    .visible .entry vecadd (.param .u64 A, .param .u64 B, .param .u32 n)
    {
        ld.param.u64 %rdA, [A];
        mov.u32 %r1, %ctaid.x;
        mad.lo.u32 %r2, %r1, %ntid.x, %tid.x;
        mul.wide.u32 %rd1, %r2, 4;
        add.u64 %rd2, %rdA, %rd1;
        ld.global.f32 %f1, [%rd2];
        setp.lt.u32 %p1, %r2, %rN;
        @%p1 bra DONE;
    DONE:
        ret;
    }

Comments (``//`` to end of line), ``.reg`` declarations and module-level
directives (``.version``, ``.target``, ``.address_size``) are accepted
and ignored.
"""

import re

from repro.ptx.errors import PTXParseError
from repro.ptx.isa import (
    COMPARISONS,
    Immediate,
    Instruction,
    Label,
    MemOperand,
    Opcode,
    ParamRef,
    Register,
    SpecialRegister,
    SPECIAL_REGISTER_FAMILIES,
    TYPE_WIDTHS,
)
from repro.ptx.module import Kernel, KernelParam, Module

# Opcode mnemonics sorted longest-first so that multi-part opcodes such
# as ``ld.param`` win over any shorter prefix.
_OPCODES_BY_LENGTH = sorted(
    ((op.value, op) for op in Opcode), key=lambda item: -len(item[0])
)

_ENTRY_RE = re.compile(
    r"^\.visible\s+\.entry\s+(?P<name>[A-Za-z_][\w$]*)\s*\((?P<params>.*)\)\s*$",
    re.DOTALL,
)
_PARAM_RE = re.compile(r"^\.param\s+\.(?P<type>\w+)\s+(?P<name>[A-Za-z_][\w$]*)$")
_LABEL_RE = re.compile(r"^(?P<label>[A-Za-z_$][\w$]*):\s*(?P<rest>.*)$")
_GUARD_RE = re.compile(r"^@(?P<neg>!?)%(?P<reg>[\w$]+)\s+(?P<rest>.*)$")
_REGISTER_RE = re.compile(r"^%(?P<name>[A-Za-z_$][\w$]*(\.[xyz])?)$")
_MEM_RE = re.compile(
    r"^\[\s*(?P<base>%?[A-Za-z_$][\w$]*)\s*(?P<off>[+-]\s*\d+)?\s*\]$"
)
_INT_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*([eE][+-]?\d+)?|\d+[eE][+-]?\d+|\.\d+)$")

#: Modifier tokens silently dropped from mnemonics (rounding modes etc.).
_IGNORED_MODIFIERS = frozenset(
    ("rn", "rz", "rm", "rp", "ftz", "sat", "approx", "full", "uni", "to", "global")
)


def _strip_comments(text):
    return re.sub(r"//[^\n]*", "", text)


def _split_statements(body, first_line):
    """Split a kernel body into ``(line_number, statement)`` pairs.

    Statements are separated by ``;``; labels (``NAME:``) may share a
    line with the following instruction and are emitted as their own
    pseudo-statements ending in ``:``.
    """
    statements = []
    line = first_line
    buf = []
    buf_line = line
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\n":
            line += 1
            stripped = "".join(buf).strip()
            # A label may appear alone on a line with no semicolon.
            if stripped.endswith(":") and _LABEL_RE.match(stripped):
                statements.append((buf_line, stripped))
                buf = []
                buf_line = line
            elif not stripped:
                buf = []
                buf_line = line
            else:
                buf.append(ch)
            i += 1
            continue
        if ch == ";":
            stmt = "".join(buf).strip()
            if stmt:
                statements.append((buf_line, stmt))
            buf = []
            buf_line = line
            i += 1
            continue
        buf.append(ch)
        i += 1
    tail = "".join(buf).strip()
    if tail:
        if tail.endswith(":") and _LABEL_RE.match(tail):
            statements.append((buf_line, tail))
        else:
            raise PTXParseError("missing ';' after %r" % tail, line=buf_line)
    return statements


def _parse_operand(token, line):
    token = token.strip()
    if not token:
        raise PTXParseError("empty operand", line=line)
    if token.startswith("["):
        m = _MEM_RE.match(token)
        if m is None:
            raise PTXParseError("bad memory operand %r" % token, line=line)
        base_token = m.group("base")
        if base_token.startswith("%"):
            base = Register(base_token[1:])
        else:
            base = ParamRef(base_token)
        off_token = m.group("off")
        offset = int(off_token.replace(" ", "")) if off_token else 0
        return MemOperand(base, offset)
    if token.startswith("%"):
        name = token[1:]
        head, _, dim = name.partition(".")
        if head in SPECIAL_REGISTER_FAMILIES:
            return SpecialRegister(head, dim or None)
        m = _REGISTER_RE.match(token)
        if m is None:
            raise PTXParseError("bad register %r" % token, line=line)
        return Register(name)
    if _INT_RE.match(token):
        return Immediate(int(token, 0))
    if _FLOAT_RE.match(token):
        return Immediate(float(token))
    if re.match(r"^[A-Za-z_$][\w$]*$", token):
        # Bare identifier: a label target (for bra) or a parameter name.
        return Label(token)
    raise PTXParseError("unrecognised operand %r" % token, line=line)


def _split_mnemonic(mnemonic, line):
    """Decompose a dotted mnemonic into opcode, compare, dtype, src_dtype."""
    for text, opcode in _OPCODES_BY_LENGTH:
        if mnemonic == text or mnemonic.startswith(text + "."):
            rest = mnemonic[len(text):].lstrip(".")
            parts = [p for p in rest.split(".") if p] if rest else []
            compare = None
            dtypes = []
            for part in parts:
                if part in COMPARISONS and opcode in (Opcode.SETP, Opcode.SELP):
                    compare = part
                elif part in TYPE_WIDTHS:
                    dtypes.append(part)
                elif part in _IGNORED_MODIFIERS:
                    continue
                else:
                    raise PTXParseError(
                        "unknown modifier %r in %r" % (part, mnemonic), line=line
                    )
            dtype = dtypes[0] if dtypes else None
            src_dtype = dtypes[1] if len(dtypes) > 1 else None
            if opcode is Opcode.SETP and compare is None:
                raise PTXParseError(
                    "setp requires a comparison modifier: %r" % mnemonic, line=line
                )
            return opcode, compare, dtype, src_dtype
    raise PTXParseError("unknown opcode in %r" % mnemonic, line=line)


def _split_operands(text):
    """Split an operand list on commas that are outside brackets."""
    tokens = []
    depth = 0
    buf = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            tokens.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
    tail = "".join(buf).strip()
    if tail:
        tokens.append(tail)
    return [t.strip() for t in tokens if t.strip()]


def _assemble(opcode, compare, dtype, src_dtype, operands, guard, negated, line):
    """Assign parsed operands to dst/src slots according to the opcode."""
    if opcode in (Opcode.ST_GLOBAL, Opcode.ST_SHARED):
        if len(operands) != 2:
            raise PTXParseError("store expects 2 operands", line=line)
        dsts, srcs = (operands[0],), (operands[1],)
    elif opcode is Opcode.ATOM_ADD:
        if len(operands) == 2:
            dsts, srcs = (operands[0],), (operands[1],)
        elif len(operands) == 3:
            dsts, srcs = (operands[0], operands[1]), (operands[2],)
        else:
            raise PTXParseError("atom.global.add expects 2 or 3 operands", line=line)
    elif opcode is Opcode.BRA:
        if len(operands) != 1 or not isinstance(operands[0], Label):
            raise PTXParseError("bra expects one label", line=line)
        dsts, srcs = (), (operands[0],)
    elif opcode in (Opcode.BAR_SYNC,):
        dsts, srcs = (), tuple(operands)
    elif opcode in (Opcode.RET, Opcode.EXIT):
        if operands:
            raise PTXParseError("%s takes no operands" % opcode, line=line)
        dsts, srcs = (), ()
    else:
        if not operands:
            raise PTXParseError("%s needs operands" % opcode, line=line)
        dsts, srcs = (operands[0],), tuple(operands[1:])
    return Instruction(
        opcode=opcode,
        dtype=dtype,
        dsts=dsts,
        srcs=srcs,
        guard=guard,
        guard_negated=negated,
        compare=compare,
        src_dtype=src_dtype,
        line=line,
    )


def parse_instruction(text, line=None):
    """Parse a single instruction statement (without trailing ``;``)."""
    text = text.strip()
    guard = None
    negated = False
    m = _GUARD_RE.match(text)
    if m is not None:
        guard = Register(m.group("reg"))
        negated = bool(m.group("neg"))
        text = m.group("rest").strip()
    parts = text.split(None, 1)
    mnemonic = parts[0]
    operand_text = parts[1] if len(parts) > 1 else ""
    opcode, compare, dtype, src_dtype = _split_mnemonic(mnemonic, line)
    operands = [_parse_operand(tok, line) for tok in _split_operands(operand_text)]
    return _assemble(opcode, compare, dtype, src_dtype, operands, guard, negated, line)


def _parse_params(text, line):
    params = []
    for chunk in _split_operands(text):
        m = _PARAM_RE.match(chunk.strip())
        if m is None:
            raise PTXParseError("bad parameter declaration %r" % chunk, line=line)
        dtype = m.group("type")
        if dtype not in TYPE_WIDTHS:
            raise PTXParseError("unknown parameter type %r" % dtype, line=line)
        params.append(
            KernelParam(m.group("name"), dtype, is_pointer=(dtype == "u64"))
        )
    return params


def parse_kernel(text):
    """Parse a single kernel definition; convenience over ``parse_module``."""
    module = parse_module(text)
    if len(module) != 1:
        raise PTXParseError("expected exactly one kernel, found %d" % len(module))
    return module.kernels[0]


def parse_module(text):
    """Parse mini-PTX source text into a :class:`Module`.

    Every kernel is validated (:meth:`Kernel.validate`) before return,
    so a successfully parsed module is structurally sound.
    """
    text = _strip_comments(text)
    kernels = []
    pos = 0
    line = 1
    while True:
        entry = text.find(".entry", pos)
        if entry < 0:
            break
        header_start = text.rfind(".visible", pos, entry)
        if header_start < 0:
            raise PTXParseError(
                ".entry without .visible", line=line + text.count("\n", 0, entry)
            )
        brace = text.find("{", entry)
        if brace < 0:
            raise PTXParseError("kernel body missing '{'")
        header = text[header_start:brace].strip()
        header_line = 1 + text.count("\n", 0, header_start)
        m = _ENTRY_RE.match(" ".join(header.split()))
        if m is None:
            raise PTXParseError("bad kernel header %r" % header, line=header_line)
        close = _matching_brace(text, brace)
        body = text[brace + 1 : close]
        body_line = 1 + text.count("\n", 0, brace + 1)
        kernel = Kernel(
            name=m.group("name"),
            params=_parse_params(m.group("params"), header_line),
        )
        _parse_body(kernel, body, body_line)
        kernel.validate()
        kernels.append(kernel)
        pos = close + 1
    if not kernels:
        raise PTXParseError("no kernels found in module source")
    return Module(kernels)


def _matching_brace(text, open_index):
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    raise PTXParseError("unbalanced braces in kernel body")


def _parse_body(kernel, body, first_line):
    for line_no, stmt in _split_statements(body, first_line):
        if stmt.startswith(".reg") or stmt.startswith(".shared"):
            continue  # declarations carry no semantics for the analysis
        label_match = _LABEL_RE.match(stmt)
        if label_match is not None:
            label = label_match.group("label")
            if label in kernel.labels:
                raise PTXParseError("duplicate label %r" % label, line=line_no)
            kernel.labels[label] = len(kernel.instructions)
            rest = label_match.group("rest").strip()
            if rest:
                kernel.instructions.append(parse_instruction(rest, line_no))
            continue
        kernel.instructions.append(parse_instruction(stmt, line_no))
