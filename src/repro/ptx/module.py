"""Kernel and module containers for the mini-PTX IR."""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ptx.errors import PTXValidationError
from repro.ptx.isa import (
    CONTROL_FLOW_OPCODES,
    Instruction,
    Label,
    MemOperand,
    Opcode,
    ParamRef,
    type_width,
)


@dataclass(frozen=True)
class KernelParam:
    """A kernel parameter declaration (``.param .u64 A``).

    Pointer parameters (``.u64`` by convention, or any parameter marked
    ``is_pointer``) are the handles through which kernels reach global
    memory; they are what the dependency analysis keys its read/write
    sets on.
    """

    name: str
    dtype: str
    is_pointer: bool = False

    @property
    def width(self):
        return type_width(self.dtype)

    def __str__(self):
        return ".param .{} {}".format(self.dtype, self.name)


@dataclass(eq=False)
class Kernel:
    """A parsed mini-PTX kernel: parameters plus an instruction list.

    Kernels compare and hash by identity: a kernel object is registered
    once per application and reused across launches, which also lets
    per-kernel static analyses be cached by identity.

    ``labels`` maps label names to the index of the instruction they
    precede; an index equal to ``len(instructions)`` denotes a label at
    the very end of the body.
    """

    name: str
    params: List[KernelParam] = field(default_factory=list)
    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)

    def param(self, name):
        """Look up a parameter by name, raising ``KeyError`` if absent."""
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError("kernel {} has no parameter {!r}".format(self.name, name))

    @property
    def param_names(self):
        return [p.name for p in self.params]

    @property
    def pointer_params(self):
        return [p for p in self.params if p.is_pointer]

    def global_accesses(self):
        """Yield ``(index, instruction)`` for each global load/store."""
        for i, inst in enumerate(self.instructions):
            if inst.is_global_access:
                yield i, inst

    def instruction_mix(self):
        """Count instructions by coarse class, for the timing cost model.

        Returns a dict with keys ``alu``, ``mem_global``, ``mem_shared``,
        ``mem_param``, ``control``, ``barrier`` and ``total``.  The counts
        are static (per appearance in the body, not per dynamic
        execution); :mod:`repro.sim.cost` scales them by estimated trip
        counts where loops are present.
        """
        mix = {
            "alu": 0,
            "mem_global": 0,
            "mem_shared": 0,
            "mem_param": 0,
            "control": 0,
            "barrier": 0,
        }
        for inst in self.instructions:
            if inst.is_global_access:
                mix["mem_global"] += 1
            elif inst.opcode in (Opcode.LD_SHARED, Opcode.ST_SHARED):
                mix["mem_shared"] += 1
            elif inst.opcode is Opcode.LD_PARAM:
                mix["mem_param"] += 1
            elif inst.opcode in CONTROL_FLOW_OPCODES:
                mix["control"] += 1
            elif inst.is_barrier:
                mix["barrier"] += 1
            else:
                mix["alu"] += 1
        mix["total"] = sum(mix.values())
        return mix

    def validate(self):
        """Check structural ISA rules; raise ``PTXValidationError``.

        Rules enforced:
        * every branch targets a declared label;
        * every ``ld.param`` names a declared parameter;
        * stores carry exactly one source value and a memory destination;
        * memory instructions have an address operand.
        """
        for inst in self.instructions:
            if inst.is_branch:
                targets = [op for op in inst.srcs if isinstance(op, Label)]
                if len(targets) != 1:
                    raise PTXValidationError(
                        "{}: bra needs exactly one label target: {}".format(
                            self.name, inst
                        )
                    )
                if targets[0].name not in self.labels:
                    raise PTXValidationError(
                        "{}: branch to undefined label {!r}".format(
                            self.name, targets[0].name
                        )
                    )
            if inst.opcode is Opcode.LD_PARAM:
                addr = inst.address_operand()
                if addr is None or not isinstance(addr.base, ParamRef):
                    raise PTXValidationError(
                        "{}: ld.param must address a parameter: {}".format(
                            self.name, inst
                        )
                    )
                self.param(addr.base.name)  # KeyError -> below
            if inst.opcode in (Opcode.ST_GLOBAL, Opcode.ST_SHARED):
                if len(inst.srcs) != 1:
                    raise PTXValidationError(
                        "{}: store needs one source operand: {}".format(
                            self.name, inst
                        )
                    )
                if not any(isinstance(d, MemOperand) for d in inst.dsts):
                    raise PTXValidationError(
                        "{}: store needs a memory destination: {}".format(
                            self.name, inst
                        )
                    )
            if inst.is_global_access and inst.address_operand() is None:
                raise PTXValidationError(
                    "{}: memory access without address operand: {}".format(
                        self.name, inst
                    )
                )
        return self

    def to_text(self):
        """Render the kernel back to parseable mini-PTX source text."""
        params = ", ".join(str(p) for p in self.params)
        lines = [".visible .entry {} ({})".format(self.name, params), "{"]
        label_at = {}
        for label, idx in self.labels.items():
            label_at.setdefault(idx, []).append(label)
        for i, inst in enumerate(self.instructions):
            for label in label_at.get(i, ()):
                lines.append("{}:".format(label))
            lines.append("    " + str(inst))
        for label in label_at.get(len(self.instructions), ()):
            lines.append("{}:".format(label))
        lines.append("}")
        return "\n".join(lines)

    def __len__(self):
        return len(self.instructions)


@dataclass
class Module:
    """A compilation unit: an ordered collection of kernels."""

    kernels: List[Kernel] = field(default_factory=list)

    def kernel(self, name):
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError("module has no kernel {!r}".format(name))

    @property
    def kernel_names(self):
        return [k.name for k in self.kernels]

    def to_text(self):
        return "\n\n".join(k.to_text() for k in self.kernels)

    def __len__(self):
        return len(self.kernels)

    def __iter__(self):
        return iter(self.kernels)
