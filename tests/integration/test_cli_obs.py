"""Integration tests for the observability CLI surfaces.

Covers ``repro trace``, ``repro blame``, the ``--json`` flags on ``run``
and ``compare``, and the experiment runner's ``--out`` report directory.
"""

import json

import pytest

from repro.cli import main
from repro.experiments import runner


class TestTraceCommand:
    def test_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "mvt.json"
        main(["trace", "mvt", "--model", "blockmaestro", "-o", str(out)])
        captured = capsys.readouterr().out
        assert str(out) in captured

        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        assert events
        for event in events:
            assert "ph" in event and "ts" in event
            assert "pid" in event and "tid" in event

        names = {e["name"] for e in events}
        cats = {e.get("cat", "") for e in events}
        # plan-phase spans
        assert any(n.startswith("plan.") for n in names)
        # kernel-launch spans
        assert "kernel.launch" in cats
        # per-TB lifecycle events
        assert "tb" in cats

    def test_trace_accepts_uppercase_workload(self, tmp_path):
        out = tmp_path / "t.json"
        main(["trace", "MVT", "--model", "blockmaestro", "-o", str(out)])
        assert json.loads(out.read_text())["traceEvents"]

    def test_trace_writes_metrics_sidecar(self, tmp_path):
        out = tmp_path / "mvt.json"
        main(["trace", "mvt", "-o", str(out)])
        sidecar = tmp_path / "mvt.metrics.json"
        snapshot = json.loads(sidecar.read_text())
        assert snapshot["counters"]["plan.kernels"] >= 1
        assert snapshot["gauges"]["engine.makespan_ns"] > 0


class TestBlameCommand:
    @pytest.mark.parametrize("workload", ["mvt", "bicg", "path"])
    def test_blame_reports_kernel_phases(self, workload, capsys):
        main(["blame", workload])
        out = capsys.readouterr().out
        assert "simulated time per kernel" in out
        for phase in ("queue", "launch", "stall", "exec"):
            assert phase in out
        assert "wall clock per pipeline phase" in out

    def test_blame_limit(self, capsys):
        main(["blame", "fft", "--limit", "2"])
        out = capsys.readouterr().out
        assert "more kernels" in out


class TestJsonFlags:
    def test_run_json_to_stdout(self, capsys):
        main(["run", "path", "--model", "blockmaestro", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["model"] == "consumer3"
        assert payload["makespan_ns"] > 0
        assert payload["kernels"]

    def test_run_json_to_file(self, tmp_path, capsys):
        out = tmp_path / "run.json"
        main(["run", "path", "--json", str(out)])
        assert json.loads(out.read_text())["makespan_ns"] > 0
        # human-readable summary still printed when writing to a file
        assert "makespan" in capsys.readouterr().out

    def test_compare_json(self, capsys):
        main(["compare", "mvt", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "mvt"
        names = [run["model"] for run in payload["runs"]]
        assert "baseline" in names
        baseline = next(r for r in payload["runs"] if r["model"] == "baseline")
        assert baseline["speedup"] == pytest.approx(1.0)


class TestRunnerReports:
    def test_out_dir_writes_per_experiment_json(self, tmp_path, capsys):
        out_dir = tmp_path / "reports"
        runner.main(["tab3", "--out", str(out_dir)])
        report = json.loads((out_dir / "tab3.json").read_text())
        assert report["experiment"] == "tab3"
        assert report["rows"]
        assert report["elapsed_s"] >= 0
