"""Integration tests for the telemetry CLI surfaces.

Covers ``repro telemetry`` (text, ``--json`` schema validation,
``--prom``), ``repro report`` (the self-contained HTML flight report),
``repro trace --telemetry`` (merged counter tracks), the sized
``repro list --json`` listing, ``bench run --telemetry``, and the
create-parent-directories behavior every ``--out``-style flag shares
through the atomic writer.
"""

import json
import re

import pytest

from repro.bench.schema import load_report
from repro.cli import main
from repro.obs.telemetry import validate_telemetry_report


class TestTelemetryCommand:
    def test_text_mode(self, capsys):
        assert main(["telemetry", "mvt"]) == 0
        out = capsys.readouterr().out
        assert "occupancy" in out
        assert "overlap" in out

    def test_json_is_schema_valid(self, capsys):
        assert main(["telemetry", "mvt", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert validate_telemetry_report(report) == []
        assert report["workload"] == "mvt"
        assert report["model"] == "consumer3"

    def test_prometheus_snapshot(self, tmp_path, capsys):
        prom = tmp_path / "mvt.prom"
        assert main(["telemetry", "mvt", "--prom", str(prom)]) == 0
        text = prom.read_text()
        assert "# TYPE repro_makespan_ns gauge" in text
        assert 'workload="mvt"' in text

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["telemetry", "nope"]) == 2
        assert "error:" in capsys.readouterr().err


class TestReportCommand:
    @pytest.fixture(scope="class")
    def report_html(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("flight") / "flight.html"
        assert main(["report", "backprop", "--out", str(path)]) == 0
        return path.read_text()

    def test_contains_every_section(self, report_html):
        for heading in (
            "Telemetry timelines",
            "Kernel execution spans",
            "Critical-path attribution",
            "Achieved cross-kernel overlap",
            "Idle bubbles",
            "Journal",
        ):
            assert heading in report_html

    def test_is_self_contained(self, report_html):
        # no external assets: everything inline, viewable offline
        assert not re.search(r'src\s*=\s*"http', report_html)
        assert not re.search(r'href\s*=\s*"http', report_html)
        assert "<script src" not in report_html
        assert '<link rel="stylesheet"' not in report_html

    def test_stdout_summary(self, tmp_path, capsys):
        out = tmp_path / "r.html"
        assert main(["report", "mvt", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "self-contained HTML" in text
        assert "overlap" in text


class TestTraceTelemetry:
    def test_counter_tracks_merged(self, tmp_path):
        out = tmp_path / "trace.json"
        assert main([
            "trace", "mvt", "--telemetry", "-o", str(out),
            "--metrics-out", str(tmp_path / "m.json"),
        ]) == 0
        events = json.loads(out.read_text())["traceEvents"]
        tracks = {e["name"] for e in events if e["ph"] == "C"}
        assert "telemetry.occupancy" in tracks
        assert "telemetry.queues" in tracks
        assert "telemetry.dependency_hw" in tracks


class TestListSizes:
    def test_json_carries_kernel_and_tb_counts(self, capsys):
        assert main(["list", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert entries
        for entry in entries:
            assert entry["num_kernels"] >= 1
            assert entry["total_tbs"] >= entry["num_kernels"]
        by_name = {e["name"]: e for e in entries}
        assert by_name["mvt"]["num_kernels"] == 2


class TestBenchTelemetry:
    def test_run_embeds_validated_section(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        assert main([
            "bench", "run", "--filter", "mvt", "--models", "consumer3",
            "--repeats", "1", "--warmup", "0", "--telemetry",
            "-o", str(path),
        ]) == 0
        payload = load_report(str(path))  # raises if schema-invalid
        assert payload["schema_version"] == 2
        entry = payload["workloads"]["mvt"]["models"]["consumer3"]
        assert "pair_overlap" in entry["telemetry"]
        # self-diff must be clean: the summary is deterministic
        assert main(["bench", "diff", str(path), str(path)]) == 0


class TestOutCreatesParentDirs:
    """Every artifact writer shares the atomic helper, so a nested,
    not-yet-existing output directory must work for all of them."""

    def test_trace_output(self, tmp_path):
        out = tmp_path / "a" / "b" / "trace.json"
        assert main([
            "trace", "mvt", "-o", str(out),
            "--metrics-out", str(tmp_path / "c" / "m.json"),
        ]) == 0
        assert out.exists()
        assert (tmp_path / "c" / "m.json").exists()

    def test_blame_out(self, tmp_path):
        out = tmp_path / "deep" / "blame.txt"
        assert main(["blame", "mvt", "--out", str(out)]) == 0
        assert "simulated time per kernel" in out.read_text()

    def test_journal_out(self, tmp_path):
        out = tmp_path / "j" / "mvt.journal.jsonl"
        assert main(["journal", "mvt", "--out", str(out)]) == 0
        assert out.exists()

    def test_critpath_json(self, tmp_path):
        out = tmp_path / "cp" / "report.json"
        assert main(["critpath", "mvt", "--json", str(out)]) == 0
        assert json.loads(out.read_text())["kind"] == "repro-critpath-report"

    def test_telemetry_json_and_prom(self, tmp_path):
        out = tmp_path / "tm" / "report.json"
        prom = tmp_path / "prom" / "report.prom"
        assert main([
            "telemetry", "mvt", "--json", str(out), "--prom", str(prom),
        ]) == 0
        assert validate_telemetry_report(json.loads(out.read_text())) == []
        assert prom.exists()

    def test_flight_report_out(self, tmp_path):
        out = tmp_path / "fr" / "flight.html"
        assert main(["report", "mvt", "--out", str(out)]) == 0
        assert "<html" in out.read_text()
