"""Integration smoke tests for every experiment module.

Each paper artifact's ``run()`` executes on reduced configurations and
the output rows are checked for the paper's qualitative *shapes* (who
wins, orderings, convergence points) — the actual full-size rows are
produced by benchmarks/.
"""

import pytest

from repro.experiments import ExperimentContext, geomean
from repro.experiments import (
    fig09_speedup,
    fig10_concurrency,
    fig11_stalls,
    fig12_interconnectivity,
    fig13_memory_overhead,
    fig14_comparison,
    table1_overhead,
    table2_benchmarks,
    table3_storage,
)

FAST_BENCHMARKS = ["bicg", "hs", "path"]


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext()


class TestFig09:
    def test_rows_and_shape(self, ctx):
        rows = fig09_speedup.run(ctx, benchmarks=FAST_BENCHMARKS)
        assert [r["benchmark"] for r in rows] == FAST_BENCHMARKS + ["geomean"]
        for row in rows:
            # everything beats (or ties) the baseline
            for model in fig09_speedup.MODELS:
                assert row[model] >= 0.99
            # fine-grain >= coarse pre-launching
            assert row["producer"] >= row["prelaunch"] - 0.01

    def test_formatting(self, ctx):
        rows = fig09_speedup.run(ctx, benchmarks=FAST_BENCHMARKS)
        text = fig09_speedup.format_rows(rows)
        assert "Figure 9" in text
        assert "geomean" in text


class TestFig10:
    def test_concurrency_normalized(self, ctx):
        rows = fig10_concurrency.run(ctx, benchmarks=FAST_BENCHMARKS)
        for row in rows[:-1]:
            for model in fig10_concurrency.MODELS:
                assert row[model] >= 0.95


class TestFig11:
    def test_blockmaestro_reduces_stalls(self, ctx):
        rows = fig11_stalls.run(ctx, benchmarks=FAST_BENCHMARKS)
        by_key = {(r["benchmark"], r["model"]): r for r in rows}
        for name in FAST_BENCHMARKS:
            base = by_key[(name, "baseline")]
            bm = by_key[(name, "consumer3")]
            assert bm["median"] <= base["median"] + 1e-9
            assert base["q1"] <= base["median"] <= base["q3"]


class TestFig12:
    def test_reduced_sweep(self):
        rows = fig12_interconnectivity.run(
            sizes=(128, 512), degrees=(1, 8, 64, 128)
        )
        assert len(rows) == 2
        for row in rows:
            degs = [row[f"deg{d}"] for d in (1, 8, 64, 128) if row.get(f"deg{d}")]
            assert all(v > 0.9 for v in degs)
        # larger workloads gain less at low degree
        assert rows[0]["deg1"] >= rows[1]["deg1"] - 0.05

    def test_collapse_matches_fc_reference(self):
        rows = fig12_interconnectivity.run(sizes=(256,), degrees=(1, 128))
        row = rows[0]
        assert row["deg128"] == pytest.approx(row["fully_connected"], rel=1e-6)


class TestFig13:
    def test_overhead_small(self, ctx):
        rows = fig13_memory_overhead.run(ctx, benchmarks=FAST_BENCHMARKS)
        avg = rows[-1]
        assert avg["benchmark"] == "average"
        assert 0.0 <= avg["overhead_pct"] < 10.0


class TestFig14:
    def test_ordering(self):
        rows = fig14_comparison.run(side=16)
        summary = rows[-1]
        assert summary["benchmark"] == "geomean"
        # the paper's ordering: consumer BM > wireframe > producer BM > CDP
        assert summary["bm-consumer"] > summary["wireframe"]
        assert summary["wireframe"] > summary["bm-producer"]
        assert summary["bm-producer"] > 1.0


class TestTables:
    def test_table1_detects_all_patterns(self):
        rows = table1_overhead.run()
        detected = {r["pattern"]: r for r in rows}
        assert detected["fully_connected"]["encoded_bytes"] == 4
        assert detected["independent"]["encoded_bytes"] == 0
        assert detected["n_group"]["encoded_bytes"] < detected["n_group"]["plain_bytes"]
        for name in ("one_to_one", "one_to_n", "n_to_one", "overlapped"):
            assert detected[name]["detected"] == name

    def test_table2_counts(self, ctx):
        rows = table2_benchmarks.run(ctx)
        assert len(rows) == 12
        for row in rows:
            assert row["kernels"] == row["paper_kernels"]

    def test_table3_shape(self, ctx):
        rows = table3_storage.run(ctx)
        by_name = {r["benchmark"]: r for r in rows}
        # independent-kernel apps have no dependency storage at all
        assert by_name["bicg"]["ratio"] is None
        assert by_name["mvt"]["ratio"] is None
        # stencil apps gain nothing from encoding
        for name in ("hs", "path", "fft", "nw"):
            assert by_name[name]["ratio"] == pytest.approx(1.0)
        # collapse/FC-heavy apps gain a lot
        for name in ("3mm", "alexnet", "gaussian", "gramschm"):
            assert by_name[name]["ratio"] < 0.6
        assert 0.0 < by_name["average"]["ratio"] < 1.0


def test_geomean_helper():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([]) == 0.0
