"""End-to-end correctness validation via functional replay.

The strongest check in the suite: execute an application *functionally*
(real values in device memory) twice — once fully serialized, once in
the exact thread-block start order a BlockMaestro timing simulation
produced — and require bit-identical final memory.

For this linearization argument to be airtight the dependency graphs
must cover WAR/WAW hazards too (the paper tracks RAW only and relies on
its workloads' structure); these tests therefore build plans with all
three hazard classes enabled, which the graph builder supports.
"""

import pytest

from repro.core.policy import SchedulingPolicy
from repro.core.runtime import BlockMaestroRuntime
from repro.models import BlockMaestroModel, PrelaunchOnly, WireframeModel
from repro.sim.funcsim import (
    FunctionalError,
    FunctionalSimulator,
    schedule_from_stats,
)
from repro.workloads.base import AppBuilder
from repro.workloads import ptxgen

from tests.conftest import make_chain_app


def serialized_snapshot(app):
    sim = FunctionalSimulator(app.allocator)
    return sim.run_application(app)


def replay_snapshot(app, stats):
    sim = FunctionalSimulator(app.allocator)
    return sim.run_application(app, tb_order=schedule_from_stats(stats))


def assert_replay_matches(app, window=3, policies=None):
    runtime = BlockMaestroRuntime(hazards=("raw", "war", "waw"))
    plan = runtime.plan(app, reorder=True, window=window)
    golden = serialized_snapshot(app)
    for policy in policies or list(SchedulingPolicy):
        stats = BlockMaestroModel(window=window, policy=policy).run(plan)
        assert replay_snapshot(app, stats) == golden, policy


class TestChainReplay:
    def test_chain_all_policies(self):
        app = make_chain_app(num_pairs=3, tbs=6, block=8, name="fr_chain")
        assert_replay_matches(app)

    def test_chain_with_sync(self):
        app = make_chain_app(
            num_pairs=2, tbs=4, block=8, with_sync=True, name="fr_sync"
        )
        assert_replay_matches(app)

    def test_prelaunch_schedule_also_correct(self):
        app = make_chain_app(num_pairs=2, tbs=4, block=8, name="fr_pre")
        runtime = BlockMaestroRuntime(hazards=("raw", "war", "waw"))
        plan = runtime.plan(app, reorder=True, window=2)
        stats = PrelaunchOnly(window=2).run(plan)
        assert replay_snapshot(app, stats) == serialized_snapshot(app)

    def test_wireframe_schedule_also_correct(self):
        app = make_chain_app(num_pairs=2, tbs=4, block=8, name="fr_wf")
        runtime = BlockMaestroRuntime(hazards=("raw", "war", "waw"))
        plan = runtime.plan(app, reorder=True, window=3)
        stats = WireframeModel(pending_buffer_tasks=2).run(plan)
        assert replay_snapshot(app, stats) == serialized_snapshot(app)


def build_stencil_app(iterations=3, tbs=5, block=8):
    b = AppBuilder("fr_stencil")
    elems = tbs * block
    src = b.alloc("S0", elems * 4)
    dst = b.alloc("S1", elems * 4)
    b.h2d(src)
    kernel = ptxgen.stencil1d("fr_stencil_step", radius=1, alu=1)
    a, bb = src, dst
    for _ in range(iterations):
        b.launch(kernel, grid=tbs, block=block, args={"IN": a, "OUT": bb})
        a, bb = bb, a
    b.d2h(a)
    return b.build()


def build_fan_app(tbs=6, block=8):
    """Reduction then broadcast: n-to-1 followed by 1-to-n."""
    b = AppBuilder("fr_fan")
    elems = tbs * block
    data = b.alloc("D", elems * 4)
    scalars = b.alloc("S", 16 * 4)
    out = b.alloc("O", elems * 4)
    b.h2d(data)
    reduce_k = ptxgen.reduce_columns("fr_reduce")
    scale_k = ptxgen.broadcast_scale("fr_scale")
    b.launch(
        reduce_k,
        grid=1,
        block=1,
        args={
            "IN": data,
            "OUT": scalars,
            "STRIDE": 1,
            "COUNT": elems,
            "OFF": 0,
            "OUTOFF": 3,
        },
    )
    b.launch(
        scale_k,
        grid=tbs,
        block=block,
        args={"IN": data, "SCALARS": scalars, "OUT": out, "SIDX": 3, "OFF": 0},
    )
    b.d2h(out)
    return b.build()


class TestPatternReplays:
    def test_overlapped_stencil(self):
        assert_replay_matches(build_stencil_app())

    def test_fan_in_fan_out(self):
        assert_replay_matches(build_fan_app())

    def test_wavefront(self):
        from repro.workloads.wavefront import build_wavefront

        app = build_wavefront("fr_wave", side=5, parents=2, block_threads=8)
        assert_replay_matches(app, window=4)

    def test_gaussian_small(self):
        from repro.workloads.rodinia import build_gaussian

        # n=8 with stride 264 >= n + 256 (fan1 block overshoot)
        app = build_gaussian(n=8, stride=264)
        assert_replay_matches(
            app, window=3, policies=[SchedulingPolicy.CONSUMER_PRIORITY]
        )


class TestFunctionalSimulator:
    def test_deterministic_seed(self):
        app = make_chain_app(num_pairs=1, tbs=2, block=4, name="fr_det")
        assert serialized_snapshot(app) == serialized_snapshot(app)

    def test_schedule_must_cover_all_blocks(self):
        app = make_chain_app(num_pairs=1, tbs=2, block=4, name="fr_cov")
        sim = FunctionalSimulator(app.allocator)
        with pytest.raises(FunctionalError):
            sim.run_application(app, tb_order=[(0, 0)])

    def test_schedule_rejects_duplicates(self):
        app = make_chain_app(num_pairs=1, tbs=2, block=4, name="fr_dup")
        order = [(0, 0), (0, 0), (0, 1), (1, 0), (1, 1)]
        sim = FunctionalSimulator(app.allocator)
        with pytest.raises(FunctionalError):
            sim.run_application(app, tb_order=order)

    def test_out_of_bounds_access_detected(self):
        b = AppBuilder("fr_oob")
        buf = b.alloc("B", 16)
        b.h2d(buf)
        b.launch(
            ptxgen.elementwise("fr_oob_k", num_inputs=1),
            grid=4,
            block=32,  # reads way past the 4-element buffer
            args={"IN0": buf, "OUT": buf},
        )
        app = b.build()
        sim = FunctionalSimulator(app.allocator)
        with pytest.raises(FunctionalError):
            sim.run_application(app)

    def test_values_actually_flow(self):
        """The consumer's output depends on the producer's output."""
        app = make_chain_app(num_pairs=1, tbs=2, block=4, name="fr_flow")
        sim = FunctionalSimulator(app.allocator)
        sim.run_application(app)
        out = sim.memory.read_buffer_f32(app.allocator.buffers[2])
        assert (out != 0).any()

    def test_wrong_order_detected_for_dependent_blocks(self):
        """Running a consumer before its producer changes the result —
        demonstrating the replay check has teeth."""
        app = make_chain_app(num_pairs=1, tbs=2, block=4, name="fr_teeth")
        golden = serialized_snapshot(app)
        # consumer kernel (index 1) entirely before producer (index 0)
        bad_order = [(1, 0), (1, 1), (0, 0), (0, 1)]
        sim = FunctionalSimulator(app.allocator)
        snapshot = sim.run_application(app, tb_order=bad_order)
        assert snapshot != golden
