"""Golden regression pins for the calibrated headline results.

The simulator is fully deterministic (integer-hash jitter, seeded
nothing, tie-broken event queue), so these numbers are exact.  They pin
the calibration documented in EXPERIMENTS.md: if a change moves them,
either it is a bug or the calibration story changed — update the pins
*together with* EXPERIMENTS.md and say why (see CONTRIBUTING.md).
"""

import pytest

from repro.experiments.common import ExperimentContext

GOLDEN = {
    "path": {
        "baseline_makespan_ns": 79606.75271694419,
        "prelaunch": 1.7167220560795655,
        "producer": 1.7167220560795655,
        "consumer3": 1.9847494205878058,
    },
    "hs": {
        "baseline_makespan_ns": 122797.08495558337,
        "prelaunch": 1.8239050008137534,
        "producer": 1.8644799746767389,
        "consumer3": 2.2049329493322545,
    },
    "bicg": {
        "baseline_makespan_ns": 277934.601470655,
        "prelaunch": 1.2089380636074205,
        "producer": 1.9612487483206478,
        "consumer3": 1.9612487483206478,
    },
    "3mm": {
        "baseline_makespan_ns": 164368.21369523526,
        "prelaunch": 1.5481372125712487,
        "producer": 1.9158639352268807,
        "consumer3": 2.005182625268354,
    },
}


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext()


@pytest.mark.parametrize("workload_name", sorted(GOLDEN))
def test_golden_speedups(ctx, workload_name):
    expected = GOLDEN[workload_name]
    app = ctx.app(workload_name)
    baseline = ctx.run_model(app, "baseline")
    assert baseline.makespan_ns == pytest.approx(
        expected["baseline_makespan_ns"], rel=1e-9
    )
    for model in ("prelaunch", "producer", "consumer3"):
        stats = ctx.run_model(app, model)
        assert stats.speedup_over(baseline) == pytest.approx(
            expected[model], rel=1e-9
        ), (workload_name, model)


def test_simulation_bit_reproducible(ctx):
    """Two independent contexts produce identical results."""
    fresh = ExperimentContext()
    app_a = ctx.app("path")
    app_b = fresh.app("path")
    a = ctx.run_model(app_a, "consumer3")
    b = fresh.run_model(app_b, "consumer3")
    assert a.makespan_ns == b.makespan_ns
    assert [t.start_ns for t in a.tb_records] == [
        t.start_ns for t in b.tb_records
    ]
